//! # pardec — parallel graph decomposition, clustering, and diameter
//! approximation
//!
//! A Rust implementation of *“Space and Time Efficient Parallel Graph
//! Decomposition, Clustering, and Diameter Approximation”* (Ceccarello,
//! Pietracaprina, Pucci, Upfal — SPAA 2015), together with every substrate
//! its evaluation needs: a CSR graph library with generators and exact
//! diameter algorithms, an MR(M_G, M_L) model emulation with round and
//! communication accounting, distinct-count sketches, and the MPX / BFS /
//! HADI baselines.
//!
//! This crate is a facade: it re-exports the workspace members —
//!
//! * [`graph`] ([`pardec_graph`]) — graphs, generators, BFS, exact diameter,
//!   quotient graphs;
//! * [`mr`] ([`pardec_mr`]) — the MapReduce-model emulation engine;
//! * [`sketch`] ([`pardec_sketch`]) — Flajolet–Martin / HyperLogLog;
//! * [`core`] ([`pardec_core`]) — CLUSTER, CLUSTER2, k-center, diameter
//!   approximation, distance oracle, and the baselines;
//! * [`obs`] ([`pardec_obs`]) — the zero-cost-when-disabled tracing +
//!   metrics layer (phase spans, unified ledger schema, log2 histograms,
//!   JSONL trace export).
//!
//! ## Quickstart
//!
//! ```
//! use pardec::prelude::*;
//!
//! // A 60×60 mesh: 3600 nodes, diameter 118, doubling dimension 2.
//! let g = generators::mesh(60, 60);
//!
//! // Decompose with CLUSTER(τ = 8).
//! let result = cluster(&g, &ClusterParams::new(8, 42));
//! let clustering = &result.clustering;
//! assert!(clustering.validate(&g).is_ok());
//!
//! // Approximate the diameter through the quotient graph (§4):
//! let approx = approximate_diameter(&g, &DiameterParams::new(8, 42));
//! let delta = 118u64;
//! assert!(approx.lower_bound <= delta);
//! assert!(approx.estimate() >= delta);
//! ```

pub use pardec_core as core;
pub use pardec_graph as graph;
pub use pardec_mr as mr;
pub use pardec_obs as obs;
pub use pardec_sketch as sketch;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use pardec_core::{
        approximate_diameter, approximate_diameter_of_clustering, cluster, cluster2, gonzalez,
        hadi, kcenter, mpx, mpx_with_frontier, weighted_cluster, weighted_cluster_result,
        weighted_diameter, Cluster2Result, ClusterParams, ClusterResult, Clustering,
        DiameterApprox, DiameterParams, DistanceOracle, HadiParams, HadiResult, KCenterResult,
        MpxResult, QueryLedger, Session, SessionAlgo, SessionError, SessionParams,
        WeightedClusterResult, WeightedClusterTrace, WeightedClustering, WeightedDiameterApprox,
        WeightedRoundTrace,
    };
    pub use pardec_graph::prelude::*;
    pub use pardec_mr::{MrConfig, MrEngine, MrStats};
    pub use pardec_sketch::{DistinctCounter, FmSketch, HllSketch};
}
