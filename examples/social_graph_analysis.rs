//! Social-graph analytics: decompose a heavy-tailed graph, compare CLUSTER
//! against the MPX baseline (Table 2's experiment), and estimate the
//! neighbourhood function / effective diameter with HADI sketches.
//!
//! ```text
//! cargo run --release --example social_graph_analysis
//! ```

use pardec::prelude::*;

fn main() {
    // Windowed preferential attachment: power-law-ish degrees, diameter ~16
    // (the twitter substitute of the experiment harness).
    let g = generators::windowed_preferential_attachment(50_000, 8, 0.025, 9);
    let deg = stats::degree_stats(&g);
    println!(
        "social graph: {} nodes, {} edges, degrees avg {:.1} / p99 {} / max {}",
        g.num_nodes(),
        g.num_edges(),
        deg.avg,
        deg.p99,
        deg.max
    );

    // --- Decomposition quality: CLUSTER vs MPX ------------------------------
    let ours = cluster(&g, &ClusterParams::new(2, 7));
    let c = &ours.clustering;
    let beta = 1.0; // tuned so MPX lands near CLUSTER's granularity
    let theirs = mpx(&g, beta, 7);
    let m = &theirs.clustering;
    println!("\n              clusters   max radius   quotient edges");
    println!(
        "CLUSTER(2)    {:8}   {:10}   {:14}",
        c.num_clusters(),
        c.max_radius(),
        c.quotient(&g).num_edges()
    );
    println!(
        "MPX(β={beta})    {:8}   {:10}   {:14}",
        m.num_clusters(),
        m.max_radius(),
        m.quotient(&g).num_edges()
    );

    // --- Neighbourhood function via HADI sketches ---------------------------
    let mut params = HadiParams::new(5);
    params.trials = 32;
    let h = hadi(&g, &params);
    println!(
        "\nHADI: diameter estimate {} (bit-exact convergence at {}), {} iterations",
        h.diameter_estimate, h.bit_convergence, h.iterations
    );
    let n2 = (g.num_nodes() as f64).powi(2);
    println!("N(t) as a fraction of n² (connected graph saturates at 1):");
    for (t, v) in h.neighborhood.iter().enumerate() {
        if t % 2 == 0 || t + 1 == h.neighborhood.len() {
            println!("  t = {t:3}: {:.4}", v / n2);
        }
    }

    // Cross-check against the quotient-based bound.
    let approx = approximate_diameter(&g, &DiameterParams::new(2, 7));
    println!(
        "\nquotient diameter bounds: {} ≤ Δ ≤ {}",
        approx.lower_bound,
        approx.estimate()
    );
}
