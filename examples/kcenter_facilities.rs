//! k-center facility placement (§3.1): choose k depots on a road network so
//! the farthest intersection is as close as possible to a depot, comparing
//! the paper's CLUSTER-based parallel approximation against the sequential
//! Gonzalez 2-approximation.
//!
//! ```text
//! cargo run --release --example kcenter_facilities
//! ```

use pardec::core::kcenter::kcenter_objective;
use pardec::prelude::*;
use std::time::Instant;

fn main() {
    let g = generators::road_network(200, 200, 0.4, 3);
    println!(
        "road network: {} nodes, {} edges",
        g.num_nodes(),
        g.num_edges()
    );

    for k in [5usize, 20, 100] {
        let t0 = Instant::now();
        let ours = kcenter(&g, k, 42).expect("feasible");
        let t_ours = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let gz = gonzalez(&g, k, 42).expect("feasible");
        let t_gz = t0.elapsed().as_secs_f64();

        // Sanity: the objective value is what multi-source BFS measures.
        assert_eq!(ours.radius, kcenter_objective(&g, &ours.centers));

        println!(
            "\nk = {k:3}: CLUSTER-based  radius {:4}  ({} centers, {} clusters pre-merge, {t_ours:.3}s)",
            ours.radius,
            ours.centers.len(),
            ours.clusters_before_merge,
        );
        println!(
            "         Gonzalez 2-approx radius {:4}  ({t_gz:.3}s, {k} sequential BFS waves)",
            gz.radius
        );
        println!(
            "         ratio vs Gonzalez: {:.2} (Theorem 2 allows O(log^3 n))",
            ours.radius as f64 / gz.radius as f64
        );
    }
}
