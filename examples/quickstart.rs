//! Quickstart: decompose a graph, inspect the clustering, and bound its
//! diameter — the library's two headline operations in ~40 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pardec::prelude::*;

fn main() {
    // The paper's mesh dataset at a laptop-friendly scale: 200×200 grid,
    // 40,000 nodes, diameter 398, doubling dimension 2.
    let g = generators::mesh(200, 200);
    println!("graph: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    // --- CLUSTER(τ): the paper's Algorithm 1 --------------------------------
    let result = cluster(&g, &ClusterParams::new(16, 42));
    let clustering = &result.clustering;
    clustering.validate(&g).expect("valid partition");
    println!(
        "CLUSTER(16): {} clusters, max radius {}, {} growth steps over {} batches",
        clustering.num_clusters(),
        clustering.max_radius(),
        result.trace.total_growth_steps(),
        result.trace.num_batches(),
    );
    let sizes = clustering.cluster_sizes();
    println!(
        "cluster sizes: min {}, max {}",
        sizes.iter().min().unwrap(),
        sizes.iter().max().unwrap()
    );

    // --- Diameter approximation (§4) ----------------------------------------
    let approx = approximate_diameter(&g, &DiameterParams::new(16, 42));
    println!(
        "diameter: {} ≤ Δ ≤ {} (quotient: {} nodes / {} edges, radius {})",
        approx.lower_bound,
        approx.estimate(),
        approx.quotient_nodes,
        approx.quotient_edges,
        approx.radius,
    );
    let exact = diameter::ifub(&g, 0).0;
    println!(
        "exact Δ = {exact} -> approximation ratio {:.2} (paper observes < 2)",
        approx.estimate() as f64 / exact as f64
    );
}
