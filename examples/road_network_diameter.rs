//! Long-diameter regime: estimate a road network's diameter with the §4
//! quotient pipeline and compare cost and accuracy against the BFS baseline
//! and exact iFUB — the scenario where the paper's algorithm shines
//! (Table 4's roads rows).
//!
//! ```text
//! cargo run --release --example road_network_diameter
//! ```

use pardec::core::bfs_baseline::bfs_diameter;
use pardec::prelude::*;
use std::time::Instant;

fn main() {
    // A sparsified 300×300 grid: 90k nodes, m/n ≈ 1.4, diameter Θ(√n) —
    // the synthetic stand-in for roads-CA.
    let g = generators::road_network(300, 300, 0.4, 7);
    println!(
        "road network: {} nodes, {} edges",
        g.num_nodes(),
        g.num_edges()
    );

    let t0 = Instant::now();
    let approx = approximate_diameter(&g, &DiameterParams::new(8, 11));
    let t_cluster = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let bfs = bfs_diameter(&g, 11);
    let t_bfs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let (exact, bfs_runs) = diameter::ifub(&g, 0);
    let t_exact = t0.elapsed().as_secs_f64();

    println!("\nmethod               time      bounds");
    println!(
        "CLUSTER quotient   {t_cluster:7.3}s   {} ≤ Δ ≤ {}   ({} growth steps ≪ Δ)",
        approx.lower_bound,
        approx.estimate(),
        approx.growth_steps,
    );
    println!(
        "BFS 2-approx       {t_bfs:7.3}s   {} ≤ Δ ≤ {}   (Θ(Δ) = {} rounds)",
        bfs.lower_bound, bfs.upper_bound, bfs.rounds,
    );
    println!("iFUB exact         {t_exact:7.3}s   Δ = {exact}   ({bfs_runs} BFS runs)");

    let ratio = approx.estimate() as f64 / exact as f64;
    println!("\nquotient estimate ratio Δ′/Δ = {ratio:.3} (paper: < 2 on all road networks)");
    assert!(approx.lower_bound as u64 <= exact as u64);
    assert!(approx.estimate() >= exact as u64);
}
