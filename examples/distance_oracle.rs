//! The §4 distance oracle: cluster once, store the weighted-quotient APSP
//! matrix, then answer distance upper-bound queries in O(1) — trading a
//! single decomposition for thousands of avoided BFS runs.
//!
//! ```text
//! cargo run --release --example distance_oracle
//! ```

use pardec::core::diameter::Decomposition;
use pardec::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let g = generators::road_network(150, 150, 0.4, 13);
    println!(
        "road network: {} nodes, {} edges",
        g.num_nodes(),
        g.num_edges()
    );

    let t0 = Instant::now();
    // §4 prescribes τ = O(√n / log⁴ n) so the quotient APSP matrix stays
    // O(n) words: with n = 22.5k that means a few hundred clusters, i.e.
    // τ = 1 under CLUSTER's ~4·τ·log²n cluster count. (CLUSTER2 carries the
    // formal guarantee; plain CLUSTER gives the same query logic with a
    // cheaper build.)
    let oracle = DistanceOracle::build(&g, 1, 42, Decomposition::Cluster);
    println!(
        "oracle built in {:.3}s: {} clusters, radius {}, {} words of storage ({:.2}x nodes)",
        t0.elapsed().as_secs_f64(),
        oracle.num_clusters(),
        oracle.radius(),
        oracle.memory_words(),
        oracle.memory_words() as f64 / g.num_nodes() as f64,
    );

    // Evaluate stretch on random pairs against BFS ground truth.
    let mut rng = StdRng::seed_from_u64(7);
    let n = g.num_nodes();
    let mut stretches: Vec<f64> = Vec::new();
    let mut max_stretch: f64 = 0.0;
    for _ in 0..20 {
        let u = rng.gen_range(0..n) as NodeId;
        let truth = traversal::bfs(&g, u).dist;
        for _ in 0..50 {
            let v = rng.gen_range(0..n) as NodeId;
            let t = truth[v as usize];
            if t == 0 || t == INFINITE_DIST {
                continue;
            }
            let q = oracle.query(u, v);
            assert!(q >= t as u64, "oracle must upper-bound the distance");
            let s = q as f64 / t as f64;
            stretches.push(s);
            max_stretch = max_stretch.max(s);
        }
    }
    stretches.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let med = stretches[stretches.len() / 2];
    let p95 = stretches[stretches.len() * 95 / 100];
    println!(
        "stretch over {} random pairs: median {med:.2}, p95 {p95:.2}, max {max_stretch:.2}",
        stretches.len()
    );
    println!("(guarantee: O(d·log³n + R) — polylogarithmic for far-apart pairs)");
}
