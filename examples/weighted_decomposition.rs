//! The §7 future-work extension: decomposing a **weighted** graph while
//! controlling both the weighted radius and the hop radius (the
//! parallel-depth proxy).
//!
//! Scenario: a road network where edge weights are travel times — highway
//! rows are fast (weight 1), side streets slow (weight 4). The weighted
//! decomposition groups nodes by travel time, not hop count.
//!
//! ```text
//! cargo run --release --example weighted_decomposition
//! ```

use pardec::core::weighted_cluster::weighted_cluster;
use pardec::prelude::*;

fn main() {
    // A 120×120 grid with fast horizontal corridors every 8th row.
    let (rows, cols) = (120usize, 120usize);
    let mut edges: Vec<(NodeId, NodeId, u64)> = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let u = (r * cols + c) as NodeId;
            if c + 1 < cols {
                let w = if r % 8 == 0 { 1 } else { 4 };
                edges.push((u, u + 1, w));
            }
            if r + 1 < rows {
                edges.push((u, u + cols as NodeId, 4));
            }
        }
    }
    let g = WeightedGraph::from_edges(rows * cols, &edges);
    println!(
        "weighted grid: {} nodes, {} edges (fast corridors every 8th row)",
        g.num_nodes(),
        g.num_edges()
    );

    println!("\n  tau   clusters   weighted radius   hop radius");
    for tau in [1usize, 4, 16, 64] {
        let r = weighted_cluster(&g, &ClusterParams::new(tau, 42));
        r.validate(&g).expect("valid weighted partition");
        println!(
            "{:5}   {:8}   {:15}   {:10}",
            tau,
            r.num_clusters(),
            r.max_weighted_radius(),
            r.max_hop_radius(),
        );
    }
    println!(
        "\nBoth radii shrink as tau grows (the §7 claim); the hop radius exceeds the\n\
         weighted radius divided by the minimum edge weight because clusters stretch\n\
         along the fast corridors."
    );
}
