//! A tour of the MR(M_G, M_L) emulation (§5): generic rounds, the Fact 1
//! primitives, an M_L budget in action, and the round/communication ledger
//! that separates CLUSTER from the Θ(Δ)-round baselines.
//!
//! ```text
//! cargo run --release --example mr_model_walkthrough
//! ```

use pardec::core::mr_impl::{mr_bfs, mr_cluster};
use pardec::core::ClusterParams;
use pardec::mr::primitives::{mr_prefix_sum, mr_sort};
use pardec::prelude::*;

fn main() {
    // --- 1. A generic aggregation round --------------------------------------
    let mut eng = MrEngine::new(MrConfig::with_partitions(8));
    let pairs: Vec<(u32, u64)> = (0..100_000u32).map(|i| (i % 97, 1)).collect();
    let counts = eng
        .round(pairs, |&k, vs: Vec<u64>| vec![(k, vs.iter().sum::<u64>())])
        .unwrap();
    println!(
        "aggregation round: {} keys, ledger: {}",
        counts.len(),
        eng.stats()
    );

    // --- 2. Fact 1 primitives -------------------------------------------------
    let items: Vec<u64> = (0..50_000u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
        .collect();
    let sorted = mr_sort(&mut eng, items, 7).unwrap();
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    let sums = mr_prefix_sum(&mut eng, vec![1; 10_000]).unwrap();
    assert_eq!(sums[9_999], 9_999);
    println!("after sort + prefix sum: {}", eng.stats());

    // --- 3. An M_L budget violation -------------------------------------------
    let mut strict = MrEngine::new(MrConfig::with_partitions(4).with_local_memory(100));
    let skewed: Vec<(u8, u8)> = vec![(0, 0); 1_000];
    let err = strict
        .round(skewed, |&k, vs: Vec<u8>| vec![(k, vs.len())])
        .unwrap_err();
    println!("hard M_L budget: {err}");

    // --- 4. The §5 contrast on a long-diameter graph --------------------------
    let g = generators::road_network(120, 120, 0.4, 9);
    let delta = diameter::ifub(&g, 0).0;
    let c = mr_cluster(&g, &ClusterParams::new(8, 11));
    let b = mr_bfs(&g, 0);
    println!(
        "\nroad network (Δ = {delta}): CLUSTER {} rounds / {} pairs vs BFS {} rounds / {} pairs",
        c.supersteps,
        c.stats.total_pairs(),
        b.supersteps,
        b.stats.total_pairs(),
    );
    println!(
        "CLUSTER runs {:.0}x fewer rounds at comparable aggregate volume — the §5 claim.",
        b.supersteps as f64 / c.supersteps.max(1) as f64
    );
}
