//! Backend-neutral adjacency access — the neighbor-iteration surface the
//! engines consume.
//!
//! Every traversal in this workspace ([`crate::frontier`],
//! [`crate::traversal`], the quotient/contract emit paths, the MR vertex
//! engine) reads a graph through exactly three questions: *how many nodes*,
//! *what degree*, and *which sorted neighbors*. [`NeighborAccess`] captures
//! that surface so the same monomorphized engine code runs over the plain
//! [`crate::CsrGraph`] (slices), the gap-coded [`crate::ccsr::CcsrGraph`]
//! (varint decode on the fly), or the runtime-selected
//! [`crate::repr::GraphRepr`] — **byte-identically**: the trait yields
//! neighbors in the same strictly-ascending order on every backend, and the
//! engines' determinism contracts are functions of that order alone.
//!
//! [`WeightedNeighborAccess`] is the `(target, weight)` analogue for the
//! delta-stepping engine ([`crate::wfrontier`]).

use crate::NodeId;

/// Read access to an unweighted, undirected graph's sorted adjacency.
///
/// Implementations must yield each node's neighbors **strictly ascending**
/// and store each undirected edge twice (once per endpoint) — the same
/// invariants [`crate::CsrGraph::check_invariants`] enforces. Engines rely
/// on this order for their byte-identical-output contracts.
pub trait NeighborAccess: Sync {
    /// Iterator over one node's sorted neighbors.
    type Neighbors<'a>: Iterator<Item = NodeId> + 'a
    where
        Self: 'a;

    /// Number of nodes `n`.
    fn num_nodes(&self) -> usize;

    /// Number of directed arcs stored (`2m`).
    fn num_arcs(&self) -> usize;

    /// Number of undirected edges `m`.
    fn num_edges(&self) -> usize {
        self.num_arcs() / 2
    }

    /// Degree of node `u`.
    fn degree(&self, u: NodeId) -> usize;

    /// Sorted neighbors of `u`.
    fn neighbors_iter(&self, u: NodeId) -> Self::Neighbors<'_>;

    /// The `v > u` tail of `u`'s sorted adjacency — each undirected edge
    /// appears in exactly one tail (the contraction kernel's half-arc
    /// emission order). The default skips the `v ≤ u` prefix; backends with
    /// random access (plain CSR) override with a binary search.
    fn upper_neighbors_iter(&self, u: NodeId) -> UpperNeighbors<Self::Neighbors<'_>> {
        UpperNeighbors {
            inner: self.neighbors_iter(u),
            pivot: u,
            skipping: true,
        }
    }
}

/// Adapter yielding the `v > pivot` suffix of a sorted neighbor iterator.
pub struct UpperNeighbors<I> {
    inner: I,
    pivot: NodeId,
    skipping: bool,
}

impl<I: Iterator<Item = NodeId>> UpperNeighbors<I> {
    /// Wraps an iterator already positioned at the suffix (no skipping) —
    /// the fast-path constructor for slice backends.
    pub fn presliced(inner: I) -> Self {
        UpperNeighbors {
            inner,
            pivot: 0,
            skipping: false,
        }
    }
}

impl<I: Iterator<Item = NodeId>> Iterator for UpperNeighbors<I> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        if self.skipping {
            self.skipping = false;
            // The list is sorted, so the first neighbor beyond the pivot
            // starts the suffix; everything after it passes unfiltered.
            return self.inner.by_ref().find(|&v| v > self.pivot);
        }
        self.inner.next()
    }
}

impl NeighborAccess for crate::CsrGraph {
    type Neighbors<'a> = std::iter::Copied<std::slice::Iter<'a, NodeId>>;

    #[inline]
    fn num_nodes(&self) -> usize {
        crate::CsrGraph::num_nodes(self)
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        crate::CsrGraph::num_arcs(self)
    }

    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        crate::CsrGraph::degree(self, u)
    }

    #[inline]
    fn neighbors_iter(&self, u: NodeId) -> Self::Neighbors<'_> {
        self.neighbors(u).iter().copied()
    }

    #[inline]
    fn upper_neighbors_iter(&self, u: NodeId) -> UpperNeighbors<Self::Neighbors<'_>> {
        UpperNeighbors::presliced(self.upper_neighbors(u).iter().copied())
    }
}

/// Read access to a weighted graph's sorted `(target, weight)` adjacency —
/// the surface of the delta-stepping engine. Same ordering contract as
/// [`NeighborAccess`]: targets strictly ascending, symmetric arcs.
pub trait WeightedNeighborAccess: Sync {
    /// Iterator over one node's sorted `(neighbor, weight)` pairs.
    type WNeighbors<'a>: Iterator<Item = (NodeId, u64)> + 'a
    where
        Self: 'a;

    /// Number of nodes `n`.
    fn num_nodes(&self) -> usize;

    /// Number of undirected edges `m`.
    fn num_edges(&self) -> usize;

    /// Sorted `(neighbor, weight)` pairs of `u`.
    fn wneighbors_iter(&self, u: NodeId) -> Self::WNeighbors<'_>;
}

impl WeightedNeighborAccess for crate::WeightedGraph {
    type WNeighbors<'a> = crate::weighted::WNeighborIter<'a>;

    #[inline]
    fn num_nodes(&self) -> usize {
        crate::WeightedGraph::num_nodes(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        crate::WeightedGraph::num_edges(self)
    }

    #[inline]
    fn wneighbors_iter(&self, u: NodeId) -> Self::WNeighbors<'_> {
        self.wneighbor_iter(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn csr_trait_surface_matches_inherent() {
        let g = GraphBuilder::new(5)
            .add_edges([(0, 1), (0, 3), (1, 2), (2, 3), (3, 4)])
            .build();
        assert_eq!(NeighborAccess::num_nodes(&g), 5);
        assert_eq!(NeighborAccess::num_arcs(&g), 10);
        assert_eq!(NeighborAccess::num_edges(&g), 5);
        for u in 0..5u32 {
            assert_eq!(NeighborAccess::degree(&g, u), g.degree(u));
            let via_trait: Vec<NodeId> = g.neighbors_iter(u).collect();
            assert_eq!(via_trait, g.neighbors(u));
            let upper: Vec<NodeId> = g.upper_neighbors_iter(u).collect();
            assert_eq!(upper, g.upper_neighbors(u));
        }
    }

    #[test]
    fn upper_neighbors_adapter_skips_sorted_prefix() {
        let nbrs = [0u32, 2, 5, 9];
        let upper = UpperNeighbors {
            inner: nbrs.iter().copied(),
            pivot: 2,
            skipping: true,
        };
        assert_eq!(upper.collect::<Vec<_>>(), vec![5, 9]);
        let all = UpperNeighbors::presliced(nbrs.iter().copied());
        assert_eq!(all.collect::<Vec<_>>(), nbrs);
    }
}
