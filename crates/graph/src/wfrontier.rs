//! Bucketed weighted frontier engine — the delta-stepping generalization of
//! the level-synchronous [`crate::frontier`] wave.
//!
//! The unweighted engine advances all cluster waves one hop per step; with
//! weighted edges a "step" has no natural unit, so this engine processes
//! *time buckets* of width `delta` instead (Meyer–Sanders delta-stepping,
//! generalized to multi-source ownership): all claims whose arrival time
//! falls in `[b·δ, (b+1)·δ)` are resolved together, **light** edges
//! (`w ≤ δ`) are relaxed iteratively inside the bucket until a fixed point,
//! and **heavy** edges (`w > δ`) are relaxed exactly once when the bucket
//! seals — a heavy edge can never connect two claims of the same bucket.
//!
//! # Determinism contract
//!
//! Each node's claim is the minimum over all proposals of the packed word
//!
//! ```text
//! claim = (arrival_time << 64) | (owner << 32) | hops      (u128)
//! ```
//!
//! where `arrival_time = activation(owner) + weighted_dist`. Because `min`
//! is commutative, associative, and idempotent, the fixed point is a pure
//! function of the graph, the sources, and their activation times —
//! independent of the pool size, the chunk grid, *and the bucket width
//! `delta` itself*: `delta` only decides how the fixed point is scheduled,
//! never what it is. Ties on arrival time go to the smallest owner id, then
//! the fewest hops (and per-node storage makes the node id the implicit
//! final tie-break), which is exactly the settle order of a sequential
//! multi-source Dijkstra whose heap is keyed `(t, owner, wd, hops, node)` —
//! the oracle retained in `pardec_core::weighted_cluster::naive`.
//!
//! Proposals are generated over a fixed chunk grid and min-combined through
//! [`crate::combine::combine_by_key`], so outputs are byte-identical at any
//! thread count.
//!
//! # Incremental sources
//!
//! Unlike the unweighted engine, sources may be injected *mid-run* (batched
//! center activation at halving thresholds needs this): [`add_source`]
//! accepts an activation time, and the open bucket can be re-resolved with
//! [`refine_open_bucket`] after [`rollback_open_bucket_after`] discards the
//! claims a new batch may steal. An activated source's own claim is locked
//! (`hops == 0`) — matching the oracle, where an assigned center is never
//! re-claimed even if an older wave later offers a smaller key.
//!
//! [`add_source`]: WeightedFrontierEngine::add_source
//! [`refine_open_bucket`]: WeightedFrontierEngine::refine_open_bucket
//! [`rollback_open_bucket_after`]: WeightedFrontierEngine::rollback_open_bucket_after

use crate::access::WeightedNeighborAccess;
use crate::combine;
use crate::weighted::WeightedGraph;
use crate::NodeId;
use rayon::prelude::*;

/// Environment variable consulted by [`resolve_delta`] when no explicit
/// bucket width is requested (the `--delta` flag of the CLI).
pub const DELTA_ENV: &str = "PARDEC_DELTA";

/// Sentinel claim word: no proposal yet.
pub const NO_CLAIM: u128 = u128::MAX;

/// Fixed proposal-generation chunk width — a pure function of nothing, so
/// the chunk grid never depends on the pool size.
const PROPOSE_CHUNK: usize = 1024;

/// Packs `(arrival_time, owner, hops)` into one comparable word. Comparing
/// packed claims is comparing `(t, owner, hops)` tuples; the weighted
/// distance is implicit (`t - activation(owner)`).
#[inline]
pub fn pack_claim(arrival: u64, owner: NodeId, hops: u32) -> u128 {
    ((arrival as u128) << 64) | ((owner as u128) << 32) | hops as u128
}

/// Inverse of [`pack_claim`]: `(arrival_time, owner, hops)`.
#[inline]
pub fn unpack_claim(claim: u128) -> (u64, NodeId, u32) {
    ((claim >> 64) as u64, (claim >> 32) as NodeId, claim as u32)
}

/// Bucket width selected by the `PARDEC_DELTA` environment variable, or
/// `None` when the variable is unset or empty (a CI matrix leg without a
/// delta exports the empty string).
///
/// # Panics
/// Panics on an unparsable or zero value — a misspelled CI matrix entry
/// must fail loudly rather than silently fall back to the default.
pub fn delta_from_env() -> Option<u64> {
    let raw = std::env::var(DELTA_ENV).ok()?;
    if raw.trim().is_empty() {
        return None;
    }
    match raw.trim().parse::<u64>() {
        Ok(0) => panic!("{DELTA_ENV}: bucket width must be positive"),
        Ok(d) => Some(d),
        Err(e) => panic!("{DELTA_ENV}: invalid bucket width {raw:?}: {e}"),
    }
}

/// Data-driven default bucket width: the mean edge weight (the classic
/// delta-stepping heuristic `δ ≈ Δ/d` degenerates to this for the random
/// weights used here), clamped to at least 1. A pure function of the graph.
pub fn auto_delta<G: WeightedNeighborAccess>(g: &G) -> u64 {
    let arcs = 2 * g.num_edges();
    if arcs == 0 {
        return 1;
    }
    let total: u128 = (0..g.num_nodes() as NodeId)
        .into_par_iter()
        .map(|u| g.wneighbors_iter(u).map(|(_, w)| w as u128).sum::<u128>())
        .sum();
    ((total / arcs as u128) as u64).max(1)
}

/// The ambient bucket width: `requested` when given, else `PARDEC_DELTA`,
/// else [`auto_delta`]. Outputs never depend on the choice — only
/// wall-clock does.
pub fn resolve_delta<G: WeightedNeighborAccess>(g: &G, requested: Option<u64>) -> u64 {
    requested
        .or_else(delta_from_env)
        .unwrap_or_else(|| auto_delta(g))
}

/// Per-wave ledger of one engine run (all buckets so far).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WaveStats {
    /// Buckets resolved (non-empty time windows).
    pub buckets: u64,
    /// Edge relaxations attempted (light, across all inner iterations).
    pub light_relaxations: u64,
    /// Edge relaxations attempted at bucket seals (heavy + cross-bucket).
    pub heavy_relaxations: u64,
    /// Inner fixed-point iterations summed over buckets.
    pub inner_iterations: u64,
    /// Nodes settled across all sealed buckets.
    pub settled: u64,
}

/// Final arrays of a finished wave (see
/// [`WeightedFrontierEngine::into_parts`]).
pub struct WeightedFrontierParts {
    /// Claiming source index per node (`INVALID_NODE` if unclaimed).
    pub owner: Vec<NodeId>,
    /// Weighted distance to the claiming source
    /// ([`crate::weighted::INFINITE_WEIGHT`] if unclaimed).
    pub weighted_dist: Vec<u64>,
    /// Hop count of the claim path (`u32::MAX` if unclaimed).
    pub hops: Vec<u32>,
    /// The source nodes, in activation order (owner id = index).
    pub sources: Vec<NodeId>,
}

/// Multi-source weighted wave over bucketed frontiers. See the module docs
/// for the claim semantics and determinism contract.
///
/// Generic over the weighted adjacency backend: any
/// [`WeightedNeighborAccess`] implementor (plain [`WeightedGraph`] or the
/// compressed [`crate::CweightedGraph`]) serves the identical sorted
/// `(target, weight)` lists, so the wave — and every downstream consumer —
/// is byte-identical across backends.
pub struct WeightedFrontierEngine<'g, G: WeightedNeighborAccess = WeightedGraph> {
    g: &'g G,
    delta: u64,
    /// Packed `(t, owner, hops)` claim per node; `NO_CLAIM` if none.
    claim: Vec<u128>,
    /// Claim snapshot taken when the open bucket was opened — the rollback
    /// baseline (values derived from sealed buckets only).
    carry: Vec<u128>,
    settled: Vec<bool>,
    /// Activation time per owner id.
    activation: Vec<u64>,
    sources: Vec<NodeId>,
    /// Currently open bucket index, if any.
    open: Option<u64>,
    /// Settle-order position of the last rollback in the open bucket.
    /// Open-bucket claims strictly after it are tentative again (a
    /// mid-bucket batch may still steal them) until the bucket seals.
    rollback_mark: Option<(u128, NodeId)>,
    bucket_span: Option<pardec_obs::SpanGuard>,
    /// Light relaxations + inner iterations of the open bucket (for the
    /// bucket span).
    open_light: u64,
    open_iters: u64,
    stats: WaveStats,
}

impl<'g, G: WeightedNeighborAccess> WeightedFrontierEngine<'g, G> {
    /// Creates an engine over `g` with bucket width `delta ≥ 1`.
    ///
    /// # Panics
    /// Panics if `delta == 0`.
    pub fn new(g: &'g G, delta: u64) -> Self {
        assert!(delta >= 1, "bucket width delta must be positive");
        let n = g.num_nodes();
        WeightedFrontierEngine {
            g,
            delta,
            claim: vec![NO_CLAIM; n],
            carry: vec![NO_CLAIM; n],
            settled: vec![false; n],
            activation: Vec::new(),
            sources: Vec::new(),
            open: None,
            rollback_mark: None,
            bucket_span: None,
            open_light: 0,
            open_iters: 0,
            stats: WaveStats::default(),
        }
    }

    /// Bucket width in use.
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// The run's ledger so far.
    pub fn stats(&self) -> &WaveStats {
        &self.stats
    }

    /// Sources in activation order.
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    #[inline]
    fn bucket_of(&self, t: u64) -> u64 {
        t / self.delta
    }

    /// True when `v` holds a *final* claim: settled in a sealed bucket, an
    /// activated source, or resolved in the open bucket. Tentative claims in
    /// future buckets do not count — they may still lose to a later batch.
    pub fn is_claimed(&self, v: NodeId) -> bool {
        let vi = v as usize;
        if self.settled[vi] {
            return true;
        }
        let c = self.claim[vi];
        if c == NO_CLAIM {
            return false;
        }
        // Sources are claimed from the moment of activation.
        if c as u32 == 0 {
            return true;
        }
        match self.open {
            Some(b) => {
                if self.bucket_of((c >> 64) as u64) > b {
                    return false;
                }
                // After a rollback, in-bucket claims beyond the mark are
                // tentative again — including carry tents inherited from
                // earlier seals, which the oracle holds as unpopped events.
                self.rollback_mark.is_none_or(|mark| (c, v) <= mark)
            }
            None => false,
        }
    }

    /// Final claim of `v` as `(owner, weighted_dist, hops)`, or `None` while
    /// unclaimed (see [`is_claimed`](Self::is_claimed)).
    pub fn claim_parts(&self, v: NodeId) -> Option<(NodeId, u64, u32)> {
        if !self.is_claimed(v) {
            return None;
        }
        let (t, owner, hops) = unpack_claim(self.claim[v as usize]);
        Some((owner, t - self.activation[owner as usize], hops))
    }

    /// Activates `v` as a new source at the given time, returning its owner
    /// id — or `None` if `v` already holds a final claim. The self-claim
    /// `(time, id, hops = 0)` is locked: no wave can re-claim an activated
    /// source, mirroring the sequential oracle where assignment is
    /// permanent.
    ///
    /// Activation times must be non-decreasing across calls and, while a
    /// bucket is open, must not precede it — both hold by construction for
    /// Dijkstra-ordered orchestration and are debug-asserted.
    pub fn add_source(&mut self, v: NodeId, time: u64) -> Option<NodeId> {
        if self.is_claimed(v) {
            return None;
        }
        debug_assert!(
            self.activation.last().is_none_or(|&t| t <= time),
            "activation times must be non-decreasing"
        );
        debug_assert!(
            self.open.is_none_or(|b| self.bucket_of(time) >= b),
            "source activated before the open bucket"
        );
        let id = self.sources.len() as NodeId;
        self.claim[v as usize] = pack_claim(time, id, 0);
        self.activation.push(time);
        self.sources.push(v);
        Some(id)
    }

    /// Opens the next non-empty bucket and resolves it to its light-edge
    /// fixed point. Returns the bucket index, or `None` when no tentative
    /// claims remain (the wave is exhausted).
    pub fn open_next_bucket(&mut self) -> Option<u64> {
        debug_assert!(self.open.is_none(), "seal the open bucket first");
        let delta = self.delta;
        let next = self
            .claim
            .par_iter()
            .zip(self.settled.par_iter())
            .filter(|&(&c, &s)| !s && c != NO_CLAIM)
            .map(|(&c, _)| (c >> 64) as u64 / delta)
            .min()?;
        self.open = Some(next);
        self.rollback_mark = None;
        self.carry.copy_from_slice(&self.claim);
        self.open_light = 0;
        self.open_iters = 0;
        self.bucket_span = Some(pardec_obs::span!(
            "wfrontier.bucket",
            bucket = next,
            delta = self.delta,
        ));
        self.stats.buckets += 1;
        self.relax_open_bucket();
        Some(next)
    }

    /// Claims resolved in the open bucket, as `(claim, node)` pairs sorted
    /// ascending — the sequential oracle's settle order restricted to this
    /// time window.
    pub fn open_bucket_claims(&self) -> Vec<(u128, NodeId)> {
        let b = self.open.expect("no open bucket");
        let mut out: Vec<(u128, NodeId)> = (0..self.claim.len())
            .filter(|&v| {
                !self.settled[v]
                    && self.claim[v] != NO_CLAIM
                    && self.bucket_of((self.claim[v] >> 64) as u64) == b
            })
            .map(|v| (self.claim[v], v as NodeId))
            .collect();
        out.sort_unstable();
        out
    }

    /// Discards every open-bucket claim strictly after `(claim, node)` in
    /// settle order, resetting those nodes to their bucket-open baseline.
    /// Locked source self-claims survive (assignment is permanent). Call
    /// before injecting a mid-bucket batch, then [`refine_open_bucket`]
    /// (Self::refine_open_bucket).
    pub fn rollback_open_bucket_after(&mut self, claim: u128, node: NodeId) {
        let b = self.open.expect("no open bucket");
        for v in 0..self.claim.len() {
            let c = self.claim[v];
            if self.settled[v] || c == NO_CLAIM {
                continue;
            }
            if self.bucket_of((c >> 64) as u64) != b {
                continue;
            }
            if (c, v as NodeId) <= (claim, node) || c as u32 == 0 {
                continue; // settled prefix, or a locked source self-claim
            }
            self.claim[v] = self.carry[v];
        }
        self.rollback_mark = Some((claim, node));
    }

    /// Re-resolves the open bucket's light-edge fixed point after a
    /// rollback + source injection.
    pub fn refine_open_bucket(&mut self) {
        self.relax_open_bucket();
    }

    /// Light-edge fixed point of the open bucket. Starts from every
    /// unsettled claim currently in the bucket and iterates until no claim
    /// in the bucket improves.
    fn relax_open_bucket(&mut self) {
        let b = self.open.expect("no open bucket");
        let mut active: Vec<NodeId> = (0..self.claim.len())
            .filter(|&v| {
                !self.settled[v]
                    && self.claim[v] != NO_CLAIM
                    && self.bucket_of((self.claim[v] >> 64) as u64) == b
            })
            .map(|v| v as NodeId)
            .collect();
        while !active.is_empty() {
            self.open_iters += 1;
            let proposals = self.propose(&active, true, Some(b));
            active = self.apply(proposals, Some(b));
        }
    }

    /// Seals the open bucket: every claim in it becomes settled, its heavy
    /// and cross-bucket relaxations are applied once, and the bucket span
    /// is emitted.
    pub fn seal_open_bucket(&mut self) {
        let b = self.open.expect("no open bucket");
        let sealed: Vec<NodeId> = (0..self.claim.len())
            .filter(|&v| {
                !self.settled[v]
                    && self.claim[v] != NO_CLAIM
                    && self.bucket_of((self.claim[v] >> 64) as u64) == b
            })
            .map(|v| v as NodeId)
            .collect();
        // Relax *all* edges of the sealed set once, applying only proposals
        // that land beyond this bucket (in-bucket ones are no-ops at the
        // fixed point; heavy edges cannot land in-bucket at all).
        let proposals = self.propose(&sealed, false, None);
        let _ = self.apply(proposals, None);
        for &v in &sealed {
            self.settled[v as usize] = true;
        }
        self.stats.settled += sealed.len() as u64;
        self.stats.light_relaxations += self.open_light;
        self.stats.inner_iterations += self.open_iters;
        if let Some(mut span) = self.bucket_span.take() {
            span.field("settled", sealed.len());
            span.field("light_relaxations", self.open_light);
            span.field("inner_iterations", self.open_iters);
        }
        self.open = None;
        self.rollback_mark = None;
    }

    /// Generates improving proposals from `active` over a fixed chunk grid.
    /// `light_only` restricts to edges with `w ≤ delta`; `in_bucket`
    /// restricts to proposals whose arrival falls in that bucket.
    fn propose(
        &mut self,
        active: &[NodeId],
        light_only: bool,
        in_bucket: Option<u64>,
    ) -> Vec<(NodeId, u128)> {
        let delta = self.delta;
        let g = self.g;
        let claim = &self.claim;
        let chunks: Vec<(Vec<(NodeId, u128)>, u64)> = active
            .par_chunks(PROPOSE_CHUNK)
            .map(|chunk| {
                let mut out = Vec::new();
                let mut scanned = 0u64;
                for &v in chunk {
                    let c = claim[v as usize];
                    debug_assert_ne!(c, NO_CLAIM);
                    let (t, owner, hops) = unpack_claim(c);
                    for (u, w) in g.wneighbors_iter(v) {
                        if light_only && w > delta {
                            continue;
                        }
                        scanned += 1;
                        let arrival = t + w;
                        if in_bucket.is_some_and(|b| arrival / delta != b) {
                            continue;
                        }
                        let cand = pack_claim(arrival, owner, hops + 1);
                        if cand < claim[u as usize] {
                            out.push((u, cand));
                        }
                    }
                }
                (out, scanned)
            })
            .collect();
        let mut proposals = Vec::new();
        for (mut part, scanned) in chunks {
            proposals.append(&mut part);
            if light_only {
                self.open_light += scanned;
            } else {
                self.stats.heavy_relaxations += scanned;
            }
        }
        proposals
    }

    /// Min-combines `proposals` per target and applies the survivors,
    /// skipping settled nodes and locked source self-claims. Returns the
    /// targets whose claim improved *within* `reactivate_bucket`, in node
    /// order (the combine output is key-sorted).
    fn apply(
        &mut self,
        proposals: Vec<(NodeId, u128)>,
        reactivate_bucket: Option<u64>,
    ) -> Vec<NodeId> {
        if proposals.is_empty() {
            return Vec::new();
        }
        let n = self.claim.len() as u64;
        let (combined, _) = combine::combine_by_key(
            proposals,
            n,
            |&(v, _)| v as u64,
            |a, b| if b.1 < a.1 { b } else { a },
        );
        let mut improved = Vec::new();
        for (v, cand) in combined {
            let vi = v as usize;
            let cur = self.claim[vi];
            if self.settled[vi] || cand >= cur {
                continue;
            }
            // A locked source self-claim (hops == 0) is never re-claimed.
            if cur != NO_CLAIM && cur as u32 == 0 {
                continue;
            }
            self.claim[vi] = cand;
            if reactivate_bucket.is_some_and(|b| self.bucket_of((cand >> 64) as u64) == b) {
                improved.push(v);
            }
        }
        improved
    }

    /// Runs the wave to exhaustion with the current sources — the
    /// non-batched mode (each bucket opens, resolves, and seals with no
    /// mid-bucket injection).
    pub fn run(&mut self) {
        let mut wave = pardec_obs::span!(
            "wfrontier.wave",
            sources = self.sources.len(),
            delta = self.delta,
        );
        while self.open_next_bucket().is_some() {
            self.seal_open_bucket();
        }
        wave.field("buckets", self.stats.buckets);
        wave.field("settled", self.stats.settled);
    }

    /// Consumes the engine into its final arrays.
    pub fn into_parts(self) -> WeightedFrontierParts {
        let n = self.claim.len();
        let mut owner = vec![crate::INVALID_NODE; n];
        let mut weighted_dist = vec![crate::weighted::INFINITE_WEIGHT; n];
        let mut hops = vec![u32::MAX; n];
        for v in 0..n {
            let c = self.claim[v];
            if c == NO_CLAIM || !(self.settled[v] || c as u32 == 0) {
                continue;
            }
            let (t, o, h) = unpack_claim(c);
            owner[v] = o;
            weighted_dist[v] = t - self.activation[o as usize];
            hops[v] = h;
        }
        WeightedFrontierParts {
            owner,
            weighted_dist,
            hops,
            sources: self.sources,
        }
    }
}

/// Multi-source weighted shortest paths with ownership: runs one wave from
/// `sources` (all activated at time 0) and returns the final arrays. The
/// weighted analogue of [`crate::frontier::multi_source_bfs`].
pub fn multi_source_dijkstra<G: WeightedNeighborAccess>(
    g: &G,
    sources: &[NodeId],
    delta: u64,
) -> WeightedFrontierParts {
    let mut eng = WeightedFrontierEngine::new(g, delta);
    for &s in sources {
        eng.add_source(s, 0);
    }
    eng.run();
    eng.into_parts()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weighted::INFINITE_WEIGHT;
    use crate::INVALID_NODE;

    fn diamond() -> WeightedGraph {
        WeightedGraph::from_edges(4, &[(0, 1, 1), (1, 3, 1), (0, 3, 5), (0, 2, 1), (2, 3, 1)])
    }

    /// Per-source Dijkstra reference: smallest distance wins, then the
    /// smallest source index, then the fewest hops.
    fn oracle(g: &WeightedGraph, sources: &[NodeId]) -> (Vec<NodeId>, Vec<u64>) {
        let n = g.num_nodes();
        let mut owner = vec![INVALID_NODE; n];
        let mut dist = vec![INFINITE_WEIGHT; n];
        for (id, &s) in sources.iter().enumerate() {
            let d = g.dijkstra(s);
            for v in 0..n {
                if d[v] < dist[v] {
                    dist[v] = d[v];
                    owner[v] = id as NodeId;
                }
            }
        }
        (owner, dist)
    }

    #[test]
    fn single_source_matches_dijkstra() {
        let g = diamond();
        for delta in [1, 2, 7] {
            let parts = multi_source_dijkstra(&g, &[0], delta);
            assert_eq!(parts.weighted_dist, g.dijkstra(0), "delta = {delta}");
            assert_eq!(parts.owner, vec![0, 0, 0, 0]);
        }
    }

    #[test]
    fn multi_source_ownership_and_ties() {
        let g = WeightedGraph::from_edges(5, &[(0, 1, 2), (1, 2, 2), (2, 3, 2), (3, 4, 2)]);
        let parts = multi_source_dijkstra(&g, &[0, 4], 3);
        let (owner, dist) = oracle(&g, &[0, 4]);
        assert_eq!(parts.owner, owner);
        assert_eq!(parts.weighted_dist, dist);
        // Node 2 is equidistant (4 from both): smallest source index wins.
        assert_eq!(parts.owner[2], 0);
    }

    #[test]
    fn delta_invariance() {
        let g = diamond();
        let base = multi_source_dijkstra(&g, &[1, 2], 1);
        for delta in [2, 3, 100] {
            let parts = multi_source_dijkstra(&g, &[1, 2], delta);
            assert_eq!(parts.owner, base.owner, "delta = {delta}");
            assert_eq!(parts.weighted_dist, base.weighted_dist);
            assert_eq!(parts.hops, base.hops);
        }
    }

    #[test]
    fn unreachable_nodes_stay_unclaimed() {
        let g = WeightedGraph::from_edges(4, &[(0, 1, 3)]);
        let parts = multi_source_dijkstra(&g, &[0], 2);
        assert_eq!(parts.owner[2], INVALID_NODE);
        assert_eq!(parts.weighted_dist[3], INFINITE_WEIGHT);
        assert_eq!(parts.hops[2], u32::MAX);
    }

    #[test]
    fn later_activation_loses_claimed_ground() {
        // Path 0-1-2-3-4, unit weights. Source 0 at time 0; source 4 at
        // time 0 claims its half — but at activation time 3 the wave from 0
        // has already taken nodes ≤ 3 by arrival-time order.
        let mut edges = Vec::new();
        for v in 1..5u32 {
            edges.push((v - 1, v, 1u64));
        }
        let g = WeightedGraph::from_edges(5, &edges);
        let mut eng = WeightedFrontierEngine::new(&g, 1);
        eng.add_source(0, 0);
        eng.add_source(4, 3);
        eng.run();
        let parts = eng.into_parts();
        assert_eq!(parts.owner, vec![0, 0, 0, 0, 1]);
        assert_eq!(parts.weighted_dist[4], 0);
    }

    #[test]
    fn source_self_claim_is_locked() {
        // Node 1 is activated late even though wave 0 could reach it with a
        // smaller arrival time; its self-claim must survive.
        let g = WeightedGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1)]);
        let mut eng = WeightedFrontierEngine::new(&g, 10);
        eng.add_source(0, 0);
        assert_eq!(eng.add_source(1, 5), Some(1));
        eng.run();
        let parts = eng.into_parts();
        assert_eq!(parts.owner[1], 1);
        assert_eq!(parts.weighted_dist[1], 0);
    }

    #[test]
    fn add_source_rejects_claimed_nodes() {
        let g = diamond();
        let mut eng = WeightedFrontierEngine::new(&g, 2);
        assert_eq!(eng.add_source(0, 0), Some(0));
        assert_eq!(eng.add_source(0, 0), None);
        eng.run();
        let mut eng2 = WeightedFrontierEngine::new(&g, 2);
        eng2.add_source(0, 0);
        eng2.run();
        // After the wave, every node holds a final claim.
        assert_eq!(eng2.add_source(3, 100), None);
    }

    #[test]
    fn stats_ledger_accounts_buckets() {
        let g = diamond();
        let mut eng = WeightedFrontierEngine::new(&g, 1);
        eng.add_source(0, 0);
        eng.run();
        let s = *eng.stats();
        assert_eq!(s.settled, 4);
        assert!(s.buckets >= 2);
        assert!(s.light_relaxations + s.heavy_relaxations > 0);
    }

    #[test]
    fn unit_weights_match_unweighted_frontier() {
        let g = crate::generators::mesh(9, 7);
        let edges: Vec<(NodeId, NodeId, u64)> = g.edges().map(|(u, v)| (u, v, 1)).collect();
        let wg = WeightedGraph::from_edges(g.num_nodes(), &edges);
        let sources = [3u32, 40, 17];
        let parts = multi_source_dijkstra(&wg, &sources, 1);
        let (bfs, owner) =
            crate::frontier::multi_source_bfs(&g, &sources, crate::FrontierStrategy::TopDown);
        for (v, &bfs_owner) in owner.iter().enumerate() {
            assert_eq!(parts.owner[v], bfs_owner, "owner diverged at {v}");
            let d = bfs.dist[v];
            if d == crate::INFINITE_DIST {
                assert_eq!(parts.weighted_dist[v], INFINITE_WEIGHT);
            } else {
                assert_eq!(parts.weighted_dist[v], d as u64);
                assert_eq!(parts.hops[v], d);
            }
        }
    }

    #[test]
    fn resolve_delta_prefers_request() {
        let g = diamond();
        assert_eq!(resolve_delta(&g, Some(9)), 9);
        // auto: mean of weights {1,1,5,1,1} both directions = 9/5 -> 1.
        assert_eq!(auto_delta(&g), 1);
        let empty = WeightedGraph::from_edges(3, &[]);
        assert_eq!(auto_delta(&empty), 1);
    }

    #[test]
    fn pack_claim_orders_lexicographically() {
        assert!(pack_claim(1, 9, 9) < pack_claim(2, 0, 0));
        assert!(pack_claim(5, 1, 9) < pack_claim(5, 2, 0));
        assert!(pack_claim(5, 1, 1) < pack_claim(5, 1, 2));
        assert_eq!(unpack_claim(pack_claim(7, 3, 2)), (7, 3, 2));
        assert!(pack_claim(u64::MAX - 1, NodeId::MAX, u32::MAX) < NO_CLAIM);
    }
}
