//! Edge-list → CSR construction with cleaning (symmetrization, dedup,
//! self-loop removal).

use crate::combine::{self, pack};
use crate::csr::CsrGraph;
use crate::NodeId;

/// Accumulates an edge list and materializes a clean [`CsrGraph`].
///
/// The builder accepts arbitrary (possibly duplicated, possibly one-sided)
/// edge pairs; `build` symmetrizes, drops self-loops and parallel edges, and
/// sorts adjacency lists. Construction rides the [`crate::combine`] kernel:
/// a parallel two-pass scatter symmetrizes into one flat buffer pre-sized to
/// exactly two arcs per surviving edge, and the kernel's bucketed sort +
/// dedup writes the CSR arrays directly — byte-identical to the seed-era
/// sort-and-`dedup` build (retained as [`crate::naive::build_csr`]) at any
/// thread count.
///
/// ```
/// use pardec_graph::GraphBuilder;
/// let g = GraphBuilder::new(4)
///     .add_edges([(0, 1), (1, 0), (1, 1), (2, 3), (2, 3)])
///     .build();
/// assert_eq!(g.num_edges(), 2); // {0,1} and {2,3}
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` nodes labelled `0..n`.
    pub fn new(n: usize) -> Self {
        assert!(
            n < NodeId::MAX as usize,
            "node count {n} exceeds NodeId range"
        );
        GraphBuilder {
            num_nodes: n,
            edges: Vec::new(),
        }
    }

    /// Pre-reserves capacity for `m` additional edges.
    ///
    /// Only the raw edge list is reserved here (one record per `add_edge`
    /// call); `build` sizes its own arc buffer at exactly two arcs per
    /// non-loop edge, so no reallocation happens mid-build either way.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(m);
        b
    }

    /// Number of nodes the final graph will have.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Adds one undirected edge. Self-loops and duplicates are tolerated and
    /// removed at build time.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        assert!(
            (u as usize) < self.num_nodes && (v as usize) < self.num_nodes,
            "edge ({u}, {v}) out of range for n = {}",
            self.num_nodes
        );
        self.edges.push((u, v));
        self
    }

    /// Adds a batch of edges (chainable, by-value variant for literals).
    pub fn add_edges(mut self, it: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        for (u, v) in it {
            self.add_edge(u, v);
        }
        self
    }

    /// Adds a batch of edges through a mutable reference.
    pub fn extend_edges(&mut self, it: impl IntoIterator<Item = (NodeId, NodeId)>) -> &mut Self {
        for (u, v) in it {
            self.add_edge(u, v);
        }
        self
    }

    /// Current number of raw (uncleaned) edge records.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Materializes the cleaned CSR graph, consuming the builder.
    pub fn build(self) -> CsrGraph {
        let n = self.num_nodes;
        let edges = self.edges;
        // Symmetrize via the kernel's two-pass count + scatter: the arc
        // buffer is allocated once at its exact final size (two arcs per
        // surviving edge). Builder input is typically duplicate-light, so
        // the direct 2m dedup beats the half-arc combine-then-mirror route
        // the quotient paths take (which pays off only when the combine
        // collapses many parallel records).
        let arcs = combine::par_emit(
            edges.len(),
            |i| {
                let (u, v) = edges[i];
                if u == v {
                    0
                } else {
                    2
                }
            },
            |i, emit| {
                let (u, v) = edges[i];
                if u != v {
                    emit.push(pack(u, v));
                    emit.push(pack(v, u));
                }
            },
        );
        combine::csr_from_arcs(n, arcs).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_symmetrize() {
        let g = GraphBuilder::new(3)
            .add_edges([(0, 1), (1, 0), (0, 1), (1, 2)])
            .build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn self_loops_removed() {
        let g = GraphBuilder::new(2)
            .add_edges([(0, 0), (1, 1), (0, 1)])
            .build();
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn isolated_nodes_preserved() {
        let g = GraphBuilder::new(10).add_edges([(0, 9)]).build();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.degree(5), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn build_empty() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn build_matches_naive_reference() {
        // Dense duplicate-heavy soup including self-loops, large enough to
        // exercise the parallel symmetrize path.
        let edges: Vec<(NodeId, NodeId)> = (0..20_000u32)
            .map(|i| ((i * 7) % 300, (i * 13) % 300))
            .collect();
        let g = GraphBuilder::new(300).add_edges(edges.clone()).build();
        assert_eq!(g, crate::naive::build_csr(300, &edges));
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn adjacency_sorted() {
        let g = GraphBuilder::new(5)
            .add_edges([(2, 4), (2, 0), (2, 3), (2, 1)])
            .build();
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
    }
}
