//! Connected components and largest-component extraction.

use crate::{CsrGraph, GraphBuilder, NodeId, INVALID_NODE};

/// Labels every node with a component id in `0..count` (ids assigned in
/// order of discovery by increasing seed node). Returns `(count, labels)`.
pub fn connected_components(g: &CsrGraph) -> (usize, Vec<NodeId>) {
    let n = g.num_nodes();
    let mut label = vec![INVALID_NODE; n];
    let mut count: NodeId = 0;
    let mut stack: Vec<NodeId> = Vec::new();
    for s in 0..n as NodeId {
        if label[s as usize] != INVALID_NODE {
            continue;
        }
        label[s as usize] = count;
        stack.push(s);
        while let Some(u) = stack.pop() {
            for &v in g.neighbors(u) {
                if label[v as usize] == INVALID_NODE {
                    label[v as usize] = count;
                    stack.push(v);
                }
            }
        }
        count += 1;
    }
    (count as usize, label)
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &CsrGraph) -> bool {
    g.num_nodes() == 0 || connected_components(g).0 == 1
}

/// Extracts the largest connected component as a new graph.
///
/// Returns the component graph and `orig_id[new] = old` mapping back into
/// `g`. Ties between equally large components break toward the smaller
/// component label (discovery order).
pub fn largest_component(g: &CsrGraph) -> (CsrGraph, Vec<NodeId>) {
    let n = g.num_nodes();
    if n == 0 {
        return (CsrGraph::empty(0), Vec::new());
    }
    let (count, labels) = connected_components(g);
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let best = (0..count)
        .max_by_key(|&c| (sizes[c], std::cmp::Reverse(c)))
        .unwrap() as NodeId;

    let mut new_id = vec![INVALID_NODE; n];
    let mut orig_id = Vec::with_capacity(sizes[best as usize]);
    for u in 0..n {
        if labels[u] == best {
            new_id[u] = orig_id.len() as NodeId;
            orig_id.push(u as NodeId);
        }
    }
    let mut b = GraphBuilder::new(orig_id.len());
    for (u, v) in g.edges() {
        if labels[u as usize] == best && labels[v as usize] == best {
            b.add_edge(new_id[u as usize], new_id[v as usize]);
        }
    }
    (b.build(), orig_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn single_component() {
        let g = generators::cycle(10);
        let (count, labels) = connected_components(&g);
        assert_eq!(count, 1);
        assert!(labels.iter().all(|&l| l == 0));
        assert!(is_connected(&g));
    }

    #[test]
    fn multiple_components() {
        let g = generators::disjoint_union(&generators::path(3), &generators::cycle(4));
        let (count, labels) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[6]);
        assert_ne!(labels[0], labels[3]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn isolated_nodes_are_components() {
        let g = CsrGraph::empty(4);
        let (count, _) = connected_components(&g);
        assert_eq!(count, 4);
    }

    #[test]
    fn largest_component_extraction() {
        let g = generators::disjoint_union(&generators::path(3), &generators::cycle(5));
        let (lc, orig) = largest_component(&g);
        assert_eq!(lc.num_nodes(), 5);
        assert_eq!(lc.num_edges(), 5);
        assert_eq!(orig, vec![3, 4, 5, 6, 7]);
        assert!(is_connected(&lc));
    }

    #[test]
    fn largest_component_of_empty() {
        let (lc, orig) = largest_component(&CsrGraph::empty(0));
        assert_eq!(lc.num_nodes(), 0);
        assert!(orig.is_empty());
    }

    #[test]
    fn largest_component_all_isolated() {
        let (lc, orig) = largest_component(&CsrGraph::empty(3));
        assert_eq!(lc.num_nodes(), 1);
        assert_eq!(orig, vec![0]);
    }
}
