//! Exact diameter computation — the ground-truth `Δ` column of Tables 1, 3
//! and 4.
//!
//! Three routines, in increasing sophistication:
//! * [`apsp_diameter`] — BFS from every node (parallelized), `O(n(n + m))`;
//!   fine for quotient graphs and test fixtures;
//! * [`double_sweep`] — classic 2-sweep lower bound, also yields a good iFUB
//!   root (the midpoint of the sweep path);
//! * [`ifub`] — the iFUB algorithm (Crescenzi et al.), exact on connected
//!   graphs, usually terminating after a handful of BFS runs on road-like
//!   and mesh-like topologies.

use crate::frontier::{single_source_bfs, FrontierStrategy};
use crate::traversal::{bfs, bfs_with_parents};
use crate::{components, CsrGraph, NodeId};
use rayon::prelude::*;

/// Exact diameter by all-pairs BFS, parallelized over sources.
///
/// For disconnected graphs this returns the largest *finite* eccentricity,
/// i.e. the maximum diameter over connected components.
pub fn apsp_diameter(g: &CsrGraph) -> u32 {
    if g.num_nodes() == 0 {
        return 0;
    }
    (0..g.num_nodes() as NodeId)
        .into_par_iter()
        .map(|u| bfs(g, u).levels)
        .max()
        .unwrap_or(0)
}

/// Result of a double BFS sweep.
#[derive(Clone, Copy, Debug)]
pub struct DoubleSweep {
    /// Lower bound on the diameter: `dist(far_a, far_b)`.
    pub lower_bound: u32,
    /// Endpoint found by the first sweep.
    pub far_a: NodeId,
    /// Endpoint found by the second sweep (realizes `lower_bound` from `far_a`).
    pub far_b: NodeId,
    /// Midpoint of the `far_a → far_b` shortest path — an empirically
    /// excellent root for [`ifub`].
    pub midpoint: NodeId,
}

/// Double-sweep diameter lower bound starting from `start`.
///
/// # Panics
/// Panics on the empty graph.
pub fn double_sweep(g: &CsrGraph, start: NodeId) -> DoubleSweep {
    assert!(g.num_nodes() > 0, "double sweep on empty graph");
    // A whole-graph frontier sweep: the one place in this module where the
    // direction-optimizing engine pays off (the second sweep needs parent
    // pointers and stays on the sequential routine).
    let first = single_source_bfs(g, start, FrontierStrategy::default_from_env());
    let a = first.farthest().unwrap_or(start);
    let (second, parent) = bfs_with_parents(g, a);
    let b = second.farthest().unwrap_or(a);
    // Walk halfway back along the shortest path b -> a.
    let half = second.dist[b as usize] / 2;
    let mut mid = b;
    for _ in 0..half {
        mid = parent[mid as usize];
    }
    DoubleSweep {
        lower_bound: second.dist[b as usize],
        far_a: a,
        far_b: b,
        midpoint: mid,
    }
}

/// Exact diameter of a **connected** graph via iFUB.
///
/// Starting from the double-sweep midpoint `r`, nodes are processed fringe
/// by fringe in order of decreasing BFS level `i`; eccentricities within a
/// fringe are computed in parallel. The loop stops as soon as the running
/// lower bound reaches `2·i`: any remaining pair lies within distance `2·i`
/// of each other through `r`, so the bound is tight.
///
/// Returns the diameter together with the number of full BFS executions
/// spent (a useful cost metric; `n` would mean APSP-equivalent work).
///
/// # Panics
/// Panics if the graph is empty or disconnected.
pub fn ifub(g: &CsrGraph, start: NodeId) -> (u32, usize) {
    assert!(g.num_nodes() > 0, "ifub on empty graph");
    let sweep = double_sweep(g, start);
    let root = sweep.midpoint;
    let root_bfs = single_source_bfs(g, root, FrontierStrategy::default_from_env());
    assert!(
        root_bfs.visited == g.num_nodes(),
        "ifub requires a connected graph"
    );
    let ecc_r = root_bfs.levels;
    let mut fringes: Vec<Vec<NodeId>> = vec![Vec::new(); ecc_r as usize + 1];
    for (v, &d) in root_bfs.dist.iter().enumerate() {
        fringes[d as usize].push(v as NodeId);
    }
    let mut lb = sweep.lower_bound.max(ecc_r);
    let mut bfs_count = 3; // two sweeps + root BFS
    let mut i = ecc_r;
    while i > 0 && lb < 2 * i {
        let fringe_max = fringes[i as usize]
            .par_iter()
            .map(|&v| bfs(g, v).levels)
            .max()
            .unwrap_or(0);
        bfs_count += fringes[i as usize].len();
        lb = lb.max(fringe_max);
        i -= 1;
    }
    (lb, bfs_count)
}

/// Exact diameter of an arbitrary graph: the maximum over connected
/// components (0 for the empty graph). Small components fall back to APSP;
/// large ones use iFUB.
pub fn exact_diameter(g: &CsrGraph) -> u32 {
    if g.num_nodes() == 0 {
        return 0;
    }
    if components::is_connected(g) {
        return if g.num_nodes() <= 1024 {
            apsp_diameter(g)
        } else {
            ifub(g, 0).0
        };
    }
    let (count, labels) = components::connected_components(g);
    let mut best = 0;
    for c in 0..count as NodeId {
        let nodes: Vec<NodeId> = (0..g.num_nodes() as NodeId)
            .filter(|&v| labels[v as usize] == c)
            .collect();
        let (sub, _) = crate::contract::induced_subgraph(g, &nodes);
        best = best.max(exact_diameter(&sub));
    }
    best
}

/// Sampled eccentricity spectrum: eccentricities of `samples` evenly spaced
/// nodes (diagnostics for EXPERIMENTS.md).
pub fn eccentricity_sample(g: &CsrGraph, samples: usize) -> Vec<u32> {
    let n = g.num_nodes();
    if n == 0 || samples == 0 {
        return Vec::new();
    }
    let step = (n / samples.min(n)).max(1);
    (0..n)
        .step_by(step)
        .take(samples)
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|u| bfs(g, u as NodeId).levels)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn apsp_on_known_shapes() {
        assert_eq!(apsp_diameter(&generators::path(10)), 9);
        assert_eq!(apsp_diameter(&generators::cycle(10)), 5);
        assert_eq!(apsp_diameter(&generators::star(8)), 2);
        assert_eq!(apsp_diameter(&generators::complete(6)), 1);
        assert_eq!(apsp_diameter(&generators::mesh(7, 9)), 6 + 8);
    }

    #[test]
    fn apsp_empty_and_singleton() {
        assert_eq!(apsp_diameter(&CsrGraph::empty(0)), 0);
        assert_eq!(apsp_diameter(&CsrGraph::empty(1)), 0);
    }

    #[test]
    fn double_sweep_exact_on_paths_and_trees() {
        let g = generators::path(30);
        let s = double_sweep(&g, 13);
        assert_eq!(s.lower_bound, 29);
        // Midpoint of a path is its centre.
        assert!(
            (s.midpoint as i64 - 14).abs() <= 1,
            "midpoint {}",
            s.midpoint
        );
    }

    #[test]
    fn ifub_matches_apsp_on_mesh() {
        let g = generators::mesh(12, 17);
        let (d, bfs_used) = ifub(&g, 0);
        assert_eq!(d, apsp_diameter(&g));
        assert!(bfs_used < g.num_nodes(), "iFUB degenerated to APSP");
    }

    #[test]
    fn ifub_matches_apsp_on_random_graphs() {
        for seed in 0..5 {
            let g = generators::gnm(300, 500, seed);
            let (lc, _) = crate::components::largest_component(&g);
            let (d, _) = ifub(&lc, 0);
            assert_eq!(d, apsp_diameter(&lc), "seed {seed}");
        }
    }

    #[test]
    fn ifub_on_lollipop() {
        let g = generators::lollipop(300, 4, 120, 7);
        let (d, _) = ifub(&g, 0);
        assert_eq!(d, apsp_diameter(&g));
        assert!(d >= 120);
    }

    #[test]
    fn exact_diameter_disconnected() {
        let g = generators::disjoint_union(&generators::path(7), &generators::cycle(12));
        assert_eq!(exact_diameter(&g), 6);
        let g = generators::disjoint_union(&generators::path(20), &generators::cycle(6));
        assert_eq!(exact_diameter(&g), 19);
    }

    #[test]
    fn eccentricity_sample_bounds() {
        let g = generators::mesh(10, 10);
        let eccs = eccentricity_sample(&g, 8);
        assert!(!eccs.is_empty());
        let d = apsp_diameter(&g);
        for e in eccs {
            assert!(e <= d && e >= d / 2); // radius >= diameter/2
        }
    }
}
