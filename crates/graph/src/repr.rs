//! Runtime backend selection: plain vs. compressed adjacency.
//!
//! [`Backend`] is the user-facing knob (`--backend` flag, `PARDEC_BACKEND`
//! environment variable); [`GraphRepr`] is the two-variant carrier the CLI
//! and sessions hold so one binary serves both representations. Every
//! engine consumes it through [`NeighborAccess`], and because both backends
//! yield identical sorted neighbor sequences, **outputs never depend on the
//! backend** — only memory and wall-clock do (the same contract as
//! `PARDEC_FRONTIER` and `PARDEC_DELTA`).

use crate::access::NeighborAccess;
use crate::ccsr::{self, CcsrGraph};
use crate::{CsrGraph, NodeId};

/// Environment variable consulted by [`Backend::from_env`] (the `--backend`
/// flag of the CLI takes precedence).
pub const BACKEND_ENV: &str = "PARDEC_BACKEND";

/// Adjacency storage backend.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// Raw CSR: `usize` offsets + `u32` targets. Fastest iteration.
    #[default]
    Plain,
    /// Gap-coded varint CSR ([`CcsrGraph`]): a fraction of the bytes, a
    /// varint decode per neighbor.
    Compressed,
}

impl Backend {
    /// Backend selected by `PARDEC_BACKEND`, or `None` when the variable is
    /// unset or empty (a CI matrix leg without a backend exports the empty
    /// string, same as `PARDEC_DELTA`).
    ///
    /// # Panics
    /// Panics on an unrecognized value — a misspelled CI matrix entry must
    /// fail loudly rather than silently fall back to the default.
    pub fn from_env() -> Option<Backend> {
        let raw = std::env::var(BACKEND_ENV).ok()?;
        if raw.trim().is_empty() {
            return None;
        }
        match raw.trim().parse() {
            Ok(b) => Some(b),
            Err(e) => panic!("{BACKEND_ENV}: {e}"),
        }
    }

    /// The ambient backend: `requested` when given, else `PARDEC_BACKEND`,
    /// else [`Backend::Plain`]. Outputs never depend on the choice.
    pub fn resolve(requested: Option<Backend>) -> Backend {
        requested.or_else(Backend::from_env).unwrap_or_default()
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "plain" => Ok(Backend::Plain),
            "compressed" => Ok(Backend::Compressed),
            other => Err(format!(
                "unknown backend {other:?} (expected plain | compressed)"
            )),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Plain => "plain",
            Backend::Compressed => "compressed",
        })
    }
}

/// A graph held under either backend. Engines run on it directly (it
/// implements [`NeighborAccess`]); paths that need raw slices (spanner,
/// connected components) go through [`GraphRepr::to_csr`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphRepr {
    /// Raw CSR storage.
    Plain(CsrGraph),
    /// Gap-coded varint storage.
    Compressed(CcsrGraph),
}

impl GraphRepr {
    /// Wraps `g` under the requested backend (compressing if asked).
    pub fn from_csr(g: CsrGraph, backend: Backend) -> Self {
        match backend {
            Backend::Plain => GraphRepr::Plain(g),
            Backend::Compressed => GraphRepr::Compressed(CcsrGraph::from_csr(&g)),
        }
    }

    /// Which backend this graph is stored under.
    pub fn backend(&self) -> Backend {
        match self {
            GraphRepr::Plain(_) => Backend::Plain,
            GraphRepr::Compressed(_) => Backend::Compressed,
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        match self {
            GraphRepr::Plain(g) => g.num_nodes(),
            GraphRepr::Compressed(g) => g.num_nodes(),
        }
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        match self {
            GraphRepr::Plain(g) => g.num_edges(),
            GraphRepr::Compressed(g) => g.num_edges(),
        }
    }

    /// Number of directed arcs stored (`2m`).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        match self {
            GraphRepr::Plain(g) => g.num_arcs(),
            GraphRepr::Compressed(g) => g.num_arcs(),
        }
    }

    /// Resident bytes of the adjacency structure under this backend.
    pub fn heap_bytes(&self) -> usize {
        match self {
            GraphRepr::Plain(g) => {
                std::mem::size_of::<usize>() * (g.num_nodes() + 1) + 4 * g.num_arcs()
            }
            GraphRepr::Compressed(g) => g.heap_bytes(),
        }
    }

    /// The plain CSR view: borrowed when already plain, decompressed
    /// otherwise. For slice-consuming paths (spanner, components, plain
    /// serialization).
    pub fn to_csr(&self) -> std::borrow::Cow<'_, CsrGraph> {
        match self {
            GraphRepr::Plain(g) => std::borrow::Cow::Borrowed(g),
            GraphRepr::Compressed(g) => std::borrow::Cow::Owned(g.to_csr()),
        }
    }

    /// The plain graph when stored plain.
    pub fn as_plain(&self) -> Option<&CsrGraph> {
        match self {
            GraphRepr::Plain(g) => Some(g),
            GraphRepr::Compressed(_) => None,
        }
    }

    /// The compressed graph when stored compressed.
    pub fn as_compressed(&self) -> Option<&CcsrGraph> {
        match self {
            GraphRepr::Plain(_) => None,
            GraphRepr::Compressed(g) => Some(g),
        }
    }
}

impl NeighborAccess for GraphRepr {
    type Neighbors<'a> = ReprNeighbors<'a>;

    #[inline]
    fn num_nodes(&self) -> usize {
        GraphRepr::num_nodes(self)
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        GraphRepr::num_arcs(self)
    }

    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        match self {
            GraphRepr::Plain(g) => g.degree(u),
            GraphRepr::Compressed(g) => g.degree(u),
        }
    }

    #[inline]
    fn neighbors_iter(&self, u: NodeId) -> Self::Neighbors<'_> {
        match self {
            GraphRepr::Plain(g) => ReprNeighbors::Plain(g.neighbors(u).iter().copied()),
            GraphRepr::Compressed(g) => ReprNeighbors::Compressed(g.neighbors_iter(u)),
        }
    }
}

/// Neighbor iterator of [`GraphRepr`] — one branch per `next()`.
pub enum ReprNeighbors<'a> {
    /// Slice walk of the plain backend.
    Plain(std::iter::Copied<std::slice::Iter<'a, NodeId>>),
    /// Varint decode of the compressed backend.
    Compressed(ccsr::Neighbors<'a>),
}

impl Iterator for ReprNeighbors<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        match self {
            ReprNeighbors::Plain(it) => it.next(),
            ReprNeighbors::Compressed(it) => it.next(),
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            ReprNeighbors::Plain(it) => it.size_hint(),
            ReprNeighbors::Compressed(it) => it.size_hint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn backend_parse_and_display() {
        assert_eq!("plain".parse::<Backend>(), Ok(Backend::Plain));
        assert_eq!("compressed".parse::<Backend>(), Ok(Backend::Compressed));
        assert!("zstd".parse::<Backend>().is_err());
        assert_eq!(Backend::Plain.to_string(), "plain");
        assert_eq!(Backend::Compressed.to_string(), "compressed");
        assert_eq!(
            Backend::resolve(Some(Backend::Compressed)),
            Backend::Compressed
        );
    }

    #[test]
    fn repr_serves_both_backends_identically() {
        let g = generators::preferential_attachment(300, 3, 5);
        let plain = GraphRepr::from_csr(g.clone(), Backend::Plain);
        let comp = GraphRepr::from_csr(g.clone(), Backend::Compressed);
        assert_eq!(plain.num_nodes(), comp.num_nodes());
        assert_eq!(plain.num_arcs(), comp.num_arcs());
        for u in 0..g.num_nodes() as NodeId {
            let a: Vec<NodeId> = plain.neighbors_iter(u).collect();
            let b: Vec<NodeId> = comp.neighbors_iter(u).collect();
            assert_eq!(a, b, "diverged at {u}");
            assert_eq!(NeighborAccess::degree(&comp, u), g.degree(u));
        }
        assert!(comp.heap_bytes() < plain.heap_bytes());
        assert_eq!(comp.to_csr().as_ref(), &g);
        assert!(plain.as_plain().is_some() && comp.as_compressed().is_some());
    }
}
