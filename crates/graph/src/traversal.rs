//! Breadth-first traversals: sequential, level-synchronous parallel, and
//! multi-source with per-source ownership.
//!
//! The multi-source variant is the primitive behind disjoint cluster growth
//! (§3 of the paper): every source claims the nodes it reaches first, ties
//! broken deterministically by smaller owner id in the sequential routine and
//! by atomic first-writer-wins in the parallel one (the paper allows
//! arbitrary tie-breaking).

use crate::{CsrGraph, NodeId, INFINITE_DIST, INVALID_NODE};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Result of a (single- or multi-source) BFS.
#[derive(Clone, Debug)]
pub struct BfsResult {
    /// `dist[v]` = hop distance from the nearest source, [`INFINITE_DIST`] if unreachable.
    pub dist: Vec<u32>,
    /// Number of reached nodes (including the sources).
    pub visited: usize,
    /// Number of BFS levels expanded (max finite distance).
    pub levels: u32,
}

impl BfsResult {
    /// Eccentricity of the source set: the maximum finite distance.
    pub fn eccentricity(&self) -> u32 {
        self.levels
    }

    /// The farthest reached node (largest finite distance, smallest id on ties).
    pub fn farthest(&self) -> Option<NodeId> {
        let mut best: Option<(u32, NodeId)> = None;
        for (v, &d) in self.dist.iter().enumerate() {
            if d != INFINITE_DIST {
                match best {
                    Some((bd, _)) if bd >= d => {}
                    _ => best = Some((d, v as NodeId)),
                }
            }
        }
        best.map(|(_, v)| v)
    }
}

/// Sequential BFS from a single source.
pub fn bfs(g: &CsrGraph, src: NodeId) -> BfsResult {
    bfs_multi(g, std::slice::from_ref(&src)).0
}

/// Sequential BFS that also records parent pointers (for path extraction,
/// e.g. the double-sweep midpoint used by iFUB).
pub fn bfs_with_parents(g: &CsrGraph, src: NodeId) -> (BfsResult, Vec<NodeId>) {
    let n = g.num_nodes();
    let mut dist = vec![INFINITE_DIST; n];
    let mut parent = vec![INVALID_NODE; n];
    let mut frontier = vec![src];
    dist[src as usize] = 0;
    let mut visited = 1usize;
    let mut level = 0u32;
    let mut next = Vec::new();
    while !frontier.is_empty() {
        next.clear();
        for &u in &frontier {
            for &v in g.neighbors(u) {
                if dist[v as usize] == INFINITE_DIST {
                    dist[v as usize] = level + 1;
                    parent[v as usize] = u;
                    next.push(v);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        level += 1;
        visited += next.len();
        std::mem::swap(&mut frontier, &mut next);
    }
    (
        BfsResult {
            dist,
            visited,
            levels: level,
        },
        parent,
    )
}

/// Sequential multi-source BFS with ownership: every node reached is claimed
/// by the source whose wave arrives first (smaller source index on ties).
///
/// Returns the BFS result together with `owner[v]` = index into `sources` of
/// the claiming source ([`INVALID_NODE`] if unreachable).
pub fn bfs_multi(g: &CsrGraph, sources: &[NodeId]) -> (BfsResult, Vec<NodeId>) {
    let n = g.num_nodes();
    let mut dist = vec![INFINITE_DIST; n];
    let mut owner = vec![INVALID_NODE; n];
    let mut frontier: Vec<NodeId> = Vec::with_capacity(sources.len());
    for (i, &s) in sources.iter().enumerate() {
        // A node listed twice keeps its first owner.
        if dist[s as usize] == INFINITE_DIST {
            dist[s as usize] = 0;
            owner[s as usize] = i as NodeId;
            frontier.push(s);
        }
    }
    let mut visited = frontier.len();
    let mut level = 0u32;
    let mut next = Vec::new();
    while !frontier.is_empty() {
        next.clear();
        for &u in &frontier {
            let o = owner[u as usize];
            for &v in g.neighbors(u) {
                if dist[v as usize] == INFINITE_DIST {
                    dist[v as usize] = level + 1;
                    owner[v as usize] = o;
                    next.push(v);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        level += 1;
        visited += next.len();
        std::mem::swap(&mut frontier, &mut next);
    }
    (
        BfsResult {
            dist,
            visited,
            levels: level,
        },
        owner,
    )
}

/// Level-synchronous parallel BFS from a single source.
///
/// Each level expands the whole frontier in parallel; a node is claimed with
/// a compare-and-swap on its distance slot, so every node is pushed to the
/// next frontier exactly once. Distances are identical to sequential BFS.
///
/// Under a multi-threaded pool, *which* expansion wins the CAS — and hence a
/// node's position within the intermediate frontier vector — can vary
/// between runs, but every claim in a level stores the same distance, so
/// `dist`, `visited`, and `levels` are deterministic at any thread count.
pub fn bfs_parallel(g: &CsrGraph, src: NodeId) -> BfsResult {
    let n = g.num_nodes();
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(INFINITE_DIST)).collect();
    dist[src as usize].store(0, Ordering::Relaxed);
    let mut frontier = vec![src];
    let mut visited = 1usize;
    let mut level = 0u32;
    while !frontier.is_empty() {
        let next_level = level + 1;
        let next: Vec<NodeId> = frontier
            .par_iter()
            .fold(Vec::new, |mut acc, &u| {
                for &v in g.neighbors(u) {
                    if dist[v as usize]
                        .compare_exchange(
                            INFINITE_DIST,
                            next_level,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                    {
                        acc.push(v);
                    }
                }
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        if next.is_empty() {
            break;
        }
        level = next_level;
        visited += next.len();
        frontier = next;
    }
    let dist: Vec<u32> = dist.into_iter().map(AtomicU32::into_inner).collect();
    BfsResult {
        dist,
        visited,
        levels: level,
    }
}

/// Eccentricity of `u`: the maximum BFS distance to any reachable node.
pub fn eccentricity(g: &CsrGraph, u: NodeId) -> u32 {
    bfs(g, u).levels
}

/// Direction-optimizing parallel BFS (Beamer et al.): switches from
/// top-down frontier expansion to bottom-up "pull" sweeps when the frontier
/// covers a large fraction of the remaining edges — the standard HPC
/// optimization for low-diameter graphs, where the middle levels touch most
/// of the graph. Produces distances identical to [`bfs`].
pub fn bfs_direction_optimizing(g: &CsrGraph, src: NodeId) -> BfsResult {
    let n = g.num_nodes();
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(INFINITE_DIST)).collect();
    dist[src as usize].store(0, Ordering::Relaxed);
    let mut frontier = vec![src];
    let mut visited = 1usize;
    let mut level = 0u32;
    // Heuristic switch: go bottom-up while the frontier's out-degree exceeds
    // 1/alpha of the unexplored edges.
    const ALPHA: usize = 14;
    while !frontier.is_empty() {
        let next_level = level + 1;
        let frontier_degree: usize = frontier.iter().map(|&u| g.degree(u)).sum();
        let unexplored = g.num_arcs().saturating_sub(2 * visited);
        let bottom_up = frontier_degree * ALPHA > unexplored.max(1);
        let next: Vec<NodeId> = if bottom_up {
            // Pull: every unvisited vertex scans its neighbours for a parent
            // in the current frontier (dist == level).
            (0..n as NodeId)
                .into_par_iter()
                .filter(|&v| {
                    dist[v as usize].load(Ordering::Relaxed) == INFINITE_DIST
                        && g.neighbors(v)
                            .iter()
                            .any(|&u| dist[u as usize].load(Ordering::Relaxed) == level)
                })
                .map(|v| {
                    dist[v as usize].store(next_level, Ordering::Relaxed);
                    v
                })
                .collect()
        } else {
            frontier
                .par_iter()
                .fold(Vec::new, |mut acc, &u| {
                    for &v in g.neighbors(u) {
                        if dist[v as usize]
                            .compare_exchange(
                                INFINITE_DIST,
                                next_level,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                        {
                            acc.push(v);
                        }
                    }
                    acc
                })
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                })
        };
        if next.is_empty() {
            break;
        }
        level = next_level;
        visited += next.len();
        frontier = next;
    }
    let dist: Vec<u32> = dist.into_iter().map(AtomicU32::into_inner).collect();
    BfsResult {
        dist,
        visited,
        levels: level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_path() {
        let g = generators::path(5);
        let r = bfs(&g, 0);
        assert_eq!(r.dist, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.visited, 5);
        assert_eq!(r.levels, 4);
        assert_eq!(r.farthest(), Some(4));
    }

    #[test]
    fn bfs_unreachable() {
        let g = crate::GraphBuilder::new(4).add_edges([(0, 1)]).build();
        let r = bfs(&g, 0);
        assert_eq!(r.dist[2], INFINITE_DIST);
        assert_eq!(r.visited, 2);
    }

    #[test]
    fn bfs_parallel_matches_sequential() {
        let g = generators::mesh(17, 23);
        let seq = bfs(&g, 5);
        let par = bfs_parallel(&g, 5);
        assert_eq!(seq.dist, par.dist);
        assert_eq!(seq.visited, par.visited);
        assert_eq!(seq.levels, par.levels);
    }

    #[test]
    fn multi_source_ownership_tie_break() {
        // path 0-1-2-3-4, sources at both ends: node 2 is equidistant and
        // must go to the first-listed source.
        let g = generators::path(5);
        let (r, owner) = bfs_multi(&g, &[0, 4]);
        assert_eq!(r.dist, vec![0, 1, 2, 1, 0]);
        assert_eq!(owner, vec![0, 0, 0, 1, 1]);
    }

    #[test]
    fn multi_source_duplicate_source() {
        let g = generators::path(3);
        let (r, owner) = bfs_multi(&g, &[1, 1]);
        assert_eq!(r.dist, vec![1, 0, 1]);
        assert_eq!(owner, vec![0, 0, 0]);
    }

    #[test]
    fn parents_trace_shortest_path() {
        let g = generators::mesh(4, 4);
        let (r, parent) = bfs_with_parents(&g, 0);
        // Walk back from the far corner; path length must equal the distance.
        let mut v = 15u32;
        let mut hops = 0;
        while v != 0 {
            v = parent[v as usize];
            hops += 1;
            assert!(hops <= 100, "cycle in parent pointers");
        }
        assert_eq!(hops, r.dist[15]);
    }

    #[test]
    fn direction_optimizing_matches_plain_bfs() {
        for (name, g) in [
            ("mesh", generators::mesh(13, 19)),
            ("social", generators::preferential_attachment(2000, 6, 3)),
            ("star", generators::star(100)),
            ("path", generators::path(60)),
        ] {
            let a = bfs(&g, 0);
            let b = bfs_direction_optimizing(&g, 0);
            assert_eq!(a.dist, b.dist, "{name}");
            assert_eq!(a.visited, b.visited, "{name}");
        }
    }

    #[test]
    fn direction_optimizing_disconnected() {
        let g = crate::GraphBuilder::new(5)
            .add_edges([(0, 1), (2, 3)])
            .build();
        let r = bfs_direction_optimizing(&g, 0);
        assert_eq!(r.dist[1], 1);
        assert_eq!(r.dist[2], INFINITE_DIST);
        assert_eq!(r.visited, 2);
    }

    #[test]
    fn eccentricity_of_cycle() {
        let g = generators::cycle(10);
        assert_eq!(eccentricity(&g, 0), 5);
        let g = generators::cycle(11);
        assert_eq!(eccentricity(&g, 3), 5);
    }
}
