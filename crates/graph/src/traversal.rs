//! Breadth-first traversals: sequential, level-synchronous parallel, and
//! multi-source with per-source ownership.
//!
//! The multi-source variant is the primitive behind disjoint cluster growth
//! (§3 of the paper): every source claims the nodes it reaches first, ties
//! broken deterministically by the smallest owner id (the paper allows
//! arbitrary tie-breaking). Everything except the plain sequential [`bfs`]
//! is backed by the [`crate::frontier`] engine; [`bfs`] itself stays a
//! direct queue-based implementation on purpose — it is the simple,
//! independent reference that the engine's property tests
//! (`tests/proptests_frontier.rs`) compare against.

use crate::access::NeighborAccess;
use crate::frontier::{self, FrontierStrategy};
use crate::{NodeId, INFINITE_DIST, INVALID_NODE};

/// Result of a (single- or multi-source) BFS.
#[derive(Clone, Debug)]
pub struct BfsResult {
    /// `dist[v]` = hop distance from the nearest source, [`INFINITE_DIST`] if unreachable.
    pub dist: Vec<u32>,
    /// Number of reached nodes (including the sources).
    pub visited: usize,
    /// Number of BFS levels expanded (max finite distance).
    pub levels: u32,
}

impl BfsResult {
    /// Eccentricity of the source set: the maximum finite distance.
    pub fn eccentricity(&self) -> u32 {
        self.levels
    }

    /// The farthest reached node (largest finite distance, smallest id on ties).
    pub fn farthest(&self) -> Option<NodeId> {
        let mut best: Option<(u32, NodeId)> = None;
        for (v, &d) in self.dist.iter().enumerate() {
            if d != INFINITE_DIST {
                match best {
                    Some((bd, _)) if bd >= d => {}
                    _ => best = Some((d, v as NodeId)),
                }
            }
        }
        best.map(|(_, v)| v)
    }
}

/// Sequential BFS from a single source.
///
/// Deliberately *not* routed through the frontier engine: this is the
/// trivially-auditable oracle used to validate the engine, and the inner
/// loop of the outer-parallel routines in [`crate::diameter`] (BFS from
/// every source in parallel), where a nested parallel engine would only add
/// overhead.
pub fn bfs<G: NeighborAccess>(g: &G, src: NodeId) -> BfsResult {
    let n = g.num_nodes();
    let mut dist = vec![INFINITE_DIST; n];
    let mut frontier = vec![src];
    dist[src as usize] = 0;
    let mut visited = 1usize;
    let mut level = 0u32;
    let mut next = Vec::new();
    while !frontier.is_empty() {
        next.clear();
        for &u in &frontier {
            for v in g.neighbors_iter(u) {
                if dist[v as usize] == INFINITE_DIST {
                    dist[v as usize] = level + 1;
                    next.push(v);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        level += 1;
        visited += next.len();
        std::mem::swap(&mut frontier, &mut next);
    }
    BfsResult {
        dist,
        visited,
        levels: level,
    }
}

/// Sequential BFS that also records parent pointers (for path extraction,
/// e.g. the double-sweep midpoint used by iFUB).
pub fn bfs_with_parents<G: NeighborAccess>(g: &G, src: NodeId) -> (BfsResult, Vec<NodeId>) {
    let n = g.num_nodes();
    let mut dist = vec![INFINITE_DIST; n];
    let mut parent = vec![INVALID_NODE; n];
    let mut frontier = vec![src];
    dist[src as usize] = 0;
    let mut visited = 1usize;
    let mut level = 0u32;
    let mut next = Vec::new();
    while !frontier.is_empty() {
        next.clear();
        for &u in &frontier {
            for v in g.neighbors_iter(u) {
                if dist[v as usize] == INFINITE_DIST {
                    dist[v as usize] = level + 1;
                    parent[v as usize] = u;
                    next.push(v);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        level += 1;
        visited += next.len();
        std::mem::swap(&mut frontier, &mut next);
    }
    (
        BfsResult {
            dist,
            visited,
            levels: level,
        },
        parent,
    )
}

/// Multi-source BFS with ownership: every node reached is claimed by the
/// source whose wave arrives first (smaller source index on ties).
///
/// Returns the BFS result together with `owner[v]` = index into `sources` of
/// the claiming source ([`INVALID_NODE`] if unreachable). Delegates to the
/// [`crate::frontier`] engine's top-down strategy; callers wanting the
/// bottom-up or hybrid engine should use
/// [`frontier::multi_source_bfs`] directly — all strategies produce
/// identical output.
pub fn bfs_multi<G: NeighborAccess>(g: &G, sources: &[NodeId]) -> (BfsResult, Vec<NodeId>) {
    frontier::multi_source_bfs(g, sources, FrontierStrategy::TopDown)
}

/// Level-synchronous parallel BFS from a single source.
///
/// Each level expands the whole frontier in parallel through the
/// [`crate::frontier`] engine; a node is claimed with an atomic min-merge on
/// its proposal slot, so distances — and every other observable — are
/// identical to sequential BFS at any thread count.
pub fn bfs_parallel<G: NeighborAccess>(g: &G, src: NodeId) -> BfsResult {
    frontier::single_source_bfs(g, src, FrontierStrategy::TopDown)
}

/// Eccentricity of `u`: the maximum BFS distance to any reachable node.
pub fn eccentricity<G: NeighborAccess>(g: &G, u: NodeId) -> u32 {
    bfs(g, u).levels
}

/// Direction-optimizing parallel BFS (Beamer et al.): switches from
/// top-down frontier expansion to bottom-up "pull" sweeps when the frontier
/// covers a large fraction of the remaining edges — the standard HPC
/// optimization for low-diameter graphs, where the middle levels touch most
/// of the graph. Produces distances identical to [`bfs`]. This is the
/// [`crate::frontier`] engine's hybrid strategy.
pub fn bfs_direction_optimizing<G: NeighborAccess>(g: &G, src: NodeId) -> BfsResult {
    frontier::single_source_bfs(g, src, FrontierStrategy::Hybrid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_path() {
        let g = generators::path(5);
        let r = bfs(&g, 0);
        assert_eq!(r.dist, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.visited, 5);
        assert_eq!(r.levels, 4);
        assert_eq!(r.farthest(), Some(4));
    }

    #[test]
    fn bfs_unreachable() {
        let g = crate::GraphBuilder::new(4).add_edges([(0, 1)]).build();
        let r = bfs(&g, 0);
        assert_eq!(r.dist[2], INFINITE_DIST);
        assert_eq!(r.visited, 2);
    }

    #[test]
    fn bfs_parallel_matches_sequential() {
        let g = generators::mesh(17, 23);
        let seq = bfs(&g, 5);
        let par = bfs_parallel(&g, 5);
        assert_eq!(seq.dist, par.dist);
        assert_eq!(seq.visited, par.visited);
        assert_eq!(seq.levels, par.levels);
    }

    #[test]
    fn multi_source_ownership_tie_break() {
        // path 0-1-2-3-4, sources at both ends: node 2 is equidistant and
        // must go to the first-listed source.
        let g = generators::path(5);
        let (r, owner) = bfs_multi(&g, &[0, 4]);
        assert_eq!(r.dist, vec![0, 1, 2, 1, 0]);
        assert_eq!(owner, vec![0, 0, 0, 1, 1]);
    }

    #[test]
    fn multi_source_duplicate_source() {
        let g = generators::path(3);
        let (r, owner) = bfs_multi(&g, &[1, 1]);
        assert_eq!(r.dist, vec![1, 0, 1]);
        assert_eq!(owner, vec![0, 0, 0]);
    }

    #[test]
    fn multi_source_matches_per_source_minimum() {
        let g = generators::mesh(9, 11);
        let sources = [3u32, 57, 90];
        let (r, owner) = bfs_multi(&g, &sources);
        for (v, (&dv, &ov)) in r.dist.iter().zip(&owner).enumerate() {
            let (best_d, best_i) = sources
                .iter()
                .enumerate()
                .map(|(i, &s)| (bfs(&g, s).dist[v], i as NodeId))
                .min()
                .unwrap();
            assert_eq!(dv, best_d, "node {v}");
            assert_eq!(ov, best_i, "node {v}");
        }
    }

    #[test]
    fn parents_trace_shortest_path() {
        let g = generators::mesh(4, 4);
        let (r, parent) = bfs_with_parents(&g, 0);
        // Walk back from the far corner; path length must equal the distance.
        let mut v = 15u32;
        let mut hops = 0;
        while v != 0 {
            v = parent[v as usize];
            hops += 1;
            assert!(hops <= 100, "cycle in parent pointers");
        }
        assert_eq!(hops, r.dist[15]);
    }

    #[test]
    fn direction_optimizing_matches_plain_bfs() {
        for (name, g) in [
            ("mesh", generators::mesh(13, 19)),
            ("social", generators::preferential_attachment(2000, 6, 3)),
            ("star", generators::star(100)),
            ("path", generators::path(60)),
        ] {
            let a = bfs(&g, 0);
            let b = bfs_direction_optimizing(&g, 0);
            assert_eq!(a.dist, b.dist, "{name}");
            assert_eq!(a.visited, b.visited, "{name}");
        }
    }

    #[test]
    fn direction_optimizing_disconnected() {
        let g = crate::GraphBuilder::new(5)
            .add_edges([(0, 1), (2, 3)])
            .build();
        let r = bfs_direction_optimizing(&g, 0);
        assert_eq!(r.dist[1], 1);
        assert_eq!(r.dist[2], INFINITE_DIST);
        assert_eq!(r.visited, 2);
    }

    #[test]
    fn eccentricity_of_cycle() {
        let g = generators::cycle(10);
        assert_eq!(eccentricity(&g, 0), 5);
        let g = generators::cycle(11);
        assert_eq!(eccentricity(&g, 3), 5);
    }
}
