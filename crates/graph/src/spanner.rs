//! Baswana–Sen `(2k-1)`-spanners — the sparsification step of the paper's
//! Theorem 4.
//!
//! When the quotient graph has more edges than a single reducer's `M_L`,
//! the paper invokes "the sparsification technique presented in \[4\]"
//! (Baswana & Sen, *Random Structures & Algorithms* 2007) to shrink it to a
//! spanner whose diameter is only a constant factor larger. This module
//! implements the randomized clustering-based construction for unweighted
//! graphs: `k - 1` rounds of cluster sampling at rate `n^{-1/k}` followed by
//! a cluster-joining phase, yielding a subgraph with expected
//! `O(k·n^{1+1/k})` edges in which every distance stretches by at most
//! `2k - 1`.

use crate::combine::{self, pack};
use crate::{CsrGraph, NodeId, INVALID_NODE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Epoch-tagged dense per-cluster scratch for the phase loops: O(1) lookups
/// keyed by cluster id without clearing between vertices (bumping `epoch`
/// invalidates every slot at once). Replaces the seed-era
/// `lightest_per_cluster` linear scans and phase-2 `kept.contains` — both
/// were O(deg × distinct clusters) per vertex, quadratic on hubs.
struct ClusterScratch {
    epoch: u64,
    mark: Vec<u64>,
    via: Vec<NodeId>,
    /// Clusters touched in the current epoch, in first-encounter order.
    touched: Vec<NodeId>,
}

impl ClusterScratch {
    fn new(n: usize) -> Self {
        ClusterScratch {
            epoch: 0,
            mark: vec![0; n],
            via: vec![INVALID_NODE; n],
            touched: Vec::new(),
        }
    }

    /// Starts a fresh vertex: every slot becomes stale, `touched` resets.
    fn next_epoch(&mut self) {
        self.epoch += 1;
        self.touched.clear();
    }

    /// Records neighbour `u` (of the current vertex) in cluster `c`;
    /// returns `true` on the first encounter of `c` this epoch. Neighbours
    /// arrive in ascending order, so the first recorded `via` is the
    /// lightest edge into `c` under the lexicographic perturbation.
    fn record(&mut self, c: NodeId, u: NodeId) -> bool {
        let ci = c as usize;
        if self.mark[ci] == self.epoch {
            return false;
        }
        self.mark[ci] = self.epoch;
        self.via[ci] = u;
        self.touched.push(c);
        true
    }

    /// The recorded lightest edge into cluster `c` this epoch.
    fn via(&self, c: NodeId) -> NodeId {
        debug_assert_eq!(self.mark[c as usize], self.epoch);
        self.via[c as usize]
    }
}

/// Result of [`baswana_sen`]: the spanner and its guarantee.
#[derive(Clone, Debug)]
pub struct Spanner {
    /// The spanner subgraph (same node set as the input).
    pub graph: CsrGraph,
    /// Stretch bound `2k - 1`.
    pub stretch: u32,
}

/// Computes a `(2k - 1)`-spanner of an unweighted graph.
///
/// # Panics
/// Panics if `k == 0`.
pub fn baswana_sen(g: &CsrGraph, k: usize, seed: u64) -> Spanner {
    assert!(k >= 1, "spanner parameter k must be positive");
    let n = g.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut spanner: Vec<(NodeId, NodeId)> = Vec::new();
    if n == 0 || k == 1 {
        // A 1-spanner is the graph itself.
        return Spanner {
            graph: g.clone(),
            stretch: 1,
        };
    }
    let sample_prob = (n as f64).powf(-1.0 / k as f64);

    // cluster[v] = center of v's current cluster, INVALID if v has retired.
    let mut cluster: Vec<NodeId> = (0..n as NodeId).collect();
    // Vertices still participating.
    let mut alive: Vec<bool> = vec![true; n];
    let mut scratch = ClusterScratch::new(n);
    // Expected size O(k·n^{1+1/k}); pre-reserve the dominant linear term so
    // the phase loops append without reallocating in the common case.
    spanner.reserve(2 * n);

    for _phase in 1..k {
        // Sample current cluster centers.
        let mut sampled = vec![false; n];
        for v in 0..n {
            if alive[v] && cluster[v] == v as NodeId {
                sampled[v] = rng.gen::<f64>() < sample_prob;
            }
        }
        let mut next_cluster = cluster.clone();
        for v in 0..n as NodeId {
            let vi = v as usize;
            if !alive[vi] {
                continue;
            }
            if sampled[cluster[vi] as usize] {
                continue; // stays in its (sampled) cluster
            }
            // Baswana–Sen needs distinct, consistently ordered edge
            // weights; for the unweighted case we perturb lexicographically
            // by neighbour id. Record, per neighbouring cluster, the
            // lightest incident edge (the *first* seen, since adjacency is
            // sorted ascending), and the overall lightest edge into a
            // *sampled* cluster — all O(1) per neighbour in the dense
            // scratch.
            scratch.next_epoch();
            let mut lightest_sampled: Option<NodeId> = None; // via-neighbour
            for &u in g.neighbors(v) {
                if !alive[u as usize] {
                    continue;
                }
                let cu = cluster[u as usize];
                if cu == cluster[vi] {
                    continue;
                }
                scratch.record(cu, u);
                if sampled[cu as usize] && lightest_sampled.is_none() {
                    lightest_sampled = Some(u);
                }
            }
            match lightest_sampled {
                Some(e_s) => {
                    // Join the sampled cluster through its lightest edge and
                    // keep, for every other cluster, its lightest edge only
                    // if strictly lighter than e_s (the BS pruning rule).
                    spanner.push((v, e_s));
                    next_cluster[vi] = cluster[e_s as usize];
                    for i in 0..scratch.touched.len() {
                        let c = scratch.touched[i];
                        let via = scratch.via(c);
                        if c != cluster[e_s as usize] && via < e_s {
                            spanner.push((v, via));
                        }
                    }
                }
                None => {
                    // No sampled neighbour: keep one (lightest) edge per
                    // neighbouring cluster and retire.
                    for i in 0..scratch.touched.len() {
                        spanner.push((v, scratch.via(scratch.touched[i])));
                    }
                    next_cluster[vi] = INVALID_NODE;
                    alive[vi] = false;
                }
            }
        }
        cluster = next_cluster;
        // Intra-cluster edges of newly joined vertices are implicit: the
        // joining edge added above is the cluster-tree edge.
    }

    // Phase 2: every surviving vertex keeps one edge to each neighbouring
    // cluster — first-encounter detection through the same dense scratch
    // instead of the seed-era `kept.contains` linear scan.
    for v in 0..n as NodeId {
        let vi = v as usize;
        if !alive[vi] {
            continue;
        }
        scratch.next_epoch();
        for &w in g.neighbors(v) {
            if !alive[w as usize] {
                continue;
            }
            let cw = cluster[w as usize];
            if cw == cluster[vi] {
                continue;
            }
            if scratch.record(cw, w) {
                spanner.push((v, w));
            }
        }
    }

    // Final CSR build on the combine kernel: symmetrize the kept edges
    // with a two-pass scatter (no self-loops by construction — every kept
    // edge joins `v` to a neighbour), then dedup straight into the CSR
    // arrays. Kept edges are duplicate-light, so the direct route beats
    // the half-arc combine-then-mirror one.
    let arcs = combine::par_emit(
        spanner.len(),
        |_| 2,
        |i, emit| {
            let (u, v) = spanner[i];
            emit.push(pack(u, v));
            emit.push(pack(v, u));
        },
    );
    Spanner {
        graph: combine::csr_from_arcs(n, arcs).0,
        stretch: (2 * k - 1) as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::bfs;
    use crate::{components, generators};

    /// Spot-checks the stretch guarantee from a few sources.
    fn assert_stretch(g: &CsrGraph, s: &Spanner, sources: &[NodeId]) {
        for &src in sources {
            let orig = bfs(g, src).dist;
            let span = bfs(&s.graph, src).dist;
            for v in 0..g.num_nodes() {
                if orig[v] == crate::INFINITE_DIST {
                    assert_eq!(span[v], crate::INFINITE_DIST);
                    continue;
                }
                assert!(
                    span[v] != crate::INFINITE_DIST,
                    "spanner disconnected {src} from {v}"
                );
                assert!(
                    span[v] <= s.stretch * orig[v].max(1),
                    "stretch violated at ({src}, {v}): {} > {} * {}",
                    span[v],
                    s.stretch,
                    orig[v]
                );
            }
        }
    }

    #[test]
    fn k1_returns_graph() {
        let g = generators::gnm(50, 100, 1);
        let s = baswana_sen(&g, 1, 0);
        assert_eq!(s.graph, g);
        assert_eq!(s.stretch, 1);
    }

    #[test]
    fn three_spanner_on_dense_random() {
        let g = generators::gnm(200, 2000, 3);
        let (lc, _) = components::largest_component(&g);
        let s = baswana_sen(&lc, 2, 7);
        assert!(s.graph.num_edges() <= lc.num_edges());
        assert_stretch(&lc, &s, &[0, 7, 100]);
    }

    #[test]
    fn five_spanner_sparsifies_more() {
        let g = generators::gnm(300, 6000, 5);
        let (lc, _) = components::largest_component(&g);
        let s2 = baswana_sen(&lc, 2, 11);
        let s3 = baswana_sen(&lc, 3, 11);
        assert_stretch(&lc, &s3, &[0, 50]);
        // Larger k: sparser (in expectation; fixed seeds keep this stable).
        assert!(
            s3.graph.num_edges() <= s2.graph.num_edges(),
            "k=3 ({}) should not exceed k=2 ({})",
            s3.graph.num_edges(),
            s2.graph.num_edges()
        );
    }

    #[test]
    fn spanner_preserves_connectivity_components() {
        let g = generators::disjoint_union(&generators::gnm(100, 600, 2), &generators::mesh(8, 8));
        let s = baswana_sen(&g, 2, 3);
        let (orig_cc, orig_labels) = components::connected_components(&g);
        let (span_cc, span_labels) = components::connected_components(&s.graph);
        assert_eq!(orig_cc, span_cc);
        // Same partition into components.
        for u in 0..g.num_nodes() {
            for v in 0..g.num_nodes() {
                assert_eq!(
                    orig_labels[u] == orig_labels[v],
                    span_labels[u] == span_labels[v]
                );
            }
        }
    }

    #[test]
    fn dense_graph_shrinks_substantially() {
        // A clique-ish graph must lose most edges under a 3-spanner.
        let g = generators::complete(64);
        let s = baswana_sen(&g, 2, 9);
        assert!(
            s.graph.num_edges() * 2 < g.num_edges(),
            "spanner kept {} of {} edges",
            s.graph.num_edges(),
            g.num_edges()
        );
        assert_stretch(&g, &s, &[0, 31]);
    }

    #[test]
    fn sparse_graph_roughly_preserved() {
        let g = generators::mesh(10, 10);
        let s = baswana_sen(&g, 2, 4);
        assert_stretch(&g, &s, &[0, 55, 99]);
    }
}
