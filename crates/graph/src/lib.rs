//! # pardec-graph — graph substrate for the `pardec` workspace
//!
//! This crate provides everything the decomposition / clustering / diameter
//! algorithms of [Ceccarello, Pietracaprina, Pucci, Upfal — SPAA 2015] need
//! from a graph library:
//!
//! * a compact [`CsrGraph`] (compressed sparse row) representation for
//!   unweighted, undirected graphs with `u32` node identifiers;
//! * deterministic, seedable **generators** for every graph family used in
//!   the paper's evaluation (meshes, road networks, power-law social graphs,
//!   expanders, the lollipop example of §3, the chain-appended variants of
//!   Figure 1);
//! * sequential and level-synchronous **parallel BFS**, plus multi-source
//!   BFS with per-source ownership — the primitive underlying disjoint
//!   cluster growth — backed by a direction-optimizing [`frontier`] engine
//!   with interchangeable top-down / bottom-up / hybrid expansion
//!   strategies, all byte-identical by construction;
//! * exact **diameter** computation (double sweep, iFUB, all-pairs BFS) used
//!   as ground truth in the experiments;
//! * **quotient graphs** of a clustering, both unweighted and weighted as
//!   defined in §4 of the paper, together with a small weighted-graph type
//!   and Dijkstra/APSP for computing quotient diameters;
//! * a deterministic parallel [`combine`] kernel (count → prefix → scatter →
//!   per-bucket sort/fold) underlying every contraction path — quotient and
//!   contracted-graph builds, `GraphBuilder::build`, the spanner's CSR
//!   assembly — with the seed-era sequential versions retained in [`naive`]
//!   as test oracles;
//! * edge-list and binary **I/O** and basic **statistics**.
//!
//! All randomized routines take an explicit `u64` seed so that every
//! experiment in the workspace is reproducible.
//!
//! ```
//! use pardec_graph::prelude::*;
//!
//! let g = generators::mesh(10, 10);
//! assert_eq!(g.num_nodes(), 100);
//! assert_eq!(g.num_edges(), 180);
//! let dist = traversal::bfs(&g, 0).dist;
//! assert_eq!(dist[99], 18); // opposite corner of the mesh
//! ```

pub mod access;
pub mod builder;
pub mod ccsr;
pub mod combine;
pub mod components;
pub mod contract;
pub mod csr;
pub mod diameter;
pub mod frontier;
pub mod generators;
pub mod io;
pub mod naive;
pub mod quotient;
pub mod repr;
pub mod spanner;
pub mod stats;
pub mod stream;
pub mod traversal;
pub mod union_find;
pub mod weighted;
pub mod wfrontier;

/// Node identifier. Graphs of up to `u32::MAX - 1` nodes are supported; using
/// 32-bit ids instead of `usize` halves the memory traffic of adjacency scans.
pub type NodeId = u32;

/// Sentinel for "no node" / "unreachable" in distance and owner arrays.
pub const INVALID_NODE: NodeId = NodeId::MAX;

/// Sentinel distance for unreachable nodes.
pub const INFINITE_DIST: u32 = u32::MAX;

pub use access::{NeighborAccess, WeightedNeighborAccess};
pub use builder::GraphBuilder;
pub use ccsr::{CcsrBuilder, CcsrGraph, CweightedGraph};
pub use combine::CombineStats;
pub use csr::CsrGraph;
pub use frontier::FrontierStrategy;
pub use repr::{Backend, GraphRepr};
pub use weighted::WeightedGraph;
pub use wfrontier::WeightedFrontierEngine;

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::access::{NeighborAccess, WeightedNeighborAccess};
    pub use crate::builder::GraphBuilder;
    pub use crate::ccsr::{CcsrBuilder, CcsrGraph, CweightedGraph};
    pub use crate::combine::CombineStats;
    pub use crate::csr::CsrGraph;
    pub use crate::frontier::FrontierStrategy;
    pub use crate::repr::{Backend, GraphRepr};
    pub use crate::weighted::WeightedGraph;
    pub use crate::wfrontier::WeightedFrontierEngine;
    pub use crate::{
        ccsr, combine, components, diameter, frontier, generators, io, quotient, repr, stats,
        stream, traversal, wfrontier,
    };
    pub use crate::{NodeId, INFINITE_DIST, INVALID_NODE};
}
