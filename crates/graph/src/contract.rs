//! Graph contraction and induced subgraphs.
//!
//! §5 of the paper implements cluster growing "as a progressive shrinking
//! of the original graph, by maintaining clusters coalesced into single
//! nodes and updating the adjacencies accordingly". [`contract`] is that
//! coalescing operation: it maps a labelled graph to its quotient while
//! keeping the bookkeeping (node weights = cluster sizes, edge
//! multiplicities = cut sizes) that the shrinking representation needs.
//! [`induced_subgraph`] extracts the subgraph on an arbitrary node subset
//! with an id mapping — used by per-component analyses.

use crate::access::NeighborAccess;
use crate::combine::{self, pack, unpack};
use crate::{CsrGraph, GraphBuilder, NodeId, INVALID_NODE};

/// Cut-edge multiplicities of a contraction: a sorted flat map from an
/// unordered cluster pair `{a, b}` (stored as `a < b`) to the number of
/// original edges crossing it.
///
/// This replaced the seed-era `HashMap<(NodeId, NodeId), u64>`: the entries
/// come out of the combine kernel already sorted and unique, so lookups are
/// a binary search and iteration order is deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeCounts {
    /// `(a, b, count)` with `a < b`, sorted by `(a, b)`.
    entries: Vec<(NodeId, NodeId, u64)>,
}

impl EdgeCounts {
    /// Wraps entries that are already sorted by `(a, b)` with `a < b`.
    pub(crate) fn from_sorted_entries(entries: Vec<(NodeId, NodeId, u64)>) -> Self {
        debug_assert!(entries
            .windows(2)
            .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        debug_assert!(entries.iter().all(|&(a, b, _)| a < b));
        EdgeCounts { entries }
    }

    /// Multiplicity of the cluster pair `{a, b}` (order-insensitive);
    /// `None` if no edge crosses it.
    pub fn get(&self, a: NodeId, b: NodeId) -> Option<u64> {
        let key = (a.min(b), a.max(b));
        self.entries
            .binary_search_by_key(&key, |&(x, y, _)| (x, y))
            .ok()
            .map(|i| self.entries[i].2)
    }

    /// Number of distinct cluster pairs with at least one crossing edge.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no edge crosses any cluster pair.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `((a, b), count)` in ascending `(a, b)` order.
    pub fn iter(&self) -> impl Iterator<Item = ((NodeId, NodeId), u64)> + '_ {
        self.entries.iter().map(|&(a, b, m)| ((a, b), m))
    }

    /// Iterates the multiplicities in ascending `(a, b)` order.
    pub fn values(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().map(|&(_, _, m)| m)
    }
}

impl std::ops::Index<&(NodeId, NodeId)> for EdgeCounts {
    type Output = u64;

    /// Multiplicity of `{a, b}`; panics if no edge crosses the pair
    /// (mirroring `HashMap` indexing).
    fn index(&self, &(a, b): &(NodeId, NodeId)) -> &u64 {
        let key = (a.min(b), a.max(b));
        match self.entries.binary_search_by_key(&key, |&(x, y, _)| (x, y)) {
            Ok(i) => &self.entries[i].2,
            Err(_) => panic!("no cut edge between clusters {a} and {b}"),
        }
    }
}

/// Result of [`contract`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Contraction {
    /// The contracted (quotient) graph: one node per label, simple edges.
    pub graph: CsrGraph,
    /// `node_weight[c]` = number of original nodes with label `c`.
    pub node_weight: Vec<u64>,
    /// Multiplicity of each crossing cluster pair: the number of original
    /// edges between labels `a` and `b`.
    pub edge_multiplicity: EdgeCounts,
    /// Original edges inside a single label (the coalesced mass).
    pub internal_edges: u64,
}

/// Coalesces each label class of `g` into a single node.
///
/// Multiplicities are a sum-combine over the cut edges on the
/// [`crate::combine`] kernel; the contracted CSR is built from the combined
/// entries directly.
///
/// # Panics
/// Panics if `labels.len() != g.num_nodes()` or a label is `≥ num_labels`.
pub fn contract<G: NeighborAccess>(g: &G, labels: &[NodeId], num_labels: usize) -> Contraction {
    assert_eq!(labels.len(), g.num_nodes(), "label array size mismatch");
    let mut node_weight = vec![0u64; num_labels];
    for &l in labels {
        assert!((l as usize) < num_labels, "label {l} out of range");
        node_weight[l as usize] += 1;
    }
    // One record per undirected cut edge (scanning each edge once via the
    // upper adjacency tails), keyed by the normalized cluster pair;
    // sum-combine.
    let cut: Vec<(u64, u64)> = combine::par_emit(
        g.num_nodes(),
        |u| crate::quotient::cut_degree(g, labels, u),
        |u, emit| {
            let a = labels[u];
            for v in g.upper_neighbors_iter(u as NodeId) {
                let b = labels[v as usize];
                if b != a {
                    emit.push((pack(a.min(b), a.max(b)), 1));
                }
            }
        },
    );
    // Self-loop-free CSR: every undirected edge is either cut or internal.
    let internal_edges = (g.num_edges() - cut.len()) as u64;
    let (combined, _) = combine::combine_by_key(
        cut,
        (num_labels as u64) << 32,
        |c| c.0,
        |a, b| (a.0, a.1 + b.1),
    );
    // The combined keys are exactly the contracted graph's normalized edge
    // set — already unique, ready for the kernel's mirror + CSR build.
    let half: Vec<u64> = combined.iter().map(|&(key, _)| key).collect();
    let entries: Vec<(NodeId, NodeId, u64)> = combined
        .into_iter()
        .map(|(key, m)| {
            let (a, b) = unpack(key);
            (a, b, m)
        })
        .collect();
    Contraction {
        graph: combine::csr_from_unique_half_arcs(num_labels, half),
        node_weight,
        edge_multiplicity: EdgeCounts::from_sorted_entries(entries),
        internal_edges,
    }
}

/// Extracts the subgraph induced by `nodes` (need not be sorted; duplicates
/// are ignored). Returns the subgraph and `orig_id[new] = old`.
pub fn induced_subgraph<G: NeighborAccess>(g: &G, nodes: &[NodeId]) -> (CsrGraph, Vec<NodeId>) {
    let mut new_id = vec![INVALID_NODE; g.num_nodes()];
    let mut orig_id: Vec<NodeId> = Vec::with_capacity(nodes.len());
    for &v in nodes {
        assert!((v as usize) < g.num_nodes(), "node {v} out of range");
        if new_id[v as usize] == INVALID_NODE {
            new_id[v as usize] = orig_id.len() as NodeId;
            orig_id.push(v);
        }
    }
    let mut b = GraphBuilder::new(orig_id.len());
    for &v in &orig_id {
        for w in g.neighbors_iter(v) {
            if v < w && new_id[w as usize] != INVALID_NODE {
                b.add_edge(new_id[v as usize], new_id[w as usize]);
            }
        }
    }
    (b.build(), orig_id)
}

/// Relabels the graph in BFS discovery order from `root` (unreached nodes
/// keep their relative order after the reached ones). Returns the relabelled
/// graph and `old_of_new[new] = old`.
///
/// BFS ordering places each node near its neighbours in memory, improving
/// the cache behaviour of frontier scans — a standard preprocessing step for
/// the level-synchronous traversals every algorithm in this workspace runs.
pub fn relabel_bfs<G: NeighborAccess>(g: &G, root: NodeId) -> (CsrGraph, Vec<NodeId>) {
    let n = g.num_nodes();
    assert!((root as usize) < n || n == 0, "root out of range");
    let mut old_of_new: Vec<NodeId> = Vec::with_capacity(n);
    let mut new_of_old: Vec<NodeId> = vec![INVALID_NODE; n];
    if n > 0 {
        let mut queue = std::collections::VecDeque::from([root]);
        new_of_old[root as usize] = 0;
        old_of_new.push(root);
        while let Some(u) = queue.pop_front() {
            for v in g.neighbors_iter(u) {
                if new_of_old[v as usize] == INVALID_NODE {
                    new_of_old[v as usize] = old_of_new.len() as NodeId;
                    old_of_new.push(v);
                    queue.push_back(v);
                }
            }
        }
        for v in 0..n as NodeId {
            if new_of_old[v as usize] == INVALID_NODE {
                new_of_old[v as usize] = old_of_new.len() as NodeId;
                old_of_new.push(v);
            }
        }
    }
    let mut b = GraphBuilder::with_capacity(n, g.num_edges());
    for u in 0..n as NodeId {
        for v in g.upper_neighbors_iter(u) {
            b.add_edge(new_of_old[u as usize], new_of_old[v as usize]);
        }
    }
    (b.build(), old_of_new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn contract_path_pairs() {
        // 0-1-2-3-4-5 with labels [0,0,1,1,2,2].
        let g = generators::path(6);
        let c = contract(&g, &[0, 0, 1, 1, 2, 2], 3);
        assert_eq!(c.graph.num_nodes(), 3);
        assert_eq!(c.graph.num_edges(), 2);
        assert_eq!(c.node_weight, vec![2, 2, 2]);
        assert_eq!(c.internal_edges, 3);
        assert_eq!(c.edge_multiplicity[&(0, 1)], 1);
    }

    #[test]
    fn contract_counts_multiplicities() {
        // Complete graph on 4 nodes, split 2/2: 4 cut edges, 2 internal.
        let g = generators::complete(4);
        let c = contract(&g, &[0, 0, 1, 1], 2);
        assert_eq!(c.graph.num_edges(), 1);
        assert_eq!(c.edge_multiplicity[&(0, 1)], 4);
        assert_eq!(c.internal_edges, 2);
    }

    #[test]
    fn contract_identity_labels() {
        let g = generators::cycle(8);
        let labels: Vec<NodeId> = (0..8).collect();
        let c = contract(&g, &labels, 8);
        assert_eq!(c.graph, g);
        assert!(c.node_weight.iter().all(|&w| w == 1));
        assert_eq!(c.internal_edges, 0);
    }

    #[test]
    fn contract_matches_quotient() {
        // The contracted simple graph must equal the quotient module's view.
        let g = generators::road_network(12, 12, 0.4, 5);
        let labels: Vec<NodeId> = (0..g.num_nodes() as NodeId).map(|v| v % 10).collect();
        let c = contract(&g, &labels, 10);
        let q = crate::quotient::quotient(&g, &labels, 10);
        assert_eq!(c.graph, q);
        // Total mass is conserved.
        let cut: u64 = c.edge_multiplicity.values().sum();
        assert_eq!(cut + c.internal_edges, g.num_edges() as u64);
    }

    #[test]
    fn contract_matches_naive_reference() {
        let g = generators::preferential_attachment(800, 5, 3);
        let labels: Vec<NodeId> = (0..g.num_nodes() as NodeId).map(|v| v % 23).collect();
        let c = contract(&g, &labels, 23);
        let naive = crate::naive::contract(&g, &labels, 23);
        assert_eq!(c, naive);
    }

    #[test]
    fn edge_counts_lookup() {
        let g = generators::complete(4);
        let c = contract(&g, &[0, 0, 1, 1], 2);
        assert_eq!(c.edge_multiplicity.get(0, 1), Some(4));
        assert_eq!(c.edge_multiplicity.get(1, 0), Some(4)); // order-insensitive
        assert_eq!(c.edge_multiplicity.get(0, 0), None);
        assert_eq!(c.edge_multiplicity.len(), 1);
        assert!(!c.edge_multiplicity.is_empty());
        assert_eq!(c.edge_multiplicity.iter().next(), Some(((0, 1), 4)));
    }

    #[test]
    fn induced_subgraph_square() {
        let g = generators::mesh(3, 3);
        let (sub, orig) = induced_subgraph(&g, &[0, 1, 3, 4]);
        assert_eq!(sub.num_nodes(), 4);
        assert_eq!(sub.num_edges(), 4); // the 2×2 sub-square
        assert_eq!(orig, vec![0, 1, 3, 4]);
    }

    #[test]
    fn induced_subgraph_dedups_and_relabels() {
        let g = generators::path(5);
        let (sub, orig) = induced_subgraph(&g, &[4, 2, 4, 3]);
        assert_eq!(orig, vec![4, 2, 3]);
        assert_eq!(sub.num_edges(), 2); // 2-3 and 3-4
        assert!(sub.has_edge(1, 2)); // relabelled 2-3
    }

    #[test]
    fn induced_subgraph_empty_selection() {
        let g = generators::cycle(5);
        let (sub, orig) = induced_subgraph(&g, &[]);
        assert_eq!(sub.num_nodes(), 0);
        assert!(orig.is_empty());
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = generators::road_network(15, 15, 0.4, 8);
        let (r, old_of_new) = relabel_bfs(&g, 7);
        assert_eq!(r.num_nodes(), g.num_nodes());
        assert_eq!(r.num_edges(), g.num_edges());
        // Distances are isomorphic: dist_r(new(u), new(v)) == dist_g(u, v).
        let dg = crate::traversal::bfs(&g, 7).dist;
        let dr = crate::traversal::bfs(&r, 0).dist; // 7 relabels to 0
        for new in 0..r.num_nodes() {
            let old = old_of_new[new] as usize;
            assert_eq!(dr[new], dg[old], "distance mismatch at new id {new}");
        }
    }

    #[test]
    fn relabel_orders_by_bfs_level() {
        // On a path rooted at 0, BFS order is the identity.
        let g = generators::path(8);
        let (r, old_of_new) = relabel_bfs(&g, 0);
        assert_eq!(r, g);
        assert_eq!(old_of_new, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn relabel_handles_disconnected() {
        let g = generators::disjoint_union(&generators::path(3), &generators::cycle(4));
        let (r, old_of_new) = relabel_bfs(&g, 1);
        assert_eq!(r.num_edges(), g.num_edges());
        assert_eq!(old_of_new.len(), 7);
        // Unreached component keeps relative order at the tail.
        assert_eq!(&old_of_new[3..], &[3, 4, 5, 6]);
    }
}
