//! Direction-optimizing multi-source frontier engine.
//!
//! Every algorithm in the workspace — CLUSTER/CLUSTER2 growth (§3 of the
//! paper), the diameter sandwich (§4), the MPX baseline, and the plain BFS
//! primitives — advances one or more breadth-first waves level by level.
//! This module centralizes that level-synchronous loop behind a single
//! engine with three interchangeable expansion strategies:
//!
//! * [`FrontierStrategy::TopDown`] — classic push expansion: every frontier
//!   node proposes itself to its unclaimed neighbours. Work per level is
//!   `Θ(Σ deg(frontier))`, optimal while the frontier is small.
//! * [`FrontierStrategy::BottomUp`] — pull expansion driven by a dense
//!   frontier bitmap: every *unclaimed* node scans its own adjacency list
//!   for claimed parents in the current frontier. Work per level is
//!   `Θ(n/64 + Σ deg(unclaimed))`, which is far cheaper on the saturation
//!   levels of low-diameter graphs where the frontier covers most arcs.
//! * [`FrontierStrategy::Hybrid`] — the Beamer et al. direction-optimizing
//!   heuristic (SC'12): switch to bottom-up when the frontier is still
//!   growing and its out-degree sum exceeds `1/alpha` of the arcs incident
//!   to unclaimed nodes, and back to top-down once the frontier shrinks
//!   below `n/beta` nodes (see [`FrontierParams`]).
//!
//! # Determinism contract
//!
//! All three strategies produce **byte-identical** `owner`/`dist` arrays, at
//! any thread count. Contention for an unclaimed node is always resolved by
//! taking the *minimum* of the packed proposal `(owner << 32) | dist` over
//! the node's in-frontier neighbours — smallest owner id first, then
//! smallest distance:
//!
//! * top-down realizes the minimum with an atomic `fetch_min` propose phase
//!   followed by an atomic `swap` claim phase (first-writer-wins on the
//!   drained slot, value-determinate regardless of thread interleaving);
//! * bottom-up realizes the *same* minimum with a per-node sequential scan
//!   of the adjacency list.
//!
//! Because the claimed set and the claimed values per level are pure
//! functions of the previous level, every downstream consumer — cluster
//! ownership, quotient graphs, diameter estimates, HADI sketches — is
//! reproducible across strategies, runs, and pool sizes. This is asserted
//! end-to-end by `tests/proptests_frontier.rs` and
//! `tests/determinism_threads.rs`.
//!
//! The default strategy honours the `PARDEC_FRONTIER` environment variable
//! (`topdown` | `bottomup` | `hybrid`), so the whole test suite can be
//! re-run under a different engine without touching code.

use crate::access::NeighborAccess;
use crate::traversal::BfsResult;
use crate::{CsrGraph, NodeId, INFINITE_DIST, INVALID_NODE};
use rayon::prelude::*;
use std::str::FromStr;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Environment variable consulted by [`FrontierStrategy::default_from_env`].
pub const FRONTIER_ENV: &str = "PARDEC_FRONTIER";

/// How each level of a multi-source BFS wave is expanded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum FrontierStrategy {
    /// Push: frontier nodes propose to their unclaimed neighbours.
    #[default]
    TopDown,
    /// Pull: unclaimed nodes scan their neighbours for frontier parents.
    BottomUp,
    /// Per-level direction switching via the Beamer edge-count heuristic.
    Hybrid,
}

impl FrontierStrategy {
    /// All strategies, in a stable order (useful for matrix tests/benches).
    pub const ALL: [FrontierStrategy; 3] = [
        FrontierStrategy::TopDown,
        FrontierStrategy::BottomUp,
        FrontierStrategy::Hybrid,
    ];

    /// Canonical lowercase name (the CLI / env-var spelling).
    pub fn name(self) -> &'static str {
        match self {
            FrontierStrategy::TopDown => "topdown",
            FrontierStrategy::BottomUp => "bottomup",
            FrontierStrategy::Hybrid => "hybrid",
        }
    }

    /// Strategy selected by the `PARDEC_FRONTIER` environment variable, or
    /// `None` when the variable is unset.
    ///
    /// # Panics
    /// Panics on an unrecognized value — a misspelled CI matrix entry must
    /// fail loudly rather than silently fall back to the default.
    pub fn from_env() -> Option<FrontierStrategy> {
        let raw = std::env::var(FRONTIER_ENV).ok()?;
        match raw.parse() {
            Ok(s) => Some(s),
            Err(e) => panic!("{FRONTIER_ENV}: {e}"),
        }
    }

    /// The ambient default: `PARDEC_FRONTIER` when set, else top-down.
    pub fn default_from_env() -> FrontierStrategy {
        Self::from_env().unwrap_or_default()
    }
}

impl FromStr for FrontierStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "topdown" | "top-down" => Ok(FrontierStrategy::TopDown),
            "bottomup" | "bottom-up" => Ok(FrontierStrategy::BottomUp),
            "hybrid" => Ok(FrontierStrategy::Hybrid),
            other => Err(format!(
                "unknown frontier strategy {other:?} (expected topdown, bottomup, or hybrid)"
            )),
        }
    }
}

impl std::fmt::Display for FrontierStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Tuning knobs of the [`FrontierStrategy::Hybrid`] direction heuristic.
///
/// The defaults are the values Beamer et al. report as robust across graph
/// families: go bottom-up when `Σ deg(frontier) > unexplored_arcs / alpha`,
/// return to top-down when `|frontier| < n / beta`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrontierParams {
    /// Edge-count switch factor (paper value: 14).
    pub alpha: usize,
    /// Frontier-size switch-back factor (paper value: 24).
    pub beta: usize,
}

impl Default for FrontierParams {
    fn default() -> Self {
        FrontierParams {
            alpha: 14,
            beta: 24,
        }
    }
}

/// Sentinel for "no proposal" in the packed proposal slots.
const NO_PROPOSAL: u64 = u64::MAX;

/// Below this many frontier out-edges a level is expanded sequentially —
/// the scheduler overhead of a parallel pass dwarfs the work itself. The
/// cutoff is data-dependent only, so the same path is taken at every pool
/// size and the left-to-right claim order is preserved exactly.
const SEQ_EDGE_CUTOFF: usize = 2048;

/// Below this many nodes, bottom-up sweeps run sequentially (same rationale).
const SEQ_NODE_CUTOFF: usize = 2048;

#[inline]
fn pack(owner: NodeId, dist: u32) -> u64 {
    ((owner as u64) << 32) | dist as u64
}

#[inline]
fn unpack(p: u64) -> (NodeId, u32) {
    ((p >> 32) as NodeId, (p & 0xFFFF_FFFF) as u32)
}

/// Final per-node labels of an engine run (see [`FrontierEngine::into_parts`]).
#[derive(Clone, Debug)]
pub struct FrontierParts {
    /// `owner[v]` = index (into the activation order) of the claiming
    /// source, [`INVALID_NODE`] if unreached.
    pub owner: Vec<NodeId>,
    /// `dist[v]` = hops from `v` to its claiming source at activation time,
    /// [`INFINITE_DIST`] if unreached.
    pub dist: Vec<u32>,
    /// Source nodes in activation order (`sources[owner[v]]` is `v`'s root).
    pub sources: Vec<NodeId>,
}

/// Reusable multi-source frontier engine.
///
/// Sources may be activated up front (plain multi-source BFS) or
/// incrementally between steps (staggered cluster growth à la CLUSTER /
/// MPX); each claims the unclaimed nodes its wave reaches first, ties broken
/// by the deterministic smallest-`(owner, dist)` rule described in the
/// module docs.
///
/// Generic over the adjacency backend: any [`NeighborAccess`] implementor
/// (plain [`CsrGraph`], compressed [`crate::CcsrGraph`], or the runtime
/// [`crate::GraphRepr`]) drives the identical wave — the backend only
/// changes how neighbor lists are materialized, never their content, so
/// the determinism contract above carries over byte-for-byte.
pub struct FrontierEngine<'g, G: NeighborAccess = CsrGraph> {
    g: &'g G,
    strategy: FrontierStrategy,
    params: FrontierParams,
    owner: Vec<AtomicU32>,
    dist: Vec<AtomicU32>,
    proposals: Vec<AtomicU64>,
    /// Dense frontier-membership bitmap, (re)built per bottom-up step.
    in_frontier: Vec<AtomicU64>,
    frontier: Vec<NodeId>,
    sources: Vec<NodeId>,
    claimed: usize,
    steps: usize,
    bottom_up_steps: usize,
    /// `Σ deg(v)` over unclaimed `v` — the heuristic's `m_u`.
    unexplored_arcs: usize,
    /// `Σ deg(v)` over the current frontier — the heuristic's `m_f`,
    /// maintained incrementally (claims are summed once, at claim time).
    frontier_degree: usize,
    /// Frontier size before the previous expansion (the heuristic's
    /// growing/shrinking signal).
    prev_frontier_len: usize,
    /// Current direction of the hybrid state machine.
    bottom_up: bool,
    /// Times the hybrid state machine changed direction (either way).
    switches: usize,
}

impl<'g, G: NeighborAccess> FrontierEngine<'g, G> {
    /// A fresh engine over `g` with no active sources.
    pub fn new(g: &'g G, strategy: FrontierStrategy) -> Self {
        Self::with_params(g, strategy, FrontierParams::default())
    }

    /// As [`FrontierEngine::new`] with explicit heuristic parameters.
    pub fn with_params(g: &'g G, strategy: FrontierStrategy, params: FrontierParams) -> Self {
        let n = g.num_nodes();
        FrontierEngine {
            g,
            strategy,
            params,
            owner: (0..n).map(|_| AtomicU32::new(INVALID_NODE)).collect(),
            dist: (0..n).map(|_| AtomicU32::new(INFINITE_DIST)).collect(),
            proposals: (0..n).map(|_| AtomicU64::new(NO_PROPOSAL)).collect(),
            in_frontier: Vec::new(),
            frontier: Vec::new(),
            sources: Vec::new(),
            claimed: 0,
            steps: 0,
            bottom_up_steps: 0,
            unexplored_arcs: g.num_arcs(),
            frontier_degree: 0,
            prev_frontier_len: 0,
            bottom_up: false,
            switches: 0,
        }
    }

    /// The strategy this engine expands with.
    pub fn strategy(&self) -> FrontierStrategy {
        self.strategy
    }

    /// Nodes claimed so far (sources included).
    pub fn claimed(&self) -> usize {
        self.claimed
    }

    /// Nodes not yet claimed by any source.
    pub fn unclaimed(&self) -> usize {
        self.g.num_nodes() - self.claimed
    }

    /// Level-expansion steps executed so far (the parallel-depth ledger).
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// How many of those steps ran bottom-up (0 under pure top-down).
    pub fn bottom_up_steps(&self) -> usize {
        self.bottom_up_steps
    }

    /// How often the hybrid heuristic flipped direction (0 for the pure
    /// strategies).
    pub fn direction_switches(&self) -> usize {
        self.switches
    }

    /// Sources activated so far.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// Current frontier size (active boundary nodes).
    pub fn frontier_len(&self) -> usize {
        self.frontier.len()
    }

    /// Whether `v` has been claimed.
    pub fn is_claimed(&self, v: NodeId) -> bool {
        self.owner[v as usize].load(Ordering::Relaxed) != INVALID_NODE
    }

    /// Activates `v` as a new source with owner id `num_sources()`. Returns
    /// `false` (and does nothing) if `v` is already claimed.
    pub fn add_source(&mut self, v: NodeId) -> bool {
        if self.is_claimed(v) {
            return false;
        }
        let id = self.sources.len() as NodeId;
        self.owner[v as usize].store(id, Ordering::Relaxed);
        self.dist[v as usize].store(0, Ordering::Relaxed);
        self.sources.push(v);
        self.frontier.push(v);
        self.claimed += 1;
        let deg = self.g.degree(v);
        self.unexplored_arcs -= deg;
        self.frontier_degree += deg;
        true
    }

    /// Iterator over currently unclaimed nodes, ascending (sequential scan).
    pub fn unclaimed_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.g.num_nodes() as NodeId)
            .filter(move |&v| self.owner[v as usize].load(Ordering::Relaxed) == INVALID_NODE)
    }

    /// Executes one level expansion; returns the number of newly claimed
    /// nodes. A step on an empty frontier is a counted no-op (the CLUSTER
    /// round ledger charges it).
    pub fn step(&mut self) -> usize {
        self.steps += 1;
        if self.frontier.is_empty() {
            return 0;
        }
        let frontier_degree = self.frontier_degree;
        let next = if self.choose_bottom_up(frontier_degree) {
            self.bottom_up_steps += 1;
            self.step_bottom_up()
        } else {
            self.step_top_down(frontier_degree)
        };
        self.prev_frontier_len = self.frontier.len();
        // Sum each claim's degree once; it is both the next level's `m_f`
        // and what leaves `m_u`. Integer addition is order-independent, so
        // the parallel sum is exact at any pool size.
        let claimed_degree: usize = if next.len() > SEQ_EDGE_CUTOFF {
            next.par_iter().map(|&v| self.g.degree(v)).sum()
        } else {
            next.iter().map(|&v| self.g.degree(v)).sum()
        };
        self.unexplored_arcs -= claimed_degree;
        self.frontier_degree = claimed_degree;
        self.claimed += next.len();
        self.frontier = next;
        self.frontier.len()
    }

    /// Runs steps until the frontier dies out. Emits one `frontier.wave`
    /// trace span covering the whole wave (strategy, rounds, direction
    /// switches, peak frontier, claims) when tracing is enabled.
    pub fn run(&mut self) {
        let mut wave = pardec_obs::span!(
            "frontier.wave",
            strategy = self.strategy.name(),
            sources = self.sources.len(),
        );
        let steps_before = self.steps;
        let claimed_before = self.claimed;
        let switches_before = self.switches;
        let mut max_frontier = self.frontier.len();
        while !self.frontier.is_empty() {
            self.step();
            max_frontier = max_frontier.max(self.frontier.len());
        }
        wave.field("rounds", self.steps - steps_before);
        wave.field("claimed", self.claimed - claimed_before);
        wave.field("switches", self.switches - switches_before);
        wave.field("bottom_up_steps", self.bottom_up_steps);
        wave.field("max_frontier", max_frontier);
    }

    /// Finalizes into the per-node label arrays.
    pub fn into_parts(self) -> FrontierParts {
        FrontierParts {
            owner: self.owner.into_iter().map(AtomicU32::into_inner).collect(),
            dist: self.dist.into_iter().map(AtomicU32::into_inner).collect(),
            sources: self.sources,
        }
    }

    /// Direction decision for this level. Depends only on aggregate counts,
    /// so it is identical at every pool size.
    fn choose_bottom_up(&mut self, frontier_degree: usize) -> bool {
        match self.strategy {
            FrontierStrategy::TopDown => false,
            FrontierStrategy::BottomUp => true,
            FrontierStrategy::Hybrid => {
                if !self.bottom_up {
                    // Beamer's switch needs the wave to still be growing:
                    // without it, the tail of a long path (tiny frontier,
                    // tiny unexplored remainder) would flip bottom-up and
                    // pay the O(n/64) bitmap sweep per level for nothing.
                    let growing = self.frontier.len() > self.prev_frontier_len;
                    if growing && frontier_degree * self.params.alpha > self.unexplored_arcs {
                        self.bottom_up = true;
                        self.switches += 1;
                    }
                } else if self.frontier.len() * self.params.beta < self.g.num_nodes() {
                    self.bottom_up = false;
                    self.switches += 1;
                }
                self.bottom_up
            }
        }
    }

    /// Push expansion. Phase 1 publishes the packed proposal to every
    /// unclaimed neighbour via `fetch_min`; phase 2 drains each proposed
    /// slot exactly once with `swap`. The sequential fast path performs the
    /// same min-merge in frontier order, yielding the identical claim set
    /// and values. The *order* of the next-frontier vector is internal
    /// state only: a node proposed from several fold chunks is drained by
    /// whichever worker swaps first, so its position can race under a
    /// multi-worker pool — which is never observable, because claims are
    /// min-merged and never order-sensitive. Do not expose or depend on
    /// frontier ordering.
    fn step_top_down(&self, frontier_degree: usize) -> Vec<NodeId> {
        let g = self.g;
        let owner = &self.owner;
        let dist = &self.dist;
        let proposals = &self.proposals;

        if frontier_degree <= SEQ_EDGE_CUTOFF {
            let mut candidates = Vec::new();
            for &u in &self.frontier {
                let prop = pack(
                    owner[u as usize].load(Ordering::Relaxed),
                    dist[u as usize].load(Ordering::Relaxed) + 1,
                );
                for v in g.neighbors_iter(u) {
                    if owner[v as usize].load(Ordering::Relaxed) == INVALID_NODE {
                        let cur = proposals[v as usize].load(Ordering::Relaxed);
                        if cur == NO_PROPOSAL {
                            candidates.push(v);
                        }
                        if prop < cur {
                            proposals[v as usize].store(prop, Ordering::Relaxed);
                        }
                    }
                }
            }
            let mut next = Vec::with_capacity(candidates.len());
            for &v in &candidates {
                let p = proposals[v as usize].swap(NO_PROPOSAL, Ordering::Relaxed);
                if p != NO_PROPOSAL {
                    let (o, d) = unpack(p);
                    owner[v as usize].store(o, Ordering::Relaxed);
                    dist[v as usize].store(d, Ordering::Relaxed);
                    next.push(v);
                }
            }
            return next;
        }

        let candidates: Vec<NodeId> = self
            .frontier
            .par_iter()
            .fold(Vec::new, |mut acc, &u| {
                let prop = pack(
                    owner[u as usize].load(Ordering::Relaxed),
                    dist[u as usize].load(Ordering::Relaxed) + 1,
                );
                for v in g.neighbors_iter(u) {
                    if owner[v as usize].load(Ordering::Relaxed) == INVALID_NODE {
                        proposals[v as usize].fetch_min(prop, Ordering::Relaxed);
                        acc.push(v);
                    }
                }
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });

        candidates
            .par_iter()
            .fold(Vec::new, |mut acc, &v| {
                let p = proposals[v as usize].swap(NO_PROPOSAL, Ordering::Relaxed);
                if p != NO_PROPOSAL {
                    let (o, d) = unpack(p);
                    owner[v as usize].store(o, Ordering::Relaxed);
                    dist[v as usize].store(d, Ordering::Relaxed);
                    acc.push(v);
                }
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            })
    }

    /// Pull expansion: rebuild the dense frontier bitmap, then let every
    /// unclaimed node take the minimum packed proposal over its in-frontier
    /// neighbours. No early exit — the full minimum is what keeps bottom-up
    /// byte-identical to top-down's `fetch_min`. The next frontier comes out
    /// in ascending node order (a different order than top-down produces,
    /// which is unobservable: claims are min-merged, never order-sensitive).
    fn step_bottom_up(&mut self) -> Vec<NodeId> {
        let n = self.g.num_nodes();
        let words = n.div_ceil(64);
        if self.in_frontier.len() != words {
            self.in_frontier = (0..words).map(|_| AtomicU64::new(0)).collect();
        }
        let bitmap = &self.in_frontier;
        let sequential = n <= SEQ_NODE_CUTOFF;
        if sequential {
            for w in bitmap {
                w.store(0, Ordering::Relaxed);
            }
            for &u in &self.frontier {
                bitmap[u as usize / 64].fetch_or(1u64 << (u % 64), Ordering::Relaxed);
            }
        } else {
            bitmap
                .par_iter()
                .for_each(|w| w.store(0, Ordering::Relaxed));
            self.frontier.par_iter().for_each(|&u| {
                bitmap[u as usize / 64].fetch_or(1u64 << (u % 64), Ordering::Relaxed);
            });
        }

        let g = self.g;
        let owner = &self.owner;
        let dist = &self.dist;
        let scan = |v: NodeId| -> Option<NodeId> {
            if owner[v as usize].load(Ordering::Relaxed) != INVALID_NODE {
                return None;
            }
            let mut best = NO_PROPOSAL;
            for u in g.neighbors_iter(v) {
                if bitmap[u as usize / 64].load(Ordering::Relaxed) >> (u % 64) & 1 == 1 {
                    let p = pack(
                        owner[u as usize].load(Ordering::Relaxed),
                        dist[u as usize].load(Ordering::Relaxed) + 1,
                    );
                    best = best.min(p);
                }
            }
            if best == NO_PROPOSAL {
                return None;
            }
            let (o, d) = unpack(best);
            owner[v as usize].store(o, Ordering::Relaxed);
            dist[v as usize].store(d, Ordering::Relaxed);
            Some(v)
        };
        if sequential {
            (0..n as NodeId).filter_map(scan).collect()
        } else {
            (0..n as NodeId).into_par_iter().filter_map(scan).collect()
        }
    }
}

/// Multi-source BFS with per-source ownership through the engine.
///
/// Returns the [`BfsResult`] together with `owner[v]` = index into `sources`
/// of the claiming source ([`INVALID_NODE`] if unreachable). A node listed
/// twice in `sources` keeps its first owner. For every strategy,
/// `owner[v]` is the smallest source index among the sources nearest to `v`.
pub fn multi_source_bfs<G: NeighborAccess>(
    g: &G,
    sources: &[NodeId],
    strategy: FrontierStrategy,
) -> (BfsResult, Vec<NodeId>) {
    let mut eng = FrontierEngine::new(g, strategy);
    // The engine skips duplicate sources, compressing its internal owner
    // ids; record each activated source's position in the caller's slice so
    // the returned owners can be mapped back to the documented "index into
    // `sources`" contract. Compression is monotone, so the smallest-owner
    // tie-break picks the same winner either way.
    let mut original_index: Vec<NodeId> = Vec::with_capacity(sources.len());
    for (i, &s) in sources.iter().enumerate() {
        if eng.add_source(s) {
            original_index.push(i as NodeId);
        }
    }
    eng.run();
    let visited = eng.claimed();
    let mut parts = eng.into_parts();
    if original_index.len() != sources.len() {
        for o in parts.owner.iter_mut() {
            if *o != INVALID_NODE {
                *o = original_index[*o as usize];
            }
        }
    }
    let levels = parts
        .dist
        .iter()
        .copied()
        .filter(|&d| d != INFINITE_DIST)
        .max()
        .unwrap_or(0);
    (
        BfsResult {
            dist: parts.dist,
            visited,
            levels,
        },
        parts.owner,
    )
}

/// Single-source BFS through the engine.
pub fn single_source_bfs<G: NeighborAccess>(
    g: &G,
    src: NodeId,
    strategy: FrontierStrategy,
) -> BfsResult {
    multi_source_bfs(g, std::slice::from_ref(&src), strategy).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::traversal;

    fn shapes() -> Vec<(&'static str, CsrGraph)> {
        vec![
            ("mesh", generators::mesh(13, 19)),
            ("social", generators::preferential_attachment(1500, 6, 3)),
            ("star", generators::star(120)),
            ("path", generators::path(70)),
            (
                "disconnected",
                generators::disjoint_union(&generators::mesh(8, 9), &generators::cycle(17)),
            ),
        ]
    }

    #[test]
    fn strategies_agree_single_source() {
        for (name, g) in shapes() {
            let reference = traversal::bfs(&g, 0);
            for strat in FrontierStrategy::ALL {
                let r = single_source_bfs(&g, 0, strat);
                assert_eq!(reference.dist, r.dist, "{name}/{strat}");
                assert_eq!(reference.visited, r.visited, "{name}/{strat}");
                assert_eq!(reference.levels, r.levels, "{name}/{strat}");
            }
        }
    }

    #[test]
    fn strategies_agree_multi_source() {
        for (name, g) in shapes() {
            let n = g.num_nodes() as NodeId;
            let sources = [0, n / 3, n / 2, n - 1, n / 3];
            let (base_r, base_o) = multi_source_bfs(&g, &sources, FrontierStrategy::TopDown);
            for strat in [FrontierStrategy::BottomUp, FrontierStrategy::Hybrid] {
                let (r, o) = multi_source_bfs(&g, &sources, strat);
                assert_eq!(base_r.dist, r.dist, "{name}/{strat}");
                assert_eq!(base_o, o, "{name}/{strat}");
                assert_eq!(base_r.visited, r.visited, "{name}/{strat}");
                assert_eq!(base_r.levels, r.levels, "{name}/{strat}");
            }
        }
    }

    #[test]
    fn owner_is_smallest_nearest_source() {
        // Path 0-1-2-3-4, sources at both ends: node 2 is equidistant and
        // must go to the first-listed source under every strategy.
        let g = generators::path(5);
        for strat in FrontierStrategy::ALL {
            let (r, owner) = multi_source_bfs(&g, &[0, 4], strat);
            assert_eq!(r.dist, vec![0, 1, 2, 1, 0], "{strat}");
            assert_eq!(owner, vec![0, 0, 0, 1, 1], "{strat}");
        }
    }

    #[test]
    fn duplicate_sources_keep_first_owner() {
        let g = generators::path(3);
        for strat in FrontierStrategy::ALL {
            let (r, owner) = multi_source_bfs(&g, &[1, 1], strat);
            assert_eq!(r.dist, vec![1, 0, 1], "{strat}");
            assert_eq!(owner, vec![0, 0, 0], "{strat}");
        }
    }

    #[test]
    fn owners_after_duplicates_keep_original_indices() {
        // Sources [4, 4, 0] on a path: the duplicate is skipped internally,
        // but node 0's region must still report owner index 2 (its position
        // in the caller's slice), and the contested middle goes to the
        // earlier-listed source 4.
        let g = generators::path(5);
        for strat in FrontierStrategy::ALL {
            let (r, owner) = multi_source_bfs(&g, &[4, 4, 0], strat);
            assert_eq!(r.dist, vec![0, 1, 2, 1, 0], "{strat}");
            assert_eq!(owner, vec![2, 2, 0, 0, 0], "{strat}");
        }
    }

    #[test]
    fn hybrid_switches_on_dense_graphs() {
        // A star saturates immediately: the single middle level must run
        // bottom-up under the hybrid heuristic.
        let g = generators::star(4000);
        let mut eng = FrontierEngine::new(&g, FrontierStrategy::Hybrid);
        eng.add_source(0);
        eng.run();
        assert!(eng.bottom_up_steps() > 0, "hybrid never went bottom-up");
        assert!(eng.direction_switches() > 0);
        assert_eq!(eng.claimed(), g.num_nodes());
    }

    #[test]
    fn hybrid_stays_top_down_on_long_paths() {
        // A path frontier has out-degree ≤ 2: the switch condition never
        // fires and hybrid degenerates to pure top-down.
        let g = generators::path(300);
        let mut eng = FrontierEngine::new(&g, FrontierStrategy::Hybrid);
        eng.add_source(0);
        eng.run();
        assert_eq!(eng.bottom_up_steps(), 0);
        assert_eq!(eng.direction_switches(), 0);
        assert_eq!(eng.claimed(), 300);
    }

    #[test]
    fn staggered_activation_matches_across_strategies() {
        // Activate sources mid-run (the CLUSTER/MPX usage pattern): claimed
        // labels must still agree between strategies.
        let g = generators::mesh(20, 20);
        let run = |strat| {
            let mut eng = FrontierEngine::new(&g, strat);
            eng.add_source(0);
            eng.step();
            eng.step();
            eng.add_source(399);
            eng.add_source(210);
            eng.run();
            let parts = eng.into_parts();
            (parts.owner, parts.dist, parts.sources)
        };
        let base = run(FrontierStrategy::TopDown);
        assert_eq!(base, run(FrontierStrategy::BottomUp));
        assert_eq!(base, run(FrontierStrategy::Hybrid));
    }

    #[test]
    fn empty_graph_and_empty_sources() {
        let g = CsrGraph::empty(0);
        let (r, owner) = multi_source_bfs(&g, &[], FrontierStrategy::Hybrid);
        assert_eq!(r.visited, 0);
        assert!(owner.is_empty());

        let g = generators::path(4);
        let (r, owner) = multi_source_bfs(&g, &[], FrontierStrategy::BottomUp);
        assert_eq!(r.visited, 0);
        assert_eq!(r.levels, 0);
        assert!(owner.iter().all(|&o| o == INVALID_NODE));
        assert!(r.dist.iter().all(|&d| d == INFINITE_DIST));
    }

    #[test]
    fn counted_noop_step_on_empty_frontier() {
        let g = generators::path(2);
        let mut eng = FrontierEngine::new(&g, FrontierStrategy::Hybrid);
        assert_eq!(eng.step(), 0);
        assert_eq!(eng.steps(), 1);
        assert_eq!(eng.claimed(), 0);
    }

    #[test]
    fn strategy_parsing_round_trips() {
        for strat in FrontierStrategy::ALL {
            assert_eq!(strat.name().parse::<FrontierStrategy>().unwrap(), strat);
            assert_eq!(strat.to_string(), strat.name());
        }
        assert_eq!("top-down".parse(), Ok(FrontierStrategy::TopDown));
        assert_eq!("bottom-up".parse(), Ok(FrontierStrategy::BottomUp));
        assert!("beamer".parse::<FrontierStrategy>().is_err());
        assert_eq!(FrontierStrategy::default(), FrontierStrategy::TopDown);
    }
}
