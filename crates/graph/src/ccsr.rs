//! Gap-coded compressed CSR — the memory-bound backend.
//!
//! The plain [`crate::CsrGraph`] spends `8(n + 1) + 4·2m` bytes: a `usize`
//! offset per node plus a raw `u32` per arc. On the power-law graphs the
//! paper targets, consecutive neighbors of a sorted adjacency list are
//! numerically close, so almost all of those 4 bytes per arc are zeros.
//! [`CcsrGraph`] stores each list the way webgraph does its reference-free
//! lists: deltas instead of absolutes, varint bytes instead of words.
//!
//! # Layout
//!
//! Vertices are concatenated in id order into one byte buffer; each vertex
//! `u` contributes one *record*:
//!
//! ```text
//! record(u) := varint(deg)                 // list length
//!              zigzag_varint(v₀ - u)       // first neighbor, signed delta
//!              varint(v₁ - v₀ - 1)         // gaps: lists are strictly
//!              varint(v₂ - v₁ - 1)         // ascending, so gap - 1 ≥ 0
//!              ...
//! ```
//!
//! *Skipping* a record needs no arithmetic decode — read `deg`, then scan
//! `deg` varint terminators (bytes without the continuation bit). A
//! **block index** (`index[b]` = byte offset of vertex `b · BLOCK`'s
//! record) turns random access into: jump to the block, skip at most
//! `BLOCK - 1` records. With `BLOCK` constant, degree lookup is O(1)
//! amortized and neighbor iteration O(deg), at an index overhead of
//! `8 / BLOCK` bytes per node.
//!
//! [`CweightedGraph`] is the `(target, weight)` analogue (each gap varint
//! is followed by a weight varint), feeding the delta-stepping engine
//! through [`crate::access::WeightedNeighborAccess`].
//!
//! # Determinism
//!
//! Encoding is a pure function of the adjacency structure, and decoding
//! yields exactly the sorted neighbor sequence the plain backend serves —
//! so every engine running through [`crate::access::NeighborAccess`]
//! produces byte-identical outputs on either backend (locked by the
//! round-trip proptests here and the equivalence suite in `tests/`).

use crate::access::{NeighborAccess, WeightedNeighborAccess};
use crate::{CsrGraph, NodeId, WeightedGraph};

/// Vertices per block-index entry. Small enough that skipping to a vertex
/// inside a block touches a handful of varints; large enough that the
/// index costs only `8 / BLOCK = 0.5` bytes per node.
pub const BLOCK: usize = 16;

/// Appends `x` as a little-endian base-128 varint (LEB128).
#[inline]
pub(crate) fn write_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a varint at `*pos`, advancing it. Trusted-path reader: panics on
/// truncated input (the buffer was validated at build/load time).
#[inline]
pub(crate) fn read_varint(data: &[u8], pos: &mut usize) -> u64 {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = data[*pos];
        *pos += 1;
        x |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return x;
        }
        shift += 7;
    }
}

/// Advances `*pos` past `count` varints without decoding them — a scan for
/// `count` bytes with the continuation bit clear.
#[inline]
fn skip_varints(data: &[u8], pos: &mut usize, count: u64) {
    for _ in 0..count {
        while data[*pos] & 0x80 != 0 {
            *pos += 1;
        }
        *pos += 1;
    }
}

/// Checked reader for untrusted bytes: `None` on truncation or a varint
/// wider than 64 bits.
#[inline]
pub(crate) fn try_read_varint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte & 0x7e != 0) {
            return None; // would overflow u64
        }
        x |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(x);
        }
        shift += 7;
    }
}

/// Maps a signed delta onto the unsigned varint domain (0, -1, 1, -2, …).
#[inline]
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub(crate) fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// An unweighted, undirected graph with gap-coded varint adjacency (see the
/// module docs for the layout). Same structural invariants as
/// [`CsrGraph`]: sorted, duplicate-free, self-loop-free, symmetric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CcsrGraph {
    num_nodes: usize,
    num_arcs: usize,
    /// Concatenated per-vertex records.
    data: Vec<u8>,
    /// `index[b]` = byte offset of vertex `b · BLOCK`'s record.
    index: Vec<u64>,
}

impl CcsrGraph {
    /// The empty graph on `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        let mut b = CcsrBuilder::new(n);
        for _ in 0..n {
            b.push_vertex(std::iter::empty());
        }
        b.finish()
    }

    /// Compresses a plain CSR graph (lossless; see [`Self::to_csr`]).
    pub fn from_csr(g: &CsrGraph) -> Self {
        let n = g.num_nodes();
        let mut b = CcsrBuilder::new(n);
        for u in 0..n as NodeId {
            b.push_vertex(g.neighbors(u).iter().copied());
        }
        b.finish()
    }

    /// Decompresses back into plain CSR (the exact graph that was encoded).
    pub fn to_csr(&self) -> CsrGraph {
        let n = self.num_nodes;
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(self.num_arcs);
        offsets.push(0usize);
        for u in 0..n as NodeId {
            targets.extend(self.neighbors_iter(u));
            offsets.push(targets.len());
        }
        CsrGraph::from_parts(offsets, targets)
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed arcs stored (`2m`).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.num_arcs
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_arcs / 2
    }

    /// Byte offset of vertex `u`'s record: jump to its block, then skip the
    /// in-block predecessors (one varint read + jump each).
    #[inline]
    fn locate(&self, u: NodeId) -> usize {
        let ui = u as usize;
        debug_assert!(ui < self.num_nodes);
        let mut pos = self.index[ui / BLOCK] as usize;
        for _ in 0..ui % BLOCK {
            let deg = read_varint(&self.data, &mut pos);
            skip_varints(&self.data, &mut pos, deg);
        }
        pos
    }

    /// Degree of node `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        let mut pos = self.locate(u);
        read_varint(&self.data, &mut pos) as usize
    }

    /// Sorted neighbors of `u`, decoded on the fly.
    #[inline]
    pub fn neighbors_iter(&self, u: NodeId) -> Neighbors<'_> {
        let mut pos = self.locate(u);
        let deg = read_varint(&self.data, &mut pos) as usize;
        Neighbors {
            data: &self.data,
            pos,
            remaining: deg,
            prev: 0,
            vertex: u,
            first: true,
        }
    }

    /// Resident bytes of the representation (adjacency data + block index).
    pub fn heap_bytes(&self) -> usize {
        self.data.len() + self.index.len() * std::mem::size_of::<u64>()
    }

    /// Raw record bytes (for the binary codec).
    #[inline]
    pub fn raw_data(&self) -> &[u8] {
        &self.data
    }

    /// Raw block index (for the binary codec).
    #[inline]
    pub fn raw_index(&self) -> &[u64] {
        &self.index
    }

    /// Reassembles a graph from codec output **without validation** — the
    /// caller must have run [`Self::validate_parts`] first (the checked
    /// loader does) or obtained the parts from [`Self::raw_data`] /
    /// [`Self::raw_index`].
    pub(crate) fn from_raw_parts(
        num_nodes: usize,
        num_arcs: usize,
        data: Vec<u8>,
        index: Vec<u64>,
    ) -> Self {
        debug_assert_eq!(index.len(), num_nodes.div_ceil(BLOCK));
        CcsrGraph {
            num_nodes,
            num_arcs,
            data,
            index,
        }
    }

    /// Fully validates untrusted codec output: every varint in bounds,
    /// record lengths consistent, block index exact, lists strictly
    /// ascending, targets in range, no self-loops, arc total matching, and
    /// the buffer consumed exactly. O(n + m); symmetry is *not* checked
    /// here (it is quadratic-ish on this layout) — the checked snapshot
    /// loader decompresses and runs the full
    /// [`CsrGraph::check_invariants`] on top.
    pub fn validate_parts(
        num_nodes: usize,
        num_arcs: usize,
        data: &[u8],
        index: &[u64],
    ) -> Result<(), String> {
        if index.len() != num_nodes.div_ceil(BLOCK) {
            return Err(format!(
                "block index has {} entries, expected {}",
                index.len(),
                num_nodes.div_ceil(BLOCK)
            ));
        }
        let mut pos = 0usize;
        let mut arcs = 0usize;
        for u in 0..num_nodes {
            if u % BLOCK == 0 && index[u / BLOCK] as usize != pos {
                return Err(format!("block index entry {} off target", u / BLOCK));
            }
            let deg =
                try_read_varint(data, &mut pos).ok_or_else(|| "truncated degree".to_string())?;
            let mut prev: i64 = -1;
            for i in 0..deg {
                let raw = try_read_varint(data, &mut pos)
                    .ok_or_else(|| format!("truncated list of {u}"))?;
                let v = if i == 0 {
                    u as i64 + unzigzag(raw)
                } else {
                    prev.checked_add(1 + raw as i64)
                        .ok_or_else(|| format!("gap overflow in list of {u}"))?
                };
                if v < 0 || v >= num_nodes as i64 {
                    return Err(format!("target {v} of {u} out of range"));
                }
                if v == u as i64 {
                    return Err(format!("self-loop at {u}"));
                }
                if v <= prev {
                    return Err(format!("adjacency of {u} not strictly sorted"));
                }
                prev = v;
            }
            arcs += deg as usize;
        }
        if pos != data.len() {
            return Err("trailing bytes after the last record".to_string());
        }
        if arcs != num_arcs {
            return Err(format!("arc count {arcs} disagrees with header {num_arcs}"));
        }
        Ok(())
    }
}

impl NeighborAccess for CcsrGraph {
    type Neighbors<'a> = Neighbors<'a>;

    #[inline]
    fn num_nodes(&self) -> usize {
        CcsrGraph::num_nodes(self)
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        CcsrGraph::num_arcs(self)
    }

    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        CcsrGraph::degree(self, u)
    }

    #[inline]
    fn neighbors_iter(&self, u: NodeId) -> Self::Neighbors<'_> {
        CcsrGraph::neighbors_iter(self, u)
    }
}

/// Decoding iterator over one vertex's gap-coded neighbor list.
pub struct Neighbors<'a> {
    data: &'a [u8],
    pos: usize,
    remaining: usize,
    prev: u64,
    vertex: NodeId,
    first: bool,
}

impl Iterator for Neighbors<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let raw = read_varint(self.data, &mut self.pos);
        let v = if self.first {
            self.first = false;
            (self.vertex as i64 + unzigzag(raw)) as u64
        } else {
            self.prev + 1 + raw
        };
        self.prev = v;
        Some(v as NodeId)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for Neighbors<'_> {}

/// Incremental encoder: push each vertex's sorted neighbor list in id
/// order, then [`finish`](Self::finish). This is the streaming builder's
/// sink — it never sees more than one list at a time, so building a
/// compressed graph from a sorted arc stream is O(1) extra memory.
pub struct CcsrBuilder {
    num_nodes: usize,
    next: usize,
    num_arcs: usize,
    data: Vec<u8>,
    index: Vec<u64>,
    /// Scratch for the record body (the delta varints) — the degree can
    /// only be written once the list has been consumed.
    body: Vec<u8>,
}

impl CcsrBuilder {
    /// An encoder expecting exactly `n` vertices.
    pub fn new(n: usize) -> Self {
        CcsrBuilder {
            num_nodes: n,
            next: 0,
            num_arcs: 0,
            data: Vec::new(),
            index: Vec::with_capacity(n.div_ceil(BLOCK)),
            body: Vec::new(),
        }
    }

    /// Encodes the next vertex's neighbor list (must be strictly ascending,
    /// in `0..n`, and free of `u` itself).
    ///
    /// # Panics
    /// Panics on a violated list invariant or on pushing more than `n`
    /// vertices.
    pub fn push_vertex(&mut self, nbrs: impl IntoIterator<Item = NodeId>) {
        assert!(self.next < self.num_nodes, "more vertices than declared");
        let u = self.next as NodeId;
        if self.next.is_multiple_of(BLOCK) {
            self.index.push(self.data.len() as u64);
        }
        self.body.clear();
        let mut deg = 0usize;
        let mut prev = 0u64;
        for v in nbrs {
            assert!((v as usize) < self.num_nodes, "target {v} out of range");
            assert_ne!(v, u, "self-loop at {u}");
            if deg == 0 {
                write_varint(&mut self.body, zigzag(v as i64 - u as i64));
            } else {
                assert!(u64::from(v) > prev, "adjacency of {u} not strictly sorted");
                write_varint(&mut self.body, u64::from(v) - prev - 1);
            }
            prev = u64::from(v);
            deg += 1;
        }
        write_varint(&mut self.data, deg as u64);
        self.data.extend_from_slice(&self.body);
        self.num_arcs += deg;
        self.next += 1;
    }

    /// Seals the encoder.
    ///
    /// # Panics
    /// Panics if fewer than `n` vertices were pushed.
    pub fn finish(self) -> CcsrGraph {
        assert_eq!(self.next, self.num_nodes, "not all vertices were pushed");
        CcsrGraph {
            num_nodes: self.num_nodes,
            num_arcs: self.num_arcs,
            data: self.data,
            index: self.index,
        }
    }
}

/// Weighted analogue of [`CcsrGraph`]: each gap varint is followed by a
/// varint weight. Feeds [`crate::WeightedFrontierEngine`] through
/// [`WeightedNeighborAccess`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CweightedGraph {
    num_nodes: usize,
    num_arcs: usize,
    data: Vec<u8>,
    index: Vec<u64>,
}

impl CweightedGraph {
    /// Compresses a plain weighted graph (lossless).
    pub fn from_weighted(g: &WeightedGraph) -> Self {
        let n = g.num_nodes();
        let mut data = Vec::new();
        let mut index = Vec::with_capacity(n.div_ceil(BLOCK));
        let mut body = Vec::new();
        let mut arcs = 0usize;
        for u in 0..n as NodeId {
            if (u as usize).is_multiple_of(BLOCK) {
                index.push(data.len() as u64);
            }
            body.clear();
            let mut deg = 0usize;
            let mut prev = 0u64;
            for (v, w) in g.neighbors(u) {
                if deg == 0 {
                    write_varint(&mut body, zigzag(v as i64 - u as i64));
                } else {
                    write_varint(&mut body, u64::from(v) - prev - 1);
                }
                write_varint(&mut body, w);
                prev = u64::from(v);
                deg += 1;
            }
            write_varint(&mut data, deg as u64);
            data.extend_from_slice(&body);
            arcs += deg;
        }
        CweightedGraph {
            num_nodes: n,
            num_arcs: arcs,
            data,
            index,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_arcs / 2
    }

    /// Resident bytes of the representation.
    pub fn heap_bytes(&self) -> usize {
        self.data.len() + self.index.len() * std::mem::size_of::<u64>()
    }

    #[inline]
    fn locate(&self, u: NodeId) -> usize {
        let ui = u as usize;
        debug_assert!(ui < self.num_nodes);
        let mut pos = self.index[ui / BLOCK] as usize;
        for _ in 0..ui % BLOCK {
            let deg = read_varint(&self.data, &mut pos);
            skip_varints(&self.data, &mut pos, 2 * deg);
        }
        pos
    }

    /// Sorted `(neighbor, weight)` pairs of `u`, decoded on the fly.
    #[inline]
    pub fn wneighbors(&self, u: NodeId) -> WNeighbors<'_> {
        let mut pos = self.locate(u);
        let deg = read_varint(&self.data, &mut pos) as usize;
        WNeighbors {
            data: &self.data,
            pos,
            remaining: deg,
            prev: 0,
            vertex: u,
            first: true,
        }
    }
}

impl WeightedNeighborAccess for CweightedGraph {
    type WNeighbors<'a> = WNeighbors<'a>;

    #[inline]
    fn num_nodes(&self) -> usize {
        CweightedGraph::num_nodes(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        CweightedGraph::num_edges(self)
    }

    #[inline]
    fn wneighbors_iter(&self, u: NodeId) -> Self::WNeighbors<'_> {
        self.wneighbors(u)
    }
}

/// Decoding iterator over one vertex's gap-coded `(target, weight)` list.
pub struct WNeighbors<'a> {
    data: &'a [u8],
    pos: usize,
    remaining: usize,
    prev: u64,
    vertex: NodeId,
    first: bool,
}

impl Iterator for WNeighbors<'_> {
    type Item = (NodeId, u64);

    #[inline]
    fn next(&mut self) -> Option<(NodeId, u64)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let raw = read_varint(self.data, &mut self.pos);
        let v = if self.first {
            self.first = false;
            (self.vertex as i64 + unzigzag(raw)) as u64
        } else {
            self.prev + 1 + raw
        };
        let w = read_varint(self.data, &mut self.pos);
        self.prev = v;
        Some((v as NodeId, w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;
    use proptest::prelude::*;

    fn assert_equiv(g: &CsrGraph) {
        let c = CcsrGraph::from_csr(g);
        assert_eq!(c.num_nodes(), g.num_nodes());
        assert_eq!(c.num_arcs(), g.num_arcs());
        for u in 0..g.num_nodes() as NodeId {
            assert_eq!(c.degree(u), g.degree(u), "degree diverged at {u}");
            let decoded: Vec<NodeId> = c.neighbors_iter(u).collect();
            assert_eq!(decoded, g.neighbors(u), "list diverged at {u}");
        }
        assert_eq!(&c.to_csr(), g);
        assert!(CcsrGraph::validate_parts(
            c.num_nodes(),
            c.num_arcs(),
            c.raw_data(),
            c.raw_index()
        )
        .is_ok());
    }

    #[test]
    fn varint_roundtrip_edges() {
        for x in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, x);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), x);
            assert_eq!(pos, buf.len());
            let mut pos = 0;
            assert_eq!(try_read_varint(&buf, &mut pos), Some(x));
        }
    }

    #[test]
    fn try_read_varint_rejects_truncation_and_overflow() {
        assert_eq!(try_read_varint(&[0x80], &mut 0), None);
        assert_eq!(try_read_varint(&[], &mut 0), None);
        // 11 continuation bytes: wider than any u64.
        let wide = [0xffu8; 11];
        assert_eq!(try_read_varint(&wide, &mut 0), None);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn fixture_graphs_roundtrip() {
        assert_equiv(&CsrGraph::empty(0));
        assert_equiv(&CsrGraph::empty(17));
        assert_equiv(&generators::mesh(13, 9));
        assert_equiv(&generators::star(50));
        assert_equiv(&generators::complete(20));
        assert_equiv(&generators::preferential_attachment(500, 4, 7));
        assert_equiv(&generators::lollipop(40, 4, 60, 11));
    }

    #[test]
    fn compression_beats_plain_on_power_law() {
        let g = generators::windowed_preferential_attachment(20_000, 8, 0.025, 101);
        let c = CcsrGraph::from_csr(&g);
        let plain = std::mem::size_of::<usize>() * (g.num_nodes() + 1) + 4 * g.num_arcs();
        assert!(
            c.heap_bytes() * 3 <= plain,
            "expected ≥ 3× on power-law: {} vs {}",
            c.heap_bytes(),
            plain
        );
    }

    #[test]
    fn upper_neighbors_match_plain() {
        use crate::access::NeighborAccess as _;
        let g = generators::mesh(7, 8);
        let c = CcsrGraph::from_csr(&g);
        for u in 0..g.num_nodes() as NodeId {
            let upper: Vec<NodeId> = c.upper_neighbors_iter(u).collect();
            assert_eq!(upper, g.upper_neighbors(u));
        }
    }

    #[test]
    fn validate_rejects_corruption() {
        let g = GraphBuilder::new(6)
            .add_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)])
            .build();
        let c = CcsrGraph::from_csr(&g);
        let (n, arcs) = (c.num_nodes(), c.num_arcs());
        let data = c.raw_data().to_vec();
        let index = c.raw_index().to_vec();
        assert!(CcsrGraph::validate_parts(n, arcs, &data, &index).is_ok());
        // Wrong arc count.
        assert!(CcsrGraph::validate_parts(n, arcs + 1, &data, &index).is_err());
        // Truncated data: every prefix must be rejected.
        for cut in 0..data.len() {
            assert!(
                CcsrGraph::validate_parts(n, arcs, &data[..cut], &index).is_err(),
                "prefix of {cut} bytes accepted"
            );
        }
        // Trailing garbage.
        let mut padded = data.clone();
        padded.push(0);
        assert!(CcsrGraph::validate_parts(n, arcs, &padded, &index).is_err());
        // Mis-aimed block index.
        let mut bad_index = index.clone();
        if !bad_index.is_empty() {
            bad_index[0] += 1;
            assert!(CcsrGraph::validate_parts(n, arcs, &data, &bad_index).is_err());
        }
        // Flipping any single byte must never validate as the same graph:
        // either validation fails or the decoded lists differ.
        for i in 0..data.len() {
            let mut mutated = data.clone();
            mutated[i] ^= 0x01;
            if CcsrGraph::validate_parts(n, arcs, &mutated, &index).is_ok() {
                // Structurally valid after the flip (e.g. now asymmetric):
                // the decoded lists must at least differ from the original.
                let m = CcsrGraph::from_raw_parts(n, arcs, mutated, index.clone());
                let same = (0..n as NodeId)
                    .all(|u| m.neighbors_iter(u).collect::<Vec<_>>() == g.neighbors(u));
                assert!(!same, "byte flip at {i} decoded identically");
            }
        }
    }

    #[test]
    fn weighted_roundtrip() {
        let g = WeightedGraph::from_edges(
            6,
            &[(0, 1, 3), (1, 2, 900), (2, 3, 1), (0, 5, 70), (4, 5, 2)],
        );
        let c = CweightedGraph::from_weighted(&g);
        assert_eq!(c.num_nodes(), g.num_nodes());
        assert_eq!(c.num_edges(), g.num_edges());
        for u in 0..g.num_nodes() as NodeId {
            let decoded: Vec<(NodeId, u64)> = c.wneighbors(u).collect();
            let plain: Vec<(NodeId, u64)> = g.neighbors(u).collect();
            assert_eq!(decoded, plain, "weighted list diverged at {u}");
        }
    }

    /// Arbitrary graph strategy (the same family mix as the I/O proptests:
    /// meshes, G(n, m) soups, power-law, empty).
    fn any_graph() -> impl Strategy<Value = CsrGraph> {
        prop_oneof![
            (1usize..10, 1usize..10).prop_map(|(r, c)| generators::mesh(r, c)),
            (0usize..80, 0usize..160, 0u64..1000).prop_map(|(n, m, s)| {
                generators::gnm(n, m.min(n.saturating_sub(1) * n / 2), s)
            }),
            (2usize..60, 1u64..1000).prop_map(|(n, s)| {
                generators::preferential_attachment(n.max(4), 3.min(n - 1), s)
            }),
            (0usize..50).prop_map(CsrGraph::empty),
        ]
    }

    proptest! {
        /// The tentpole equivalence lock: compressed encode → decode
        /// reproduces every plain-CSR neighbor list exactly.
        #[test]
        fn roundtrip_equals_plain(g in any_graph()) {
            assert_equiv(&g);
        }

        /// Weighted compressed lists reproduce the plain weighted lists.
        #[test]
        fn weighted_roundtrip_equals_plain(
            n in 1usize..40,
            edges in proptest::collection::vec((0u32..40, 0u32..40, 0u64..1u64 << 40), 0..120),
        ) {
            let edges: Vec<(NodeId, NodeId, u64)> = edges
                .into_iter()
                .map(|(u, v, w)| (u % n as NodeId, v % n as NodeId, w))
                .collect();
            let g = WeightedGraph::from_edges(n, &edges);
            let c = CweightedGraph::from_weighted(&g);
            for u in 0..n as NodeId {
                let decoded: Vec<(NodeId, u64)> = c.wneighbors(u).collect();
                let plain: Vec<(NodeId, u64)> = g.neighbors(u).collect();
                prop_assert_eq!(decoded, plain);
            }
        }
    }
}
