//! Parallel edge-combine kernel: the contraction counterpart of the MR
//! crate's radix shuffle.
//!
//! Every contraction path in this workspace — quotient construction,
//! [`crate::GraphBuilder::build`], [`crate::contract::contract`]'s edge
//! multiplicities, the Baswana–Sen spanner's final CSR build — reduces to
//! the same primitive: *collapse a large multiset of `(key, value)` pairs to
//! one entry per key under a fold* (dedup, min, or sum). The seed-era code
//! did this with a sequential `HashMap` pass per call site; on power-law
//! graphs that pass dominated `approximate_diameter` wall-clock.
//!
//! This module replaces all of them with one deterministic parallel kernel,
//! mirroring the `pardec_mr::shuffle` design but living *below* the MR crate
//! in the dependency DAG so the graph layer can use it directly:
//!
//! 1. **Count** — the input is split into a fixed chunk grid (a pure
//!    function of the input length, never the pool size); each chunk
//!    histograms its pairs per destination bucket, where a bucket is a
//!    contiguous *range of keys* (`key >> shift`), not a hash class.
//! 2. **Prefix** — an exclusive prefix sum over the `chunks × buckets`
//!    count matrix (bucket-major, then chunk within bucket) assigns every
//!    cell a disjoint range of **one** flat pre-sized buffer.
//! 3. **Scatter** — a second parallel pass moves each pair into its slot;
//!    bucket contents end up in global input order by construction.
//! 4. **Sort + fold** — each bucket is sorted by key and folded in place
//!    (equal-key runs collapse left-to-right), in parallel across buckets;
//!    compacted buckets concatenate into the final buffer.
//!
//! Because buckets are key *ranges*, the concatenation is globally sorted by
//! key — the output is the canonical sorted-unique form of the input
//! multiset, a pure function of the input (independent of pool size, chunk
//! grid, and bucket count). Byte-identical outputs at any thread count fall
//! out for free, and sorted arcs are exactly what a CSR build needs: the
//! offsets array is read straight off the combined buffer.
//!
//! The only `unsafe` here is the cell scatter (disjoint slots of one flat
//! buffer written through raw pointers, the same invariant as the MR
//! shuffle's scatter) and the final `MaybeUninit` → initialized conversion;
//! all values are `Copy`, so panics can never double-drop.

use crate::csr::CsrGraph;
use crate::NodeId;
use rayon::prelude::*;
use std::mem::MaybeUninit;

/// Inputs at or below this size skip the bucketed machinery and run one
/// sequential sort + fold — same canonical output, none of the grid
/// overhead (the seed-era builder used the same threshold for its
/// parallel sort). Also the cutoff for sequential CSR offset builds.
const SMALL: usize = 1 << 16;

/// Below this many *source indices*, [`par_emit`] skips the two-pass
/// count-then-fill machinery entirely and emits in one sequential pass into
/// a growable buffer. The two-pass layout exists to give parallel workers
/// disjoint pre-sized cells; on tiny inputs (the road benchmark's per-level
/// cut sets) the extra `count` sweep and chunk bookkeeping cost ~30% of the
/// whole kernel while the parallel pass never wins anything back.
const SEQ_EMIT: usize = 4096;

/// What one kernel invocation did — the contraction analogue of the MR
/// engine's shuffle ledger. `input_pairs / output_pairs` is the combine
/// ratio: how many parallel/duplicate records the fold collapsed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CombineStats {
    /// Records fed to the kernel (for a quotient build: undirected cut
    /// edges).
    pub input_pairs: usize,
    /// Distinct keys surviving the fold (for a quotient build: unique
    /// quotient edges).
    pub output_pairs: usize,
    /// Buckets of the scatter grid (1 for the sequential small-input path).
    pub buckets: usize,
}

impl CombineStats {
    /// `input_pairs / output_pairs` — the multi-edge collapse factor.
    pub fn combine_ratio(&self) -> f64 {
        self.input_pairs as f64 / self.output_pairs.max(1) as f64
    }
}

impl pardec_obs::Observe for CombineStats {
    fn scope(&self) -> &'static str {
        "combine"
    }
    fn observe(&self, m: &mut pardec_obs::Metrics) {
        m.counter("input_pairs", self.input_pairs as u64);
        m.counter("output_pairs", self.output_pairs as u64);
        m.counter("buckets", self.buckets as u64);
        m.gauge("combine_ratio", self.combine_ratio());
    }
}

/// Packs an ordered pair of node ids into one `u64` key (`hi` in the upper
/// 32 bits). Keys compare like `(hi, lo)` tuples.
#[inline]
pub fn pack(hi: NodeId, lo: NodeId) -> u64 {
    ((hi as u64) << 32) | lo as u64
}

/// Inverse of [`pack`].
#[inline]
pub fn unpack(key: u64) -> (NodeId, NodeId) {
    ((key >> 32) as NodeId, key as NodeId)
}

/// The scatter grid size: a pure function of the input length (never the
/// pool size), so every layout downstream is thread-count independent.
fn grid(n: usize) -> usize {
    (n / 4096).clamp(1, 256).next_power_of_two()
}

/// A pre-sized buffer of uninitialized slots.
fn uninit_vec<T>(len: usize) -> Vec<MaybeUninit<T>> {
    let mut v = Vec::with_capacity(len);
    // SAFETY: `MaybeUninit` needs no initialization, so exposing `len`
    // uninitialized slots is sound.
    unsafe { v.set_len(len) };
    v
}

/// Converts a fully written `MaybeUninit` buffer into an initialized one.
///
/// # Safety
/// Every slot must have been written.
unsafe fn assume_init_vec<T>(v: Vec<MaybeUninit<T>>) -> Vec<T> {
    let mut v = std::mem::ManuallyDrop::new(v);
    // SAFETY: `MaybeUninit<T>` and `T` have identical layout, and the caller
    // guarantees every slot is initialized.
    unsafe { Vec::from_raw_parts(v.as_mut_ptr().cast(), v.len(), v.capacity()) }
}

/// Splits `buf` into consecutive mutable cells of the given lengths,
/// dropping whatever lies beyond their sum.
fn split_cells<'a, T>(mut buf: &'a mut [T], lens: &[usize]) -> Vec<&'a mut [T]> {
    let mut cells = Vec::with_capacity(lens.len());
    for &len in lens {
        let (cell, rest) = buf.split_at_mut(len);
        cells.push(cell);
        buf = rest;
    }
    cells
}

/// Raw pointer wrapper that is `Send`/`Sync` when the pointee is `Send`;
/// every call site must guarantee the disjointness of its writes.
struct SyncPtr<T>(*mut T);
unsafe impl<T: Send> Send for SyncPtr<T> {}
unsafe impl<T: Send> Sync for SyncPtr<T> {}

/// Write cursor over one cell of a [`par_emit`] buffer (or, on the
/// sequential small-input path, over one growable output buffer).
pub struct Emit<'a, T> {
    inner: EmitInner<'a, T>,
}

enum EmitInner<'a, T> {
    /// Pre-sized disjoint cell of the parallel two-pass path.
    Cell {
        cell: &'a mut [MaybeUninit<T>],
        pos: usize,
    },
    /// Growable buffer of the single-pass sequential path.
    Grow(&'a mut Vec<T>),
}

impl<T: Copy> Emit<'_, T> {
    /// Appends one item. On the parallel path, panics (index out of bounds)
    /// if the caller emits more items than its `count` closure declared.
    #[inline]
    pub fn push(&mut self, item: T) {
        match &mut self.inner {
            EmitInner::Cell { cell, pos } => {
                cell[*pos].write(item);
                *pos += 1;
            }
            EmitInner::Grow(out) => out.push(item),
        }
    }
}

/// Two-pass parallel emission into one flat pre-sized buffer.
///
/// `count(i)` declares how many items source index `i` will emit; a prefix
/// sum over per-chunk totals pre-sizes the output, and `fill(i, emit)` then
/// writes exactly that many via [`Emit::push`]. The output order is source
/// order — a pure function of the input, independent of the pool size.
///
/// Inputs below a few thousand sources take a single-pass sequential route:
/// `fill` appends straight into one growable buffer and `count` is never
/// consulted. The output is identical (source order either way); only the
/// two-pass bookkeeping — and its declared-count check — is skipped.
///
/// # Panics
/// Panics if `fill` emits a different number of items than `count` declared
/// (parallel path only; the sequential path has no declaration to violate).
pub fn par_emit<T, C, F>(items: usize, count: C, fill: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    C: Fn(usize) -> usize + Sync,
    F: Fn(usize, &mut Emit<'_, T>) + Sync,
{
    if items <= SEQ_EMIT {
        let mut out = Vec::new();
        for i in 0..items {
            fill(
                i,
                &mut Emit {
                    inner: EmitInner::Grow(&mut out),
                },
            );
        }
        return out;
    }
    let chunk_size = items.div_ceil(grid(items)).max(1);
    let num_chunks = items.div_ceil(chunk_size);
    let lens: Vec<usize> = (0..num_chunks)
        .into_par_iter()
        .map(|c| {
            let lo = c * chunk_size;
            let hi = (lo + chunk_size).min(items);
            (lo..hi).map(&count).sum()
        })
        .collect();
    let total: usize = lens.iter().sum();
    let mut flat = uninit_vec::<T>(total);
    let cells: Vec<(usize, &mut [MaybeUninit<T>])> =
        (0..num_chunks).zip(split_cells(&mut flat, &lens)).collect();
    cells.into_par_iter().for_each(|(c, cell)| {
        let expected = cell.len();
        let mut emit = Emit {
            inner: EmitInner::Cell { cell, pos: 0 },
        };
        let lo = c * chunk_size;
        let hi = (lo + chunk_size).min(items);
        for i in lo..hi {
            fill(i, &mut emit);
        }
        let written = match emit.inner {
            EmitInner::Cell { pos, .. } => pos,
            EmitInner::Grow(_) => unreachable!("parallel path always uses cells"),
        };
        assert_eq!(
            written, expected,
            "par_emit: fill wrote fewer items than count declared"
        );
    });
    // SAFETY: each cell asserted full coverage of its slots above.
    unsafe { assume_init_vec(flat) }
}

/// Collapses equal-key runs of a key-sorted slice in place, left-to-right,
/// returning the compacted length.
fn fold_runs<T, K, F>(items: &mut [T], key_of: &K, fold: &F) -> usize
where
    T: Copy,
    K: Fn(&T) -> u64,
    F: Fn(T, T) -> T,
{
    let mut w = 0usize;
    for r in 0..items.len() {
        let item = items[r];
        if w > 0 && key_of(&items[w - 1]) == key_of(&item) {
            items[w - 1] = fold(items[w - 1], item);
        } else {
            items[w] = item;
            w += 1;
        }
    }
    w
}

/// The kernel: collapses `items` to one entry per key under `fold`,
/// returning them **sorted by key** together with the run's stats.
///
/// `key_space` is an exclusive upper bound on every key (it sizes the
/// bucket ranges). `fold(acc, next)` must be commutative and associative —
/// dedup, min, and sum, the three folds every contraction path uses — so
/// that the result is a pure function of the input *multiset*: the bucket
/// sort is unstable and equal-key items reach the fold in a deterministic
/// but not input order. Outputs are byte-identical at any pool size either
/// way (chunk grid, bucket ranges, and sort depend only on the input).
pub fn combine_by_key<T, K, F>(
    mut items: Vec<T>,
    key_space: u64,
    key_of: K,
    fold: F,
) -> (Vec<T>, CombineStats)
where
    T: Copy + Send + Sync,
    K: Fn(&T) -> u64 + Sync,
    F: Fn(T, T) -> T + Sync,
{
    let input_pairs = items.len();
    if input_pairs <= SMALL || key_space == 0 {
        items.sort_unstable_by_key(&key_of);
        let len = fold_runs(&mut items, &key_of, &fold);
        items.truncate(len);
        let stats = CombineStats {
            input_pairs,
            output_pairs: items.len(),
            buckets: 1,
        };
        pardec_obs::record(&stats);
        return (items, stats);
    }

    // Buckets are contiguous key ranges: the smallest shift that squeezes
    // the key space into at most `grid(n)` ranges. Range buckets (unlike
    // hash buckets) make the per-bucket sorted outputs concatenate into a
    // globally key-sorted buffer.
    let max_key = key_space - 1;
    let want = grid(input_pairs) as u64;
    let mut shift = 0u32;
    while (max_key >> shift) >= want {
        shift += 1;
    }
    let buckets = ((max_key >> shift) + 1) as usize;
    let chunk_size = input_pairs.div_ceil(grid(input_pairs)).max(1);

    // Pass 1 — count: per-chunk histograms of destination buckets.
    let count_span = pardec_obs::span!("combine.count", pairs = input_pairs, buckets = buckets);
    let counts: Vec<Vec<u32>> = items
        .par_chunks(chunk_size)
        .map(|chunk| {
            let mut histogram = vec![0u32; buckets];
            for item in chunk {
                histogram[(key_of(item) >> shift) as usize] += 1;
            }
            histogram
        })
        .collect();
    drop(count_span);

    // Exclusive prefix sums, bucket-major: bucket `b` starts after all
    // smaller buckets; within `b`, chunk `c` starts after smaller chunks.
    let prefix_span = pardec_obs::span!("combine.prefix", buckets = buckets);
    let mut starts = vec![0usize; buckets + 1];
    for b in 0..buckets {
        let total: usize = counts.iter().map(|h| h[b] as usize).sum();
        starts[b + 1] = starts[b] + total;
    }
    let mut cell_offsets: Vec<Vec<usize>> = Vec::with_capacity(counts.len());
    let mut cursor = starts[..buckets].to_vec();
    for histogram in &counts {
        cell_offsets.push(cursor.clone());
        for (c, h) in cursor.iter_mut().zip(histogram) {
            *c += *h as usize;
        }
    }
    drop(prefix_span);

    // Pass 2 — scatter into one flat pre-sized buffer.
    let scatter_span = pardec_obs::span!("combine.scatter", pairs = input_pairs);
    let mut flat = uninit_vec::<T>(input_pairs);
    let dst = SyncPtr(flat.as_mut_ptr());
    let dst = &dst;
    let key_of_ref = &key_of;
    cell_offsets
        .par_iter_mut()
        .zip(items.par_chunks(chunk_size))
        .for_each(move |(cursor, chunk)| {
            for &item in chunk {
                let b = (key_of_ref(&item) >> shift) as usize;
                let slot = cursor[b];
                cursor[b] += 1;
                // SAFETY: the prefix sums assign every (chunk, bucket) cell
                // a disjoint range of `flat`, and `slot` walks that range
                // once; each index is written by exactly one worker, once.
                unsafe { (*dst.0.add(slot)).write(item) };
            }
        });
    drop(items);
    drop(scatter_span);
    // SAFETY: the histograms cover every input item, so the cell ranges
    // tile `flat` exactly and every slot was written.
    let mut flat: Vec<T> = unsafe { assume_init_vec(flat) };

    let mut fold_span = pardec_obs::span!("combine.fold", buckets = buckets);
    // Pass 3 — per-bucket sort + fold, in parallel across buckets. Bucket
    // contents are in global input order here, and the sort is
    // deterministic, so the fold order (hence the output) is a pure
    // function of the input even for non-commutative folds.
    let lens: Vec<usize> = (1..=buckets).map(|b| starts[b] - starts[b - 1]).collect();
    let out_lens: Vec<usize> = split_cells(&mut flat, &lens)
        .into_par_iter()
        .map(|bucket| {
            bucket.sort_unstable_by_key(key_of_ref);
            fold_runs(bucket, key_of_ref, &fold)
        })
        .collect();

    // Pass 4 — compact the folded bucket prefixes into the final buffer.
    let total: usize = out_lens.iter().sum();
    let mut out = uninit_vec::<T>(total);
    let copies: Vec<(&[T], &mut [MaybeUninit<T>])> = (0..buckets)
        .map(|b| &flat[starts[b]..starts[b] + out_lens[b]])
        .zip(split_cells(&mut out, &out_lens))
        .collect();
    copies.into_par_iter().for_each(|(src, dst)| {
        for (slot, item) in dst.iter_mut().zip(src) {
            slot.write(*item);
        }
    });
    // SAFETY: each destination cell has exactly its source prefix's length.
    let out = unsafe { assume_init_vec(out) };
    fold_span.field("output_pairs", total);
    drop(fold_span);

    let stats = CombineStats {
        input_pairs,
        output_pairs: total,
        buckets,
    };
    pardec_obs::record(&stats);
    (out, stats)
}

/// Builds a [`CsrGraph`] on `n` nodes from packed directed arcs
/// ([`pack`]`(u, v)`), deduplicating in parallel.
///
/// The arc multiset must be symmetric (every `(u, v)` accompanied by
/// `(v, u)`) and free of self-loops and out-of-range endpoints — the
/// callers all guarantee this by construction, and debug builds re-verify
/// via the CSR invariant check. Prefer [`csr_from_half_arcs`] when the
/// caller can emit each undirected edge once: combining half the records
/// costs half the sort.
pub fn csr_from_arcs(n: usize, arcs: Vec<u64>) -> (CsrGraph, CombineStats) {
    if n == 0 {
        debug_assert!(arcs.is_empty());
        return (CsrGraph::empty(0), CombineStats::default());
    }
    let key_space = (n as u64) << 32;
    let (arcs, stats) = combine_by_key(arcs, key_space, |&a| a, |first, _dup| first);
    let (offsets, targets) = csr_parts_from_sorted(n, &arcs, |&a| a);
    (CsrGraph::from_parts(offsets, targets), stats)
}

/// Combines normalized half-records (key = [`pack`]`(a, b)` with `a ≤ b`
/// node/cluster ids, one record per undirected edge occurrence) and then
/// symmetrizes the combined entries into the full sorted arc set.
///
/// This is the cheap route from an edge multiset to CSR input: the
/// expensive combine runs over `m` half-records instead of `2m` arcs, and
/// only the (much smaller) unique entry set is mirrored and re-sorted.
/// Self-loop keys (`a == b`) must already be filtered out. The returned
/// stats describe the *first* combine: undirected records in, unique
/// undirected edges out.
pub(crate) fn combine_symmetrize<T, K, R, F>(
    n: usize,
    half: Vec<T>,
    key_of: K,
    rekey: R,
    fold: F,
) -> (Vec<T>, CombineStats)
where
    T: Copy + Send + Sync,
    K: Fn(&T) -> u64 + Sync,
    R: Fn(T) -> T + Sync,
    F: Fn(T, T) -> T + Sync,
{
    let key_space = (n as u64) << 32;
    let (entries, stats) = combine_by_key(half, key_space, &key_of, fold);
    // Mirror each unique entry; the second combine never folds (all keys
    // distinct) — it only key-sorts the doubled set.
    let mirrored = par_emit(
        entries.len(),
        |_| 2,
        |i, emit| {
            emit.push(entries[i]);
            emit.push(rekey(entries[i]));
        },
    );
    let (arcs, _) = combine_by_key(mirrored, key_space, &key_of, |first, _dup| first);
    (arcs, stats)
}

/// [`csr_from_arcs`] for half-arcs that are **already unique** (any order):
/// skips the dedup combine and only mirrors + key-sorts. Used when the
/// caller's own combine produced the normalized edge set.
pub(crate) fn csr_from_unique_half_arcs(n: usize, half_arcs: Vec<u64>) -> CsrGraph {
    if n == 0 {
        debug_assert!(half_arcs.is_empty());
        return CsrGraph::empty(0);
    }
    let mirrored = par_emit(
        half_arcs.len(),
        |_| 2,
        |i, emit| {
            let (hi, lo) = unpack(half_arcs[i]);
            emit.push(half_arcs[i]);
            emit.push(pack(lo, hi));
        },
    );
    // The combine never folds (all keys distinct) — it only key-sorts.
    let (arcs, _) = combine_by_key(mirrored, (n as u64) << 32, |&a| a, |first, _dup| first);
    let (offsets, targets) = csr_parts_from_sorted(n, &arcs, |&a| a);
    CsrGraph::from_parts(offsets, targets)
}

/// [`csr_from_arcs`] for half-arc input: one normalized [`pack`]`(min(u,v),
/// max(u,v))` key per undirected edge occurrence (duplicates fine,
/// self-loops must be pre-filtered).
pub fn csr_from_half_arcs(n: usize, half_arcs: Vec<u64>) -> (CsrGraph, CombineStats) {
    if n == 0 {
        debug_assert!(half_arcs.is_empty());
        return (CsrGraph::empty(0), CombineStats::default());
    }
    let (arcs, stats) = combine_symmetrize(
        n,
        half_arcs,
        |&a| a,
        |a| {
            let (hi, lo) = unpack(a);
            pack(lo, hi)
        },
        |first, _dup| first,
    );
    let (offsets, targets) = csr_parts_from_sorted(n, &arcs, |&a| a);
    (CsrGraph::from_parts(offsets, targets), stats)
}

/// Reads CSR offsets and targets straight off a key-sorted combined buffer
/// (source id = upper 32 bits of the key). Shared by the unweighted and
/// weighted quotient builds.
pub(crate) fn csr_parts_from_sorted<T>(
    n: usize,
    items: &[T],
    key_of: impl Fn(&T) -> u64 + Sync,
) -> (Vec<usize>, Vec<NodeId>)
where
    T: Send + Sync,
{
    let offsets: Vec<usize> = if items.len() <= SMALL || n <= SMALL {
        let mut offsets = vec![0usize; n + 1];
        for item in items {
            offsets[(key_of(item) >> 32) as usize + 1] += 1;
        }
        for u in 0..n {
            offsets[u + 1] += offsets[u];
        }
        offsets
    } else {
        // The buffer is sorted by key, so node `u`'s adjacency starts at
        // the first key with source ≥ u: a binary search per boundary,
        // parallel over the n + 1 boundaries.
        (0..n + 1)
            .into_par_iter()
            .map(|u| items.partition_point(|item| (key_of(item) >> 32) < u as u64))
            .collect()
    };
    let targets: Vec<NodeId> = if items.len() <= SMALL {
        items.iter().map(|item| key_of(item) as NodeId).collect()
    } else {
        items
            .par_iter()
            .map(|item| key_of(item) as NodeId)
            .collect()
    };
    (offsets, targets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Sequential oracle: sort + fold, the canonical form by definition.
    fn oracle<T: Copy>(
        mut items: Vec<T>,
        key_of: impl Fn(&T) -> u64,
        fold: impl Fn(T, T) -> T,
    ) -> Vec<T> {
        items.sort_by_key(&key_of);
        let len = fold_runs(&mut items, &key_of, &fold);
        items.truncate(len);
        items
    }

    fn random_pairs(n: usize, key_space: u64, seed: u64) -> Vec<(u64, u64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (rng.gen::<u64>() % key_space, rng.gen::<u64>() % 1000))
            .collect()
    }

    #[test]
    fn min_combine_matches_oracle_across_sizes() {
        // Straddle the sequential cutoff to exercise both paths.
        for n in [0usize, 1, 100, SMALL, SMALL + 1, 4 * SMALL] {
            let key_space = 1u64 << 40;
            let input = random_pairs(n, key_space, 7);
            let expected = oracle(
                input.clone(),
                |p| p.0,
                |a, b: (u64, u64)| (a.0, a.1.min(b.1)),
            );
            let (got, stats) =
                combine_by_key(input, key_space, |p| p.0, |a, b| (a.0, a.1.min(b.1)));
            assert_eq!(got, expected, "diverged at n = {n}");
            assert_eq!(stats.input_pairs, n);
            assert_eq!(stats.output_pairs, got.len());
        }
    }

    #[test]
    fn sum_combine_with_heavy_skew() {
        // All keys in one bucket-range corner: the degenerate layout the
        // power-law quotient produces.
        let n = 3 * SMALL;
        let input: Vec<(u64, u64)> = (0..n as u64).map(|i| (i % 17, 1)).collect();
        let (got, stats) = combine_by_key(input, 1 << 40, |p| p.0, |a, b| (a.0, a.1 + b.1));
        assert_eq!(got.len(), 17);
        let total: u64 = got.iter().map(|p| p.1).sum();
        assert_eq!(total, n as u64);
        assert_eq!(stats.output_pairs, 17);
        assert!((stats.combine_ratio() - n as f64 / 17.0).abs() < 1e-9);
    }

    #[test]
    fn output_is_key_sorted_and_unique() {
        let input = random_pairs(2 * SMALL, 1000, 3);
        let (got, _) = combine_by_key(input, 1000, |p| p.0, |a, _| a);
        for w in got.windows(2) {
            assert!(w[0].0 < w[1].0, "output not strictly key-sorted");
        }
    }

    #[test]
    fn dedup_fold_keeps_one_of_identical_records() {
        // The dedup client (csr_from_arcs) folds records whose payload IS
        // the key, so any survivor is the right one; both size regimes must
        // agree with the oracle exactly.
        for n in [500usize, 2 * SMALL] {
            let input: Vec<(u64, u64)> = (0..n as u64).map(|i| (i % 97, i % 97)).collect();
            let (got, _) = combine_by_key(input, 97, |p| p.0, |first, _| first);
            let expected: Vec<(u64, u64)> = (0..97.min(n as u64)).map(|k| (k, k)).collect();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn par_emit_source_order_and_counts() {
        // Each source i emits i % 3 copies of itself; straddle the
        // sequential single-pass cutoff so both routes are exercised.
        for items in [100usize, SEQ_EMIT, SEQ_EMIT + 1, 10_000] {
            let out = par_emit(
                items,
                |i| i % 3,
                |i, e| {
                    for _ in 0..i % 3 {
                        e.push(i as u64);
                    }
                },
            );
            let expected: Vec<u64> = (0..items)
                .flat_map(|i| std::iter::repeat_n(i as u64, i % 3))
                .collect();
            assert_eq!(out, expected, "diverged at items = {items}");
        }
    }

    #[test]
    #[should_panic(expected = "fewer items than count declared")]
    fn par_emit_underfill_panics() {
        // Must be above the sequential cutoff: the single-pass route has no
        // declared count to violate.
        let _ = par_emit(2 * SEQ_EMIT, |_| 2, |i, e| e.push(i as u64));
    }

    #[test]
    fn csr_from_arcs_builds_valid_graph() {
        // A mesh-ish arc soup with duplicates.
        let mut arcs = Vec::new();
        for u in 0u32..50 {
            for v in 0u32..50 {
                if u != v && (u + v) % 3 == 0 {
                    arcs.push(pack(u, v));
                    arcs.push(pack(v, u));
                    arcs.push(pack(u, v)); // duplicate
                }
            }
        }
        let (g, stats) = csr_from_arcs(50, arcs);
        assert!(g.check_invariants().is_ok());
        assert_eq!(stats.output_pairs, g.num_arcs());
        assert!(stats.input_pairs > stats.output_pairs);
    }

    #[test]
    fn csr_from_arcs_empty() {
        let (g, stats) = csr_from_arcs(0, Vec::new());
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(stats.output_pairs, 0);
        let (g, _) = csr_from_arcs(5, Vec::new());
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for (a, b) in [(0, 0), (7, 3), (NodeId::MAX - 1, 12), (1, NodeId::MAX)] {
            assert_eq!(unpack(pack(a, b)), (a, b));
        }
        assert!(pack(1, 0) > pack(0, NodeId::MAX));
    }

    #[test]
    fn pool_size_invariance() {
        let input = random_pairs(4 * SMALL, 1 << 36, 11);
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool construction cannot fail");
            pool.install(|| {
                combine_by_key(input.clone(), 1 << 36, |p| p.0, |a, b| (a.0, a.1.min(b.1))).0
            })
        };
        assert_eq!(run(1), run(4));
    }
}
