//! Compressed sparse row storage for unweighted, undirected graphs.

use crate::NodeId;

/// An unweighted, undirected graph in compressed sparse row form.
///
/// Each undirected edge `{u, v}` is stored twice (once in each endpoint's
/// adjacency list); adjacency lists are sorted ascending and free of
/// duplicates and self-loops. The representation is immutable — build graphs
/// through [`crate::builder::GraphBuilder`] or the generator functions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[u]..offsets[u + 1]` indexes `targets` for node `u`; length `n + 1`.
    offsets: Vec<usize>,
    /// Concatenated adjacency lists; length `2m`.
    targets: Vec<NodeId>,
}

impl CsrGraph {
    /// Builds a graph directly from CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent: wrong offset bounds,
    /// non-monotone offsets, out-of-range targets, self-loops, duplicate
    /// neighbours, or unsorted adjacency lists. Intended for internal use by
    /// the builder; external callers should prefer [`crate::GraphBuilder`].
    pub(crate) fn from_parts(offsets: Vec<usize>, targets: Vec<NodeId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), targets.len());
        let g = CsrGraph { offsets, targets };
        debug_assert!(g.check_invariants().is_ok(), "{:?}", g.check_invariants());
        g
    }

    /// The empty graph on `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        CsrGraph {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Number of directed arcs stored (`2m`).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Degree of node `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        let u = u as usize;
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Sorted slice of neighbours of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let u = u as usize;
        &self.targets[self.offsets[u]..self.offsets[u + 1]]
    }

    /// The `v > u` tail of `u`'s sorted adjacency. Each undirected edge
    /// appears in exactly one tail, so scanning all tails visits every edge
    /// once — the backbone of the contraction kernel's half-arc emission.
    #[inline]
    pub fn upper_neighbors(&self, u: NodeId) -> &[NodeId] {
        let nbrs = self.neighbors(u);
        &nbrs[nbrs.partition_point(|&v| v <= u)..]
    }

    /// Whether the undirected edge `{u, v}` is present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes() as NodeId
    }

    /// Iterator over each undirected edge exactly once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Raw offsets array (length `n + 1`). Exposed for zero-copy consumers
    /// such as the binary I/O codec and the MR engine's edge partitioner.
    #[inline]
    pub fn raw_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Raw concatenated adjacency array (length `2m`).
    #[inline]
    pub fn raw_targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|u| self.offsets[u + 1] - self.offsets[u])
            .max()
            .unwrap_or(0)
    }

    /// Verifies the structural invariants of the representation. Returns a
    /// description of the first violation found, if any. Used by debug
    /// assertions and by property tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.num_nodes();
        if self.offsets[0] != 0 {
            return Err("offsets must start at 0".into());
        }
        for u in 0..n {
            if self.offsets[u] > self.offsets[u + 1] {
                return Err(format!("offsets not monotone at node {u}"));
            }
            let adj = &self.targets[self.offsets[u]..self.offsets[u + 1]];
            for w in adj.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("adjacency of {u} not strictly sorted"));
                }
            }
            for &v in adj {
                if v as usize >= n {
                    return Err(format!("edge target {v} out of range (n = {n})"));
                }
                if v as usize == u {
                    return Err(format!("self-loop at {u}"));
                }
            }
        }
        // Symmetry: every arc has its reverse.
        for u in 0..n as NodeId {
            for &v in self.neighbors(u) {
                if !self.has_edge(v, u) {
                    return Err(format!("missing reverse arc for ({u}, {v})"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle() -> CsrGraph {
        GraphBuilder::new(3)
            .add_edges([(0, 1), (1, 2), (2, 0)])
            .build()
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(3), 0);
        assert!(g.neighbors(4).is_empty());
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn triangle_basics() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 6);
        for u in 0..3 {
            assert_eq!(g.degree(u), 2);
        }
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 0));
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn max_degree() {
        let g = GraphBuilder::new(4)
            .add_edges([(0, 1), (0, 2), (0, 3)])
            .build();
        assert_eq!(g.max_degree(), 3);
        assert_eq!(CsrGraph::empty(0).max_degree(), 0);
    }

    #[test]
    fn invariant_checker_catches_asymmetry() {
        let g = CsrGraph {
            offsets: vec![0, 1, 1],
            targets: vec![1],
        };
        assert!(g.check_invariants().is_err());
    }

    #[test]
    fn invariant_checker_catches_self_loop() {
        let g = CsrGraph {
            offsets: vec![0, 1],
            targets: vec![0],
        };
        assert!(g.check_invariants().is_err());
    }
}
