//! Disjoint-set forest with union by size and path halving.
//!
//! Used by the road-network generator (random spanning tree via randomized
//! Kruskal) and by the connected-components fallback.

/// Disjoint-set (union–find) structure over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    /// Parent pointer per element; roots point to themselves.
    parent: Vec<u32>,
    /// Component size, valid at roots only.
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton components.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize);
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Representative of `x`'s component (with path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merges the components of `a` and `b`; returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same component.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of components.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Size of the component containing `x`.
    pub fn component_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_components(), 4);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.component_size(2), 1);
    }

    #[test]
    fn union_merges() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.num_components(), 2);
        assert!(uf.union(1, 3));
        assert_eq!(uf.num_components(), 1);
        assert!(uf.connected(0, 2));
        assert_eq!(uf.component_size(0), 4);
    }

    #[test]
    fn long_chain_path_halving() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 0..n as u32 - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_components(), 1);
        assert_eq!(uf.component_size(0), n);
        assert!(uf.connected(0, n as u32 - 1));
    }
}
