//! Deterministic, seedable graph generators for every family used in the
//! paper's evaluation (§6) and analysis (§3):
//!
//! | Family | Paper role | Function |
//! |---|---|---|
//! | 2-D mesh | `mesh1000` dataset (known doubling dimension b = 2) | [`mesh`], [`torus`] |
//! | road networks | `roads-CA/PA/TX` substitutes | [`road_network`] |
//! | power-law social graphs | `twitter` / `livejournal` substitutes | [`preferential_attachment`], [`rmat`] |
//! | expander + path | the §3 lollipop example (R_ALG ≪ Δ) | [`lollipop`], [`random_regular`] |
//! | chain-appended variants | Figure 1 workload | [`append_chain`] |
//! | Erdős–Rényi, paths, cycles, stars, cliques | test fixtures | [`gnm`], [`path`], [`cycle`], [`star`], [`complete`] |
//!
//! Every randomized generator takes an explicit `u64` seed and is
//! reproducible across runs and platforms.

mod basic;
mod composite;
mod powerlaw;
mod random;
mod roads;

pub use basic::{complete, cycle, mesh, path, star, torus};
pub use composite::{append_chain, connect, disjoint_union, lollipop};
pub use powerlaw::{
    preferential_attachment, preferential_attachment_into, rmat, rmat_into,
    windowed_preferential_attachment, windowed_preferential_attachment_into, RmatProbs,
};
pub use random::{gnm, random_regular};
pub use roads::road_network;
