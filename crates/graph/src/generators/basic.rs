//! Deterministic structured generators: paths, cycles, stars, cliques,
//! meshes, and tori.

use crate::{CsrGraph, GraphBuilder, NodeId};

/// Path graph `0 - 1 - … - (n-1)`; diameter `n - 1`.
pub fn path(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for u in 1..n as NodeId {
        b.add_edge(u - 1, u);
    }
    b.build()
}

/// Cycle graph on `n ≥ 3` nodes; diameter `⌊n/2⌋`.
///
/// # Panics
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3, "cycle needs at least 3 nodes");
    let mut b = GraphBuilder::with_capacity(n, n);
    for u in 0..n as NodeId {
        b.add_edge(u, ((u as usize + 1) % n) as NodeId);
    }
    b.build()
}

/// Star graph: node 0 adjacent to all others; diameter 2 (for `n ≥ 3`).
pub fn star(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for u in 1..n as NodeId {
        b.add_edge(0, u);
    }
    b.build()
}

/// Complete graph on `n` nodes; diameter 1 (for `n ≥ 2`).
pub fn complete(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n * n.saturating_sub(1) / 2);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// `rows × cols` 2-D mesh (grid). Node `(r, c)` has id `r * cols + c`.
///
/// * nodes: `rows * cols`
/// * edges: `rows * (cols - 1) + cols * (rows - 1)`
/// * diameter: `(rows - 1) + (cols - 1)`
///
/// `mesh(1000, 1000)` is exactly the paper's `mesh1000` dataset
/// (1,000,000 nodes, 1,998,000 edges, diameter 1998).
pub fn mesh(rows: usize, cols: usize) -> CsrGraph {
    let n = rows * cols;
    let m = rows * cols.saturating_sub(1) + cols * rows.saturating_sub(1);
    let mut b = GraphBuilder::with_capacity(n, m);
    for r in 0..rows {
        for c in 0..cols {
            let u = (r * cols + c) as NodeId;
            if c + 1 < cols {
                b.add_edge(u, u + 1);
            }
            if r + 1 < rows {
                b.add_edge(u, u + cols as NodeId);
            }
        }
    }
    b.build()
}

/// `rows × cols` 2-D torus (mesh with wraparound edges); vertex-transitive,
/// diameter `⌊rows/2⌋ + ⌊cols/2⌋`.
///
/// # Panics
/// Panics if either dimension is below 3 (wraparound would create parallel
/// edges or self-loops).
pub fn torus(rows: usize, cols: usize) -> CsrGraph {
    assert!(rows >= 3 && cols >= 3, "torus needs both dimensions >= 3");
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            let u = (r * cols + c) as NodeId;
            let right = (r * cols + (c + 1) % cols) as NodeId;
            let down = (((r + 1) % rows) * cols + c) as NodeId;
            b.add_edge(u, right);
            b.add_edge(u, down);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;

    #[test]
    fn path_shape() {
        let g = path(6);
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(traversal::eccentricity(&g, 0), 5);
    }

    #[test]
    fn path_degenerate() {
        assert_eq!(path(0).num_nodes(), 0);
        assert_eq!(path(1).num_edges(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(8);
        assert_eq!(g.num_edges(), 8);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 2);
        }
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.degree(0), 6);
        assert_eq!(g.degree(3), 1);
        assert_eq!(traversal::eccentricity(&g, 0), 1);
        assert_eq!(traversal::eccentricity(&g, 1), 2);
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(traversal::eccentricity(&g, 2), 1);
    }

    #[test]
    fn mesh_counts_match_paper_formula() {
        // The paper's mesh1000 identities at a smaller scale.
        let g = mesh(50, 40);
        assert_eq!(g.num_nodes(), 2000);
        assert_eq!(g.num_edges(), 50 * 39 + 40 * 49);
        assert_eq!(traversal::eccentricity(&g, 0), 49 + 39);
    }

    #[test]
    fn mesh_single_row_is_path() {
        let g = mesh(1, 9);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(traversal::eccentricity(&g, 0), 8);
    }

    #[test]
    fn torus_regular_degree_four() {
        let g = torus(5, 7);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 4);
        }
        assert_eq!(g.num_edges(), 2 * 35);
        assert_eq!(traversal::eccentricity(&g, 0), 2 + 3);
    }
}
