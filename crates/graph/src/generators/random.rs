//! Unstructured random graph generators: Erdős–Rényi G(n, m) and random
//! d-regular graphs (configuration model with swap repair).

use crate::{CsrGraph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Erdős–Rényi G(n, m): `m` distinct undirected edges sampled uniformly
/// without replacement (no self-loops).
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges `n(n-1)/2`.
pub fn gnm(n: usize, m: usize, seed: u64) -> CsrGraph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= max_edges, "G(n, m): m = {m} exceeds {max_edges}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen: HashSet<(NodeId, NodeId)> = HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::with_capacity(n, m);
    while chosen.len() < m {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if chosen.insert(key) {
            b.add_edge(key.0, key.1);
        }
    }
    b.build()
}

/// Random d-regular graph via the configuration model: `d` stubs per node are
/// shuffled and paired; invalid pairs (self-loops, parallel edges) are then
/// repaired by random swaps with valid pairs. With `d ≪ √n` the repair loop
/// converges almost immediately; a full reshuffle backstops pathological
/// seeds.
///
/// Random regular graphs are expanders with high probability, which is what
/// the §3 lollipop example needs.
///
/// # Panics
/// Panics if `n * d` is odd or `d ≥ n`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> CsrGraph {
    assert!((n * d).is_multiple_of(2), "n * d must be even");
    assert!(d < n, "degree must be below n");
    if d == 0 || n == 0 {
        return CsrGraph::empty(n);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    'restart: for _attempt in 0..64 {
        let mut stubs: Vec<NodeId> = (0..n as NodeId)
            .flat_map(|u| std::iter::repeat_n(u, d))
            .collect();
        stubs.shuffle(&mut rng);
        let mut pairs: Vec<(NodeId, NodeId)> = stubs
            .chunks_exact(2)
            .map(|c| (c[0].min(c[1]), c[0].max(c[1])))
            .collect();
        let mut seen: HashSet<(NodeId, NodeId)> = HashSet::with_capacity(pairs.len() * 2);
        let mut bad: Vec<usize> = Vec::new();
        for (i, &p) in pairs.iter().enumerate() {
            if p.0 == p.1 || !seen.insert(p) {
                bad.push(i);
            }
        }
        // Swap-repair: exchange one endpoint of a bad pair with a random
        // partner pair; accept only swaps where both results are fresh valid
        // edges.
        let mut budget = 200 * pairs.len().max(1);
        while let Some(&i) = bad.last() {
            if budget == 0 {
                continue 'restart;
            }
            budget -= 1;
            let j = rng.gen_range(0..pairs.len());
            if j == i {
                continue;
            }
            let (a, bme) = pairs[i];
            let (c, dd) = pairs[j];
            let p1 = (a.min(c), a.max(c));
            let p2 = (bme.min(dd), bme.max(dd));
            if p1.0 == p1.1 || p2.0 == p2.1 || p1 == p2 {
                continue;
            }
            if seen.contains(&p1) || seen.contains(&p2) {
                continue;
            }
            // The bad pair was never inserted (it was invalid); the partner was.
            seen.remove(&pairs[j]);
            seen.insert(p1);
            seen.insert(p2);
            pairs[i] = p1;
            pairs[j] = p2;
            bad.pop();
            // The partner pair (now p2) is valid by construction; only the
            // repaired slot could have been in `bad` — and it no longer is.
        }
        let mut b = GraphBuilder::with_capacity(n, pairs.len());
        for (u, v) in pairs {
            b.add_edge(u, v);
        }
        let g = b.build();
        if g.num_edges() == n * d / 2 {
            return g;
        }
    }
    panic!("random_regular({n}, {d}): failed to produce a simple graph");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components;

    #[test]
    fn gnm_exact_edge_count() {
        let g = gnm(50, 200, 7);
        assert_eq!(g.num_nodes(), 50);
        assert_eq!(g.num_edges(), 200);
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn gnm_deterministic_per_seed() {
        assert_eq!(gnm(30, 60, 1), gnm(30, 60, 1));
        assert_ne!(gnm(30, 60, 1), gnm(30, 60, 2));
    }

    #[test]
    fn gnm_complete() {
        let g = gnm(6, 15, 3);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn regular_degrees() {
        for d in [2usize, 3, 4, 8] {
            let n = if (1000 * d) % 2 == 0 { 1000 } else { 1001 };
            let g = random_regular(n, d, 42 + d as u64);
            assert_eq!(g.num_edges(), n * d / 2);
            for u in g.nodes() {
                assert_eq!(g.degree(u), d, "degree mismatch at {u} for d = {d}");
            }
        }
    }

    #[test]
    fn regular_is_expander_in_practice() {
        // Random 4-regular graphs on 2000 nodes are connected with
        // overwhelming probability and have O(log n) diameter.
        let g = random_regular(2000, 4, 11);
        let (count, _) = components::connected_components(&g);
        assert_eq!(count, 1);
        let ecc = crate::traversal::eccentricity(&g, 0);
        assert!(ecc <= 20, "expander eccentricity {ecc} too large");
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn regular_odd_total_degree_panics() {
        random_regular(5, 3, 0);
    }
}
