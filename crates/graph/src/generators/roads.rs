//! Synthetic road networks: sparsified grids standing in for the paper's
//! roads-CA/PA/TX datasets.
//!
//! Real road networks are near-planar, degree-bounded, have doubling
//! dimension ≈ 2 and diameter Θ(√n) — exactly the regime where the paper's
//! decomposition beats Θ(Δ)-round algorithms. A random spanning tree of a
//! grid plus a random subset of the remaining grid edges reproduces all of
//! those properties with a tunable edge density.

use crate::union_find::UnionFind;
use crate::{CsrGraph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generates a connected road-network-like graph on a `rows × cols` grid.
///
/// Construction: take all grid edges, extract a uniformly random spanning
/// tree (randomized Kruskal), then keep each non-tree grid edge independently
/// with probability `extra_edge_prob`. The result is always connected, has
/// `n - 1 + extra` edges, maximum degree 4, and diameter Θ(√n) (larger for
/// smaller `extra_edge_prob`).
///
/// The paper's road networks have `m/n ≈ 1.41`; `extra_edge_prob = 0.4`
/// matches that density on large grids.
///
/// # Panics
/// Panics if either dimension is zero.
pub fn road_network(rows: usize, cols: usize, extra_edge_prob: f64, seed: u64) -> CsrGraph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    assert!(
        (0.0..=1.0).contains(&extra_edge_prob),
        "probability out of range"
    );
    let n = rows * cols;
    let mut rng = StdRng::seed_from_u64(seed);

    let mut grid_edges: Vec<(NodeId, NodeId)> =
        Vec::with_capacity(rows * cols.saturating_sub(1) + cols * rows.saturating_sub(1));
    for r in 0..rows {
        for c in 0..cols {
            let u = (r * cols + c) as NodeId;
            if c + 1 < cols {
                grid_edges.push((u, u + 1));
            }
            if r + 1 < rows {
                grid_edges.push((u, u + cols as NodeId));
            }
        }
    }
    grid_edges.shuffle(&mut rng);

    let mut uf = UnionFind::new(n);
    let mut b = GraphBuilder::with_capacity(n, n + (grid_edges.len() * 2) / 5);
    for &(u, v) in &grid_edges {
        if uf.union(u, v) {
            b.add_edge(u, v); // spanning-tree edge: always kept
        } else if rng.gen::<f64>() < extra_edge_prob {
            b.add_edge(u, v);
        }
    }
    debug_assert_eq!(uf.num_components(), 1);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{components, traversal};

    #[test]
    fn connected_and_sparse() {
        let g = road_network(40, 40, 0.4, 17);
        assert_eq!(g.num_nodes(), 1600);
        let (count, _) = components::connected_components(&g);
        assert_eq!(count, 1);
        let density = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(density > 1.0 && density < 1.9, "density {density}");
        assert!(g.max_degree() <= 4);
    }

    #[test]
    fn tree_only_when_prob_zero() {
        let g = road_network(20, 20, 0.0, 3);
        assert_eq!(g.num_edges(), g.num_nodes() - 1);
        let (count, _) = components::connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn full_grid_when_prob_one() {
        let g = road_network(10, 15, 1.0, 3);
        assert_eq!(g.num_edges(), 10 * 14 + 15 * 9);
    }

    #[test]
    fn long_diameter_regime() {
        // Sparse road networks must have diameter well above the grid's
        // (rows + cols - 2): the spanning tree stretches shortest paths.
        let g = road_network(50, 50, 0.15, 23);
        let ecc = traversal::eccentricity(&g, 0);
        assert!(
            ecc > 98,
            "eccentricity {ecc} not in the long-diameter regime"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(road_network(15, 15, 0.4, 5), road_network(15, 15, 0.4, 5));
        assert_ne!(road_network(15, 15, 0.4, 5), road_network(15, 15, 0.4, 6));
    }

    #[test]
    fn degenerate_single_row() {
        let g = road_network(1, 30, 0.5, 1);
        assert_eq!(g.num_edges(), 29); // a path: every edge is a tree edge
    }
}
