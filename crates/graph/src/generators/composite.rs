//! Composite constructions: disjoint unions, bridging edges, the §3
//! lollipop example, and the chain-appended variants of Figure 1.

use crate::{CsrGraph, GraphBuilder, NodeId};

/// Disjoint union of two graphs; nodes of `b` are relabelled by `+a.num_nodes()`.
pub fn disjoint_union(a: &CsrGraph, b: &CsrGraph) -> CsrGraph {
    let na = a.num_nodes();
    let mut builder =
        GraphBuilder::with_capacity(na + b.num_nodes(), a.num_edges() + b.num_edges());
    for (u, v) in a.edges() {
        builder.add_edge(u, v);
    }
    for (u, v) in b.edges() {
        builder.add_edge(u + na as NodeId, v + na as NodeId);
    }
    builder.build()
}

/// Copy of `g` with the extra undirected edges in `extra` added.
pub fn connect(g: &CsrGraph, extra: &[(NodeId, NodeId)]) -> CsrGraph {
    let mut builder = GraphBuilder::with_capacity(g.num_nodes(), g.num_edges() + extra.len());
    for (u, v) in g.edges() {
        builder.add_edge(u, v);
    }
    for &(u, v) in extra {
        builder.add_edge(u, v);
    }
    builder.build()
}

/// Appends a fresh chain of `chain_len` nodes to `attach`, as in the Figure 1
/// workload: `attach - n - (n+1) - … - (n + chain_len - 1)` where `n` is the
/// original node count. Raises the diameter by up to `chain_len` without
/// otherwise altering the base graph.
pub fn append_chain(g: &CsrGraph, attach: NodeId, chain_len: usize) -> CsrGraph {
    assert!(
        (attach as usize) < g.num_nodes(),
        "attach node out of range"
    );
    let n = g.num_nodes();
    let mut builder = GraphBuilder::with_capacity(n + chain_len, g.num_edges() + chain_len);
    for (u, v) in g.edges() {
        builder.add_edge(u, v);
    }
    let mut prev = attach;
    for i in 0..chain_len {
        let fresh = (n + i) as NodeId;
        builder.add_edge(prev, fresh);
        prev = fresh;
    }
    builder.build()
}

/// The §3 lollipop: a random `d`-regular expander on `expander_nodes` nodes
/// glued (at its node 0) to a path of `tail_len` nodes. The decomposition's
/// maximum radius on this graph is polylogarithmic while the diameter is
/// `Ω(tail_len)` — the paper's motivating example for radius ≪ Δ.
pub fn lollipop(expander_nodes: usize, d: usize, tail_len: usize, seed: u64) -> CsrGraph {
    let expander = super::random_regular(expander_nodes, d, seed);
    append_chain(&expander, 0, tail_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{components, generators, traversal};

    #[test]
    fn union_counts() {
        let a = generators::cycle(4);
        let b = generators::path(3);
        let u = disjoint_union(&a, &b);
        assert_eq!(u.num_nodes(), 7);
        assert_eq!(u.num_edges(), 6);
        let (count, _) = components::connected_components(&u);
        assert_eq!(count, 2);
        assert!(u.has_edge(4, 5)); // relabelled path edge
    }

    #[test]
    fn connect_bridges_components() {
        let a = generators::cycle(4);
        let b = generators::path(3);
        let u = connect(&disjoint_union(&a, &b), &[(0, 4)]);
        let (count, _) = components::connected_components(&u);
        assert_eq!(count, 1);
    }

    #[test]
    fn chain_raises_diameter_exactly() {
        // Appending at an end of a path extends the path.
        let g = generators::path(5);
        let g2 = append_chain(&g, 4, 10);
        assert_eq!(g2.num_nodes(), 15);
        assert_eq!(traversal::eccentricity(&g2, 0), 14);
    }

    #[test]
    fn chain_len_zero_is_identity() {
        let g = generators::cycle(6);
        assert_eq!(append_chain(&g, 2, 0), g);
    }

    #[test]
    fn lollipop_shape() {
        let g = lollipop(500, 4, 100, 9);
        assert_eq!(g.num_nodes(), 600);
        let (count, _) = components::connected_components(&g);
        assert_eq!(count, 1);
        // Path end must be far from everything.
        let ecc_tip = traversal::eccentricity(&g, 599);
        assert!(ecc_tip >= 100, "lollipop tip eccentricity {ecc_tip}");
        // Expander interior stays shallow (tip dominates its eccentricity).
        let bfs_inside = traversal::bfs(&g, 1);
        let max_in_expander = (0..500).map(|v| bfs_inside.dist[v]).max().unwrap();
        assert!(
            max_in_expander <= 15,
            "expander part too deep: {max_in_expander}"
        );
    }
}
