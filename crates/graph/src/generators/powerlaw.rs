//! Power-law / heavy-tailed generators standing in for the paper's social
//! graphs (twitter, livejournal): Barabási–Albert preferential attachment and
//! R-MAT.

use crate::stream::EdgeSink;
use crate::{CsrGraph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// [`preferential_attachment`] emitting into any [`EdgeSink`] — the
/// streaming route: pointed at an [`crate::stream::EdgeSpillWriter`], the
/// edge list never materializes in memory (only the generator's own
/// endpoint multiset does).
///
/// # Panics
/// Panics if `m_attach == 0` or `n < m_attach + 1`.
pub fn preferential_attachment_into(
    sink: &mut impl EdgeSink,
    n: usize,
    m_attach: usize,
    seed: u64,
) {
    assert!(m_attach >= 1, "attachment degree must be positive");
    assert!(n > m_attach, "need n > m_attach");
    let mut rng = StdRng::seed_from_u64(seed);
    let seed_nodes = m_attach + 1;
    // Endpoint multiset: node u appears deg(u) times; sampling uniformly from
    // it is exactly degree-proportional selection.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m_attach);
    for u in 0..seed_nodes as NodeId {
        for v in (u + 1)..seed_nodes as NodeId {
            sink.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    let mut picked: Vec<NodeId> = Vec::with_capacity(m_attach);
    for u in seed_nodes as NodeId..n as NodeId {
        picked.clear();
        // Rejection-sample m_attach distinct targets; the list is always much
        // larger than m_attach, so this terminates quickly.
        while picked.len() < m_attach {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            sink.add_edge(u, t);
            endpoints.push(u);
            endpoints.push(t);
        }
    }
}

/// Barabási–Albert preferential attachment.
///
/// Starts from a clique on `m_attach + 1` nodes; every subsequent node
/// attaches to `m_attach` *distinct* existing nodes chosen proportionally to
/// their current degree (sampled from the repeated-endpoints list). The
/// result is connected, has `≈ n · m_attach` edges, a power-law degree tail,
/// and `O(log n / log log n)` diameter — the properties Table 2/4 exploit in
/// the twitter/livejournal rows.
///
/// # Panics
/// Panics if `m_attach == 0` or `n < m_attach + 1`.
pub fn preferential_attachment(n: usize, m_attach: usize, seed: u64) -> CsrGraph {
    let seed_nodes = m_attach + 1;
    let mut b = GraphBuilder::with_capacity(
        n,
        seed_nodes * m_attach / 2 + n.saturating_sub(seed_nodes) * m_attach,
    );
    preferential_attachment_into(&mut b, n, m_attach, seed);
    b.build()
}

/// Windowed ("aging") preferential attachment: like
/// [`preferential_attachment`], but each new node picks its `m_attach`
/// targets degree-proportionally **among the most recent
/// `window_frac · 2·n·m_attach` edge endpoints** only.
///
/// Restricting attachment to recent nodes stretches the graph into a chain
/// of overlapping communities: the degree distribution keeps its heavy tail
/// while the diameter grows to `Θ(1 / window_frac)` — letting a synthetic
/// social graph hit a *target* diameter (e.g. twitter's 16 or livejournal's
/// 21) that plain BA graphs, with their `Θ(log n / log log n)` diameter,
/// cannot reach at laptop scale.
///
/// # Panics
/// Panics if `m_attach == 0`, `n ≤ m_attach`, or `window_frac ∉ (0, 1]`.
pub fn windowed_preferential_attachment(
    n: usize,
    m_attach: usize,
    window_frac: f64,
    seed: u64,
) -> CsrGraph {
    let seed_nodes = m_attach + 1;
    let mut b = GraphBuilder::with_capacity(
        n,
        seed_nodes * m_attach / 2 + n.saturating_sub(seed_nodes) * m_attach,
    );
    windowed_preferential_attachment_into(&mut b, n, m_attach, window_frac, seed);
    b.build()
}

/// [`windowed_preferential_attachment`] emitting into any [`EdgeSink`] —
/// same RNG consumption, so the edge stream is bit-identical to the
/// in-memory route.
///
/// # Panics
/// Panics if `m_attach == 0`, `n ≤ m_attach`, or `window_frac ∉ (0, 1]`.
pub fn windowed_preferential_attachment_into(
    sink: &mut impl EdgeSink,
    n: usize,
    m_attach: usize,
    window_frac: f64,
    seed: u64,
) {
    assert!(m_attach >= 1, "attachment degree must be positive");
    assert!(n > m_attach, "need n > m_attach");
    assert!(
        window_frac > 0.0 && window_frac <= 1.0,
        "window_frac must be in (0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let seed_nodes = m_attach + 1;
    let window = (((2 * n * m_attach) as f64 * window_frac) as usize).max(4 * m_attach);
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m_attach);
    for u in 0..seed_nodes as NodeId {
        for v in (u + 1)..seed_nodes as NodeId {
            sink.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    let mut picked: Vec<NodeId> = Vec::with_capacity(m_attach);
    for u in seed_nodes as NodeId..n as NodeId {
        picked.clear();
        let lo = endpoints.len().saturating_sub(window);
        while picked.len() < m_attach {
            let t = endpoints[rng.gen_range(lo..endpoints.len())];
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            sink.add_edge(u, t);
            endpoints.push(u);
            endpoints.push(t);
        }
    }
}

/// Quadrant probabilities for the R-MAT recursive edge sampler.
#[derive(Clone, Copy, Debug)]
pub struct RmatProbs {
    pub a: f64,
    pub b: f64,
    pub c: f64,
}

impl RmatProbs {
    /// The classic Graph500-style skew.
    pub const GRAPH500: RmatProbs = RmatProbs {
        a: 0.57,
        b: 0.19,
        c: 0.19,
    };

    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

impl Default for RmatProbs {
    fn default() -> Self {
        RmatProbs::GRAPH500
    }
}

/// R-MAT generator: `2^scale` nodes, `edge_factor · 2^scale` sampled edges
/// (duplicates and self-loops are dropped, so the final count is slightly
/// lower). The output may be disconnected — social-graph workloads should
/// extract the largest component via
/// [`crate::components::largest_component`].
pub fn rmat(scale: u32, edge_factor: usize, probs: RmatProbs, seed: u64) -> CsrGraph {
    let n = 1usize << scale.min(30);
    let mut b = GraphBuilder::with_capacity(n, n * edge_factor);
    rmat_into(&mut b, scale, edge_factor, probs, seed);
    b.build()
}

/// [`rmat`] emitting into any [`EdgeSink`] — same RNG consumption, so the
/// edge stream is bit-identical to the in-memory route.
pub fn rmat_into(
    sink: &mut impl EdgeSink,
    scale: u32,
    edge_factor: usize,
    probs: RmatProbs,
    seed: u64,
) {
    assert!(scale < 31, "scale {scale} too large for u32 node ids");
    let n = 1usize << scale;
    let m = n * edge_factor;
    let mut rng = StdRng::seed_from_u64(seed);
    let d = probs.d();
    assert!(
        probs.a >= 0.0 && probs.b >= 0.0 && probs.c >= 0.0 && d >= 0.0,
        "R-MAT probabilities must be a sub-distribution"
    );
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _bit in 0..scale {
            let r: f64 = rng.gen();
            let (du, dv) = if r < probs.a {
                (0, 0)
            } else if r < probs.a + probs.b {
                (0, 1)
            } else if r < probs.a + probs.b + probs.c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u != v {
            sink.add_edge(u as NodeId, v as NodeId);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{components, stats, traversal};

    #[test]
    fn ba_counts() {
        let (n, m_attach) = (500, 4);
        let g = preferential_attachment(n, m_attach, 9);
        assert_eq!(g.num_nodes(), n);
        // Clique seed + m per additional node (duplicates impossible:
        // `picked` is distinct and u is fresh).
        let expect = (m_attach + 1) * m_attach / 2 + (n - m_attach - 1) * m_attach;
        assert_eq!(g.num_edges(), expect);
    }

    #[test]
    fn ba_connected_low_diameter() {
        let g = preferential_attachment(3000, 5, 21);
        let (count, _) = components::connected_components(&g);
        assert_eq!(count, 1);
        assert!(traversal::eccentricity(&g, 0) <= 10);
    }

    #[test]
    fn ba_heavy_tail() {
        let g = preferential_attachment(4000, 3, 5);
        let s = stats::degree_stats(&g);
        // Hubs should dwarf the average degree (~6) by an order of magnitude.
        assert!(
            s.max >= 10 * (s.avg as usize),
            "max degree {} vs avg {}",
            s.max,
            s.avg
        );
    }

    #[test]
    fn ba_deterministic() {
        assert_eq!(
            preferential_attachment(200, 3, 77),
            preferential_attachment(200, 3, 77)
        );
    }

    #[test]
    fn windowed_ba_counts_and_connectivity() {
        let g = windowed_preferential_attachment(3000, 5, 0.02, 21);
        assert_eq!(g.num_nodes(), 3000);
        let expect = 6 * 5 / 2 + (3000 - 6) * 5;
        assert_eq!(g.num_edges(), expect);
        let (count, _) = components::connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn windowed_ba_diameter_grows_as_window_shrinks() {
        let wide = windowed_preferential_attachment(4000, 6, 1.0, 3);
        let narrow = windowed_preferential_attachment(4000, 6, 0.01, 3);
        let ecc_wide = traversal::eccentricity(&wide, 0);
        let ecc_narrow = traversal::eccentricity(&narrow, 3999);
        assert!(
            ecc_narrow > 2 * ecc_wide,
            "narrow {ecc_narrow} vs wide {ecc_wide}"
        );
    }

    #[test]
    fn windowed_ba_keeps_heavy_tail() {
        let g = windowed_preferential_attachment(6000, 6, 0.05, 9);
        let s = stats::degree_stats(&g);
        assert!(s.max >= 4 * (s.avg as usize), "max {} avg {}", s.max, s.avg);
    }

    #[test]
    fn windowed_ba_full_window_matches_ba_distribution() {
        // window_frac = 1.0 is plain preferential attachment (same RNG
        // consumption, so bit-identical).
        let a = windowed_preferential_attachment(500, 4, 1.0, 7);
        let b = preferential_attachment(500, 4, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn rmat_basics() {
        let g = rmat(10, 8, RmatProbs::default(), 13);
        assert_eq!(g.num_nodes(), 1024);
        // Dedup/self-loop removal shrinks the edge count but not by much.
        assert!(g.num_edges() > 1024 * 8 / 2);
        assert!(g.num_edges() <= 1024 * 8);
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn rmat_skew_produces_hubs() {
        let g = rmat(12, 8, RmatProbs::GRAPH500, 3);
        let s = stats::degree_stats(&g);
        assert!(s.max > 8 * (s.avg.ceil() as usize));
    }
}
