//! Quotient graphs of a clustering (§4 of the paper).
//!
//! Given a node→cluster assignment, the *quotient graph* `G_C` has one node
//! per cluster and an edge between two clusters whenever some edge of `G`
//! crosses them. The *weighted* quotient assigns to each such edge the
//! length of the shortest path of `G` that connects the two cluster centers
//! and stays inside the two clusters: since every node knows its BFS-tree
//! distance to its own center, this is
//! `min over cut edges (x, y) of dist(x) + 1 + dist(y)`.
//!
//! Both constructions run on the [`crate::combine`] kernel: one normalized
//! record per undirected cut edge is emitted in parallel (two-pass count +
//! scatter over the upper adjacency tails), dedup'd (unweighted) or
//! min-combined (weighted), and only the unique survivors are mirrored into
//! the quotient's CSR arrays. The seed-era sequential `HashMap` passes
//! survive as [`crate::naive`] oracles.

use crate::access::NeighborAccess;
use crate::combine::{self, pack, CombineStats};
use crate::{CsrGraph, NodeId, WeightedGraph};
use rayon::prelude::*;

fn assert_labels<G: NeighborAccess>(g: &G, labels: &[NodeId], num_clusters: usize) {
    assert_eq!(labels.len(), g.num_nodes(), "label array size mismatch");
    if !labels.par_iter().all(|&c| (c as usize) < num_clusters) {
        let bad = labels.iter().find(|&&c| (c as usize) >= num_clusters);
        panic!("cluster label out of range: {bad:?} >= {num_clusters}");
    }
}

/// Number of cut edges owned by node `u` (its `v > u` adjacency tail, so
/// each undirected cut edge is counted at exactly one endpoint) — the
/// shared count pass of every contraction emit in this module and
/// [`crate::contract`].
pub(crate) fn cut_degree<G: NeighborAccess>(g: &G, labels: &[NodeId], u: usize) -> usize {
    let cu = labels[u];
    g.upper_neighbors_iter(u as NodeId)
        .filter(|&v| labels[v as usize] != cu)
        .count()
}

/// Emits one normalized `(min(cluster), max(cluster))` key per undirected
/// cut edge of `g` under `labels`, node-parallel with a two-pass count +
/// scatter.
fn cut_half_arcs<G: NeighborAccess>(g: &G, labels: &[NodeId]) -> Vec<u64> {
    combine::par_emit(
        g.num_nodes(),
        |u| cut_degree(g, labels, u),
        |u, emit| {
            let cu = labels[u];
            for v in g.upper_neighbors_iter(u as NodeId) {
                let cv = labels[v as usize];
                if cv != cu {
                    emit.push(pack(cu.min(cv), cu.max(cv)));
                }
            }
        },
    )
}

/// Builds the unweighted quotient graph of `g` under `labels`.
///
/// `labels[v]` must be in `0..num_clusters` for every node.
///
/// # Panics
/// Panics if `labels.len() != g.num_nodes()` or a label is out of range.
pub fn quotient<G: NeighborAccess>(g: &G, labels: &[NodeId], num_clusters: usize) -> CsrGraph {
    quotient_with_stats(g, labels, num_clusters).0
}

/// [`quotient`], also returning the combine kernel's ledger (undirected cut
/// edges in, unique quotient edges out).
pub fn quotient_with_stats<G: NeighborAccess>(
    g: &G,
    labels: &[NodeId],
    num_clusters: usize,
) -> (CsrGraph, CombineStats) {
    assert_labels(g, labels, num_clusters);
    combine::csr_from_half_arcs(num_clusters, cut_half_arcs(g, labels))
}

/// Builds the weighted quotient graph of `g` under `labels`, where
/// `dist_to_center[v]` is the hop distance from `v` to its cluster's center.
///
/// Edge weight between clusters `a` and `b`:
/// `min over cut edges (x, y), x ∈ a, y ∈ b of dist(x) + 1 + dist(y)` —
/// the §4 connecting-path length restricted to the two clusters (BFS-tree
/// paths to the centers stay within their cluster by construction of
/// disjoint growth).
pub fn weighted_quotient<G: NeighborAccess>(
    g: &G,
    labels: &[NodeId],
    dist_to_center: &[u32],
    num_clusters: usize,
) -> WeightedGraph {
    weighted_quotient_with_stats(g, labels, dist_to_center, num_clusters).0
}

/// [`weighted_quotient`], also returning the combine kernel's ledger.
pub fn weighted_quotient_with_stats<G: NeighborAccess>(
    g: &G,
    labels: &[NodeId],
    dist_to_center: &[u32],
    num_clusters: usize,
) -> (WeightedGraph, CombineStats) {
    assert_labels(g, labels, num_clusters);
    assert_eq!(
        dist_to_center.len(),
        g.num_nodes(),
        "distance array size mismatch"
    );
    // One weighted record per undirected cut edge, the packed cluster-pair
    // key in the high 64 bits and the connecting-path weight in the low 64
    // (weights fit: `dist` values are `u32`). Packing makes the min-fold a
    // plain integer `min` — for equal keys, the smaller `u128` is exactly
    // the record with the smaller weight — and the sort/scatter move one
    // contiguous word.
    let half: Vec<u128> = combine::par_emit(
        g.num_nodes(),
        |u| cut_degree(g, labels, u),
        |u, emit| {
            let cu = labels[u];
            let du = dist_to_center[u] as u64;
            for v in g.upper_neighbors_iter(u as NodeId) {
                let cv = labels[v as usize];
                if cv != cu {
                    let key = pack(cu.min(cv), cu.max(cv));
                    let w = du + 1 + dist_to_center[v as usize] as u64;
                    emit.push(((key as u128) << 64) | w as u128);
                }
            }
        },
    );
    let (arcs, stats) = combine::combine_symmetrize(
        num_clusters,
        half,
        |a| (a >> 64) as u64,
        |rec| {
            let (hi, lo) = combine::unpack((rec >> 64) as u64);
            ((pack(lo, hi) as u128) << 64) | (rec & u128::from(u64::MAX))
        },
        |a, b| a.min(b),
    );
    let (offsets, targets) =
        combine::csr_parts_from_sorted(num_clusters, &arcs, |&a| (a >> 64) as u64);
    let weights: Vec<u64> = arcs.iter().map(|&rec| rec as u64).collect();
    (
        WeightedGraph::from_csr_parts(offsets, targets, weights),
        stats,
    )
}

/// [`weighted_quotient`] for a clustering of a **weighted** graph: the
/// contraction step of the weighted decomposition pipeline
/// (arXiv:1506.03265), run per decomposition round on the same u128
/// min-combine kernel.
///
/// `weighted_dist[v]` is the weighted distance from `v` to its cluster's
/// center along the claim tree; the quotient edge weight between clusters
/// `a` and `b` is `min over cut edges (x, y) of wdist(x) + w(x, y) +
/// wdist(y)` — the shortest connecting path between the two centers that
/// stays inside the two clusters.
pub fn weighted_graph_quotient(
    g: &WeightedGraph,
    labels: &[NodeId],
    weighted_dist: &[u64],
    num_clusters: usize,
) -> WeightedGraph {
    weighted_graph_quotient_with_stats(g, labels, weighted_dist, num_clusters).0
}

/// [`weighted_graph_quotient`], also returning the combine kernel's ledger.
pub fn weighted_graph_quotient_with_stats(
    g: &WeightedGraph,
    labels: &[NodeId],
    weighted_dist: &[u64],
    num_clusters: usize,
) -> (WeightedGraph, CombineStats) {
    assert_eq!(labels.len(), g.num_nodes(), "label array size mismatch");
    assert_eq!(
        weighted_dist.len(),
        g.num_nodes(),
        "distance array size mismatch"
    );
    if !labels.par_iter().all(|&c| (c as usize) < num_clusters) {
        let bad = labels.iter().find(|&&c| (c as usize) >= num_clusters);
        panic!("cluster label out of range: {bad:?} >= {num_clusters}");
    }
    let half: Vec<u128> = combine::par_emit(
        g.num_nodes(),
        |u| {
            let cu = labels[u];
            g.upper_neighbors(u as NodeId)
                .filter(|&(v, _)| labels[v as usize] != cu)
                .count()
        },
        |u, emit| {
            let cu = labels[u];
            let du = weighted_dist[u];
            for (v, w) in g.upper_neighbors(u as NodeId) {
                let cv = labels[v as usize];
                if cv != cu {
                    let key = pack(cu.min(cv), cu.max(cv));
                    let path = du + w + weighted_dist[v as usize];
                    emit.push(((key as u128) << 64) | path as u128);
                }
            }
        },
    );
    let (arcs, stats) = combine::combine_symmetrize(
        num_clusters,
        half,
        |a| (a >> 64) as u64,
        |rec| {
            let (hi, lo) = combine::unpack((rec >> 64) as u64);
            ((pack(lo, hi) as u128) << 64) | (rec & u128::from(u64::MAX))
        },
        |a, b| a.min(b),
    );
    let (offsets, targets) =
        combine::csr_parts_from_sorted(num_clusters, &arcs, |&a| (a >> 64) as u64);
    let weights: Vec<u64> = arcs.iter().map(|&rec| rec as u64).collect();
    (
        WeightedGraph::from_csr_parts(offsets, targets, weights),
        stats,
    )
}

/// Number of edges of `g` crossing between distinct clusters (each counted
/// once). This is the paper's `m_C` *before* multi-edge collapsing; the
/// quotient's own `num_edges` gives the collapsed count.
pub fn cut_size<G: NeighborAccess>(g: &G, labels: &[NodeId]) -> usize {
    (0..g.num_nodes())
        .into_par_iter()
        .map(|u| cut_degree(g, labels, u))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    /// Path 0-1-2-3-4-5 split into clusters {0,1}, {2,3}, {4,5}.
    fn path_setup() -> (CsrGraph, Vec<NodeId>, Vec<u32>) {
        let g = generators::path(6);
        let labels = vec![0, 0, 1, 1, 2, 2];
        // Centers at 0, 2, 4 -> distances to own center:
        let dist = vec![0, 1, 0, 1, 0, 1];
        (g, labels, dist)
    }

    #[test]
    fn quotient_of_path() {
        let (g, labels, _) = path_setup();
        let q = quotient(&g, &labels, 3);
        assert_eq!(q.num_nodes(), 3);
        assert_eq!(q.num_edges(), 2);
        assert!(q.has_edge(0, 1));
        assert!(q.has_edge(1, 2));
        assert!(!q.has_edge(0, 2));
    }

    #[test]
    fn quotient_collapses_parallel_cut_edges() {
        // Two clusters joined by two distinct cut edges -> one quotient edge.
        let g = crate::GraphBuilder::new(4)
            .add_edges([(0, 1), (2, 3), (0, 2), (1, 3)])
            .build();
        let labels = vec![0, 0, 1, 1];
        let (q, stats) = quotient_with_stats(&g, &labels, 2);
        assert_eq!(q.num_edges(), 1);
        assert_eq!(cut_size(&g, &labels), 2);
        // 2 undirected cut edges combined down to 1 quotient edge.
        assert_eq!(stats.input_pairs, 2);
        assert_eq!(stats.output_pairs, 1);
        assert!((stats.combine_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_quotient_connecting_paths() {
        let (g, labels, dist) = path_setup();
        let wq = weighted_quotient(&g, &labels, &dist, 3);
        // Clusters {0,1} and {2,3}: cut edge (1, 2), weight 1 + 1 + 0 = 2.
        let w01 = wq.neighbors(0).find(|&(t, _)| t == 1).unwrap().1;
        assert_eq!(w01, 2);
        // Clusters {2,3} and {4,5}: cut edge (3, 4), weight 1 + 1 + 0 = 2.
        let w12 = wq.neighbors(1).find(|&(t, _)| t == 2).unwrap().1;
        assert_eq!(w12, 2);
        // Center-to-center distance across the quotient = 4 = actual d(0, 4).
        assert_eq!(wq.dijkstra(0)[2], 4);
    }

    #[test]
    fn weighted_quotient_takes_min_cut_edge() {
        // Square 0-1, 2-3 clusters with two cut edges of different center
        // distances.
        let g = crate::GraphBuilder::new(4)
            .add_edges([(0, 1), (2, 3), (0, 2), (1, 3)])
            .build();
        let labels = vec![0, 0, 1, 1];
        // centers 0 and 2: dist = [0, 1, 0, 1]
        let dist = vec![0, 1, 0, 1];
        let wq = weighted_quotient(&g, &labels, &dist, 2);
        // Cut edges: (0,2) -> 0+1+0 = 1; (1,3) -> 1+1+1 = 3. Min = 1.
        let w = wq.neighbors(0).next().unwrap().1;
        assert_eq!(w, 1);
    }

    #[test]
    fn singleton_clusters_reproduce_graph() {
        let g = generators::cycle(7);
        let labels: Vec<NodeId> = (0..7).collect();
        let q = quotient(&g, &labels, 7);
        assert_eq!(q, g);
        let dist = vec![0; 7];
        let wq = weighted_quotient(&g, &labels, &dist, 7);
        assert_eq!(wq.num_edges(), 7);
        assert_eq!(wq.apsp_diameter(), 3); // all weights 1
    }

    #[test]
    fn one_cluster_empty_quotient() {
        let g = generators::complete(5);
        let labels = vec![0; 5];
        let q = quotient(&g, &labels, 1);
        assert_eq!(q.num_nodes(), 1);
        assert_eq!(q.num_edges(), 0);
        assert_eq!(cut_size(&g, &labels), 0);
    }

    #[test]
    fn matches_naive_reference_on_workloads() {
        for g in [
            generators::mesh(20, 17),
            generators::preferential_attachment(600, 4, 9),
            generators::road_network(14, 14, 0.4, 5),
        ] {
            let k = 12usize;
            let labels: Vec<NodeId> = (0..g.num_nodes()).map(|v| (v % k) as NodeId).collect();
            let dist: Vec<u32> = (0..g.num_nodes()).map(|v| (v % 5) as u32).collect();
            assert_eq!(
                quotient(&g, &labels, k),
                crate::naive::quotient(&g, &labels, k)
            );
            assert_eq!(
                weighted_quotient(&g, &labels, &dist, k),
                crate::naive::weighted_quotient(&g, &labels, &dist, k)
            );
            assert_eq!(cut_size(&g, &labels), crate::naive::cut_size(&g, &labels));
        }
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn label_out_of_range_panics() {
        let g = generators::path(3);
        quotient(&g, &[0, 1, 2], 2);
    }

    #[test]
    fn weighted_graph_quotient_min_connecting_path() {
        // Weighted path 0 -2- 1 -5- 2 -2- 3 with clusters {0,1} | {2,3},
        // centers 0 and 3: the only cut edge is (1, 2), connecting path
        // 2 + 5 + 2 = 9.
        let g = WeightedGraph::from_edges(4, &[(0, 1, 2), (1, 2, 5), (2, 3, 2)]);
        let labels = vec![0, 0, 1, 1];
        let wdist = vec![0u64, 2, 2, 0];
        let (q, stats) = weighted_graph_quotient_with_stats(&g, &labels, &wdist, 2);
        assert_eq!(q.num_nodes(), 2);
        assert_eq!(q.neighbors(0).next(), Some((1, 9)));
        assert_eq!(stats.input_pairs, 1);
        assert_eq!(stats.output_pairs, 1);

        // Add a second, cheaper cut edge: the min survives the fold.
        let g2 = WeightedGraph::from_edges(4, &[(0, 1, 2), (1, 2, 5), (2, 3, 2), (0, 3, 1)]);
        let q2 = weighted_graph_quotient(&g2, &labels, &wdist, 2);
        assert_eq!(q2.neighbors(0).next(), Some((1, 1)));
    }
}
