//! Quotient graphs of a clustering (§4 of the paper).
//!
//! Given a node→cluster assignment, the *quotient graph* `G_C` has one node
//! per cluster and an edge between two clusters whenever some edge of `G`
//! crosses them. The *weighted* quotient assigns to each such edge the
//! length of the shortest path of `G` that connects the two cluster centers
//! and stays inside the two clusters: since every node knows its BFS-tree
//! distance to its own center, this is
//! `min over cut edges (x, y) of dist(x) + 1 + dist(y)`.

use crate::{CsrGraph, GraphBuilder, NodeId, WeightedGraph};
use std::collections::HashMap;

/// Builds the unweighted quotient graph of `g` under `labels`.
///
/// `labels[v]` must be in `0..num_clusters` for every node.
///
/// # Panics
/// Panics if `labels.len() != g.num_nodes()` or a label is out of range.
pub fn quotient(g: &CsrGraph, labels: &[NodeId], num_clusters: usize) -> CsrGraph {
    assert_eq!(labels.len(), g.num_nodes(), "label array size mismatch");
    let mut b = GraphBuilder::new(num_clusters);
    for (u, v) in g.edges() {
        let (cu, cv) = (labels[u as usize], labels[v as usize]);
        assert!(
            (cu as usize) < num_clusters && (cv as usize) < num_clusters,
            "cluster label out of range"
        );
        if cu != cv {
            b.add_edge(cu, cv);
        }
    }
    b.build()
}

/// Builds the weighted quotient graph of `g` under `labels`, where
/// `dist_to_center[v]` is the hop distance from `v` to its cluster's center.
///
/// Edge weight between clusters `a` and `b`:
/// `min over cut edges (x, y), x ∈ a, y ∈ b of dist(x) + 1 + dist(y)` —
/// the §4 connecting-path length restricted to the two clusters (BFS-tree
/// paths to the centers stay within their cluster by construction of
/// disjoint growth).
pub fn weighted_quotient(
    g: &CsrGraph,
    labels: &[NodeId],
    dist_to_center: &[u32],
    num_clusters: usize,
) -> WeightedGraph {
    assert_eq!(labels.len(), g.num_nodes(), "label array size mismatch");
    assert_eq!(
        dist_to_center.len(),
        g.num_nodes(),
        "distance array size mismatch"
    );
    let mut best: HashMap<(NodeId, NodeId), u64> = HashMap::new();
    for (u, v) in g.edges() {
        let (cu, cv) = (labels[u as usize], labels[v as usize]);
        assert!(
            (cu as usize) < num_clusters && (cv as usize) < num_clusters,
            "cluster label out of range"
        );
        if cu == cv {
            continue;
        }
        let key = (cu.min(cv), cu.max(cv));
        let w = dist_to_center[u as usize] as u64 + 1 + dist_to_center[v as usize] as u64;
        best.entry(key)
            .and_modify(|cur| *cur = (*cur).min(w))
            .or_insert(w);
    }
    let edges: Vec<(NodeId, NodeId, u64)> = best.into_iter().map(|((a, b), w)| (a, b, w)).collect();
    WeightedGraph::from_edges(num_clusters, &edges)
}

/// Number of edges of `g` crossing between distinct clusters (each counted
/// once). This is the paper's `m_C` *before* multi-edge collapsing; the
/// quotient's own `num_edges` gives the collapsed count.
pub fn cut_size(g: &CsrGraph, labels: &[NodeId]) -> usize {
    g.edges()
        .filter(|&(u, v)| labels[u as usize] != labels[v as usize])
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    /// Path 0-1-2-3-4-5 split into clusters {0,1}, {2,3}, {4,5}.
    fn path_setup() -> (CsrGraph, Vec<NodeId>, Vec<u32>) {
        let g = generators::path(6);
        let labels = vec![0, 0, 1, 1, 2, 2];
        // Centers at 0, 2, 4 -> distances to own center:
        let dist = vec![0, 1, 0, 1, 0, 1];
        (g, labels, dist)
    }

    #[test]
    fn quotient_of_path() {
        let (g, labels, _) = path_setup();
        let q = quotient(&g, &labels, 3);
        assert_eq!(q.num_nodes(), 3);
        assert_eq!(q.num_edges(), 2);
        assert!(q.has_edge(0, 1));
        assert!(q.has_edge(1, 2));
        assert!(!q.has_edge(0, 2));
    }

    #[test]
    fn quotient_collapses_parallel_cut_edges() {
        // Two clusters joined by two distinct cut edges -> one quotient edge.
        let g = crate::GraphBuilder::new(4)
            .add_edges([(0, 1), (2, 3), (0, 2), (1, 3)])
            .build();
        let labels = vec![0, 0, 1, 1];
        let q = quotient(&g, &labels, 2);
        assert_eq!(q.num_edges(), 1);
        assert_eq!(cut_size(&g, &labels), 2);
    }

    #[test]
    fn weighted_quotient_connecting_paths() {
        let (g, labels, dist) = path_setup();
        let wq = weighted_quotient(&g, &labels, &dist, 3);
        // Clusters {0,1} and {2,3}: cut edge (1, 2), weight 1 + 1 + 0 = 2.
        let w01 = wq.neighbors(0).find(|&(t, _)| t == 1).unwrap().1;
        assert_eq!(w01, 2);
        // Clusters {2,3} and {4,5}: cut edge (3, 4), weight 1 + 1 + 0 = 2.
        let w12 = wq.neighbors(1).find(|&(t, _)| t == 2).unwrap().1;
        assert_eq!(w12, 2);
        // Center-to-center distance across the quotient = 4 = actual d(0, 4).
        assert_eq!(wq.dijkstra(0)[2], 4);
    }

    #[test]
    fn weighted_quotient_takes_min_cut_edge() {
        // Square 0-1, 2-3 clusters with two cut edges of different center
        // distances.
        let g = crate::GraphBuilder::new(4)
            .add_edges([(0, 1), (2, 3), (0, 2), (1, 3)])
            .build();
        let labels = vec![0, 0, 1, 1];
        // centers 0 and 2: dist = [0, 1, 0, 1]
        let dist = vec![0, 1, 0, 1];
        let wq = weighted_quotient(&g, &labels, &dist, 2);
        // Cut edges: (0,2) -> 0+1+0 = 1; (1,3) -> 1+1+1 = 3. Min = 1.
        let w = wq.neighbors(0).next().unwrap().1;
        assert_eq!(w, 1);
    }

    #[test]
    fn singleton_clusters_reproduce_graph() {
        let g = generators::cycle(7);
        let labels: Vec<NodeId> = (0..7).collect();
        let q = quotient(&g, &labels, 7);
        assert_eq!(q, g);
        let dist = vec![0; 7];
        let wq = weighted_quotient(&g, &labels, &dist, 7);
        assert_eq!(wq.num_edges(), 7);
        assert_eq!(wq.apsp_diameter(), 3); // all weights 1
    }

    #[test]
    fn one_cluster_empty_quotient() {
        let g = generators::complete(5);
        let labels = vec![0; 5];
        let q = quotient(&g, &labels, 1);
        assert_eq!(q.num_nodes(), 1);
        assert_eq!(q.num_edges(), 0);
        assert_eq!(cut_size(&g, &labels), 0);
    }
}
