//! Streaming graph construction: spill edges to disk, build compressed CSR
//! in bounded memory.
//!
//! The in-memory pipeline ([`GraphBuilder`]) materializes the full edge
//! `Vec` (8 bytes/edge) *and* the symmetrized arc buffer (16 bytes/edge)
//! before the CSR exists — three transient copies of a graph whose whole
//! point, under the compressed backend, is to occupy ~1–2 bytes/arc. This
//! module replaces that peak with an external-memory build:
//!
//! 1. **Spill** — a generator writes raw `(u, v)` records through
//!    [`EdgeSink`] into an [`EdgeSpillWriter`] (8 bytes per edge, buffered,
//!    no in-memory edge list).
//! 2. **Chunked sort** — [`build_ccsr_from_spill`] reads the spill back in
//!    chunks of `chunk_edges` records, symmetrizes each chunk into packed
//!    arcs, and canonicalizes it with the existing
//!    [`combine::combine_by_key`] kernel (parallel sort + dedup); each
//!    sorted run is written to a temporary file.
//! 3. **Merge** — a k-way heap merge over the runs streams globally sorted,
//!    deduplicated arcs straight into a [`CcsrBuilder`], which encodes one
//!    vertex at a time.
//!
//! Peak memory is O(`chunk_edges`) + the output graph — never the full raw
//! edge list. The result is **byte-identical** to
//! `CcsrGraph::from_csr(&GraphBuilder::build(..))`: both routes canonicalize
//! the same arc multiset to the same sorted unique sequence.

use crate::builder::GraphBuilder;
use crate::ccsr::{CcsrBuilder, CcsrGraph};
use crate::combine::{self, pack, unpack};
use crate::NodeId;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Destination of a generator's edge stream: an in-memory builder or a
/// disk spill. Self-loops and duplicates are tolerated (removed at build).
pub trait EdgeSink {
    /// Records one undirected edge.
    fn add_edge(&mut self, u: NodeId, v: NodeId);
}

impl EdgeSink for GraphBuilder {
    fn add_edge(&mut self, u: NodeId, v: NodeId) {
        GraphBuilder::add_edge(self, u, v);
    }
}

/// Buffered writer spilling raw `(u, v)` little-endian records to a file.
///
/// I/O errors are latched and surfaced by [`finish`](Self::finish) — the
/// [`EdgeSink`] contract has no per-edge error channel.
pub struct EdgeSpillWriter {
    w: BufWriter<File>,
    num_nodes: usize,
    edges: u64,
    err: Option<io::Error>,
}

impl EdgeSpillWriter {
    /// Creates (truncating) the spill file for a graph on `n` nodes.
    pub fn create(path: &Path, n: usize) -> io::Result<Self> {
        assert!(
            n < NodeId::MAX as usize,
            "node count {n} exceeds NodeId range"
        );
        Ok(EdgeSpillWriter {
            w: BufWriter::new(File::create(path)?),
            num_nodes: n,
            edges: 0,
            err: None,
        })
    }

    /// Edges recorded so far.
    pub fn edge_count(&self) -> u64 {
        self.edges
    }

    /// Flushes and returns the number of records written.
    pub fn finish(mut self) -> io::Result<u64> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        self.w.flush()?;
        Ok(self.edges)
    }
}

impl EdgeSink for EdgeSpillWriter {
    fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            (u as usize) < self.num_nodes && (v as usize) < self.num_nodes,
            "edge ({u}, {v}) out of range for n = {}",
            self.num_nodes
        );
        if self.err.is_some() {
            return;
        }
        let mut rec = [0u8; 8];
        rec[..4].copy_from_slice(&u.to_le_bytes());
        rec[4..].copy_from_slice(&v.to_le_bytes());
        match self.w.write_all(&rec) {
            Ok(()) => self.edges += 1,
            Err(e) => self.err = Some(e),
        }
    }
}

/// One sorted run file during the merge: a buffered reader plus its
/// look-ahead arc.
struct Run {
    r: BufReader<File>,
    head: u64,
}

impl Run {
    /// Reads the next 8-byte arc, or `None` at end of run. Errors on a
    /// torn trailing record.
    fn pull(r: &mut BufReader<File>) -> io::Result<Option<u64>> {
        let mut rec = [0u8; 8];
        match r.read_exact(&mut rec) {
            Ok(()) => Ok(Some(u64::from_le_bytes(rec))),
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// Builds a compressed graph from a spill file in bounded memory (see the
/// module docs). `chunk_edges` bounds the in-core working set: each chunk
/// costs `16 · chunk_edges` transient bytes through the combine kernel.
///
/// Temporary run files are created next to the spill (`<spill>.runN`) and
/// removed before returning. The spill itself is left in place.
///
/// # Panics
/// Panics on out-of-range endpoints (same contract as [`GraphBuilder`]).
pub fn build_ccsr_from_spill(n: usize, spill: &Path, chunk_edges: usize) -> io::Result<CcsrGraph> {
    assert!(chunk_edges > 0, "chunk size must be positive");
    let mut input = BufReader::new(File::open(spill)?);
    let mut run_paths: Vec<PathBuf> = Vec::new();
    let cleanup = |paths: &[PathBuf]| {
        for p in paths {
            let _ = std::fs::remove_file(p);
        }
    };

    // Pass 1 — chunked sort: canonicalize each chunk with the combine
    // kernel and spill the sorted unique arcs.
    let mut buf = vec![0u8; 8 * chunk_edges.min(1 << 20)];
    let mut pending: Vec<u8> = Vec::new();
    loop {
        let mut arcs: Vec<u64> = Vec::new();
        while arcs.len() < 2 * chunk_edges {
            let remaining_edges = chunk_edges - arcs.len() / 2;
            let want = buf.len().min(8 * remaining_edges);
            let got = input.read(&mut buf[..want])?;
            if got == 0 {
                break;
            }
            pending.extend_from_slice(&buf[..got]);
            let whole = pending.len() / 8 * 8;
            for rec in pending[..whole].chunks_exact(8) {
                let u = NodeId::from_le_bytes(rec[..4].try_into().expect("4-byte slice"));
                let v = NodeId::from_le_bytes(rec[4..].try_into().expect("4-byte slice"));
                assert!(
                    (u as usize) < n && (v as usize) < n,
                    "edge ({u}, {v}) out of range for n = {n}"
                );
                if u != v {
                    arcs.push(pack(u, v));
                    arcs.push(pack(v, u));
                }
            }
            pending.drain(..whole);
        }
        if arcs.is_empty() {
            break;
        }
        let (sorted, _) = combine::combine_by_key(arcs, (n as u64) << 32, |&a| a, |first, _| first);
        let run_path = spill.with_extension(format!("run{}", run_paths.len()));
        let mut w = BufWriter::new(File::create(&run_path).inspect_err(|_| cleanup(&run_paths))?);
        for a in &sorted {
            if let Err(e) = w.write_all(&a.to_le_bytes()) {
                cleanup(&run_paths);
                let _ = std::fs::remove_file(&run_path);
                return Err(e);
            }
        }
        if let Err(e) = w.flush() {
            cleanup(&run_paths);
            let _ = std::fs::remove_file(&run_path);
            return Err(e);
        }
        run_paths.push(run_path);
    }
    if !pending.is_empty() {
        cleanup(&run_paths);
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "spill file length is not a multiple of the 8-byte record size",
        ));
    }

    // Pass 2 — k-way merge with global dedup, encoding vertex by vertex.
    let merged = (|| -> io::Result<CcsrGraph> {
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = BinaryHeap::new();
        let mut runs: Vec<Run> = Vec::with_capacity(run_paths.len());
        for (i, p) in run_paths.iter().enumerate() {
            let mut r = BufReader::new(File::open(p)?);
            if let Some(head) = Run::pull(&mut r)? {
                heap.push(std::cmp::Reverse((head, i)));
                runs.push(Run { r, head });
            } else {
                runs.push(Run { r, head: u64::MAX });
            }
        }
        let mut builder = CcsrBuilder::new(n);
        let mut current: NodeId = 0;
        let mut list: Vec<NodeId> = Vec::new();
        let mut last_arc: Option<u64> = None;
        while let Some(std::cmp::Reverse((arc, i))) = heap.pop() {
            debug_assert_eq!(runs[i].head, arc);
            if let Some(next) = Run::pull(&mut runs[i].r)? {
                runs[i].head = next;
                heap.push(std::cmp::Reverse((next, i)));
            }
            if last_arc == Some(arc) {
                continue; // duplicate across runs
            }
            last_arc = Some(arc);
            let (u, v) = unpack(arc);
            while current < u {
                builder.push_vertex(list.drain(..));
                current += 1;
            }
            list.push(v);
        }
        while (current as usize) < n {
            builder.push_vertex(list.drain(..));
            current += 1;
        }
        Ok(builder.finish())
    })();
    cleanup(&run_paths);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pardec-stream-{}-{name}", std::process::id()));
        p
    }

    /// Streams a graph's edges (plus duplicates) through a spill file and
    /// checks the bounded-memory build agrees with the in-memory route.
    fn roundtrip(g: &crate::CsrGraph, chunk_edges: usize, name: &str) {
        let path = tmp(name);
        let mut w = EdgeSpillWriter::create(&path, g.num_nodes()).expect("create spill");
        for (u, v) in g.edges() {
            w.add_edge(u, v);
            if (u + v) % 3 == 0 {
                w.add_edge(v, u); // duplicate in the reverse orientation
            }
        }
        let written = w.finish().expect("finish spill");
        assert!(written >= g.num_edges() as u64);
        let c = build_ccsr_from_spill(g.num_nodes(), &path, chunk_edges).expect("build");
        assert_eq!(&c.to_csr(), g);
        assert_eq!(c, crate::CcsrGraph::from_csr(g));
        for ext in ["run0", "run1", "run2"] {
            assert!(!path.with_extension(ext).exists(), "leftover {ext}");
        }
        std::fs::remove_file(&path).expect("remove spill");
    }

    #[test]
    fn spill_build_matches_in_memory_single_run() {
        roundtrip(&generators::mesh(12, 11), 1 << 20, "single");
    }

    #[test]
    fn spill_build_matches_in_memory_many_runs() {
        // Tiny chunks force many sorted runs and a real multi-way merge.
        roundtrip(&generators::preferential_attachment(400, 4, 3), 64, "multi");
        roundtrip(&generators::lollipop(30, 4, 50, 7), 17, "lolli");
    }

    #[test]
    fn empty_and_isolated() {
        let path = tmp("empty");
        let w = EdgeSpillWriter::create(&path, 9).expect("create");
        w.finish().expect("finish");
        let c = build_ccsr_from_spill(9, &path, 8).expect("build");
        assert_eq!(c.num_nodes(), 9);
        assert_eq!(c.num_arcs(), 0);
        std::fs::remove_file(&path).expect("remove");
    }

    #[test]
    fn torn_record_is_rejected() {
        let path = tmp("torn");
        std::fs::write(&path, [1u8, 0, 0, 0, 2, 0, 0, 0, 9]).expect("write");
        let err = build_ccsr_from_spill(5, &path, 8).expect_err("must reject");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).expect("remove");
    }

    #[test]
    fn generator_sink_equivalence() {
        // The same generator seed through a GraphBuilder sink and a spill
        // sink must produce identical compressed graphs.
        let n = 600;
        let direct = generators::windowed_preferential_attachment(n, 5, 0.2, 42);
        let path = tmp("gen");
        let mut w = EdgeSpillWriter::create(&path, n).expect("create");
        generators::windowed_preferential_attachment_into(&mut w, n, 5, 0.2, 42);
        w.finish().expect("finish");
        let c = build_ccsr_from_spill(n, &path, 333).expect("build");
        assert_eq!(c.to_csr(), direct);
        std::fs::remove_file(&path).expect("remove");
    }
}
