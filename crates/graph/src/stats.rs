//! Basic graph statistics (Table 1 characterization and diagnostics).

use crate::CsrGraph;

/// Degree distribution summary.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    pub min: usize,
    pub max: usize,
    pub avg: f64,
    pub median: usize,
    /// 99th percentile degree (nearest-rank).
    pub p99: usize,
}

/// Computes degree statistics; all-zero for the empty graph.
pub fn degree_stats(g: &CsrGraph) -> DegreeStats {
    let n = g.num_nodes();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            avg: 0.0,
            median: 0,
            p99: 0,
        };
    }
    let mut degrees: Vec<usize> = (0..n as u32).map(|u| g.degree(u)).collect();
    degrees.sort_unstable();
    let total: usize = degrees.iter().sum();
    let rank = |q: f64| degrees[(((n as f64) * q).ceil() as usize).clamp(1, n) - 1];
    DegreeStats {
        min: degrees[0],
        max: degrees[n - 1],
        avg: total as f64 / n as f64,
        median: rank(0.5),
        p99: rank(0.99),
    }
}

/// One-line characterization of a dataset (the paper's Table 1 row).
#[derive(Clone, Debug, PartialEq)]
pub struct GraphSummary {
    pub nodes: usize,
    pub edges: usize,
    pub avg_degree: f64,
    pub max_degree: usize,
}

/// Computes the summary row (diameter is computed separately — it is
/// expensive and the experiments treat it as ground truth input).
pub fn summarize(g: &CsrGraph) -> GraphSummary {
    GraphSummary {
        nodes: g.num_nodes(),
        edges: g.num_edges(),
        avg_degree: if g.num_nodes() == 0 {
            0.0
        } else {
            g.num_arcs() as f64 / g.num_nodes() as f64
        },
        max_degree: g.max_degree(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn stats_on_star() {
        let s = degree_stats(&generators::star(11));
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10);
        assert_eq!(s.median, 1);
        assert!((s.avg - 20.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn stats_on_regular() {
        let s = degree_stats(&generators::cycle(8));
        assert_eq!((s.min, s.max, s.median, s.p99), (2, 2, 2, 2));
        assert!((s.avg - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stats_empty() {
        let s = degree_stats(&CsrGraph::empty(0));
        assert_eq!(s.max, 0);
        assert_eq!(s.avg, 0.0);
    }

    #[test]
    fn summary_row() {
        let g = generators::mesh(5, 5);
        let s = summarize(&g);
        assert_eq!(s.nodes, 25);
        assert_eq!(s.edges, 40);
        assert_eq!(s.max_degree, 4);
        assert!((s.avg_degree - 80.0 / 25.0).abs() < 1e-12);
    }
}
