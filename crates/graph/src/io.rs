//! Graph serialization: SNAP-style text edge lists and a compact binary
//! snapshot format.
//!
//! # The `PDEC1` base format
//!
//! The original binary format stores the CSR arrays directly so that large
//! generated workloads can be cached between experiment runs:
//!
//! ```text
//! magic   b"PDEC1\0"     6 bytes
//! n       u64 LE
//! arcs    u64 LE          (= 2m)
//! offsets (n + 1) × u64 LE
//! targets arcs × u32 LE
//! ```
//!
//! # The `PDEC2` sectioned container
//!
//! Resident services ([`pardec serve`]) need more than the graph in one
//! file: the clustering, the distance-oracle tables, and whatever future
//! state (weighted oracles, compressed CSR) the ROADMAP adds. `PDEC2`
//! wraps any number of **sections** behind a versioned table:
//!
//! ```text
//! magic         b"PDEC2\0"                        6 bytes
//! table version u32 LE                            (currently 1)
//! section count u32 LE
//! entries       count × { tag u32, version u32, offset u64, len u64 }
//! payloads      8-byte-aligned byte ranges, zero padding between them
//! ```
//!
//! Offsets are absolute file offsets and each payload is 8-byte aligned, so
//! a memory-mapped snapshot can hand out aligned `&[u8]` views without
//! copying the file through a parser. Every snapshot carries exactly one
//! graph section ([`SECTION_GRAPH`], payload = the `PDEC1` body); other
//! crates register their own tags (the session layer persists clustering
//! and oracle sections). Unknown tags are preserved and ignored — old
//! readers skip what they do not understand, new readers fall back to
//! recomputing sections that are absent.
//!
//! Two graph read paths exist:
//! * [`Snapshot::graph`] — the **fast path**: header/offset structural
//!   checks plus a bulk arc-range check, then a straight copy into the CSR
//!   arrays. No per-edge re-sort, dedup, or builder pass — startup cost is
//!   a memcpy, which is what a resident daemon wants. It trusts deeper CSR
//!   invariants (sorted adjacency, symmetry) to the writer; snapshots this
//!   module wrote satisfy them by construction.
//! * [`Snapshot::graph_checked`] — the **fallback path** for foreign or
//!   suspect files: every edge is re-run through [`GraphBuilder`], so no
//!   payload can violate a CSR invariant.
//!
//! All size arithmetic on both paths is checked: hostile headers produce
//! an [`io::Error`], never an overflow panic, and truncating a snapshot at
//! any byte yields an error (asserted exhaustively by the tests here and
//! property-tested in `tests/proptests_session.rs`).

use crate::ccsr::BLOCK;
use crate::{Backend, CcsrGraph, CsrGraph, GraphBuilder, GraphRepr, NodeId, WeightedGraph};
use bytes::{Buf, BufMut};
use rayon::prelude::*;
use std::io::{self, BufRead, Write};

const MAGIC: &[u8; 6] = b"PDEC1\0";
const MAGIC_V2: &[u8; 6] = b"PDEC2\0";

/// Current version of the `PDEC2` section table layout.
pub const SNAPSHOT_TABLE_VERSION: u32 = 1;

/// Section tag of the graph CSR payload (`b"GRPH"`, little-endian).
pub const SECTION_GRAPH: u32 = u32::from_le_bytes(*b"GRPH");

/// Current payload version written for [`SECTION_GRAPH`].
pub const SECTION_GRAPH_VERSION: u32 = 1;

/// Section tag of the gap-coded compressed graph payload (`b"GRPC"`):
///
/// ```text
/// n        u64 LE
/// arcs     u64 LE                      (= 2m)
/// data_len u64 LE
/// index    ⌈n / BLOCK⌉ × u64 LE
/// data     data_len bytes              (concatenated varint records)
/// ```
///
/// A snapshot carries exactly one graph section — [`SECTION_GRAPH`] *or*
/// this one, chosen by the writer's [`Backend`].
pub const SECTION_GRAPH_COMPRESSED: u32 = u32::from_le_bytes(*b"GRPC");

/// Current payload version written for [`SECTION_GRAPH_COMPRESSED`].
pub const SECTION_GRAPH_COMPRESSED_VERSION: u32 = 1;

/// Upper bound on the section count a reader will accept — far above any
/// legitimate snapshot, low enough that a hostile count cannot drive a
/// large allocation.
const MAX_SECTIONS: usize = 4096;

/// Bytes per section-table entry: tag, version, offset, len.
const ENTRY_BYTES: usize = 4 + 4 + 8 + 8;

/// Writes `g` as a text edge list: a `# nodes <n> edges <m>` header followed
/// by one `u<TAB>v` line per undirected edge.
pub fn write_edge_list(g: &CsrGraph, w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "# nodes {} edges {}", g.num_nodes(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    Ok(())
}

/// Reads a text edge list (comment lines start with `#`; separators are any
/// whitespace). Node count is `max id + 1` unless a `# nodes n …` header
/// declares a larger one.
pub fn read_edge_list(r: &mut impl BufRead) -> io::Result<CsrGraph> {
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut declared_n: usize = 0;
    let mut max_id: usize = 0;
    let mut line = String::new();
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if let Some(rest) = t.strip_prefix('#') {
            // Parse an optional "nodes <n>" declaration.
            let mut it = rest.split_whitespace();
            while let Some(tok) = it.next() {
                if tok == "nodes" {
                    if let Some(Ok(n)) = it.next().map(str::parse::<usize>) {
                        declared_n = declared_n.max(n);
                    }
                }
            }
            continue;
        }
        let mut it = t.split_whitespace();
        let (u, v) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => (
                a.parse::<NodeId>()
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
                b.parse::<NodeId>()
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
            ),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed edge line: {t:?}"),
                ))
            }
        };
        max_id = max_id.max(u as usize).max(v as usize);
        edges.push((u, v));
    }
    let n = declared_n.max(if edges.is_empty() { 0 } else { max_id + 1 });
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Writes `g` as a text edge list with a third weight column: a
/// `# nodes <n> edges <m>` header followed by one `u<TAB>v<TAB>w` line per
/// undirected edge.
pub fn write_weighted_edge_list(g: &WeightedGraph, w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "# nodes {} edges {}", g.num_nodes(), g.num_edges())?;
    for u in 0..g.num_nodes() as NodeId {
        for (v, wt) in g.upper_neighbors(u) {
            writeln!(w, "{u}\t{v}\t{wt}")?;
        }
    }
    Ok(())
}

/// Reads a text edge list with an *optional* third weight column (missing
/// weights default to 1, so every unweighted edge list is also a valid
/// weighted one). Comments, separators, and the `# nodes n` header follow
/// [`read_edge_list`]; duplicate edges keep their smallest weight.
pub fn read_weighted_edge_list(r: &mut impl BufRead) -> io::Result<WeightedGraph> {
    let mut edges: Vec<(NodeId, NodeId, u64)> = Vec::new();
    let mut declared_n: usize = 0;
    let mut max_id: usize = 0;
    let mut line = String::new();
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if let Some(rest) = t.strip_prefix('#') {
            let mut it = rest.split_whitespace();
            while let Some(tok) = it.next() {
                if tok == "nodes" {
                    if let Some(Ok(n)) = it.next().map(str::parse::<usize>) {
                        declared_n = declared_n.max(n);
                    }
                }
            }
            continue;
        }
        let mut it = t.split_whitespace();
        let (u, v) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => (
                a.parse::<NodeId>()
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
                b.parse::<NodeId>()
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
            ),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed edge line: {t:?}"),
                ))
            }
        };
        let w = match it.next() {
            Some(s) => s
                .parse::<u64>()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
            None => 1,
        };
        max_id = max_id.max(u as usize).max(v as usize);
        edges.push((u, v, w));
    }
    let n = declared_n.max(if edges.is_empty() { 0 } else { max_id + 1 });
    Ok(WeightedGraph::from_edges(n, &edges))
}

fn data_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Encodes the `PDEC1` graph body (everything after the magic): `n`,
/// `arcs`, offsets, targets. This is also the [`SECTION_GRAPH`] payload.
fn encode_graph_body(g: &CsrGraph) -> Vec<u8> {
    let offsets = g.raw_offsets();
    let targets = g.raw_targets();
    let mut buf = Vec::with_capacity(16 + offsets.len() * 8 + targets.len() * 4);
    buf.put_u64_le(g.num_nodes() as u64);
    buf.put_u64_le(targets.len() as u64);
    for &o in offsets {
        buf.put_u64_le(o as u64);
    }
    for &t in targets {
        buf.put_u32_le(t);
    }
    buf
}

/// Validates a graph body's header, returning `(n, arcs, rest)` with `rest`
/// positioned at the offsets array and guaranteed to hold exactly the
/// declared payload. All arithmetic is checked: a hostile header must
/// produce an error, not an overflow panic (debug) or a bogus comparison
/// (release).
fn decode_graph_header(body: &[u8]) -> io::Result<(usize, usize, &[u8])> {
    let mut buf = body;
    if buf.remaining() < 16 {
        return Err(data_err("truncated header"));
    }
    let n = buf.get_u64_le() as usize;
    let arcs = buf.get_u64_le() as usize;
    let expected = n
        .checked_add(1)
        .and_then(|o| o.checked_mul(8))
        .and_then(|o| o.checked_add(arcs.checked_mul(4)?))
        .ok_or_else(|| data_err("header sizes overflow"))?;
    if buf.remaining() != expected {
        return Err(data_err("length mismatch"));
    }
    Ok((n, arcs, buf))
}

/// Fast graph decode: structural checks (monotone offsets, in-range
/// targets) plus a bulk copy — no per-edge builder pass. See the module
/// docs for the trust contract.
fn decode_graph_fast(body: &[u8]) -> io::Result<CsrGraph> {
    let (n, arcs, mut buf) = decode_graph_header(body)?;
    let mut offsets = Vec::with_capacity(n + 1);
    let mut prev = 0usize;
    for i in 0..=n {
        let o = buf.get_u64_le() as usize;
        if (i == 0 && o != 0) || o < prev || o > arcs {
            return Err(data_err("inconsistent offsets"));
        }
        prev = o;
        offsets.push(o);
    }
    if prev != arcs {
        return Err(data_err("inconsistent offsets"));
    }
    let targets: Vec<NodeId> = (0..arcs).map(|_| buf.get_u32_le()).collect();
    let in_range = if arcs > 1 << 16 {
        targets.par_iter().all(|&t| (t as usize) < n)
    } else {
        targets.iter().all(|&t| (t as usize) < n)
    };
    if !in_range {
        return Err(data_err("target out of range"));
    }
    Ok(CsrGraph::from_parts(offsets, targets))
}

/// Checked graph decode: every edge re-runs through [`GraphBuilder`] so
/// corrupt payloads cannot violate CSR invariants.
fn decode_graph_checked(body: &[u8]) -> io::Result<CsrGraph> {
    let (n, arcs, mut buf) = decode_graph_header(body)?;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(buf.get_u64_le() as usize);
    }
    let mut b = GraphBuilder::with_capacity(n, arcs / 2);
    let mut targets = Vec::with_capacity(arcs);
    for _ in 0..arcs {
        targets.push(buf.get_u32_le());
    }
    if *offsets.last().unwrap_or(&0) != arcs {
        return Err(data_err("inconsistent offsets"));
    }
    for u in 0..n {
        for &v in targets
            .get(offsets[u]..offsets[u + 1])
            .ok_or_else(|| data_err("offset out of bounds"))?
        {
            if (v as usize) >= n {
                return Err(data_err("target out of range"));
            }
            if (u as NodeId) < v {
                b.add_edge(u as NodeId, v);
            }
        }
    }
    Ok(b.build())
}

/// Encodes the [`SECTION_GRAPH_COMPRESSED`] payload.
fn encode_cgraph_body(c: &CcsrGraph) -> Vec<u8> {
    let data = c.raw_data();
    let index = c.raw_index();
    let mut buf = Vec::with_capacity(24 + index.len() * 8 + data.len());
    buf.put_u64_le(c.num_nodes() as u64);
    buf.put_u64_le(c.num_arcs() as u64);
    buf.put_u64_le(data.len() as u64);
    for &o in index {
        buf.put_u64_le(o);
    }
    buf.put_slice(data);
    buf
}

/// Decodes a [`SECTION_GRAPH_COMPRESSED`] payload. Always runs the full
/// O(n + m) [`CcsrGraph::validate_parts`] pass — the decoder's trusted-path
/// readers panic on malformed varints, so unvalidated bytes must never
/// reach them. Symmetry is *not* checked here; [`Snapshot::graph_checked`]
/// (and the checked repr path) decompresses and re-runs the full CSR
/// invariants on top.
fn decode_cgraph(body: &[u8]) -> io::Result<CcsrGraph> {
    let mut buf = body;
    if buf.remaining() < 24 {
        return Err(data_err("truncated compressed graph header"));
    }
    let n = buf.get_u64_le() as usize;
    let arcs = buf.get_u64_le() as usize;
    let data_len = buf.get_u64_le() as usize;
    let index_len = n.div_ceil(BLOCK);
    let expected = index_len
        .checked_mul(8)
        .and_then(|b| b.checked_add(data_len))
        .ok_or_else(|| data_err("compressed header sizes overflow"))?;
    if buf.remaining() != expected {
        return Err(data_err("compressed graph length mismatch"));
    }
    let index: Vec<u64> = (0..index_len).map(|_| buf.get_u64_le()).collect();
    let data = buf.to_vec();
    CcsrGraph::validate_parts(n, arcs, &data, &index).map_err(data_err)?;
    Ok(CcsrGraph::from_raw_parts(n, arcs, data, index))
}

/// Serializes `g` into the `PDEC1` binary snapshot format (graph only; use
/// [`save_snapshot`] to persist additional sections).
pub fn save_binary(g: &CsrGraph, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&encode_graph_body(g))
}

/// Deserializes the graph of a `PDEC1` **or** `PDEC2` snapshot through the
/// checked (builder) path; extra `PDEC2` sections are ignored.
pub fn load_binary(bytes: &[u8]) -> io::Result<CsrGraph> {
    Snapshot::parse(bytes)?.graph_checked()
}

/// One section to persist alongside the graph in a `PDEC2` snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SectionData {
    /// Four-byte tag (conventionally ASCII via `u32::from_le_bytes`).
    pub tag: u32,
    /// Payload layout version, interpreted by the owning crate.
    pub version: u32,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

/// Serializes `g` plus `extra` sections into a `PDEC2` sectioned snapshot.
///
/// The graph always becomes the first section ([`SECTION_GRAPH`]); callers
/// must not pass that tag themselves. Payloads are laid out in argument
/// order, each 8-byte aligned.
pub fn save_snapshot(g: &CsrGraph, extra: &[SectionData], w: &mut impl Write) -> io::Result<()> {
    save_snapshot_sections(
        SECTION_GRAPH,
        SECTION_GRAPH_VERSION,
        encode_graph_body(g),
        extra,
        w,
    )
}

/// [`save_snapshot`] for either backend: a plain repr writes a
/// [`SECTION_GRAPH`] section, a compressed repr a
/// [`SECTION_GRAPH_COMPRESSED`] one — so the on-disk footprint follows the
/// in-memory choice and a reload round-trips the backend.
pub fn save_snapshot_repr(
    g: &GraphRepr,
    extra: &[SectionData],
    w: &mut impl Write,
) -> io::Result<()> {
    match g {
        GraphRepr::Plain(g) => save_snapshot(g, extra, w),
        GraphRepr::Compressed(c) => save_snapshot_sections(
            SECTION_GRAPH_COMPRESSED,
            SECTION_GRAPH_COMPRESSED_VERSION,
            encode_cgraph_body(c),
            extra,
            w,
        ),
    }
}

fn save_snapshot_sections(
    graph_tag: u32,
    graph_version: u32,
    graph_body: Vec<u8>,
    extra: &[SectionData],
    w: &mut impl Write,
) -> io::Result<()> {
    assert!(
        extra
            .iter()
            .all(|s| s.tag != SECTION_GRAPH && s.tag != SECTION_GRAPH_COMPRESSED),
        "the graph section is written implicitly"
    );
    assert!(extra.len() < MAX_SECTIONS, "too many sections");
    let count = 1 + extra.len();
    let table_end = MAGIC_V2.len() + 8 + count * ENTRY_BYTES;

    let mut header = Vec::with_capacity(table_end);
    header.put_slice(MAGIC_V2);
    header.put_u32_le(SNAPSHOT_TABLE_VERSION);
    header.put_u32_le(count as u32);
    let mut cursor = table_end;
    let mut offsets = Vec::with_capacity(count);
    for (tag, version, len) in std::iter::once((graph_tag, graph_version, graph_body.len()))
        .chain(extra.iter().map(|s| (s.tag, s.version, s.payload.len())))
    {
        cursor = cursor.next_multiple_of(8);
        header.put_u32_le(tag);
        header.put_u32_le(version);
        header.put_u64_le(cursor as u64);
        header.put_u64_le(len as u64);
        offsets.push(cursor);
        cursor += len;
    }
    w.write_all(&header)?;
    let mut written = table_end;
    for (start, payload) in offsets
        .iter()
        .zip(std::iter::once(&graph_body).chain(extra.iter().map(|s| &s.payload)))
    {
        for _ in written..*start {
            w.write_all(&[0])?; // alignment padding
        }
        w.write_all(payload)?;
        written = start + payload.len();
    }
    Ok(())
}

/// One parsed entry of a snapshot's section table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SectionEntry {
    /// Four-byte tag.
    pub tag: u32,
    /// Payload layout version.
    pub version: u32,
    /// Absolute payload offset within the snapshot.
    pub offset: usize,
    /// Payload length in bytes.
    pub len: usize,
}

/// A parsed (but not yet decoded) binary snapshot: the section table over a
/// borrowed byte buffer. Works for both formats — a `PDEC1` file parses as
/// a single implicit graph section — so every reader in the workspace can
/// accept either.
#[derive(Clone, Debug)]
pub struct Snapshot<'a> {
    bytes: &'a [u8],
    entries: Vec<SectionEntry>,
}

impl<'a> Snapshot<'a> {
    /// Parses the section table (`PDEC2`) or synthesizes one (`PDEC1`).
    ///
    /// Structural guarantees on success: a graph section exists, every
    /// section's byte range lies within `bytes`, and the ranges reach the
    /// end of `bytes` exactly — so truncating a valid snapshot at any byte
    /// fails either here or in the graph decode, never silently.
    pub fn parse(bytes: &'a [u8]) -> io::Result<Snapshot<'a>> {
        if bytes.len() >= MAGIC.len() && &bytes[..MAGIC.len()] == MAGIC {
            let entries = vec![SectionEntry {
                tag: SECTION_GRAPH,
                version: SECTION_GRAPH_VERSION,
                offset: MAGIC.len(),
                len: bytes.len() - MAGIC.len(),
            }];
            return Ok(Snapshot { bytes, entries });
        }
        if bytes.len() < MAGIC_V2.len() || &bytes[..MAGIC_V2.len()] != MAGIC_V2 {
            return Err(data_err("bad magic"));
        }
        let mut buf = &bytes[MAGIC_V2.len()..];
        if buf.remaining() < 8 {
            return Err(data_err("truncated section table header"));
        }
        let table_version = buf.get_u32_le();
        if table_version != SNAPSHOT_TABLE_VERSION {
            return Err(data_err(format!(
                "unsupported snapshot table version {table_version}"
            )));
        }
        let count = buf.get_u32_le() as usize;
        if count == 0 || count > MAX_SECTIONS {
            return Err(data_err(format!("implausible section count {count}")));
        }
        let table_bytes = count
            .checked_mul(ENTRY_BYTES)
            .ok_or_else(|| data_err("section table size overflow"))?;
        if buf.remaining() < table_bytes {
            return Err(data_err("truncated section table"));
        }
        let table_end = MAGIC_V2.len() + 8 + table_bytes;
        let mut entries = Vec::with_capacity(count);
        let mut end = table_end;
        for _ in 0..count {
            let tag = buf.get_u32_le();
            let version = buf.get_u32_le();
            let offset = buf.get_u64_le();
            let len = buf.get_u64_le();
            if offset > usize::MAX as u64 || len > usize::MAX as u64 {
                return Err(data_err("section range overflow"));
            }
            let (offset, len) = (offset as usize, len as usize);
            let section_end = offset
                .checked_add(len)
                .ok_or_else(|| data_err("section range overflow"))?;
            if offset < table_end || section_end > bytes.len() {
                return Err(data_err("section range out of bounds"));
            }
            end = end.max(section_end);
            entries.push(SectionEntry {
                tag,
                version,
                offset,
                len,
            });
        }
        // Pin the file length: trailing bytes beyond the last section would
        // make some truncations of a longer file parse successfully.
        if end != bytes.len() {
            return Err(data_err("trailing bytes after last section"));
        }
        if !entries
            .iter()
            .any(|e| e.tag == SECTION_GRAPH || e.tag == SECTION_GRAPH_COMPRESSED)
        {
            return Err(data_err("snapshot has no graph section"));
        }
        Ok(Snapshot { bytes, entries })
    }

    /// The parsed section table, in file order.
    pub fn sections(&self) -> &[SectionEntry] {
        &self.entries
    }

    /// Payload and version of the first section with `tag`, if present.
    pub fn section(&self, tag: u32) -> Option<(u32, &'a [u8])> {
        self.entries
            .iter()
            .find(|e| e.tag == tag)
            .map(|e| (e.version, &self.bytes[e.offset..e.offset + e.len]))
    }

    fn graph_body(&self) -> io::Result<&'a [u8]> {
        let (version, body) = self
            .section(SECTION_GRAPH)
            .ok_or_else(|| data_err("snapshot has no plain graph section"))?;
        if version != SECTION_GRAPH_VERSION {
            return Err(data_err(format!(
                "unsupported graph section version {version}"
            )));
        }
        Ok(body)
    }

    fn cgraph_body(&self) -> io::Result<&'a [u8]> {
        let (version, body) = self
            .section(SECTION_GRAPH_COMPRESSED)
            .ok_or_else(|| data_err("snapshot has no compressed graph section"))?;
        if version != SECTION_GRAPH_COMPRESSED_VERSION {
            return Err(data_err(format!(
                "unsupported compressed graph section version {version}"
            )));
        }
        Ok(body)
    }

    /// Which [`Backend`] the snapshot's graph section was written with.
    pub fn graph_backend(&self) -> Backend {
        if self.section(SECTION_GRAPH).is_some() {
            Backend::Plain
        } else {
            Backend::Compressed
        }
    }

    /// Decodes the graph through the **fast path**: structural checks and a
    /// bulk copy, no per-edge rebuild (see the module docs' trust
    /// contract). This is the resident-daemon startup path. A compressed
    /// snapshot is decompressed (its records are validated first — the
    /// compressed layout has no unchecked fast path).
    pub fn graph(&self) -> io::Result<CsrGraph> {
        if self.section(SECTION_GRAPH).is_some() {
            decode_graph_fast(self.graph_body()?)
        } else {
            Ok(decode_cgraph(self.cgraph_body()?)?.to_csr())
        }
    }

    /// Decodes the graph through the **checked fallback path**: every edge
    /// re-runs through [`GraphBuilder`]. Use for files of unknown origin.
    pub fn graph_checked(&self) -> io::Result<CsrGraph> {
        if self.section(SECTION_GRAPH).is_some() {
            decode_graph_checked(self.graph_body()?)
        } else {
            let c = decode_cgraph(self.cgraph_body()?)?;
            let g = c.to_csr();
            g.check_invariants().map_err(data_err)?;
            Ok(g)
        }
    }

    /// Decodes the graph into the backend it was written with: a plain
    /// section loads through the fast path, a compressed section stays
    /// compressed (validated, never decompressed).
    pub fn graph_repr(&self) -> io::Result<GraphRepr> {
        if self.section(SECTION_GRAPH).is_some() {
            Ok(GraphRepr::Plain(decode_graph_fast(self.graph_body()?)?))
        } else {
            Ok(GraphRepr::Compressed(decode_cgraph(self.cgraph_body()?)?))
        }
    }

    /// [`Snapshot::graph_repr`] through the checked path: both backends
    /// additionally decompress/rebuild and verify the full CSR invariants
    /// (sorted, symmetric, loop-free).
    pub fn graph_repr_checked(&self) -> io::Result<GraphRepr> {
        if self.section(SECTION_GRAPH).is_some() {
            Ok(GraphRepr::Plain(decode_graph_checked(self.graph_body()?)?))
        } else {
            let c = decode_cgraph(self.cgraph_body()?)?;
            c.to_csr().check_invariants().map_err(data_err)?;
            Ok(GraphRepr::Compressed(c))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use std::io::BufReader;

    #[test]
    fn text_round_trip() {
        let g = generators::gnm(40, 100, 3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&mut BufReader::new(&buf[..])).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn text_header_declares_isolated_tail_nodes() {
        let text = "# nodes 5\n0 1\n";
        let g = read_edge_list(&mut BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn text_rejects_garbage() {
        let text = "0 x\n";
        assert!(read_edge_list(&mut BufReader::new(text.as_bytes())).is_err());
        let text = "42\n";
        assert!(read_edge_list(&mut BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn weighted_text_round_trip() {
        let g = WeightedGraph::from_edges(5, &[(0, 1, 7), (1, 2, 1), (2, 3, 40), (0, 4, 2)]);
        let mut buf = Vec::new();
        write_weighted_edge_list(&g, &mut buf).unwrap();
        let g2 = read_weighted_edge_list(&mut BufReader::new(&buf[..])).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn weighted_text_defaults_and_min_collapse() {
        // Missing third column means weight 1; duplicates keep the min.
        let text = "# nodes 4\n0 1\n1 2 5\n2 1 3\n";
        let g = read_weighted_edge_list(&mut BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.dijkstra(0)[2], 4);
        let bad = "0 1 x\n";
        assert!(read_weighted_edge_list(&mut BufReader::new(bad.as_bytes())).is_err());
    }

    #[test]
    fn binary_round_trip() {
        let g = generators::mesh(13, 7);
        let mut buf = Vec::new();
        save_binary(&g, &mut buf).unwrap();
        let g2 = load_binary(&buf).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_corruption() {
        let g = generators::path(5);
        let mut buf = Vec::new();
        save_binary(&g, &mut buf).unwrap();
        assert!(load_binary(&buf[..buf.len() - 1]).is_err()); // truncated
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(load_binary(&bad).is_err()); // bad magic
    }

    #[test]
    fn binary_empty_graph() {
        let g = CsrGraph::empty(3);
        let mut buf = Vec::new();
        save_binary(&g, &mut buf).unwrap();
        assert_eq!(load_binary(&buf).unwrap(), g);
    }

    /// Every proper prefix of a valid snapshot is an `io::Error`, never a
    /// panic — the promise callers rely on when reading partial files.
    #[test]
    fn binary_every_truncation_is_an_error() {
        let g = generators::mesh(5, 4);
        let mut buf = Vec::new();
        save_binary(&g, &mut buf).unwrap();
        for cut in 0..buf.len() {
            let res = load_binary(&buf[..cut]);
            assert!(res.is_err(), "prefix of {cut} bytes must not parse");
        }
    }

    #[test]
    fn binary_hostile_header_sizes_error_without_overflow() {
        // Valid magic, then node/arc counts chosen so the naive size
        // computation (n + 1) * 8 + arcs * 4 would overflow usize.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // n
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // arcs
        assert!(load_binary(&buf).is_err());
    }

    const TAG_A: u32 = u32::from_le_bytes(*b"AAAA");
    const TAG_B: u32 = u32::from_le_bytes(*b"BBBB");

    #[test]
    fn snapshot_round_trips_with_sections() {
        let g = generators::mesh(6, 9);
        let extra = [
            SectionData {
                tag: TAG_A,
                version: 3,
                payload: vec![1, 2, 3, 4, 5],
            },
            SectionData {
                tag: TAG_B,
                version: 1,
                payload: Vec::new(), // empty payloads are legal
            },
        ];
        let mut buf = Vec::new();
        save_snapshot(&g, &extra, &mut buf).unwrap();
        let snap = Snapshot::parse(&buf).unwrap();
        assert_eq!(snap.sections().len(), 3);
        assert_eq!(snap.sections()[0].tag, SECTION_GRAPH);
        assert_eq!(snap.section(TAG_A), Some((3, &[1u8, 2, 3, 4, 5][..])));
        assert_eq!(snap.section(TAG_B), Some((1, &[][..])));
        assert_eq!(snap.section(u32::from_le_bytes(*b"ZZZZ")), None);
        assert_eq!(snap.graph().unwrap(), g);
        assert_eq!(snap.graph_checked().unwrap(), g);
        // `load_binary` accepts PDEC2 and ignores unknown sections.
        assert_eq!(load_binary(&buf).unwrap(), g);
    }

    #[test]
    fn snapshot_without_extra_sections_round_trips() {
        let g = CsrGraph::empty(4);
        let mut buf = Vec::new();
        save_snapshot(&g, &[], &mut buf).unwrap();
        let snap = Snapshot::parse(&buf).unwrap();
        assert_eq!(snap.sections().len(), 1);
        assert_eq!(snap.graph().unwrap(), g);
    }

    #[test]
    fn snapshot_parses_pdec1_as_single_graph_section() {
        let g = generators::path(7);
        let mut buf = Vec::new();
        save_binary(&g, &mut buf).unwrap();
        let snap = Snapshot::parse(&buf).unwrap();
        assert_eq!(snap.sections().len(), 1);
        assert_eq!(snap.sections()[0].tag, SECTION_GRAPH);
        assert_eq!(snap.graph().unwrap(), g);
        assert_eq!(snap.graph_checked().unwrap(), g);
    }

    /// Every proper prefix of a sectioned snapshot fails to parse — the
    /// same promise [`binary_every_truncation_is_an_error`] makes for the
    /// base format.
    #[test]
    fn snapshot_every_truncation_is_an_error() {
        let g = generators::mesh(5, 4);
        let extra = [SectionData {
            tag: TAG_A,
            version: 1,
            payload: vec![9; 11],
        }];
        let mut buf = Vec::new();
        save_snapshot(&g, &extra, &mut buf).unwrap();
        for cut in 0..buf.len() {
            let res = Snapshot::parse(&buf[..cut]);
            assert!(res.is_err(), "prefix of {cut} bytes must not parse");
        }
    }

    #[test]
    fn snapshot_rejects_hostile_tables() {
        let g = generators::path(3);
        let mut buf = Vec::new();
        save_snapshot(&g, &[], &mut buf).unwrap();

        // Unsupported table version.
        let mut bad = buf.clone();
        bad[6] = 0xFF;
        assert!(Snapshot::parse(&bad).is_err());

        // Zero sections.
        let mut bad = buf.clone();
        bad[10..14].copy_from_slice(&0u32.to_le_bytes());
        assert!(Snapshot::parse(&bad).is_err());

        // Implausible section count (also a table-size overflow probe).
        let mut bad = buf.clone();
        bad[10..14].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Snapshot::parse(&bad).is_err());

        // Section offset pointing into the table.
        let mut bad = buf.clone();
        bad[22..30].copy_from_slice(&0u64.to_le_bytes());
        assert!(Snapshot::parse(&bad).is_err());

        // Section length overrunning the file.
        let mut bad = buf.clone();
        bad[30..38].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Snapshot::parse(&bad).is_err());

        // Wrong graph tag → "no graph section".
        let mut bad = buf.clone();
        bad[14..18].copy_from_slice(b"XXXX");
        assert!(Snapshot::parse(&bad).is_err());

        // Unsupported graph section version parses but won't decode.
        let mut bad = buf.clone();
        bad[18..22].copy_from_slice(&7u32.to_le_bytes());
        let snap = Snapshot::parse(&bad).unwrap();
        assert!(snap.graph().is_err());
        assert!(snap.graph_checked().is_err());

        // Trailing garbage is rejected, so truncating a longer file back to
        // a "valid" snapshot plus junk cannot succeed.
        let mut bad = buf.clone();
        bad.push(0);
        assert!(Snapshot::parse(&bad).is_err());
    }

    #[test]
    fn compressed_snapshot_round_trips_both_read_paths() {
        let g = generators::preferential_attachment(400, 4, 11);
        let repr = GraphRepr::from_csr(g.clone(), Backend::Compressed);
        let extra = [SectionData {
            tag: TAG_A,
            version: 2,
            payload: vec![8, 7, 6],
        }];
        let mut buf = Vec::new();
        save_snapshot_repr(&repr, &extra, &mut buf).unwrap();
        let snap = Snapshot::parse(&buf).unwrap();
        assert_eq!(snap.graph_backend(), Backend::Compressed);
        assert_eq!(snap.sections()[0].tag, SECTION_GRAPH_COMPRESSED);
        assert_eq!(snap.section(TAG_A), Some((2, &[8u8, 7, 6][..])));
        // CSR views agree with the original on both paths.
        assert_eq!(snap.graph().unwrap(), g);
        assert_eq!(snap.graph_checked().unwrap(), g);
        // The repr path preserves the backend without decompressing.
        let loaded = snap.graph_repr().unwrap();
        assert_eq!(loaded.backend(), Backend::Compressed);
        assert_eq!(loaded.to_csr().as_ref(), &g);
        assert_eq!(snap.graph_repr_checked().unwrap().to_csr().as_ref(), &g);
        // A plain snapshot reports the plain backend through the same API.
        let mut plain_buf = Vec::new();
        save_snapshot_repr(&GraphRepr::Plain(g.clone()), &[], &mut plain_buf).unwrap();
        let plain_snap = Snapshot::parse(&plain_buf).unwrap();
        assert_eq!(plain_snap.graph_backend(), Backend::Plain);
        assert_eq!(plain_snap.graph_repr().unwrap().backend(), Backend::Plain);
        // Compression shows up on disk too.
        assert!(buf.len() < plain_buf.len());
    }

    /// Every proper prefix of a compressed snapshot is an error on every
    /// read path — the same promise the plain section makes.
    #[test]
    fn compressed_snapshot_every_truncation_is_an_error() {
        let g = generators::mesh(6, 5);
        let repr = GraphRepr::from_csr(g, Backend::Compressed);
        let mut buf = Vec::new();
        save_snapshot_repr(&repr, &[], &mut buf).unwrap();
        for cut in 0..buf.len() {
            assert!(
                Snapshot::parse(&buf[..cut])
                    .and_then(|s| s.graph_repr())
                    .is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        // Corrupting the record bytes is caught by validation.
        let snap = Snapshot::parse(&buf).unwrap();
        let data_start = snap.sections()[0].offset + 24;
        let mut bad = buf.clone();
        bad[data_start] ^= 0x80; // grow a varint past its record
        let res = Snapshot::parse(&bad).and_then(|s| s.graph_repr());
        assert!(res.is_err());
    }

    #[test]
    fn snapshot_fast_path_rejects_corrupt_graph_bodies() {
        let g = generators::mesh(4, 4);
        let mut buf = Vec::new();
        save_snapshot(&g, &[], &mut buf).unwrap();
        let graph_off = Snapshot::parse(&buf).unwrap().sections()[0].offset;

        // Out-of-range target: last 4 bytes of the file are the final
        // target word.
        let mut bad = buf.clone();
        let end = bad.len();
        bad[end - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Snapshot::parse(&bad).unwrap().graph().is_err());
        assert!(Snapshot::parse(&bad).unwrap().graph_checked().is_err());

        // Non-monotone offsets: clobber the second offset word with a value
        // larger than the arc count.
        let mut bad = buf;
        let o1 = graph_off + 16 + 8;
        bad[o1..o1 + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Snapshot::parse(&bad).unwrap().graph().is_err());
        assert!(Snapshot::parse(&bad).unwrap().graph_checked().is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Arbitrary graphs from the workspace families (mirrors the root
        /// proptests' corpus, but kept local so the format property lives
        /// next to the format).
        fn any_graph() -> impl Strategy<Value = CsrGraph> {
            prop_oneof![
                (1usize..10, 1usize..10).prop_map(|(r, c)| generators::mesh(r, c)),
                (0usize..80, 0usize..160, 0u64..1000).prop_map(|(n, m, s)| {
                    generators::gnm(n, m.min(n.saturating_sub(1) * n / 2), s)
                }),
                (2usize..60, 1u64..1000).prop_map(|(n, s)| {
                    generators::preferential_attachment(n.max(4), 3.min(n - 1), s)
                }),
                (0usize..50).prop_map(CsrGraph::empty),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// PDEC1 write → read is the identity on every graph.
            #[test]
            fn binary_snapshot_round_trips(g in any_graph()) {
                let mut buf = Vec::new();
                save_binary(&g, &mut buf).unwrap();
                let g2 = load_binary(&buf).unwrap();
                prop_assert_eq!(&g, &g2);
                // And the re-serialization is byte-identical (canonical form).
                let mut buf2 = Vec::new();
                save_binary(&g2, &mut buf2).unwrap();
                prop_assert_eq!(buf, buf2);
            }

            /// Truncating a valid snapshot anywhere yields an error.
            #[test]
            fn binary_truncation_errors(g in any_graph(), frac in 0.0f64..1.0) {
                let mut buf = Vec::new();
                save_binary(&g, &mut buf).unwrap();
                let cut = ((buf.len() as f64) * frac) as usize;
                prop_assume!(cut < buf.len());
                prop_assert!(load_binary(&buf[..cut]).is_err());
            }

            /// PDEC2 write → parse is the identity on graph and sections,
            /// through both read paths, for arbitrary section payloads.
            #[test]
            fn sectioned_snapshot_round_trips(
                g in any_graph(),
                payloads in proptest::collection::vec(
                    proptest::collection::vec(any::<u8>(), 0..64), 0..4),
            ) {
                let extra: Vec<SectionData> = payloads
                    .iter()
                    .enumerate()
                    .map(|(i, p)| SectionData {
                        tag: u32::from_le_bytes([b'T', b'0' + i as u8, b'0', b'0']),
                        version: i as u32,
                        payload: p.clone(),
                    })
                    .collect();
                let mut buf = Vec::new();
                save_snapshot(&g, &extra, &mut buf).unwrap();
                let snap = Snapshot::parse(&buf).unwrap();
                prop_assert_eq!(snap.sections().len(), 1 + extra.len());
                for s in &extra {
                    let (v, p) = snap.section(s.tag).unwrap();
                    prop_assert_eq!(v, s.version);
                    prop_assert_eq!(p, &s.payload[..]);
                }
                let fast = snap.graph().unwrap();
                prop_assert_eq!(&fast, &g);
                prop_assert_eq!(&snap.graph_checked().unwrap(), &fast);
            }

            /// Truncating a sectioned snapshot anywhere fails to parse.
            #[test]
            fn sectioned_truncation_errors(g in any_graph(), frac in 0.0f64..1.0) {
                let extra = [SectionData { tag: TAG_A, version: 1, payload: vec![7; 9] }];
                let mut buf = Vec::new();
                save_snapshot(&g, &extra, &mut buf).unwrap();
                let cut = ((buf.len() as f64) * frac) as usize;
                prop_assume!(cut < buf.len());
                prop_assert!(Snapshot::parse(&buf[..cut]).is_err());
            }
        }
    }
}
