//! Graph serialization: SNAP-style text edge lists and a compact binary
//! snapshot format.
//!
//! The binary format (`PDEC1`) stores the CSR arrays directly so that large
//! generated workloads can be cached between experiment runs:
//!
//! ```text
//! magic   b"PDEC1\0"     6 bytes
//! n       u64 LE
//! arcs    u64 LE          (= 2m)
//! offsets (n + 1) × u64 LE
//! targets arcs × u32 LE
//! ```

use crate::{CsrGraph, GraphBuilder, NodeId};
use bytes::{Buf, BufMut};
use std::io::{self, BufRead, Write};

const MAGIC: &[u8; 6] = b"PDEC1\0";

/// Writes `g` as a text edge list: a `# nodes <n> edges <m>` header followed
/// by one `u<TAB>v` line per undirected edge.
pub fn write_edge_list(g: &CsrGraph, w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "# nodes {} edges {}", g.num_nodes(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    Ok(())
}

/// Reads a text edge list (comment lines start with `#`; separators are any
/// whitespace). Node count is `max id + 1` unless a `# nodes n …` header
/// declares a larger one.
pub fn read_edge_list(r: &mut impl BufRead) -> io::Result<CsrGraph> {
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut declared_n: usize = 0;
    let mut max_id: usize = 0;
    let mut line = String::new();
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if let Some(rest) = t.strip_prefix('#') {
            // Parse an optional "nodes <n>" declaration.
            let mut it = rest.split_whitespace();
            while let Some(tok) = it.next() {
                if tok == "nodes" {
                    if let Some(Ok(n)) = it.next().map(str::parse::<usize>) {
                        declared_n = declared_n.max(n);
                    }
                }
            }
            continue;
        }
        let mut it = t.split_whitespace();
        let (u, v) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => (
                a.parse::<NodeId>()
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
                b.parse::<NodeId>()
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
            ),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed edge line: {t:?}"),
                ))
            }
        };
        max_id = max_id.max(u as usize).max(v as usize);
        edges.push((u, v));
    }
    let n = declared_n.max(if edges.is_empty() { 0 } else { max_id + 1 });
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Serializes `g` into the `PDEC1` binary snapshot format.
pub fn save_binary(g: &CsrGraph, w: &mut impl Write) -> io::Result<()> {
    let offsets = g.raw_offsets();
    let targets = g.raw_targets();
    let mut buf = Vec::with_capacity(MAGIC.len() + 16 + offsets.len() * 8 + targets.len() * 4);
    buf.put_slice(MAGIC);
    buf.put_u64_le(g.num_nodes() as u64);
    buf.put_u64_le(targets.len() as u64);
    for &o in offsets {
        buf.put_u64_le(o as u64);
    }
    for &t in targets {
        buf.put_u32_le(t);
    }
    w.write_all(&buf)
}

/// Deserializes a `PDEC1` snapshot.
pub fn load_binary(bytes: &[u8]) -> io::Result<CsrGraph> {
    let err = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut buf = bytes;
    if buf.remaining() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
        return Err(err("bad magic"));
    }
    buf.advance(MAGIC.len());
    if buf.remaining() < 16 {
        return Err(err("truncated header"));
    }
    let n = buf.get_u64_le() as usize;
    let arcs = buf.get_u64_le() as usize;
    // Checked arithmetic: a hostile header must produce an error, not an
    // overflow panic (debug) or a bogus comparison (release).
    let expected = n
        .checked_add(1)
        .and_then(|o| o.checked_mul(8))
        .and_then(|o| o.checked_add(arcs.checked_mul(4)?))
        .ok_or_else(|| err("header sizes overflow"))?;
    if buf.remaining() != expected {
        return Err(err("length mismatch"));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(buf.get_u64_le() as usize);
    }
    let mut b = GraphBuilder::with_capacity(n, arcs / 2);
    // Re-run through the builder so corrupt payloads cannot violate CSR
    // invariants.
    let mut targets = Vec::with_capacity(arcs);
    for _ in 0..arcs {
        targets.push(buf.get_u32_le());
    }
    if *offsets.last().unwrap_or(&0) != arcs {
        return Err(err("inconsistent offsets"));
    }
    for u in 0..n {
        for &v in targets
            .get(offsets[u]..offsets[u + 1])
            .ok_or_else(|| err("offset out of bounds"))?
        {
            if (v as usize) >= n {
                return Err(err("target out of range"));
            }
            if (u as NodeId) < v {
                b.add_edge(u as NodeId, v);
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use std::io::BufReader;

    #[test]
    fn text_round_trip() {
        let g = generators::gnm(40, 100, 3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&mut BufReader::new(&buf[..])).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn text_header_declares_isolated_tail_nodes() {
        let text = "# nodes 5\n0 1\n";
        let g = read_edge_list(&mut BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn text_rejects_garbage() {
        let text = "0 x\n";
        assert!(read_edge_list(&mut BufReader::new(text.as_bytes())).is_err());
        let text = "42\n";
        assert!(read_edge_list(&mut BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn binary_round_trip() {
        let g = generators::mesh(13, 7);
        let mut buf = Vec::new();
        save_binary(&g, &mut buf).unwrap();
        let g2 = load_binary(&buf).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_corruption() {
        let g = generators::path(5);
        let mut buf = Vec::new();
        save_binary(&g, &mut buf).unwrap();
        assert!(load_binary(&buf[..buf.len() - 1]).is_err()); // truncated
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(load_binary(&bad).is_err()); // bad magic
    }

    #[test]
    fn binary_empty_graph() {
        let g = CsrGraph::empty(3);
        let mut buf = Vec::new();
        save_binary(&g, &mut buf).unwrap();
        assert_eq!(load_binary(&buf).unwrap(), g);
    }

    /// Every proper prefix of a valid snapshot is an `io::Error`, never a
    /// panic — the promise callers rely on when reading partial files.
    #[test]
    fn binary_every_truncation_is_an_error() {
        let g = generators::mesh(5, 4);
        let mut buf = Vec::new();
        save_binary(&g, &mut buf).unwrap();
        for cut in 0..buf.len() {
            let res = load_binary(&buf[..cut]);
            assert!(res.is_err(), "prefix of {cut} bytes must not parse");
        }
    }

    #[test]
    fn binary_hostile_header_sizes_error_without_overflow() {
        // Valid magic, then node/arc counts chosen so the naive size
        // computation (n + 1) * 8 + arcs * 4 would overflow usize.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // n
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // arcs
        assert!(load_binary(&buf).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Arbitrary graphs from the workspace families (mirrors the root
        /// proptests' corpus, but kept local so the format property lives
        /// next to the format).
        fn any_graph() -> impl Strategy<Value = CsrGraph> {
            prop_oneof![
                (1usize..10, 1usize..10).prop_map(|(r, c)| generators::mesh(r, c)),
                (0usize..80, 0usize..160, 0u64..1000).prop_map(|(n, m, s)| {
                    generators::gnm(n, m.min(n.saturating_sub(1) * n / 2), s)
                }),
                (2usize..60, 1u64..1000).prop_map(|(n, s)| {
                    generators::preferential_attachment(n.max(4), 3.min(n - 1), s)
                }),
                (0usize..50).prop_map(CsrGraph::empty),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// PDEC1 write → read is the identity on every graph.
            #[test]
            fn binary_snapshot_round_trips(g in any_graph()) {
                let mut buf = Vec::new();
                save_binary(&g, &mut buf).unwrap();
                let g2 = load_binary(&buf).unwrap();
                prop_assert_eq!(&g, &g2);
                // And the re-serialization is byte-identical (canonical form).
                let mut buf2 = Vec::new();
                save_binary(&g2, &mut buf2).unwrap();
                prop_assert_eq!(buf, buf2);
            }

            /// Truncating a valid snapshot anywhere yields an error.
            #[test]
            fn binary_truncation_errors(g in any_graph(), frac in 0.0f64..1.0) {
                let mut buf = Vec::new();
                save_binary(&g, &mut buf).unwrap();
                let cut = ((buf.len() as f64) * frac) as usize;
                prop_assume!(cut < buf.len());
                prop_assert!(load_binary(&buf[..cut]).is_err());
            }
        }
    }
}
