//! Seed-era sequential reference implementations of every contraction path,
//! retained verbatim as executable specs.
//!
//! The [`crate::combine`] kernel replaced these on the hot paths; they live
//! on here as the oracles that `tests/proptests_quotient.rs` and
//! `bench_quotient` compare against byte-for-byte. Nothing in the library
//! itself calls them.

use crate::contract::{Contraction, EdgeCounts};
use crate::csr::CsrGraph;
use crate::{NodeId, WeightedGraph};
use std::collections::HashMap;

/// The seed-era [`GraphBuilder::build`]: symmetrize into a growable arc
/// list, one global sort, `dedup`, then a sequential offset count.
pub fn build_csr(n: usize, edges: &[(NodeId, NodeId)]) -> CsrGraph {
    let mut arcs: Vec<(NodeId, NodeId)> = Vec::with_capacity(edges.len() * 2);
    for &(u, v) in edges {
        assert!(
            (u as usize) < n && (v as usize) < n,
            "edge ({u}, {v}) out of range for n = {n}"
        );
        if u != v {
            arcs.push((u, v));
            arcs.push((v, u));
        }
    }
    arcs.sort_unstable();
    arcs.dedup();
    let mut offsets = vec![0usize; n + 1];
    for &(u, _) in &arcs {
        offsets[u as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let targets: Vec<NodeId> = arcs.into_iter().map(|(_, v)| v).collect();
    CsrGraph::from_parts(offsets, targets)
}

/// The seed-era unweighted quotient: a sequential edge scan feeding the
/// sort-dedup builder.
pub fn quotient(g: &CsrGraph, labels: &[NodeId], num_clusters: usize) -> CsrGraph {
    assert_eq!(labels.len(), g.num_nodes(), "label array size mismatch");
    let mut cut: Vec<(NodeId, NodeId)> = Vec::new();
    for (u, v) in g.edges() {
        let (cu, cv) = (labels[u as usize], labels[v as usize]);
        assert!(
            (cu as usize) < num_clusters && (cv as usize) < num_clusters,
            "cluster label out of range"
        );
        if cu != cv {
            cut.push((cu, cv));
        }
    }
    build_csr(num_clusters, &cut)
}

/// The seed-era weighted quotient: a sequential `HashMap` min-combine of
/// `dist(x) + 1 + dist(y)` over cut edges, then [`WeightedGraph::from_edges`].
pub fn weighted_quotient(
    g: &CsrGraph,
    labels: &[NodeId],
    dist_to_center: &[u32],
    num_clusters: usize,
) -> WeightedGraph {
    assert_eq!(labels.len(), g.num_nodes(), "label array size mismatch");
    assert_eq!(
        dist_to_center.len(),
        g.num_nodes(),
        "distance array size mismatch"
    );
    let mut best: HashMap<(NodeId, NodeId), u64> = HashMap::new();
    for (u, v) in g.edges() {
        let (cu, cv) = (labels[u as usize], labels[v as usize]);
        assert!(
            (cu as usize) < num_clusters && (cv as usize) < num_clusters,
            "cluster label out of range"
        );
        if cu == cv {
            continue;
        }
        let key = (cu.min(cv), cu.max(cv));
        let w = dist_to_center[u as usize] as u64 + 1 + dist_to_center[v as usize] as u64;
        best.entry(key)
            .and_modify(|cur| *cur = (*cur).min(w))
            .or_insert(w);
    }
    let edges: Vec<(NodeId, NodeId, u64)> = best.into_iter().map(|((a, b), w)| (a, b, w)).collect();
    WeightedGraph::from_edges(num_clusters, &edges)
}

/// The seed-era contraction: sequential `HashMap` sum-combine of cut-edge
/// multiplicities, then the sort-dedup builder for the contracted graph.
pub fn contract(g: &CsrGraph, labels: &[NodeId], num_labels: usize) -> Contraction {
    assert_eq!(labels.len(), g.num_nodes(), "label array size mismatch");
    let mut node_weight = vec![0u64; num_labels];
    for &l in labels {
        assert!((l as usize) < num_labels, "label {l} out of range");
        node_weight[l as usize] += 1;
    }
    let mut multiplicity: HashMap<(NodeId, NodeId), u64> = HashMap::new();
    let mut internal_edges = 0u64;
    for (u, v) in g.edges() {
        let (a, b) = (labels[u as usize], labels[v as usize]);
        if a == b {
            internal_edges += 1;
        } else {
            *multiplicity.entry((a.min(b), a.max(b))).or_insert(0) += 1;
        }
    }
    let mut entries: Vec<(NodeId, NodeId, u64)> = multiplicity
        .into_iter()
        .map(|((a, b), m)| (a, b, m))
        .collect();
    entries.sort_unstable();
    let cut: Vec<(NodeId, NodeId)> = entries.iter().map(|&(a, b, _)| (a, b)).collect();
    Contraction {
        graph: build_csr(num_labels, &cut),
        node_weight,
        edge_multiplicity: EdgeCounts::from_sorted_entries(entries),
        internal_edges,
    }
}

/// The seed-era cut size: a sequential filter-count over the edge iterator.
pub fn cut_size(g: &CsrGraph, labels: &[NodeId]) -> usize {
    g.edges()
        .filter(|&(u, v)| labels[u as usize] != labels[v as usize])
        .count()
}
