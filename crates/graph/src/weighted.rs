//! A compact weighted undirected graph plus Dijkstra / weighted APSP.
//!
//! Weighted graphs appear in one place in the paper (§4): the *weighted
//! quotient graph*, whose edge weights are shortest connecting-path lengths
//! between adjacent clusters. Its diameter `Δ′_C` yields the tightened upper
//! bound `Δ″ = 2·R_ALG2 + Δ′_C`, and its APSP matrix is the distance oracle.

use crate::combine::{self, pack};
use crate::{NodeId, INVALID_NODE};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel for "unreachable" in weighted distance arrays.
pub const INFINITE_WEIGHT: u64 = u64::MAX;

/// Sorted `(neighbor, weight)` iterator of one node (see
/// [`WeightedGraph::wneighbor_iter`]).
pub type WNeighborIter<'a> = std::iter::Zip<
    std::iter::Copied<std::slice::Iter<'a, NodeId>>,
    std::iter::Copied<std::slice::Iter<'a, u64>>,
>;

/// Undirected graph with `u64` edge weights in CSR form. Parallel edges are
/// collapsed to their minimum weight at construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedGraph {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    weights: Vec<u64>,
}

impl WeightedGraph {
    /// Builds from an edge triple list `(u, v, w)`. Self-loops are dropped;
    /// duplicate edges keep the smallest weight.
    ///
    /// The build runs on the [`crate::combine`] min-combine kernel over one
    /// normalized `(min(u, v), max(u, v))` record per edge occurrence, so
    /// the result is the canonical sorted CSR — a pure function of the edge
    /// *multiset*: any permutation of the input (and any pool size) builds
    /// a byte-identical graph.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId, u64)]) -> Self {
        // One u128 record per surviving edge: packed (min, max) key in the
        // high 64 bits, weight in the low 64. Equal keys share their high
        // bits, so the min-fold on the whole word is a min on the weight.
        let half: Vec<u128> = combine::par_emit(
            edges.len(),
            |i| {
                let (u, v, _) = edges[i];
                usize::from(u != v)
            },
            |i, emit| {
                let (u, v, w) = edges[i];
                assert!(
                    (u as usize) < n && (v as usize) < n,
                    "edge ({u}, {v}) out of range for n = {n}"
                );
                if u != v {
                    let key = pack(u.min(v), u.max(v));
                    emit.push(((key as u128) << 64) | w as u128);
                }
            },
        );
        let (arcs, _) = combine::combine_symmetrize(
            n,
            half,
            |a| (a >> 64) as u64,
            |rec| {
                let (hi, lo) = combine::unpack((rec >> 64) as u64);
                ((pack(lo, hi) as u128) << 64) | (rec & u128::from(u64::MAX))
            },
            |a, b| a.min(b),
        );
        let (offsets, targets) = combine::csr_parts_from_sorted(n, &arcs, |&a| (a >> 64) as u64);
        let weights: Vec<u64> = arcs.iter().map(|&rec| rec as u64).collect();
        WeightedGraph {
            offsets,
            targets,
            weights,
        }
    }

    /// Builds directly from CSR arrays (sorted, deduplicated, symmetric,
    /// self-loop-free) — the zero-copy exit of the combine kernel's weighted
    /// quotient path. Debug builds re-verify the invariants.
    pub(crate) fn from_csr_parts(
        offsets: Vec<usize>,
        targets: Vec<NodeId>,
        weights: Vec<u64>,
    ) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), targets.len());
        debug_assert_eq!(targets.len(), weights.len());
        let g = WeightedGraph {
            offsets,
            targets,
            weights,
        };
        debug_assert!(g.check_invariants().is_ok(), "{:?}", g.check_invariants());
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Neighbours of `u` with weights.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.wneighbor_iter(u)
    }

    /// [`Self::neighbors`] with a nameable iterator type — the GAT of the
    /// [`crate::access::WeightedNeighborAccess`] impl.
    #[inline]
    pub fn wneighbor_iter(&self, u: NodeId) -> WNeighborIter<'_> {
        let u = u as usize;
        let range = self.offsets[u]..self.offsets[u + 1];
        self.targets[range.clone()]
            .iter()
            .copied()
            .zip(self.weights[range].iter().copied())
    }

    /// Neighbours `v > u` with weights — the upper adjacency tail, visiting
    /// each undirected edge at exactly one endpoint (targets are sorted, so
    /// the tail is a suffix of the adjacency list).
    #[inline]
    pub fn upper_neighbors(&self, u: NodeId) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.neighbors(u).filter(move |&(v, _)| v > u)
    }

    /// Single-source shortest paths (Dijkstra, binary heap).
    pub fn dijkstra(&self, src: NodeId) -> Vec<u64> {
        let n = self.num_nodes();
        let mut dist = vec![INFINITE_WEIGHT; n];
        let mut heap: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
        dist[src as usize] = 0;
        heap.push(Reverse((0, src)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue; // stale entry
            }
            for (v, w) in self.neighbors(u) {
                let nd = d + w;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        dist
    }

    /// Weighted eccentricity of `u` (max finite Dijkstra distance).
    pub fn eccentricity(&self, u: NodeId) -> u64 {
        self.dijkstra(u)
            .into_iter()
            .filter(|&d| d != INFINITE_WEIGHT)
            .max()
            .unwrap_or(0)
    }

    /// Weighted diameter via all-sources Dijkstra, parallelized. Returns the
    /// largest finite eccentricity (i.e. per-component diameters are maxed).
    pub fn apsp_diameter(&self) -> u64 {
        if self.num_nodes() == 0 {
            return 0;
        }
        (0..self.num_nodes() as NodeId)
            .into_par_iter()
            .map(|u| self.eccentricity(u))
            .max()
            .unwrap_or(0)
    }

    /// Full APSP matrix (row per source). Quadratic space — intended for
    /// quotient graphs, which the paper keeps small enough for one machine.
    pub fn apsp_matrix(&self) -> Vec<Vec<u64>> {
        (0..self.num_nodes() as NodeId)
            .into_par_iter()
            .map(|u| self.dijkstra(u))
            .collect()
    }

    /// Nearest node of `set` to `u`, by weighted distance. Returns
    /// `(node, dist)` or `None` if `set` is empty / unreachable.
    pub fn nearest_of(&self, u: NodeId, set: &[NodeId]) -> Option<(NodeId, u64)> {
        let dist = self.dijkstra(u);
        set.iter()
            .copied()
            .filter(|&s| dist[s as usize] != INFINITE_WEIGHT)
            .map(|s| (s, dist[s as usize]))
            .min_by_key(|&(s, d)| (d, s))
    }

    /// Structural invariant check (mirrors [`crate::CsrGraph::check_invariants`]).
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.num_nodes();
        for u in 0..n as NodeId {
            for (v, w) in self.neighbors(u) {
                if v as usize >= n {
                    return Err(format!("target {v} out of range"));
                }
                if v == u {
                    return Err(format!("self-loop at {u}"));
                }
                let Some(back) = self.neighbors(v).find(|&(t, _)| t == u) else {
                    return Err(format!("missing reverse arc ({v}, {u})"));
                };
                if back.1 != w {
                    return Err(format!("asymmetric weight on ({u}, {v})"));
                }
            }
        }
        let _ = INVALID_NODE; // silence unused import on some cfgs
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> WeightedGraph {
        // 0 -1- 1 -1- 3, and a heavy shortcut 0 -5- 3, plus 0 -1- 2 -1- 3
        WeightedGraph::from_edges(4, &[(0, 1, 1), (1, 3, 1), (0, 3, 5), (0, 2, 1), (2, 3, 1)])
    }

    #[test]
    fn dijkstra_prefers_light_paths() {
        let g = diamond();
        let d = g.dijkstra(0);
        assert_eq!(d, vec![0, 1, 1, 2]);
    }

    #[test]
    fn duplicate_edges_keep_min_weight() {
        let g = WeightedGraph::from_edges(2, &[(0, 1, 9), (1, 0, 2), (0, 1, 4)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.dijkstra(0)[1], 2);
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = WeightedGraph::from_edges(3, &[(0, 1, 1)]);
        assert_eq!(g.dijkstra(0)[2], INFINITE_WEIGHT);
        assert_eq!(g.eccentricity(0), 1);
    }

    #[test]
    fn apsp_diameter_weighted_path() {
        let g = WeightedGraph::from_edges(4, &[(0, 1, 2), (1, 2, 3), (2, 3, 4)]);
        assert_eq!(g.apsp_diameter(), 9);
        let m = g.apsp_matrix();
        assert_eq!(m[0][3], 9);
        assert_eq!(m[3][0], 9);
        assert_eq!(m[1][2], 3);
    }

    #[test]
    fn nearest_of_set() {
        let g = WeightedGraph::from_edges(5, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1)]);
        assert_eq!(g.nearest_of(0, &[3, 4]), Some((3, 3)));
        assert_eq!(g.nearest_of(0, &[]), None);
    }

    #[test]
    fn invariants_hold() {
        assert!(diamond().check_invariants().is_ok());
    }

    #[test]
    fn upper_neighbors_cover_each_edge_once() {
        let g = diamond();
        let total: usize = (0..4).map(|u| g.upper_neighbors(u).count()).sum();
        assert_eq!(total, g.num_edges());
        assert!(g.upper_neighbors(0).all(|(v, _)| v > 0));
    }

    #[test]
    fn from_edges_is_order_independent() {
        // Duplicates with different weights in both orientations: every
        // permutation must min-collapse to the same graph.
        let edges = [
            (0u32, 1u32, 9u64),
            (2, 3, 4),
            (1, 0, 2),
            (3, 2, 8),
            (0, 1, 4),
            (1, 2, 7),
        ];
        let fwd = WeightedGraph::from_edges(4, &edges);
        let mut rev = edges;
        rev.reverse();
        assert_eq!(fwd, WeightedGraph::from_edges(4, &rev));
        assert_eq!(fwd.dijkstra(0)[1], 2);
        assert_eq!(fwd.dijkstra(2)[3], 4);
    }
}
