//! §4 — diameter approximation through the quotient graph of a clustering.
//!
//! Pipeline: decompose `G` (CLUSTER2 for the Theorem 3 guarantees, or plain
//! CLUSTER as the paper's own experiments do for speed), build the quotient
//! graph `G_C`, compute its diameter `Δ_C`, and report
//!
//! * lower bound `Δ_C ≤ Δ`,
//! * upper bound `Δ′ = 2·R·(Δ_C + 1) + Δ_C` (Corollary 1), and
//! * the tighter `Δ″ = 2·R + Δ′_C` from the *weighted* quotient graph,
//!   where `Δ″ ≤ Δ′` always holds (each weighted edge costs at most
//!   `2R + 1`).
//!
//! `R` is the maximum radius of the clustering actually used (`R_ALG2` for
//! CLUSTER2, `R_ALG` for CLUSTER).

use crate::cluster::{cluster, ClusterParams};
use crate::cluster2::cluster2;
use crate::clustering::Clustering;
use pardec_graph::diameter as exact;
use pardec_graph::frontier::FrontierStrategy;
use pardec_graph::{CombineStats, NeighborAccess};

/// Which decomposition feeds the quotient construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decomposition {
    /// Algorithm 1 — what the paper's experiments use ("for efficiency,
    /// we used CLUSTER instead of CLUSTER2", §6.2).
    Cluster,
    /// Algorithm 2 — the variant carrying the Theorem 3 guarantee.
    Cluster2,
}

/// Parameters of [`approximate_diameter`].
#[derive(Clone, Debug)]
pub struct DiameterParams {
    /// Decomposition granularity (target quotient size ≈ τ·log² n).
    pub tau: usize,
    /// RNG seed.
    pub seed: u64,
    /// Which clustering algorithm to run.
    pub decomposition: Decomposition,
    /// Also compute the weighted-quotient bound `Δ″` (costs one APSP over
    /// the quotient, like the paper's tightened estimate).
    pub weighted: bool,
    /// Theorem 4's sparsification path: when the quotient has more edges
    /// than this (the `M_L` stand-in), replace it with a Baswana–Sen
    /// 3-spanner before computing `Δ_C`. The upper bound stays valid (the
    /// spanner's diameter dominates `Δ_C`); the lower bound is divided by
    /// the stretch. `None` (default) never sparsifies.
    pub sparsify_above: Option<usize>,
    /// Frontier expansion strategy of the underlying cluster growth. Every
    /// strategy yields byte-identical bounds; this trades wall-clock only.
    pub frontier: FrontierStrategy,
}

impl DiameterParams {
    /// The paper's experimental configuration: CLUSTER + weighted quotient.
    /// The frontier strategy follows `PARDEC_FRONTIER` (default: top-down).
    pub fn new(tau: usize, seed: u64) -> Self {
        DiameterParams {
            tau,
            seed,
            decomposition: Decomposition::Cluster,
            weighted: true,
            sparsify_above: None,
            frontier: FrontierStrategy::default_from_env(),
        }
    }

    /// Theorem-faithful configuration: CLUSTER2 + weighted quotient.
    pub fn with_cluster2(mut self) -> Self {
        self.decomposition = Decomposition::Cluster2;
        self
    }

    /// Selects the growth engine's frontier expansion strategy.
    pub fn with_frontier(mut self, strategy: FrontierStrategy) -> Self {
        self.frontier = strategy;
        self
    }
}

/// Output of [`approximate_diameter`].
#[derive(Clone, Debug)]
pub struct DiameterApprox {
    /// `Δ_C` — the quotient diameter, a lower bound on `Δ`.
    pub lower_bound: u64,
    /// `Δ′ = 2·R·(Δ_C + 1) + Δ_C` — the Corollary 1 upper bound.
    pub upper_bound: u64,
    /// `Δ″ = 2·R + Δ′_C` from the weighted quotient (if requested);
    /// `Δ ≤ Δ″ ≤ Δ′`. This is the estimate the paper's Table 3/4 report.
    pub upper_bound_weighted: Option<u64>,
    /// Max radius `R` of the clustering used.
    pub radius: u32,
    /// Quotient graph size (the paper's `n_C`, `m_C`).
    pub quotient_nodes: usize,
    pub quotient_edges: usize,
    /// Combine-kernel ledger of the (unweighted) quotient build: undirected
    /// cut edges fed in, unique quotient edges out — the paper's `m_C`
    /// before and after multi-edge collapsing, as measured by the parallel
    /// contraction kernel that performed it. Always describes the build
    /// *before* any Theorem 4 sparsification; `quotient_edges` reflects the
    /// spanner when sparsification replaced the quotient.
    pub quotient_kernel: CombineStats,
    /// Cluster-growing steps spent — the parallel-rounds proxy of §5.
    pub growth_steps: usize,
    /// The clustering (for reuse: oracle construction, diagnostics).
    pub clustering: Clustering,
}

impl DiameterApprox {
    /// The algorithm's diameter estimate: `Δ″` when available, else `Δ′`.
    pub fn estimate(&self) -> u64 {
        self.upper_bound_weighted.unwrap_or(self.upper_bound)
    }
}

/// Runs the §4 diameter approximation on a (preferably connected) graph.
///
/// On disconnected graphs every bound refers to the largest per-component
/// value, mirroring [`pardec_graph::diameter::exact_diameter`].
pub fn approximate_diameter<G: NeighborAccess>(g: &G, params: &DiameterParams) -> DiameterApprox {
    let cp = ClusterParams::new(params.tau.max(1), params.seed).with_frontier(params.frontier);
    let (clustering, growth_steps) = match params.decomposition {
        Decomposition::Cluster => {
            let r = cluster(g, &cp);
            (r.clustering, r.trace.total_growth_steps())
        }
        Decomposition::Cluster2 => {
            let r = cluster2(g, &cp);
            (
                r.clustering,
                r.probe_trace.total_growth_steps() + r.trace.total_growth_steps(),
            )
        }
    };
    approximate_diameter_of_clustering(g, clustering, growth_steps, params)
}

/// The quotient half of the §4 pipeline, starting from an already-computed
/// clustering — the path a resident [`crate::session::Session`] takes when
/// the decomposition was loaded from a snapshot instead of recomputed.
///
/// Only `params.weighted`, `params.sparsify_above`, and `params.seed` (for
/// the spanner) are read; the decomposition fields describe work already
/// done. `growth_steps` is echoed into the result's ledger.
pub fn approximate_diameter_of_clustering<G: NeighborAccess>(
    g: &G,
    clustering: Clustering,
    growth_steps: usize,
    params: &DiameterParams,
) -> DiameterApprox {
    let radius = clustering.max_radius();

    let (mut q, quotient_kernel) = clustering.quotient_with_stats(g);
    // Theorem 4: if the quotient exceeds the local-memory stand-in,
    // sparsify it with a (2k-1)-spanner before the diameter computation.
    let mut stretch = 1u64;
    if let Some(limit) = params.sparsify_above {
        if q.num_edges() > limit {
            let sp = pardec_graph::spanner::baswana_sen(&q, 2, params.seed.wrapping_add(0x51));
            stretch = sp.stretch as u64;
            q = sp.graph;
        }
    }
    let q_diam = if q.num_nodes() <= 4096 {
        exact::apsp_diameter(&q) as u64
    } else if pardec_graph::components::is_connected(&q) {
        exact::ifub(&q, 0).0 as u64
    } else {
        exact::exact_diameter(&q) as u64
    };
    // With sparsification, q_diam over-estimates Δ_C by at most `stretch`.
    let delta_c = q_diam / stretch;
    let upper = 2 * radius as u64 * (q_diam + 1) + q_diam;

    let upper_weighted = params.weighted.then(|| {
        let wq = clustering.weighted_quotient(g);
        let wdiam = wq.apsp_diameter();
        2 * radius as u64 + wdiam
    });

    DiameterApprox {
        lower_bound: delta_c,
        upper_bound: upper,
        upper_bound_weighted: upper_weighted,
        radius,
        quotient_nodes: q.num_nodes(),
        quotient_edges: q.num_edges(),
        quotient_kernel,
        growth_steps,
        clustering,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardec_graph::generators;

    fn sandwich(g: &pardec_graph::CsrGraph, params: &DiameterParams) -> (u64, DiameterApprox) {
        let delta = exact::exact_diameter(g) as u64;
        let a = approximate_diameter(g, params);
        a.clustering.validate(g).unwrap();
        assert!(a.lower_bound <= delta, "Δ_C {} > Δ {delta}", a.lower_bound);
        assert!(a.upper_bound >= delta, "Δ′ {} < Δ {delta}", a.upper_bound);
        if let Some(w) = a.upper_bound_weighted {
            assert!(w >= delta, "Δ″ {w} < Δ {delta}");
            assert!(w <= a.upper_bound, "Δ″ {w} > Δ′ {}", a.upper_bound);
        }
        (delta, a)
    }

    #[test]
    fn sandwich_on_mesh() {
        let g = generators::mesh(30, 30);
        for seed in 0..3 {
            sandwich(&g, &DiameterParams::new(8, seed));
        }
    }

    #[test]
    fn sandwich_on_road_network() {
        let g = generators::road_network(30, 30, 0.4, 6);
        sandwich(&g, &DiameterParams::new(8, 1));
    }

    #[test]
    fn sandwich_on_social_graph() {
        let g = generators::preferential_attachment(1500, 5, 2);
        sandwich(&g, &DiameterParams::new(4, 3));
    }

    #[test]
    fn sandwich_with_cluster2() {
        let g = generators::mesh(25, 25);
        sandwich(&g, &DiameterParams::new(4, 5).with_cluster2());
    }

    #[test]
    fn weighted_estimate_is_reasonably_tight() {
        // The experiments observe Δ″/Δ < 2 across the board; verify on a
        // mesh with a modest-granularity clustering.
        let g = generators::mesh(40, 40);
        let (delta, a) = sandwich(&g, &DiameterParams::new(16, 7));
        let est = a.estimate();
        assert!(
            est <= 3 * delta,
            "estimate {est} more than 3x diameter {delta}"
        );
    }

    #[test]
    fn finer_clustering_means_bigger_quotient() {
        let g = generators::mesh(35, 35);
        let coarse = approximate_diameter(&g, &DiameterParams::new(2, 9));
        let fine = approximate_diameter(&g, &DiameterParams::new(32, 9));
        assert!(fine.quotient_nodes > coarse.quotient_nodes);
    }

    #[test]
    fn unweighted_only_mode() {
        let g = generators::mesh(20, 20);
        let mut p = DiameterParams::new(4, 0);
        p.weighted = false;
        let a = approximate_diameter(&g, &p);
        assert!(a.upper_bound_weighted.is_none());
        assert_eq!(a.estimate(), a.upper_bound);
    }

    #[test]
    fn sparsified_quotient_keeps_sandwich() {
        // Force Theorem 4's sparsification path with a tiny M_L stand-in:
        // the upper bound must remain valid and the lower bound, scaled by
        // the spanner stretch, must stay below Δ.
        let g = generators::mesh(30, 30);
        let delta = exact::exact_diameter(&g) as u64;
        let mut p = DiameterParams::new(8, 3);
        p.sparsify_above = Some(8); // quotient will exceed this for sure
        let a = approximate_diameter(&g, &p);
        assert!(a.lower_bound <= delta, "lb {} > Δ {delta}", a.lower_bound);
        assert!(a.upper_bound >= delta, "Δ′ {} < Δ {delta}", a.upper_bound);
        // The weighted bound is computed on the original quotient and stays
        // a valid sandwich member.
        let w = a.upper_bound_weighted.unwrap();
        assert!(w >= delta);
    }

    #[test]
    fn sparsify_disabled_when_quotient_small() {
        let g = generators::mesh(15, 15);
        let mut p = DiameterParams::new(2, 5);
        p.sparsify_above = Some(usize::MAX);
        let a = approximate_diameter(&g, &p);
        let b = approximate_diameter(&g, &DiameterParams::new(2, 5));
        assert_eq!(a.lower_bound, b.lower_bound);
        assert_eq!(a.upper_bound, b.upper_bound);
    }

    #[test]
    fn frontier_strategies_produce_identical_bounds() {
        let g = generators::mesh(25, 25);
        crate::testing::assert_frontier_strategies_agree("approximate_diameter", |strategy| {
            let a = approximate_diameter(&g, &DiameterParams::new(8, 3).with_frontier(strategy));
            (
                a.lower_bound,
                a.upper_bound,
                a.upper_bound_weighted,
                a.radius,
                a.quotient_nodes,
                a.quotient_edges,
                a.clustering.assignment.clone(),
            )
        });
    }

    #[test]
    fn kernel_ledger_matches_quotient() {
        let g = generators::mesh(30, 30);
        let a = approximate_diameter(&g, &DiameterParams::new(8, 1));
        // Without sparsification the reported quotient IS the kernel's
        // output: its edge count is exactly the combined pair count, and
        // the input side counts every undirected cut edge.
        assert_eq!(a.quotient_kernel.output_pairs, a.quotient_edges);
        assert!(a.quotient_kernel.input_pairs >= a.quotient_kernel.output_pairs);
        assert!(a.quotient_kernel.combine_ratio() >= 1.0);
    }

    #[test]
    fn of_clustering_matches_full_pipeline() {
        let g = generators::mesh(20, 20);
        let p = DiameterParams::new(6, 11);
        let full = approximate_diameter(&g, &p);
        let replay =
            approximate_diameter_of_clustering(&g, full.clustering.clone(), full.growth_steps, &p);
        assert_eq!(replay.lower_bound, full.lower_bound);
        assert_eq!(replay.upper_bound, full.upper_bound);
        assert_eq!(replay.upper_bound_weighted, full.upper_bound_weighted);
        assert_eq!(replay.quotient_nodes, full.quotient_nodes);
        assert_eq!(replay.quotient_edges, full.quotient_edges);
        assert_eq!(replay.growth_steps, full.growth_steps);
        assert_eq!(replay.clustering, full.clustering);
    }

    #[test]
    fn single_cluster_degenerate() {
        // τ so large relative to n that the loop never runs -> singletons;
        // quotient = G, lower bound exact.
        let g = generators::cycle(12);
        let a = approximate_diameter(&g, &DiameterParams::new(100, 0));
        assert_eq!(a.lower_bound, 6);
        assert_eq!(a.radius, 0);
    }
}
