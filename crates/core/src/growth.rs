//! The parallel disjoint cluster-growing engine shared by CLUSTER, CLUSTER2,
//! and the MPX baseline.
//!
//! Since PR 3 this is a thin facade over
//! [`pardec_graph::frontier::FrontierEngine`], which owns the
//! level-expansion machinery: each *growth step* expands every active
//! cluster's frontier by one hop, with contention for an uncovered node
//! resolved **deterministically** by the smallest packed `(owner, dist)`
//! proposal — so the smallest owner id, then the smallest distance, wins
//! regardless of thread interleaving (the paper allows arbitrary
//! tie-breaking, we pick a reproducible one). The engine's top-down,
//! bottom-up, and hybrid expansion strategies all realize that same rule,
//! so the resulting [`Clustering`] is bit-identical across runs, thread
//! counts, *and* strategies.

use pardec_graph::frontier::{FrontierEngine, FrontierStrategy};
use pardec_graph::{CsrGraph, NeighborAccess, NodeId};

use crate::clustering::Clustering;

/// Incremental multi-source disjoint BFS with dynamically added centers.
///
/// Generic over the adjacency backend ([`NeighborAccess`]): growth on a
/// compressed graph produces the same byte-identical [`Clustering`] as on
/// plain CSR, because both backends yield identical sorted neighbor
/// sequences.
pub struct GrowthEngine<'g, G: NeighborAccess = CsrGraph> {
    inner: FrontierEngine<'g, G>,
}

impl<'g, G: NeighborAccess> GrowthEngine<'g, G> {
    /// A fresh engine over `g` with no clusters, expanding with the ambient
    /// default strategy (`PARDEC_FRONTIER`, else top-down).
    pub fn new(g: &'g G) -> Self {
        Self::with_strategy(g, FrontierStrategy::default_from_env())
    }

    /// A fresh engine over `g` expanding with the given frontier strategy.
    pub fn with_strategy(g: &'g G, strategy: FrontierStrategy) -> Self {
        GrowthEngine {
            inner: FrontierEngine::new(g, strategy),
        }
    }

    /// Nodes covered so far.
    pub fn covered(&self) -> usize {
        self.inner.claimed()
    }

    /// Nodes not yet claimed by any cluster.
    pub fn uncovered(&self) -> usize {
        self.inner.unclaimed()
    }

    /// Growth steps executed so far (the parallel-depth ledger of Lemma 3).
    pub fn steps(&self) -> usize {
        self.inner.steps()
    }

    /// Clusters created so far.
    pub fn num_clusters(&self) -> usize {
        self.inner.num_sources()
    }

    /// Current frontier size (active boundary nodes).
    pub fn frontier_len(&self) -> usize {
        self.inner.frontier_len()
    }

    /// Whether `v` is already covered.
    pub fn is_covered(&self, v: NodeId) -> bool {
        self.inner.is_claimed(v)
    }

    /// Activates `v` as a new singleton cluster. Returns `false` (and does
    /// nothing) if `v` is already covered.
    pub fn add_center(&mut self, v: NodeId) -> bool {
        self.inner.add_source(v)
    }

    /// Executes one growth step; returns the number of newly covered nodes.
    pub fn step(&mut self) -> usize {
        self.inner.step()
    }

    /// Iterator over currently uncovered nodes (sequential scan).
    pub fn uncovered_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.inner.unclaimed_nodes()
    }

    /// Finalizes into a [`Clustering`]. Any still-uncovered nodes become
    /// singleton clusters (the tail step of Algorithm 1).
    pub fn finish(mut self) -> Clustering {
        let leftovers: Vec<NodeId> = self.uncovered_nodes().collect();
        for v in leftovers {
            self.add_center(v);
        }
        let parts = self.inner.into_parts();
        let mut radii = vec![0u32; parts.sources.len()];
        for (v, &c) in parts.owner.iter().enumerate() {
            radii[c as usize] = radii[c as usize].max(parts.dist[v]);
        }
        Clustering {
            assignment: parts.owner,
            centers: parts.sources,
            dist_to_center: parts.dist,
            radii,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardec_graph::generators;

    #[test]
    fn single_center_is_bfs() {
        let g = generators::mesh(6, 7);
        let mut eng = GrowthEngine::new(&g);
        assert!(eng.add_center(0));
        while eng.uncovered() > 0 {
            eng.step();
        }
        let c = eng.finish();
        assert_eq!(c.num_clusters(), 1);
        assert!(c.validate(&g).is_ok());
        let bfs = pardec_graph::traversal::bfs(&g, 0);
        assert_eq!(c.dist_to_center, bfs.dist);
        assert_eq!(c.max_radius(), bfs.levels);
    }

    #[test]
    fn duplicate_center_rejected() {
        let g = generators::path(3);
        let mut eng = GrowthEngine::new(&g);
        assert!(eng.add_center(1));
        assert!(!eng.add_center(1));
        assert_eq!(eng.num_clusters(), 1);
    }

    #[test]
    fn deterministic_tie_break_prefers_smaller_owner() {
        // Path 0-1-2, centers at 0 and 2 added in that order: node 1 is
        // contested and must go to cluster 0 (smaller id) — under every
        // expansion strategy.
        let g = generators::path(3);
        for strategy in FrontierStrategy::ALL {
            let mut eng = GrowthEngine::with_strategy(&g, strategy);
            eng.add_center(0);
            eng.add_center(2);
            eng.step();
            let c = eng.finish();
            assert_eq!(c.assignment, vec![0, 0, 1], "{strategy}");
            assert!(c.validate(&g).is_ok());
        }
    }

    #[test]
    fn staggered_activation_distances() {
        // Center 0 on a path; after 2 steps activate the far end.
        let g = generators::path(6);
        let mut eng = GrowthEngine::new(&g);
        eng.add_center(0);
        eng.step();
        eng.step();
        eng.add_center(5);
        while eng.uncovered() > 0 {
            eng.step();
        }
        let c = eng.finish();
        assert!(c.validate(&g).is_ok());
        assert_eq!(c.num_clusters(), 2);
        // Node 5's cluster radius reflects its own growth, not cluster 0's.
        assert_eq!(c.dist_to_center[5], 0);
        assert!(c.max_radius() <= 3);
    }

    #[test]
    fn determinism_across_runs_and_strategies() {
        let g = generators::road_network(25, 25, 0.4, 3);
        let run = |strategy| {
            let mut eng = GrowthEngine::with_strategy(&g, strategy);
            for v in [0u32, 100, 200, 300, 400, 500, 624] {
                eng.add_center(v);
            }
            while eng.uncovered() > 0 {
                if eng.step() == 0 && eng.frontier_len() == 0 {
                    break;
                }
            }
            eng.finish()
        };
        let a = run(FrontierStrategy::TopDown);
        let b = run(FrontierStrategy::TopDown);
        assert_eq!(a, b);
        assert!(a.validate(&g).is_ok());
        assert_eq!(a, run(FrontierStrategy::BottomUp));
        assert_eq!(a, run(FrontierStrategy::Hybrid));
    }

    #[test]
    fn finish_covers_leftovers_as_singletons() {
        let g = generators::disjoint_union(&generators::path(3), &generators::path(2));
        let mut eng = GrowthEngine::new(&g);
        eng.add_center(0);
        eng.step();
        eng.step();
        // Second component untouched: nodes 3, 4 become singletons.
        let c = eng.finish();
        assert_eq!(c.num_clusters(), 3);
        assert!(c.validate(&g).is_ok());
    }

    #[test]
    fn step_on_empty_frontier_is_noop() {
        let g = generators::path(2);
        let mut eng = GrowthEngine::new(&g);
        assert_eq!(eng.step(), 0);
        assert_eq!(eng.steps(), 1);
        assert_eq!(eng.covered(), 0);
    }
}
