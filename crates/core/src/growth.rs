//! The parallel disjoint cluster-growing engine shared by CLUSTER, CLUSTER2,
//! and the MPX baseline.
//!
//! Each *growth step* expands every active cluster's frontier by one hop.
//! Contention for an uncovered node is resolved **deterministically** in two
//! parallel phases:
//!
//! 1. *propose* — every frontier node publishes `(owner, dist + 1)` packed
//!    into a single `u64` to each uncovered neighbour's proposal slot via
//!    `fetch_min` (so the smallest owner id, then smallest distance, wins
//!    regardless of thread interleaving — the paper allows arbitrary
//!    tie-breaking, we pick a reproducible one);
//! 2. *claim* — each proposed node is atomically drained (`swap`) exactly
//!    once, its assignment and distance are stored, and it joins the next
//!    frontier.
//!
//! The result is bit-identical across runs and thread counts.

use pardec_graph::{CsrGraph, NodeId, INVALID_NODE};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::clustering::Clustering;

const NO_PROPOSAL: u64 = u64::MAX;

#[inline]
fn pack(owner: NodeId, dist: u32) -> u64 {
    ((owner as u64) << 32) | dist as u64
}

#[inline]
fn unpack(p: u64) -> (NodeId, u32) {
    ((p >> 32) as NodeId, (p & 0xFFFF_FFFF) as u32)
}

/// Incremental multi-source disjoint BFS with dynamically added centers.
pub struct GrowthEngine<'g> {
    g: &'g CsrGraph,
    assignment: Vec<AtomicU32>,
    dist: Vec<AtomicU32>,
    proposals: Vec<AtomicU64>,
    frontier: Vec<NodeId>,
    centers: Vec<NodeId>,
    covered: usize,
    steps: usize,
}

impl<'g> GrowthEngine<'g> {
    /// A fresh engine over `g` with no clusters.
    pub fn new(g: &'g CsrGraph) -> Self {
        let n = g.num_nodes();
        GrowthEngine {
            g,
            assignment: (0..n).map(|_| AtomicU32::new(INVALID_NODE)).collect(),
            dist: (0..n).map(|_| AtomicU32::new(0)).collect(),
            proposals: (0..n).map(|_| AtomicU64::new(NO_PROPOSAL)).collect(),
            frontier: Vec::new(),
            centers: Vec::new(),
            covered: 0,
            steps: 0,
        }
    }

    /// Nodes covered so far.
    pub fn covered(&self) -> usize {
        self.covered
    }

    /// Nodes not yet claimed by any cluster.
    pub fn uncovered(&self) -> usize {
        self.g.num_nodes() - self.covered
    }

    /// Growth steps executed so far (the parallel-depth ledger of Lemma 3).
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Clusters created so far.
    pub fn num_clusters(&self) -> usize {
        self.centers.len()
    }

    /// Current frontier size (active boundary nodes).
    pub fn frontier_len(&self) -> usize {
        self.frontier.len()
    }

    /// Whether `v` is already covered.
    pub fn is_covered(&self, v: NodeId) -> bool {
        self.assignment[v as usize].load(Ordering::Relaxed) != INVALID_NODE
    }

    /// Activates `v` as a new singleton cluster. Returns `false` (and does
    /// nothing) if `v` is already covered.
    pub fn add_center(&mut self, v: NodeId) -> bool {
        if self.is_covered(v) {
            return false;
        }
        let id = self.centers.len() as NodeId;
        self.assignment[v as usize].store(id, Ordering::Relaxed);
        self.dist[v as usize].store(0, Ordering::Relaxed);
        self.centers.push(v);
        self.frontier.push(v);
        self.covered += 1;
        true
    }

    /// Executes one growth step; returns the number of newly covered nodes.
    pub fn step(&mut self) -> usize {
        if self.frontier.is_empty() {
            self.steps += 1;
            return 0;
        }
        let g = self.g;
        let assignment = &self.assignment;
        let dist = &self.dist;
        let proposals = &self.proposals;

        // Phase 1: propose. Candidates may repeat; dedup happens in phase 2.
        let candidates: Vec<NodeId> = self
            .frontier
            .par_iter()
            .fold(Vec::new, |mut acc, &u| {
                let owner = assignment[u as usize].load(Ordering::Relaxed);
                let du = dist[u as usize].load(Ordering::Relaxed);
                let prop = pack(owner, du + 1);
                for &v in g.neighbors(u) {
                    if assignment[v as usize].load(Ordering::Relaxed) == INVALID_NODE {
                        proposals[v as usize].fetch_min(prop, Ordering::Relaxed);
                        acc.push(v);
                    }
                }
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });

        // Phase 2: claim. `swap` drains each slot exactly once.
        let next: Vec<NodeId> = candidates
            .par_iter()
            .fold(Vec::new, |mut acc, &v| {
                let p = proposals[v as usize].swap(NO_PROPOSAL, Ordering::Relaxed);
                if p != NO_PROPOSAL {
                    let (owner, d) = unpack(p);
                    assignment[v as usize].store(owner, Ordering::Relaxed);
                    dist[v as usize].store(d, Ordering::Relaxed);
                    acc.push(v);
                }
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });

        self.steps += 1;
        self.covered += next.len();
        self.frontier = next;
        self.frontier.len()
    }

    /// Iterator over currently uncovered nodes (sequential scan).
    pub fn uncovered_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.g.num_nodes() as NodeId)
            .filter(move |&v| self.assignment[v as usize].load(Ordering::Relaxed) == INVALID_NODE)
    }

    /// Finalizes into a [`Clustering`]. Any still-uncovered nodes become
    /// singleton clusters (the tail step of Algorithm 1).
    pub fn finish(mut self) -> Clustering {
        let leftovers: Vec<NodeId> = self.uncovered_nodes().collect();
        for v in leftovers {
            self.add_center(v);
        }
        let assignment: Vec<NodeId> = self
            .assignment
            .into_iter()
            .map(AtomicU32::into_inner)
            .collect();
        let dist: Vec<u32> = self.dist.into_iter().map(AtomicU32::into_inner).collect();
        let mut radii = vec![0u32; self.centers.len()];
        for (v, &c) in assignment.iter().enumerate() {
            radii[c as usize] = radii[c as usize].max(dist[v]);
        }
        Clustering {
            assignment,
            centers: self.centers,
            dist_to_center: dist,
            radii,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardec_graph::generators;

    #[test]
    fn single_center_is_bfs() {
        let g = generators::mesh(6, 7);
        let mut eng = GrowthEngine::new(&g);
        assert!(eng.add_center(0));
        while eng.uncovered() > 0 {
            eng.step();
        }
        let c = eng.finish();
        assert_eq!(c.num_clusters(), 1);
        assert!(c.validate(&g).is_ok());
        let bfs = pardec_graph::traversal::bfs(&g, 0);
        assert_eq!(c.dist_to_center, bfs.dist);
        assert_eq!(c.max_radius(), bfs.levels);
    }

    #[test]
    fn duplicate_center_rejected() {
        let g = generators::path(3);
        let mut eng = GrowthEngine::new(&g);
        assert!(eng.add_center(1));
        assert!(!eng.add_center(1));
        assert_eq!(eng.num_clusters(), 1);
    }

    #[test]
    fn deterministic_tie_break_prefers_smaller_owner() {
        // Path 0-1-2, centers at 0 and 2 added in that order: node 1 is
        // contested and must go to cluster 0 (smaller id).
        let g = generators::path(3);
        let mut eng = GrowthEngine::new(&g);
        eng.add_center(0);
        eng.add_center(2);
        eng.step();
        let c = eng.finish();
        assert_eq!(c.assignment, vec![0, 0, 1]);
        assert!(c.validate(&g).is_ok());
    }

    #[test]
    fn staggered_activation_distances() {
        // Center 0 on a path; after 2 steps activate the far end.
        let g = generators::path(6);
        let mut eng = GrowthEngine::new(&g);
        eng.add_center(0);
        eng.step();
        eng.step();
        eng.add_center(5);
        while eng.uncovered() > 0 {
            eng.step();
        }
        let c = eng.finish();
        assert!(c.validate(&g).is_ok());
        assert_eq!(c.num_clusters(), 2);
        // Node 5's cluster radius reflects its own growth, not cluster 0's.
        assert_eq!(c.dist_to_center[5], 0);
        assert!(c.max_radius() <= 3);
    }

    #[test]
    fn determinism_across_runs() {
        let g = generators::road_network(25, 25, 0.4, 3);
        let run = || {
            let mut eng = GrowthEngine::new(&g);
            for v in [0u32, 100, 200, 300, 400, 500, 624] {
                eng.add_center(v);
            }
            while eng.uncovered() > 0 {
                if eng.step() == 0 && eng.frontier_len() == 0 {
                    break;
                }
            }
            eng.finish()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.validate(&g).is_ok());
    }

    #[test]
    fn finish_covers_leftovers_as_singletons() {
        let g = generators::disjoint_union(&generators::path(3), &generators::path(2));
        let mut eng = GrowthEngine::new(&g);
        eng.add_center(0);
        eng.step();
        eng.step();
        // Second component untouched: nodes 3, 4 become singletons.
        let c = eng.finish();
        assert_eq!(c.num_clusters(), 3);
        assert!(c.validate(&g).is_ok());
    }

    #[test]
    fn step_on_empty_frontier_is_noop() {
        let g = generators::path(2);
        let mut eng = GrowthEngine::new(&g);
        assert_eq!(eng.step(), 0);
        assert_eq!(eng.steps(), 1);
        assert_eq!(eng.covered(), 0);
    }
}
