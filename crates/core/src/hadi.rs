//! The **HADI / ANF** baseline (refs \[16, 23\]): neighbourhood-function
//! estimation with per-node distinct-count sketches.
//!
//! Each node `v` keeps a sketch of the ball `B(v, t)`; one iteration merges
//! every neighbour's sketch (so after `t` iterations the sketch covers radius
//! `t`). The neighbourhood function `N(t) = Σ_v |B(v, t)|` is read off the
//! sketch estimates; the diameter estimate is the iteration where `N(t)`
//! saturates. On a connected graph, *bitwise* sketch convergence happens at
//! exactly `t = Δ` — but the estimator typically saturates slightly earlier
//! (the paper's Table 4 shows HADI returning mild underestimates).
//!
//! Cost profile: `Θ(Δ)` rounds with `Θ(m)` sketch-merge communication
//! **per round** — the expensive column of Table 4. The [`mr_hadi`] variant
//! runs on the MR emulation and exposes that ledger.

use pardec_graph::{CsrGraph, NodeId};
use pardec_mr::{Combine, MrConfig, MrStats, ShuffleSize, VertexEngine};
use pardec_sketch::{DistinctCounter, FmSketch};
use rayon::prelude::*;

/// Parameters of [`hadi`] / [`mr_hadi`].
#[derive(Clone, Debug)]
pub struct HadiParams {
    /// FM trials per node sketch (more = tighter `N(t)`, linearly more
    /// memory/communication). HADI's default regime is 32–64.
    pub trials: usize,
    /// Hash seed shared by all sketches.
    pub seed: u64,
    /// Hard iteration cap (defaults to `n`, i.e. effectively unbounded).
    pub max_iters: usize,
    /// Growth tolerance of the stopping rule: the estimate is the last `t`
    /// with `N(t) > (1 + saturation) · N(t-1)` — HADI stops iterating when
    /// the estimated neighbourhood function no longer grows measurably,
    /// which yields the mild underestimates seen in the paper's Table 4.
    pub saturation: f64,
}

impl HadiParams {
    /// HADI defaults: 32 trials, `10⁻⁹` growth tolerance (any measurable
    /// increase of the quantized FM estimate counts as growth).
    pub fn new(seed: u64) -> Self {
        HadiParams {
            trials: 32,
            seed,
            max_iters: usize::MAX,
            saturation: 1e-9,
        }
    }
}

/// Result of a HADI run.
#[derive(Clone, Debug)]
pub struct HadiResult {
    /// Diameter estimate from neighbourhood-function saturation (the
    /// number HADI reports; a mild *under*estimate on some graphs).
    pub diameter_estimate: u32,
    /// Iteration after which no sketch bit changed — equals `Δ` exactly on
    /// connected graphs (up to the iteration cap).
    pub bit_convergence: u32,
    /// Iterations executed.
    pub iterations: usize,
    /// `N(0), N(1), …` — the estimated neighbourhood function.
    pub neighborhood: Vec<f64>,
}

fn saturation_estimate(neighborhood: &[f64], saturation: f64) -> u32 {
    // Last t where the estimated N(t) still grew beyond the tolerance.
    let mut estimate = 0u32;
    for (t, w) in neighborhood.windows(2).enumerate() {
        if w[1] > w[0] * (1.0 + saturation) {
            estimate = (t + 1) as u32;
        }
    }
    estimate
}

/// Generic shared-memory ANF: double-buffered parallel propagation of any
/// [`DistinctCounter`] sketch family. [`hadi`] instantiates it with FM
/// sketches (the HADI paper's choice), [`hyper_anf`] with HyperLogLog
/// (Boldi–Rosa–Vigna's HyperANF, the §2 shared-memory competitor).
pub fn anf_with<S, F>(g: &CsrGraph, make: F, max_iters: usize, saturation: f64) -> HadiResult
where
    S: DistinctCounter,
    F: Fn(NodeId) -> S + Sync,
{
    let n = g.num_nodes();
    if n == 0 {
        return HadiResult {
            diameter_estimate: 0,
            bit_convergence: 0,
            iterations: 0,
            neighborhood: vec![0.0],
        };
    }
    let mut cur: Vec<S> = (0..n as NodeId).into_par_iter().map(&make).collect();
    let mut neighborhood = vec![cur.par_iter().map(|s| s.estimate()).sum::<f64>()];
    let mut iterations = 0usize;
    let mut bit_convergence = 0u32;

    while iterations < max_iters {
        let (next, changed): (Vec<S>, usize) = {
            let cur_ref = &cur;
            let merged: Vec<(S, bool)> = (0..n as NodeId)
                .into_par_iter()
                .map(|v| {
                    let mut s = cur_ref[v as usize].clone();
                    let mut changed = false;
                    for &u in g.neighbors(v) {
                        if s.would_change(&cur_ref[u as usize]) {
                            s.merge(&cur_ref[u as usize]);
                            changed = true;
                        }
                    }
                    (s, changed)
                })
                .collect();
            let changed = merged.iter().filter(|(_, c)| *c).count();
            (merged.into_iter().map(|(s, _)| s).collect(), changed)
        };
        iterations += 1;
        cur = next;
        neighborhood.push(cur.par_iter().map(|s| s.estimate()).sum::<f64>());
        if changed == 0 {
            bit_convergence = (iterations - 1) as u32;
            break;
        }
        bit_convergence = iterations as u32;
    }

    HadiResult {
        diameter_estimate: saturation_estimate(&neighborhood, saturation),
        bit_convergence,
        iterations,
        neighborhood,
    }
}

/// Shared-memory ANF/HADI with Flajolet–Martin sketches.
pub fn hadi(g: &CsrGraph, params: &HadiParams) -> HadiResult {
    let (trials, seed) = (params.trials, params.seed);
    anf_with(
        g,
        |v| {
            let mut s = FmSketch::new(trials, seed);
            s.add(v as u64);
            s
        },
        params.max_iters,
        params.saturation,
    )
}

/// HyperANF: the same propagation with HyperLogLog registers
/// (`2^precision` per node) — smaller sketches, tighter estimates, the
/// variant the paper cites for tightly-coupled shared-memory machines.
pub fn hyper_anf(g: &CsrGraph, precision: u8, seed: u64, params: &HadiParams) -> HadiResult {
    anf_with(
        g,
        |v| {
            let mut s = pardec_sketch::HllSketch::new(precision, seed);
            s.add(v as u64);
            s
        },
        params.max_iters,
        params.saturation,
    )
}

/// Sketch message for the MR variant (merge = union).
#[derive(Clone, Debug)]
struct SketchMsg(FmSketch);

impl ShuffleSize for SketchMsg {
    /// An FM sketch's wire size is dominated by its heap-resident bitmaps:
    /// one `u64` per trial. The seed-era accounting charged only the inline
    /// struct (`size_of`), under-counting every HADI round by the trial
    /// factor — exactly what the [`ShuffleSize`] satellite fixes.
    fn shuffle_bytes(&self) -> usize {
        std::mem::size_of::<FmSketch>() + self.0.trials() * std::mem::size_of::<u64>()
    }
}

impl Combine for SketchMsg {
    fn combine(&mut self, other: &Self) {
        self.0.merge(&other.0);
    }
}

/// HADI on the MR(M_G, M_L) emulation: one superstep per radius, every
/// changed sketch rebroadcast to all neighbours. The returned [`MrStats`]
/// shows the `Θ(m)`-pairs-per-round **map-side** profile that makes HADI
/// slow on long-diameter graphs (Table 4); the post-combine column shows
/// what a combiner saves (sketch union is commutative + associative, so a
/// chunk ships one merged sketch per destination).
pub fn mr_hadi(g: &CsrGraph, params: &HadiParams) -> (HadiResult, MrStats) {
    mr_hadi_with(g, params, &MrConfig::default())
}

/// [`mr_hadi`] with an explicit engine configuration. The partition count
/// never changes the estimate — sketch union is order-insensitive.
pub fn mr_hadi_with(g: &CsrGraph, params: &HadiParams, mr: &MrConfig) -> (HadiResult, MrStats) {
    let n = g.num_nodes();
    if n == 0 {
        return (
            HadiResult {
                diameter_estimate: 0,
                bit_convergence: 0,
                iterations: 0,
                neighborhood: vec![0.0],
            },
            MrStats::default(),
        );
    }
    let trials = params.trials;
    let seed = params.seed;
    let mut eng: VertexEngine<FmSketch, SketchMsg> =
        VertexEngine::with_partitions(g, mr.partitions, |v| {
            let mut s = FmSketch::new(trials, seed);
            s.add(v as u64);
            s
        });
    for v in 0..n as NodeId {
        eng.post(v, SketchMsg(eng.state[v as usize].clone()));
    }
    let mut neighborhood = vec![eng.state.par_iter().map(|s| s.estimate()).sum::<f64>()];
    let mut iterations = 0usize;
    while iterations < params.max_iters {
        let rep = eng.step(|_, s, m| {
            if s.would_change(&m.0) {
                s.merge(&m.0);
                Some(SketchMsg(s.clone()))
            } else {
                None
            }
        });
        iterations += 1;
        neighborhood.push(eng.state.par_iter().map(|s| s.estimate()).sum::<f64>());
        if rep.activated == 0 {
            break;
        }
    }
    let bit_convergence = (iterations.saturating_sub(1)) as u32;
    let (_, stats) = eng.finish();
    (
        HadiResult {
            diameter_estimate: saturation_estimate(&neighborhood, params.saturation),
            bit_convergence,
            iterations,
            neighborhood,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardec_graph::diameter::apsp_diameter;
    use pardec_graph::generators;

    #[test]
    fn bit_convergence_equals_diameter() {
        for (name, g) in [
            ("path", generators::path(20)),
            ("mesh", generators::mesh(8, 11)),
            ("cycle", generators::cycle(15)),
        ] {
            let delta = apsp_diameter(&g);
            let r = hadi(&g, &HadiParams::new(3));
            assert_eq!(r.bit_convergence, delta, "{name}");
        }
    }

    #[test]
    fn estimate_close_to_diameter() {
        let g = generators::mesh(12, 12);
        let delta = apsp_diameter(&g);
        let r = hadi(&g, &HadiParams::new(1));
        // HADI may underestimate, but not wildly (Table 4 behaviour).
        assert!(r.diameter_estimate <= delta + 1);
        assert!(
            r.diameter_estimate as f64 >= 0.6 * delta as f64,
            "estimate {} vs Δ {delta}",
            r.diameter_estimate
        );
    }

    #[test]
    fn neighborhood_function_is_monotone_and_saturates_at_n_squared() {
        let g = generators::preferential_attachment(300, 3, 4);
        let r = hadi(&g, &HadiParams::new(5));
        for w in r.neighborhood.windows(2) {
            assert!(w[1] >= w[0] * 0.999, "N(t) not monotone: {w:?}");
        }
        let n = g.num_nodes() as f64;
        let last = *r.neighborhood.last().unwrap();
        // N(∞) = n² for a connected graph; FM error is within ~2x at 32 trials.
        assert!(
            last > 0.4 * n * n && last < 2.5 * n * n,
            "N(∞) = {last} vs n² = {}",
            n * n
        );
    }

    #[test]
    fn max_iters_cap_respected() {
        let g = generators::path(50);
        let mut p = HadiParams::new(0);
        p.max_iters = 5;
        let r = hadi(&g, &p);
        assert_eq!(r.iterations, 5);
        assert_eq!(r.neighborhood.len(), 6);
    }

    #[test]
    fn mr_hadi_matches_shared_memory_rounds() {
        let g = generators::mesh(7, 9);
        let delta = apsp_diameter(&g);
        let (r, stats) = mr_hadi(&g, &HadiParams::new(2));
        assert_eq!(r.bit_convergence, delta);
        // Per-round map volume is Θ(m): the first round emits one sketch
        // per arc; the combiner then ships at most one per (dst, chunk) and
        // at least one per receiving vertex.
        let first = &stats.rounds()[0];
        assert_eq!(first.map_pairs, g.num_arcs());
        assert!(first.input_pairs <= first.map_pairs);
        assert!(first.input_pairs >= g.num_nodes());
        // Sketch bytes are charged in full: ≥ trials × 8 bytes per pair.
        assert!(first.input_bytes >= first.input_pairs * 32 * 8);
        // Θ(Δ) rounds.
        assert!(stats.num_rounds() as u32 >= delta);
    }

    #[test]
    fn empty_graph() {
        let r = hadi(&CsrGraph::empty(0), &HadiParams::new(0));
        assert_eq!(r.diameter_estimate, 0);
        let (r, _) = mr_hadi(&CsrGraph::empty(0), &HadiParams::new(0));
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn hyper_anf_bit_convergence_matches_diameter() {
        let g = generators::mesh(9, 7);
        let delta = apsp_diameter(&g);
        let r = hyper_anf(&g, 8, 3, &HadiParams::new(3));
        assert_eq!(r.bit_convergence, delta);
    }

    #[test]
    fn hyper_anf_neighborhood_saturates_near_n_squared() {
        let g = generators::preferential_attachment(400, 4, 6);
        let r = hyper_anf(&g, 11, 1, &HadiParams::new(1));
        let n = g.num_nodes() as f64;
        let last = *r.neighborhood.last().unwrap();
        // HLL at precision 11 (~2.3% error) should be much tighter than FM.
        assert!(
            (0.85 * n * n..1.15 * n * n).contains(&last),
            "N(∞) = {last} vs n² = {}",
            n * n
        );
    }

    #[test]
    fn hadi_and_hyper_anf_agree_on_convergence_round() {
        let g = generators::road_network(12, 12, 0.3, 2);
        let delta = apsp_diameter(&g);
        let fm = hadi(&g, &HadiParams::new(5));
        let hll = hyper_anf(&g, 8, 5, &HadiParams::new(5));
        // Both sketches track the true diameter. A register collision can
        // freeze a sketch a round or two early (never late), so agreement is
        // up to a small saturation slack rather than exact.
        for r in [fm.bit_convergence, hll.bit_convergence] {
            assert!(r <= delta, "converged after Δ: {r} > {delta}");
            assert!(r + 3 >= delta, "converged too early: {r} vs Δ = {delta}");
        }
    }

    #[test]
    fn disconnected_converges_to_max_component_diameter() {
        let g = generators::disjoint_union(&generators::path(12), &generators::cycle(6));
        let r = hadi(&g, &HadiParams::new(9));
        assert_eq!(r.bit_convergence, 11);
    }
}
