//! The **MPX** baseline: parallel graph decomposition via exponential random
//! shifts (Miller, Peng, Xu — SPAA'13, reference \[22\]), the comparison
//! target of Table 2.
//!
//! Every node `u` draws a shift `δ_u ~ Exp(β)`; node `u` starts growing its
//! own cluster at time `δ_max − δ_u` *unless it has already been captured*.
//! Equivalently, `v` joins the cluster of the `u` minimizing
//! `δ_max − δ_u + dist(u, v)`. MPX guarantees max radius `O(log n / β)` whp
//! and `O(β·m)` cut edges in expectation — it optimizes the *cut*, not the
//! radius, which is exactly the contrast the paper's Table 2 exhibits.
//!
//! This implementation discretizes start times to integer growth steps
//! (`⌊δ_max − δ_u⌋`), the standard practical variant: clusters expand one
//! hop per step, and nodes whose start time arrives while still uncovered
//! become centers.

use crate::clustering::Clustering;
use crate::growth::GrowthEngine;
use pardec_graph::frontier::FrontierStrategy;
use pardec_graph::{NeighborAccess, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of [`mpx`].
#[derive(Clone, Debug, PartialEq)]
pub struct MpxResult {
    pub clustering: Clustering,
    /// Growth steps executed (= number of distinct discrete times).
    pub steps: usize,
}

/// Runs the MPX decomposition with rate `beta > 0` and the given seed,
/// expanding with the ambient default frontier strategy (`PARDEC_FRONTIER`,
/// else top-down).
///
/// Larger `beta` activates centers earlier and more densely: more clusters,
/// smaller radius, more cut edges.
///
/// # Panics
/// Panics if `beta` is not strictly positive and finite.
pub fn mpx<G: NeighborAccess>(g: &G, beta: f64, seed: u64) -> MpxResult {
    mpx_with_frontier(g, beta, seed, FrontierStrategy::default_from_env())
}

/// As [`mpx`] with an explicit frontier expansion strategy. The clustering
/// is byte-identical across strategies; only wall-clock time differs.
pub fn mpx_with_frontier<G: NeighborAccess>(
    g: &G,
    beta: f64,
    seed: u64,
    strategy: FrontierStrategy,
) -> MpxResult {
    assert!(beta > 0.0 && beta.is_finite(), "beta must be positive");
    let n = g.num_nodes();
    if n == 0 {
        return MpxResult {
            clustering: GrowthEngine::with_strategy(g, strategy).finish(),
            steps: 0,
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // δ_u ~ Exp(β) by inversion; 1 - U avoids ln(0).
    let shifts: Vec<f64> = (0..n)
        .map(|_| -(1.0 - rng.gen::<f64>()).ln() / beta)
        .collect();
    let delta_max = shifts.iter().copied().fold(f64::MIN, f64::max);

    // Discrete start time per node; sorted schedule of (time, node).
    let mut schedule: Vec<(u32, NodeId)> = shifts
        .iter()
        .enumerate()
        .map(|(v, &d)| ((delta_max - d).floor().max(0.0) as u32, v as NodeId))
        .collect();
    schedule.sort_unstable();

    let mut eng = GrowthEngine::with_strategy(g, strategy);
    let mut next = 0usize; // cursor into the schedule
    let mut t = 0u32;
    let mut steps = 0usize;
    while eng.uncovered() > 0 {
        let mut round_span =
            pardec_obs::span!("mpx.round", round = t, uncovered = eng.uncovered(),);
        // Activate every node whose start time has arrived and that is
        // still uncovered.
        let mut activated = 0usize;
        while next < schedule.len() && schedule[next].0 <= t {
            if eng.add_center(schedule[next].1) {
                activated += 1;
            }
            next += 1;
        }
        if eng.frontier_len() > 0 {
            eng.step();
            steps += 1;
        }
        round_span.field("activated", activated);
        round_span.field("frontier", eng.frontier_len());
        t += 1;
    }
    MpxResult {
        clustering: eng.finish(),
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{assert_mpx_strategies_agree, check_mpx as check};
    use pardec_graph::generators;

    #[test]
    fn covers_mesh() {
        let g = generators::mesh(25, 25);
        let r = check(&g, 0.1, 3);
        assert!(r.clustering.num_clusters() >= 1);
    }

    #[test]
    fn beta_controls_granularity() {
        let g = generators::mesh(40, 40);
        let coarse = check(&g, 0.02, 5);
        let fine = check(&g, 0.5, 5);
        assert!(
            fine.clustering.num_clusters() > coarse.clustering.num_clusters(),
            "fine {} vs coarse {}",
            fine.clustering.num_clusters(),
            coarse.clustering.num_clusters()
        );
        assert!(
            fine.clustering.max_radius() <= coarse.clustering.max_radius(),
            "fine radius {} vs coarse {}",
            fine.clustering.max_radius(),
            coarse.clustering.max_radius()
        );
    }

    #[test]
    fn radius_bound_tracks_log_over_beta() {
        // MPX: radius O(log n / β) whp — generous constant check.
        let g = generators::road_network(30, 30, 0.4, 7);
        let beta = 0.2;
        for seed in 0..4 {
            let r = check(&g, beta, seed);
            let bound = (6.0 * (g.num_nodes() as f64).log2() / beta) as u32;
            assert!(
                r.clustering.max_radius() <= bound,
                "seed {seed}: radius {} > bound {bound}",
                r.clustering.max_radius()
            );
        }
    }

    #[test]
    fn works_on_disconnected() {
        let g = generators::disjoint_union(&generators::path(20), &generators::cycle(12));
        check(&g, 0.3, 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::preferential_attachment(400, 3, 9);
        let a = mpx(&g, 0.1, 4);
        let b = mpx(&g, 0.1, 4);
        assert_eq!(a.clustering, b.clustering);
    }

    #[test]
    fn empty_graph() {
        let g = pardec_graph::CsrGraph::empty(0);
        let r = mpx(&g, 0.5, 0);
        assert_eq!(r.clustering.num_clusters(), 0);
    }

    #[test]
    fn frontier_strategies_produce_identical_decompositions() {
        assert_mpx_strategies_agree(&generators::mesh(30, 30), 0.1, 3);
        assert_mpx_strategies_agree(&generators::preferential_attachment(800, 5, 2), 0.25, 6);
    }

    #[test]
    fn high_beta_many_singletonish_clusters() {
        // With huge β all shifts ≈ 0: everyone starts at ~the same time and
        // clusters stay tiny.
        let g = generators::mesh(20, 20);
        let r = check(&g, 50.0, 2);
        assert!(r.clustering.num_clusters() > g.num_nodes() / 8);
        assert!(r.clustering.max_radius() <= 3);
    }
}
