//! §4 (closing remark) — a linear-space approximate **distance oracle**.
//!
//! Cluster the graph with CLUSTER2(τ), keep per-node `(cluster, distance to
//! center)` and the APSP matrix of the weighted quotient graph. A query
//! `(u, v)` answers
//!
//! ```text
//! d′(u, v) = dist(u, c_u) + apsp[C_u][C_v] + dist(v, c_v)
//! ```
//!
//! an upper bound on `dist(u, v)` that the paper shows is
//! `O(dist(u, v)·log³ n + R_ALG2)` — polylogarithmic for far-apart pairs.
//! With `τ = O(√n / log⁴ n)` the matrix is `O(n)` words, keeping the oracle
//! linear-space.

use crate::cluster::ClusterParams;
use crate::cluster2::cluster2;
use crate::clustering::Clustering;
use crate::diameter::Decomposition;
use pardec_graph::{NeighborAccess, NodeId};

/// Approximate distance oracle built from a clustering (§4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistanceOracle {
    assignment: Vec<NodeId>,
    dist_to_center: Vec<u32>,
    /// APSP over the weighted quotient (connecting-path metric).
    apsp: Vec<Vec<u64>>,
    /// Per-cluster growth radii (drives [`Self::eccentricity_bound`]).
    radii: Vec<u32>,
    radius: u32,
}

impl DistanceOracle {
    /// Builds the oracle with CLUSTER2(τ) (the paper's construction) or
    /// plain CLUSTER (cheaper probe, same query logic).
    pub fn build<G: NeighborAccess>(
        g: &G,
        tau: usize,
        seed: u64,
        decomposition: Decomposition,
    ) -> Self {
        let params = ClusterParams::new(tau.max(1), seed);
        let clustering: Clustering = match decomposition {
            Decomposition::Cluster2 => cluster2(g, &params).clustering,
            Decomposition::Cluster => crate::cluster::cluster(g, &params).clustering,
        };
        let wq = clustering.weighted_quotient(g);
        let apsp = wq.apsp_matrix();
        DistanceOracle {
            radius: clustering.max_radius(),
            assignment: clustering.assignment,
            dist_to_center: clustering.dist_to_center,
            radii: clustering.radii,
            apsp,
        }
    }

    /// Builds from an existing clustering (reuse after a diameter run).
    pub fn from_clustering<G: NeighborAccess>(g: &G, clustering: &Clustering) -> Self {
        let wq = clustering.weighted_quotient(g);
        DistanceOracle {
            radius: clustering.max_radius(),
            assignment: clustering.assignment.clone(),
            dist_to_center: clustering.dist_to_center.clone(),
            radii: clustering.radii.clone(),
            apsp: wq.apsp_matrix(),
        }
    }

    /// Reassembles an oracle from its stored parts (snapshot load path).
    /// Shape-validates everything; returns the first violation found.
    pub fn from_raw_parts(
        assignment: Vec<NodeId>,
        dist_to_center: Vec<u32>,
        radii: Vec<u32>,
        apsp: Vec<Vec<u64>>,
    ) -> Result<Self, String> {
        let q = radii.len();
        if assignment.len() != dist_to_center.len() {
            return Err("assignment / dist_to_center length mismatch".into());
        }
        if apsp.len() != q || apsp.iter().any(|row| row.len() != q) {
            return Err("APSP matrix is not q x q".into());
        }
        if assignment.iter().any(|&c| (c as usize) >= q) {
            return Err("assignment references a cluster beyond q".into());
        }
        Ok(DistanceOracle {
            radius: radii.iter().copied().max().unwrap_or(0),
            assignment,
            dist_to_center,
            radii,
            apsp,
        })
    }

    /// Number of clusters (quotient nodes).
    pub fn num_clusters(&self) -> usize {
        self.apsp.len()
    }

    /// Max cluster radius of the underlying decomposition.
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// Words of storage held (per-node arrays + quotient matrix) — the
    /// linear-space claim is `n + n + q²` with `q = O(√n)`.
    pub fn memory_words(&self) -> usize {
        self.assignment.len()
            + self.dist_to_center.len()
            + self.radii.len()
            + self.apsp.len() * self.apsp.len()
    }

    /// Per-cluster growth radii of the underlying decomposition.
    pub fn cluster_radii(&self) -> &[u32] {
        &self.radii
    }

    /// The quotient APSP matrix (for persistence).
    pub fn apsp_matrix(&self) -> &[Vec<u64>] {
        &self.apsp
    }

    /// Upper bound on `dist(u, v)`; `u64::MAX` when the endpoints are in
    /// different connected components.
    pub fn query(&self, u: NodeId, v: NodeId) -> u64 {
        if u == v {
            return 0;
        }
        let (cu, cv) = (self.assignment[u as usize], self.assignment[v as usize]);
        let (du, dv) = (
            self.dist_to_center[u as usize] as u64,
            self.dist_to_center[v as usize] as u64,
        );
        if cu == cv {
            // Through the shared center.
            return du + dv;
        }
        let between = self.apsp[cu as usize][cv as usize];
        if between == u64::MAX {
            return u64::MAX;
        }
        du + between + dv
    }

    /// Upper bound on the eccentricity of `v` **within its connected
    /// component**: the maximum, over clusters `C` reachable from `v`'s
    /// cluster, of `dist(v, c_v) + apsp[C_v][C] + radius(C)`.
    ///
    /// Every node of a reachable cluster is reachable (clusters are
    /// internally connected) and lies within `radius(C)` of `C`'s center,
    /// so this dominates `max_u dist(v, u)` over the component.
    pub fn eccentricity_bound(&self, v: NodeId) -> u64 {
        let cv = self.assignment[v as usize] as usize;
        let dv = self.dist_to_center[v as usize] as u64;
        self.apsp[cv]
            .iter()
            .zip(&self.radii)
            .filter(|(&between, _)| between != u64::MAX)
            .map(|(&between, &r)| dv + between + r as u64)
            .max()
            .unwrap_or(dv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardec_graph::generators;
    use pardec_graph::traversal::bfs;

    fn check_oracle(g: &pardec_graph::CsrGraph, oracle: &DistanceOracle, sources: &[NodeId]) {
        for &u in sources {
            let truth = bfs(g, u).dist;
            for v in (0..g.num_nodes() as NodeId).step_by(7) {
                let q = oracle.query(u, v);
                let t = truth[v as usize];
                if t == pardec_graph::INFINITE_DIST {
                    assert_eq!(q, u64::MAX, "({u},{v}) should be unreachable");
                } else {
                    assert!(
                        q >= t as u64,
                        "oracle({u},{v}) = {q} below true distance {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn upper_bound_on_mesh() {
        let g = generators::mesh(20, 20);
        let oracle = DistanceOracle::build(&g, 4, 1, Decomposition::Cluster2);
        check_oracle(&g, &oracle, &[0, 57, 399]);
    }

    #[test]
    fn upper_bound_on_road() {
        let g = generators::road_network(20, 20, 0.4, 5);
        let oracle = DistanceOracle::build(&g, 4, 2, Decomposition::Cluster);
        check_oracle(&g, &oracle, &[0, 100, 399]);
    }

    #[test]
    fn stretch_is_moderate_for_far_pairs() {
        // The guarantee is O(d log³n + R); empirically on a mesh the
        // weighted-quotient routing stays within a small constant factor.
        let g = generators::mesh(25, 25);
        let oracle = DistanceOracle::build(&g, 8, 3, Decomposition::Cluster2);
        let truth = bfs(&g, 0).dist;
        let far = (g.num_nodes() - 1) as NodeId;
        let q = oracle.query(0, far);
        let t = truth[far as usize] as u64;
        assert!(
            q <= 6 * t + 4 * oracle.radius() as u64,
            "stretch too big: {q} vs {t}"
        );
    }

    #[test]
    fn identity_and_symmetry_of_intra_cluster_queries() {
        let g = generators::cycle(30);
        let oracle = DistanceOracle::build(&g, 2, 7, Decomposition::Cluster);
        assert_eq!(oracle.query(5, 5), 0);
        assert_eq!(oracle.query(3, 9), oracle.query(9, 3));
    }

    #[test]
    fn disconnected_reports_unreachable() {
        let g = generators::disjoint_union(&generators::path(10), &generators::cycle(8));
        let oracle = DistanceOracle::build(&g, 1, 0, Decomposition::Cluster);
        assert_eq!(oracle.query(0, 15), u64::MAX);
        assert!(oracle.query(0, 5) >= 5);
    }

    #[test]
    fn eccentricity_bound_dominates_truth_per_component() {
        let g = generators::disjoint_union(&generators::mesh(9, 9), &generators::cycle(11));
        let oracle = DistanceOracle::build(&g, 4, 5, Decomposition::Cluster);
        for v in [0u32, 40, 80, 81, 88] {
            let d = bfs(&g, v).dist;
            let truth = d
                .iter()
                .copied()
                .filter(|&x| x != pardec_graph::INFINITE_DIST)
                .max()
                .unwrap() as u64;
            let bound = oracle.eccentricity_bound(v);
            assert!(
                bound >= truth,
                "ecc_bound({v}) = {bound} < true ecc {truth}"
            );
            assert!(bound < u64::MAX, "ecc_bound({v}) must stay in-component");
        }
    }

    #[test]
    fn raw_parts_round_trips_and_validates() {
        let g = generators::mesh(10, 10);
        let oracle = DistanceOracle::build(&g, 4, 1, Decomposition::Cluster2);
        let rebuilt = DistanceOracle::from_raw_parts(
            oracle.assignment.clone(),
            oracle.dist_to_center.clone(),
            oracle.radii.clone(),
            oracle.apsp.clone(),
        )
        .unwrap();
        assert_eq!(rebuilt, oracle);

        // Shape violations are rejected.
        assert!(DistanceOracle::from_raw_parts(
            oracle.assignment.clone(),
            vec![0; oracle.dist_to_center.len() + 1],
            oracle.radii.clone(),
            oracle.apsp.clone(),
        )
        .is_err());
        assert!(DistanceOracle::from_raw_parts(
            oracle.assignment.clone(),
            oracle.dist_to_center.clone(),
            vec![0; 1], // q shrinks: assignment now out of range
            vec![vec![0]],
        )
        .is_err());
        let mut ragged = oracle.apsp.clone();
        ragged[0].push(0);
        assert!(DistanceOracle::from_raw_parts(
            oracle.assignment.clone(),
            oracle.dist_to_center.clone(),
            oracle.radii.clone(),
            ragged,
        )
        .is_err());
    }

    #[test]
    fn from_clustering_matches_build() {
        let g = generators::mesh(12, 12);
        let params = ClusterParams::new(4, 9);
        let c = crate::cluster::cluster(&g, &params).clustering;
        let a = DistanceOracle::from_clustering(&g, &c);
        // Smoke: same radius and cluster count as the source clustering.
        assert_eq!(a.radius(), c.max_radius());
        assert_eq!(a.num_clusters(), c.num_clusters());
        assert!(a.memory_words() >= 2 * g.num_nodes());
    }
}
