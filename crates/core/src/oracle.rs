//! §4 (closing remark) — a linear-space approximate **distance oracle**.
//!
//! Cluster the graph with CLUSTER2(τ), keep per-node `(cluster, distance to
//! center)` and the APSP matrix of the weighted quotient graph. A query
//! `(u, v)` answers
//!
//! ```text
//! d′(u, v) = dist(u, c_u) + apsp[C_u][C_v] + dist(v, c_v)
//! ```
//!
//! an upper bound on `dist(u, v)` that the paper shows is
//! `O(dist(u, v)·log³ n + R_ALG2)` — polylogarithmic for far-apart pairs.
//! With `τ = O(√n / log⁴ n)` the matrix is `O(n)` words, keeping the oracle
//! linear-space.

use crate::cluster::ClusterParams;
use crate::cluster2::cluster2;
use crate::clustering::Clustering;
use crate::diameter::Decomposition;
use pardec_graph::{CsrGraph, NodeId};

/// Approximate distance oracle built from a clustering (§4).
#[derive(Clone, Debug)]
pub struct DistanceOracle {
    assignment: Vec<NodeId>,
    dist_to_center: Vec<u32>,
    /// APSP over the weighted quotient (connecting-path metric).
    apsp: Vec<Vec<u64>>,
    radius: u32,
}

impl DistanceOracle {
    /// Builds the oracle with CLUSTER2(τ) (the paper's construction) or
    /// plain CLUSTER (cheaper probe, same query logic).
    pub fn build(g: &CsrGraph, tau: usize, seed: u64, decomposition: Decomposition) -> Self {
        let params = ClusterParams::new(tau.max(1), seed);
        let clustering: Clustering = match decomposition {
            Decomposition::Cluster2 => cluster2(g, &params).clustering,
            Decomposition::Cluster => crate::cluster::cluster(g, &params).clustering,
        };
        let wq = clustering.weighted_quotient(g);
        let apsp = wq.apsp_matrix();
        DistanceOracle {
            radius: clustering.max_radius(),
            assignment: clustering.assignment,
            dist_to_center: clustering.dist_to_center,
            apsp,
        }
    }

    /// Builds from an existing clustering (reuse after a diameter run).
    pub fn from_clustering(g: &CsrGraph, clustering: &Clustering) -> Self {
        let wq = clustering.weighted_quotient(g);
        DistanceOracle {
            radius: clustering.max_radius(),
            assignment: clustering.assignment.clone(),
            dist_to_center: clustering.dist_to_center.clone(),
            apsp: wq.apsp_matrix(),
        }
    }

    /// Number of clusters (quotient nodes).
    pub fn num_clusters(&self) -> usize {
        self.apsp.len()
    }

    /// Max cluster radius of the underlying decomposition.
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// Words of storage held (per-node arrays + quotient matrix) — the
    /// linear-space claim is `n + n + q²` with `q = O(√n)`.
    pub fn memory_words(&self) -> usize {
        self.assignment.len() + self.dist_to_center.len() + self.apsp.len() * self.apsp.len()
    }

    /// Upper bound on `dist(u, v)`; `u64::MAX` when the endpoints are in
    /// different connected components.
    pub fn query(&self, u: NodeId, v: NodeId) -> u64 {
        if u == v {
            return 0;
        }
        let (cu, cv) = (self.assignment[u as usize], self.assignment[v as usize]);
        let (du, dv) = (
            self.dist_to_center[u as usize] as u64,
            self.dist_to_center[v as usize] as u64,
        );
        if cu == cv {
            // Through the shared center.
            return du + dv;
        }
        let between = self.apsp[cu as usize][cv as usize];
        if between == u64::MAX {
            return u64::MAX;
        }
        du + between + dv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardec_graph::generators;
    use pardec_graph::traversal::bfs;

    fn check_oracle(g: &CsrGraph, oracle: &DistanceOracle, sources: &[NodeId]) {
        for &u in sources {
            let truth = bfs(g, u).dist;
            for v in (0..g.num_nodes() as NodeId).step_by(7) {
                let q = oracle.query(u, v);
                let t = truth[v as usize];
                if t == pardec_graph::INFINITE_DIST {
                    assert_eq!(q, u64::MAX, "({u},{v}) should be unreachable");
                } else {
                    assert!(
                        q >= t as u64,
                        "oracle({u},{v}) = {q} below true distance {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn upper_bound_on_mesh() {
        let g = generators::mesh(20, 20);
        let oracle = DistanceOracle::build(&g, 4, 1, Decomposition::Cluster2);
        check_oracle(&g, &oracle, &[0, 57, 399]);
    }

    #[test]
    fn upper_bound_on_road() {
        let g = generators::road_network(20, 20, 0.4, 5);
        let oracle = DistanceOracle::build(&g, 4, 2, Decomposition::Cluster);
        check_oracle(&g, &oracle, &[0, 100, 399]);
    }

    #[test]
    fn stretch_is_moderate_for_far_pairs() {
        // The guarantee is O(d log³n + R); empirically on a mesh the
        // weighted-quotient routing stays within a small constant factor.
        let g = generators::mesh(25, 25);
        let oracle = DistanceOracle::build(&g, 8, 3, Decomposition::Cluster2);
        let truth = bfs(&g, 0).dist;
        let far = (g.num_nodes() - 1) as NodeId;
        let q = oracle.query(0, far);
        let t = truth[far as usize] as u64;
        assert!(
            q <= 6 * t + 4 * oracle.radius() as u64,
            "stretch too big: {q} vs {t}"
        );
    }

    #[test]
    fn identity_and_symmetry_of_intra_cluster_queries() {
        let g = generators::cycle(30);
        let oracle = DistanceOracle::build(&g, 2, 7, Decomposition::Cluster);
        assert_eq!(oracle.query(5, 5), 0);
        assert_eq!(oracle.query(3, 9), oracle.query(9, 3));
    }

    #[test]
    fn disconnected_reports_unreachable() {
        let g = generators::disjoint_union(&generators::path(10), &generators::cycle(8));
        let oracle = DistanceOracle::build(&g, 1, 0, Decomposition::Cluster);
        assert_eq!(oracle.query(0, 15), u64::MAX);
        assert!(oracle.query(0, 5) >= 5);
    }

    #[test]
    fn from_clustering_matches_build() {
        let g = generators::mesh(12, 12);
        let params = ClusterParams::new(4, 9);
        let c = crate::cluster::cluster(&g, &params).clustering;
        let a = DistanceOracle::from_clustering(&g, &c);
        // Smoke: same radius and cluster count as the source clustering.
        assert_eq!(a.radius(), c.max_radius());
        assert_eq!(a.num_clusters(), c.num_clusters());
        assert!(a.memory_words() >= 2 * g.num_nodes());
    }
}
