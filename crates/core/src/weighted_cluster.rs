//! §7 (future work) — decomposition of **weighted** graphs.
//!
//! The paper's conclusions sketch "a preliminary decomposition strategy
//! that, together with the number of clusters and their weighted radius,
//! also controls their hop radius, which governs the parallel depth". This
//! module implements that strategy as a natural weighted analogue of
//! CLUSTER(τ):
//!
//! * clusters grow at unit speed in *weighted* distance (an event-driven
//!   multi-source Dijkstra, where a cluster activated at time `T` owns the
//!   nodes `v` minimizing `T + w·dist(center, v)`);
//! * a new batch of centers is drawn — with CLUSTER's own probabilities —
//!   whenever the number of uncovered nodes has halved since the previous
//!   batch;
//! * both the **weighted radius** (cost of the claim path) and the **hop
//!   radius** (its edge count, the parallel-depth proxy) are tracked per
//!   cluster.

use pardec_graph::{NodeId, WeightedGraph, INVALID_NODE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::cluster::{log2n, ClusterParams};

/// A clustering of a weighted graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedClustering {
    /// `assignment[v]` = cluster id.
    pub assignment: Vec<NodeId>,
    /// `centers[c]` = center node of cluster `c`.
    pub centers: Vec<NodeId>,
    /// Weighted distance from each node to its center along the claim tree.
    pub weighted_dist: Vec<u64>,
    /// Hop count of each node's claim path.
    pub hops: Vec<u32>,
    /// Per-cluster maximum weighted distance.
    pub weighted_radii: Vec<u64>,
    /// Per-cluster maximum hop count — the parallel-depth proxy.
    pub hop_radii: Vec<u32>,
}

impl WeightedClustering {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.centers.len()
    }

    /// Maximum weighted radius over clusters.
    pub fn max_weighted_radius(&self) -> u64 {
        self.weighted_radii.iter().copied().max().unwrap_or(0)
    }

    /// Maximum hop radius over clusters.
    pub fn max_hop_radius(&self) -> u32 {
        self.hop_radii.iter().copied().max().unwrap_or(0)
    }

    /// Structural validation: complete assignment, centers at distance 0,
    /// every non-center has an in-cluster neighbour whose (weighted, hop)
    /// labels are consistent with a claim-tree edge.
    pub fn validate(&self, g: &WeightedGraph) -> Result<(), String> {
        let n = g.num_nodes();
        if self.assignment.len() != n {
            return Err("assignment size mismatch".into());
        }
        for (c, &ctr) in self.centers.iter().enumerate() {
            if self.assignment[ctr as usize] as usize != c {
                return Err(format!("center {ctr} not in cluster {c}"));
            }
            if self.weighted_dist[ctr as usize] != 0 || self.hops[ctr as usize] != 0 {
                return Err(format!("center {ctr} has nonzero labels"));
            }
        }
        for v in 0..n as NodeId {
            let vi = v as usize;
            let c = self.assignment[vi];
            if c == INVALID_NODE || c as usize >= self.centers.len() {
                return Err(format!("node {v} unassigned"));
            }
            if self.hops[vi] == 0 {
                if self.centers[c as usize] != v {
                    return Err(format!("node {v} at hop 0 is not a center"));
                }
                continue;
            }
            let ok = g.neighbors(v).any(|(u, w)| {
                self.assignment[u as usize] == c
                    && self.hops[u as usize] == self.hops[vi] - 1
                    && self.weighted_dist[u as usize] + w == self.weighted_dist[vi]
            });
            if !ok {
                return Err(format!("node {v} lacks a claim-tree predecessor"));
            }
        }
        let mut wr = vec![0u64; self.centers.len()];
        let mut hr = vec![0u32; self.centers.len()];
        for v in 0..n {
            let c = self.assignment[v] as usize;
            wr[c] = wr[c].max(self.weighted_dist[v]);
            hr[c] = hr[c].max(self.hops[v]);
        }
        if wr != self.weighted_radii || hr != self.hop_radii {
            return Err("recorded radii do not match assignment".into());
        }
        Ok(())
    }
}

/// Weighted CLUSTER(τ): event-driven batched multi-source Dijkstra.
///
/// Batch activation follows Algorithm 1: while at least `8·τ·log n` nodes
/// are uncovered, each uncovered node joins the next batch independently
/// with probability `4·τ·log n / uncovered`; the batch activates when the
/// previous batch's uncovered count has halved. Remaining nodes become
/// singletons.
pub fn weighted_cluster(g: &WeightedGraph, params: &ClusterParams) -> WeightedClustering {
    let n = g.num_nodes();
    let mut rng = StdRng::seed_from_u64(params.seed);
    let logn = log2n(n);
    let threshold = (params.stop_factor * params.tau as f64 * logn).max(1.0);

    let mut assignment = vec![INVALID_NODE; n];
    let mut weighted_dist = vec![0u64; n];
    let mut hops = vec![0u32; n];
    let mut centers: Vec<NodeId> = Vec::new();
    let mut covered = 0usize;

    // (arrival_time, node, owner, weighted_dist_from_center, hops)
    type Event = (u64, NodeId, NodeId, u64, u32);
    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut now = 0u64;

    let mut batch_uncovered = n; // uncovered count at the last activation
    let max_batches = (2.0 * logn) as usize + 32;
    let mut batches = 0usize;

    let activate = |rng: &mut StdRng,
                    assignment: &mut [NodeId],
                    centers: &mut Vec<NodeId>,
                    heap: &mut BinaryHeap<Reverse<Event>>,
                    covered: &mut usize,
                    now: u64| {
        let uncovered = n - *covered;
        if uncovered == 0 {
            return;
        }
        let p = (params.batch_factor * params.tau as f64 * logn / uncovered as f64).clamp(0.0, 1.0);
        let mut picked_any = false;
        let mut first_uncovered = None;
        for v in 0..n as NodeId {
            if assignment[v as usize] != INVALID_NODE {
                continue;
            }
            if first_uncovered.is_none() {
                first_uncovered = Some(v);
            }
            if rng.gen::<f64>() < p {
                let id = centers.len() as NodeId;
                assignment[v as usize] = id;
                centers.push(v);
                *covered += 1;
                heap.push(Reverse((now, v, id, 0, 0)));
                picked_any = true;
            }
        }
        if !picked_any {
            if let Some(v) = first_uncovered {
                // Progress guard, as in the unweighted algorithm.
                let id = centers.len() as NodeId;
                assignment[v as usize] = id;
                centers.push(v);
                *covered += 1;
                heap.push(Reverse((now, v, id, 0, 0)));
            }
        }
    };

    if (n as f64) >= threshold {
        activate(
            &mut rng,
            &mut assignment,
            &mut centers,
            &mut heap,
            &mut covered,
            now,
        );
        batches = 1;
        batch_uncovered = n;
    }

    while let Some(&Reverse((t, _, _, _, _))) = heap.peek() {
        now = t;
        // Pop and settle one event.
        let Reverse((t, v, owner, wd, h)) = heap.pop().expect("peeked");
        let fresh = assignment[v as usize] == INVALID_NODE
            || (assignment[v as usize] == owner
                && weighted_dist[v as usize] == wd
                && hops[v as usize] == h);
        if assignment[v as usize] == INVALID_NODE {
            assignment[v as usize] = owner;
            weighted_dist[v as usize] = wd;
            hops[v as usize] = h;
            covered += 1;
        } else if !fresh {
            continue; // stale event for an already-claimed node
        }
        for (u, w) in g.neighbors(v) {
            if assignment[u as usize] == INVALID_NODE {
                heap.push(Reverse((t + w, u, owner, wd + w, h + 1)));
            }
        }
        // Batch policy: activate once the uncovered set has halved, while
        // above the loop threshold.
        let uncovered = n - covered;
        if (uncovered as f64) >= threshold
            && 2 * uncovered <= batch_uncovered
            && batches < max_batches
        {
            activate(
                &mut rng,
                &mut assignment,
                &mut centers,
                &mut heap,
                &mut covered,
                now,
            );
            batches += 1;
            batch_uncovered = uncovered;
        }
    }

    // Tail singletons (disconnected remainders or below-threshold leftovers).
    for v in 0..n as NodeId {
        if assignment[v as usize] == INVALID_NODE {
            let id = centers.len() as NodeId;
            assignment[v as usize] = id;
            centers.push(v);
        }
    }

    let mut weighted_radii = vec![0u64; centers.len()];
    let mut hop_radii = vec![0u32; centers.len()];
    for v in 0..n {
        let c = assignment[v] as usize;
        weighted_radii[c] = weighted_radii[c].max(weighted_dist[v]);
        hop_radii[c] = hop_radii[c].max(hops[v]);
    }
    WeightedClustering {
        assignment,
        centers,
        weighted_dist,
        hops,
        weighted_radii,
        hop_radii,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A weighted grid: rows × cols, horizontal weight 1, vertical weight 3.
    fn weighted_grid(rows: usize, cols: usize) -> WeightedGraph {
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let u = (r * cols + c) as NodeId;
                if c + 1 < cols {
                    edges.push((u, u + 1, 1u64));
                }
                if r + 1 < rows {
                    edges.push((u, u + cols as NodeId, 3u64));
                }
            }
        }
        WeightedGraph::from_edges(rows * cols, &edges)
    }

    #[test]
    fn partitions_weighted_grid() {
        let g = weighted_grid(20, 20);
        let r = weighted_cluster(&g, &ClusterParams::new(2, 3));
        r.validate(&g).unwrap();
        assert!(r.num_clusters() >= 2);
        assert!(r.max_weighted_radius() > 0);
    }

    #[test]
    fn hop_radius_bounded_by_weighted_radius() {
        // All weights ≥ 1, so hops ≤ weighted distance pointwise.
        let g = weighted_grid(15, 15);
        let r = weighted_cluster(&g, &ClusterParams::new(2, 7));
        for v in 0..g.num_nodes() {
            assert!(r.hops[v] as u64 <= r.weighted_dist[v] + 1);
        }
        assert!(r.max_hop_radius() as u64 <= r.max_weighted_radius() + 1);
    }

    #[test]
    fn tau_controls_granularity() {
        let g = weighted_grid(25, 25);
        let coarse = weighted_cluster(&g, &ClusterParams::new(1, 5));
        let fine = weighted_cluster(&g, &ClusterParams::new(16, 5));
        assert!(fine.num_clusters() > coarse.num_clusters());
        assert!(fine.max_weighted_radius() <= coarse.max_weighted_radius());
    }

    #[test]
    fn unit_weights_match_hop_metric() {
        // With all weights 1, weighted distance = hops for every node.
        let mut edges = Vec::new();
        for v in 1..40u32 {
            edges.push((v - 1, v, 1u64));
        }
        let g = WeightedGraph::from_edges(40, &edges);
        let r = weighted_cluster(&g, &ClusterParams::new(1, 2));
        r.validate(&g).unwrap();
        for v in 0..40 {
            assert_eq!(r.weighted_dist[v], r.hops[v] as u64);
        }
    }

    #[test]
    fn deterministic() {
        let g = weighted_grid(12, 12);
        assert_eq!(
            weighted_cluster(&g, &ClusterParams::new(2, 9)),
            weighted_cluster(&g, &ClusterParams::new(2, 9))
        );
    }

    #[test]
    fn disconnected_weighted_graph() {
        let g = WeightedGraph::from_edges(6, &[(0, 1, 2), (1, 2, 2), (3, 4, 5)]);
        let r = weighted_cluster(&g, &ClusterParams::new(1, 1));
        r.validate(&g).unwrap();
        // Node 5 is isolated -> singleton.
        assert_eq!(r.hops[5], 0);
    }

    #[test]
    fn empty_graph() {
        let g = WeightedGraph::from_edges(0, &[]);
        let r = weighted_cluster(&g, &ClusterParams::new(1, 0));
        assert_eq!(r.num_clusters(), 0);
    }

    #[test]
    fn heavy_edges_steer_growth() {
        // Two communities joined by a heavy bridge: with 2 centers seeded
        // by batches, the heavy edge should rarely be crossed early —
        // weighted radii stay below the bridge weight for fine clusterings.
        let mut edges = Vec::new();
        for v in 1..20u32 {
            edges.push((v - 1, v, 1u64));
        }
        for v in 21..40u32 {
            edges.push((v - 1, v, 1u64));
        }
        edges.push((19, 20, 1000));
        let g = WeightedGraph::from_edges(40, &edges);
        let r = weighted_cluster(&g, &ClusterParams::new(4, 3));
        r.validate(&g).unwrap();
        assert!(r.max_weighted_radius() < 1000 + 40);
    }
}
