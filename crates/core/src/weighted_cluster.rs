//! Weighted **CLUSTER(τ)** — decomposition of weighted graphs
//! (arXiv:1506.03265, the authors' follow-up to §7 of the SPAA paper).
//!
//! Clusters grow at unit speed in *weighted* distance: a cluster activated
//! at time `T` owns the nodes `v` minimizing `T + wdist(center, v)`. A new
//! batch of centers is drawn — with CLUSTER's own probabilities — whenever
//! the number of uncovered nodes has halved since the previous batch, and
//! both the **weighted radius** (cost of the claim path) and the **hop
//! radius** (its edge count, the parallel-depth proxy) are tracked per
//! round.
//!
//! Two implementations share exact claim semantics and are byte-identical
//! on every input, at any pool size and bucket width:
//!
//! * [`weighted_cluster`] — the parallel pipeline on the bucketed
//!   [`WeightedFrontierEngine`](pardec_graph::wfrontier): delta-stepping
//!   buckets resolve claims in arrival-time windows, and batch activation
//!   points are found by walking each bucket's claims in the sequential
//!   settle order `(t, owner, wdist, hops, node)`, rolling back whatever a
//!   new batch may steal;
//! * [`naive::weighted_cluster`] — the sequential event-driven Dijkstra
//!   (one binary heap keyed by the same settle order), retained as the
//!   byte-for-byte oracle.

use pardec_graph::wfrontier::{self, unpack_claim, WeightedFrontierEngine};
use pardec_graph::{quotient, CombineStats, NodeId, WeightedGraph, INVALID_NODE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cluster::{log2n, ClusterParams};

/// A clustering of a weighted graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedClustering {
    /// `assignment[v]` = cluster id.
    pub assignment: Vec<NodeId>,
    /// `centers[c]` = center node of cluster `c`.
    pub centers: Vec<NodeId>,
    /// Weighted distance from each node to its center along the claim tree.
    pub weighted_dist: Vec<u64>,
    /// Hop count of each node's claim path.
    pub hops: Vec<u32>,
    /// Per-cluster maximum weighted distance.
    pub weighted_radii: Vec<u64>,
    /// Per-cluster maximum hop count — the parallel-depth proxy.
    pub hop_radii: Vec<u32>,
}

impl WeightedClustering {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.centers.len()
    }

    /// Maximum weighted radius over clusters.
    pub fn max_weighted_radius(&self) -> u64 {
        self.weighted_radii.iter().copied().max().unwrap_or(0)
    }

    /// Maximum hop radius over clusters.
    pub fn max_hop_radius(&self) -> u32 {
        self.hop_radii.iter().copied().max().unwrap_or(0)
    }

    /// Weighted quotient graph of this clustering over `g`: one node per
    /// cluster, edge weight = shortest connecting path between adjacent
    /// centers through one cut edge. Runs on the u128 min-combine kernel.
    pub fn quotient(&self, g: &WeightedGraph) -> WeightedGraph {
        self.quotient_with_stats(g).0
    }

    /// [`quotient`](Self::quotient), also returning the kernel's ledger.
    pub fn quotient_with_stats(&self, g: &WeightedGraph) -> (WeightedGraph, CombineStats) {
        quotient::weighted_graph_quotient_with_stats(
            g,
            &self.assignment,
            &self.weighted_dist,
            self.num_clusters(),
        )
    }

    /// Structural validation: complete assignment, centers at distance 0,
    /// every non-center has an in-cluster neighbour whose (weighted, hop)
    /// labels are consistent with a claim-tree edge.
    pub fn validate(&self, g: &WeightedGraph) -> Result<(), String> {
        let n = g.num_nodes();
        if self.assignment.len() != n {
            return Err("assignment size mismatch".into());
        }
        for (c, &ctr) in self.centers.iter().enumerate() {
            if self.assignment[ctr as usize] as usize != c {
                return Err(format!("center {ctr} not in cluster {c}"));
            }
            if self.weighted_dist[ctr as usize] != 0 || self.hops[ctr as usize] != 0 {
                return Err(format!("center {ctr} has nonzero labels"));
            }
        }
        for v in 0..n as NodeId {
            let vi = v as usize;
            let c = self.assignment[vi];
            if c == INVALID_NODE || c as usize >= self.centers.len() {
                return Err(format!("node {v} unassigned"));
            }
            if self.hops[vi] == 0 {
                if self.centers[c as usize] != v {
                    return Err(format!("node {v} at hop 0 is not a center"));
                }
                continue;
            }
            let ok = g.neighbors(v).any(|(u, w)| {
                self.assignment[u as usize] == c
                    && self.hops[u as usize] == self.hops[vi] - 1
                    && self.weighted_dist[u as usize] + w == self.weighted_dist[vi]
            });
            if !ok {
                return Err(format!("node {v} lacks a claim-tree predecessor"));
            }
        }
        let mut wr = vec![0u64; self.centers.len()];
        let mut hr = vec![0u32; self.centers.len()];
        for v in 0..n {
            let c = self.assignment[v] as usize;
            wr[c] = wr[c].max(self.weighted_dist[v]);
            hr[c] = hr[c].max(self.hops[v]);
        }
        if wr != self.weighted_radii || hr != self.hop_radii {
            return Err("recorded radii do not match assignment".into());
        }
        Ok(())
    }
}

/// Per-batch record of a weighted CLUSTER run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedRoundTrace {
    /// Uncovered nodes when the batch was drawn.
    pub uncovered_before: usize,
    /// Centers activated by this batch.
    pub new_centers: usize,
    /// Activation time of the batch (weighted Dijkstra clock).
    pub activated_at: u64,
    /// Max weighted distance over nodes claimed before the batch.
    pub weighted_radius: u64,
    /// Max hop count over nodes claimed before the batch.
    pub hop_radius: u32,
}

/// Execution trace of a weighted CLUSTER run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WeightedClusterTrace {
    /// One record per center batch (activation round).
    pub rounds: Vec<WeightedRoundTrace>,
    /// Singleton clusters created by the final sweep.
    pub tail_singletons: usize,
    /// Bucket width the engine ran with (outputs never depend on it).
    pub delta: u64,
    /// Non-empty arrival-time buckets the engine resolved.
    pub buckets: u64,
}

/// Result of [`weighted_cluster_result`]: the decomposition plus its trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedClusterResult {
    pub clustering: WeightedClustering,
    pub trace: WeightedClusterTrace,
}

/// Weighted CLUSTER(τ) on the bucketed frontier engine. See the module docs
/// for the growth rule; batch activation follows Algorithm 1 (while at
/// least `8·τ·log n` nodes are uncovered, each uncovered node joins the
/// next batch independently with probability `4·τ·log n / uncovered`; the
/// batch activates when the previous batch's uncovered count has halved;
/// remaining nodes become singletons).
pub fn weighted_cluster(g: &WeightedGraph, params: &ClusterParams) -> WeightedClustering {
    weighted_cluster_result(g, params).clustering
}

/// [`weighted_cluster`], also returning the per-round trace.
pub fn weighted_cluster_result(g: &WeightedGraph, params: &ClusterParams) -> WeightedClusterResult {
    let n = g.num_nodes();
    let delta = wfrontier::resolve_delta(g, params.delta);
    let mut rng = StdRng::seed_from_u64(params.seed);
    let logn = log2n(n);
    let threshold = (params.stop_factor * params.tau as f64 * logn).max(1.0);
    let max_batches = (2.0 * logn) as usize + 32;

    let mut eng = WeightedFrontierEngine::new(g, delta);
    let mut trace = WeightedClusterTrace {
        delta,
        ..WeightedClusterTrace::default()
    };
    let mut covered = 0usize;
    let mut batches = 0usize;
    let mut batch_uncovered = n;

    // Draws one batch over the currently uncovered nodes (identical RNG
    // consumption to the sequential oracle), records its round trace, and
    // returns how many centers it activated.
    let activate = |eng: &mut WeightedFrontierEngine<'_>,
                    rng: &mut StdRng,
                    covered: &mut usize,
                    trace: &mut WeightedClusterTrace,
                    now: u64| {
        let uncovered = n - *covered;
        if uncovered == 0 {
            return;
        }
        let mut span = pardec_obs::span!(
            "wcluster.round",
            round = trace.rounds.len(),
            uncovered = uncovered,
        );
        let p = (params.batch_factor * params.tau as f64 * logn / uncovered as f64).clamp(0.0, 1.0);
        let mut new_centers = 0usize;
        let mut first_uncovered = None;
        for v in 0..n as NodeId {
            if eng.is_claimed(v) {
                continue;
            }
            if first_uncovered.is_none() {
                first_uncovered = Some(v);
            }
            if rng.gen::<f64>() < p {
                eng.add_source(v, now).expect("unclaimed node activates");
                *covered += 1;
                new_centers += 1;
            }
        }
        if new_centers == 0 {
            if let Some(v) = first_uncovered {
                // Progress guard, as in the unweighted algorithm.
                eng.add_source(v, now).expect("unclaimed node activates");
                *covered += 1;
                new_centers = 1;
            }
        }
        let (wr, hr) = claimed_radii(eng, n);
        span.field("new_centers", new_centers);
        trace.rounds.push(WeightedRoundTrace {
            uncovered_before: uncovered,
            new_centers,
            activated_at: now,
            weighted_radius: wr,
            hop_radius: hr,
        });
    };

    if (n as f64) >= threshold {
        activate(&mut eng, &mut rng, &mut covered, &mut trace, 0);
        batches = 1;
        batch_uncovered = n;
    }

    // Resolve arrival-time buckets; inside each, walk the claims in settle
    // order and fire batch activations at exactly the settles where the
    // uncovered set has halved — the positions the sequential oracle fires
    // at. A rollback discards the claims the new batch may steal before the
    // bucket's fixed point is recomputed.
    while eng.open_next_bucket().is_some() {
        let mut walk = eng.open_bucket_claims();
        let mut i = 0usize;
        while i < walk.len() {
            let (key, v) = walk[i];
            let (_, _, hops) = unpack_claim(key);
            if hops != 0 {
                covered += 1; // centers were counted at activation
            }
            let uncovered = n - covered;
            if (uncovered as f64) >= threshold
                && 2 * uncovered <= batch_uncovered
                && batches < max_batches
            {
                eng.rollback_open_bucket_after(key, v);
                let now = (key >> 64) as u64;
                activate(&mut eng, &mut rng, &mut covered, &mut trace, now);
                batches += 1;
                batch_uncovered = uncovered;
                eng.refine_open_bucket();
                walk = eng.open_bucket_claims();
                i = walk.partition_point(|&entry| entry <= (key, v));
                continue;
            }
            i += 1;
        }
        eng.seal_open_bucket();
    }

    trace.buckets = eng.stats().buckets;
    let parts = eng.into_parts();

    // Tail singletons (disconnected remainders or below-threshold
    // leftovers), then the per-cluster radii.
    let mut assignment = parts.owner;
    let mut weighted_dist = parts.weighted_dist;
    let mut hops = parts.hops;
    let mut centers = parts.sources;
    for v in 0..n as NodeId {
        let vi = v as usize;
        if assignment[vi] == INVALID_NODE {
            assignment[vi] = centers.len() as NodeId;
            weighted_dist[vi] = 0;
            hops[vi] = 0;
            centers.push(v);
            trace.tail_singletons += 1;
        }
    }
    let mut weighted_radii = vec![0u64; centers.len()];
    let mut hop_radii = vec![0u32; centers.len()];
    for v in 0..n {
        let c = assignment[v] as usize;
        weighted_radii[c] = weighted_radii[c].max(weighted_dist[v]);
        hop_radii[c] = hop_radii[c].max(hops[v]);
    }
    WeightedClusterResult {
        clustering: WeightedClustering {
            assignment,
            centers,
            weighted_dist,
            hops,
            weighted_radii,
            hop_radii,
        },
        trace,
    }
}

/// Max weighted distance and hop count over currently claimed nodes — the
/// per-round radius snapshot.
fn claimed_radii(eng: &WeightedFrontierEngine<'_>, n: usize) -> (u64, u32) {
    let mut wr = 0u64;
    let mut hr = 0u32;
    for v in 0..n as NodeId {
        if let Some((_, wd, h)) = eng.claim_parts(v) {
            wr = wr.max(wd);
            hr = hr.max(h);
        }
    }
    (wr, hr)
}

/// Sequential event-driven reference implementation, byte-identical to the
/// engine-backed [`weighted_cluster`](super::weighted_cluster) on every
/// input.
pub mod naive {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Event settle order: `(arrival_time, owner, weighted_dist, hops,
    /// node)` — arrival first, then smallest owner id, fewest hops, and
    /// smallest node id. The engine's packed-claim minimum realizes exactly
    /// this order (weighted_dist is implied by `(arrival, owner)`).
    type Event = (u64, NodeId, u64, u32, NodeId);

    /// Weighted CLUSTER(τ) as one sequential multi-source Dijkstra over a
    /// binary heap — the oracle the bucketed engine is tested against.
    pub fn weighted_cluster(g: &WeightedGraph, params: &ClusterParams) -> WeightedClustering {
        let n = g.num_nodes();
        let mut rng = StdRng::seed_from_u64(params.seed);
        let logn = log2n(n);
        let threshold = (params.stop_factor * params.tau as f64 * logn).max(1.0);
        let max_batches = (2.0 * logn) as usize + 32;

        let mut assignment = vec![INVALID_NODE; n];
        let mut weighted_dist = vec![0u64; n];
        let mut hops = vec![0u32; n];
        // A claim relaxes its neighbours (and runs the batch check) exactly
        // once, at its canonical pop; duplicates and stale events skip.
        let mut done = vec![false; n];
        let mut centers: Vec<NodeId> = Vec::new();
        let mut covered = 0usize;
        let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut batches = 0usize;
        let mut batch_uncovered = n;

        let activate = |rng: &mut StdRng,
                        assignment: &mut [NodeId],
                        centers: &mut Vec<NodeId>,
                        heap: &mut BinaryHeap<Reverse<Event>>,
                        covered: &mut usize,
                        now: u64| {
            let uncovered = n - *covered;
            if uncovered == 0 {
                return;
            }
            let p =
                (params.batch_factor * params.tau as f64 * logn / uncovered as f64).clamp(0.0, 1.0);
            let mut picked_any = false;
            let mut first_uncovered = None;
            for v in 0..n as NodeId {
                if assignment[v as usize] != INVALID_NODE {
                    continue;
                }
                if first_uncovered.is_none() {
                    first_uncovered = Some(v);
                }
                if rng.gen::<f64>() < p {
                    let id = centers.len() as NodeId;
                    assignment[v as usize] = id;
                    centers.push(v);
                    *covered += 1;
                    heap.push(Reverse((now, id, 0, 0, v)));
                    picked_any = true;
                }
            }
            if !picked_any {
                if let Some(v) = first_uncovered {
                    // Progress guard, as in the unweighted algorithm.
                    let id = centers.len() as NodeId;
                    assignment[v as usize] = id;
                    centers.push(v);
                    *covered += 1;
                    heap.push(Reverse((now, id, 0, 0, v)));
                }
            }
        };

        if (n as f64) >= threshold {
            activate(
                &mut rng,
                &mut assignment,
                &mut centers,
                &mut heap,
                &mut covered,
                0,
            );
            batches = 1;
            batch_uncovered = n;
        }

        while let Some(Reverse((t, owner, wd, h, v))) = heap.pop() {
            let vi = v as usize;
            if assignment[vi] != INVALID_NODE {
                let canonical = !done[vi]
                    && assignment[vi] == owner
                    && weighted_dist[vi] == wd
                    && hops[vi] == h;
                if !canonical {
                    continue; // stale event for an already-claimed node
                }
            } else {
                assignment[vi] = owner;
                weighted_dist[vi] = wd;
                hops[vi] = h;
                covered += 1;
            }
            done[vi] = true;
            for (u, w) in g.neighbors(v) {
                if assignment[u as usize] == INVALID_NODE {
                    heap.push(Reverse((t + w, owner, wd + w, h + 1, u)));
                }
            }
            // Batch policy: activate once the uncovered set has halved,
            // while above the loop threshold.
            let uncovered = n - covered;
            if (uncovered as f64) >= threshold
                && 2 * uncovered <= batch_uncovered
                && batches < max_batches
            {
                activate(
                    &mut rng,
                    &mut assignment,
                    &mut centers,
                    &mut heap,
                    &mut covered,
                    t,
                );
                batches += 1;
                batch_uncovered = uncovered;
            }
        }

        // Tail singletons.
        for v in 0..n as NodeId {
            if assignment[v as usize] == INVALID_NODE {
                let id = centers.len() as NodeId;
                assignment[v as usize] = id;
                centers.push(v);
            }
        }

        let mut weighted_radii = vec![0u64; centers.len()];
        let mut hop_radii = vec![0u32; centers.len()];
        for v in 0..n {
            let c = assignment[v] as usize;
            weighted_radii[c] = weighted_radii[c].max(weighted_dist[v]);
            hop_radii[c] = hop_radii[c].max(hops[v]);
        }
        WeightedClustering {
            assignment,
            centers,
            weighted_dist,
            hops,
            weighted_radii,
            hop_radii,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A weighted grid: rows × cols, horizontal weight 1, vertical weight 3.
    fn weighted_grid(rows: usize, cols: usize) -> WeightedGraph {
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let u = (r * cols + c) as NodeId;
                if c + 1 < cols {
                    edges.push((u, u + 1, 1u64));
                }
                if r + 1 < rows {
                    edges.push((u, u + cols as NodeId, 3u64));
                }
            }
        }
        WeightedGraph::from_edges(rows * cols, &edges)
    }

    #[test]
    fn partitions_weighted_grid() {
        let g = weighted_grid(20, 20);
        let r = weighted_cluster(&g, &ClusterParams::new(2, 3));
        r.validate(&g).unwrap();
        assert!(r.num_clusters() >= 2);
        assert!(r.max_weighted_radius() > 0);
    }

    #[test]
    fn hop_radius_bounded_by_weighted_radius() {
        // All weights ≥ 1, so hops ≤ weighted distance pointwise.
        let g = weighted_grid(15, 15);
        let r = weighted_cluster(&g, &ClusterParams::new(2, 7));
        for v in 0..g.num_nodes() {
            assert!(r.hops[v] as u64 <= r.weighted_dist[v] + 1);
        }
        assert!(r.max_hop_radius() as u64 <= r.max_weighted_radius() + 1);
    }

    #[test]
    fn tau_controls_granularity() {
        let g = weighted_grid(25, 25);
        let coarse = weighted_cluster(&g, &ClusterParams::new(1, 5));
        let fine = weighted_cluster(&g, &ClusterParams::new(16, 5));
        assert!(fine.num_clusters() > coarse.num_clusters());
        assert!(fine.max_weighted_radius() <= coarse.max_weighted_radius());
    }

    #[test]
    fn unit_weights_match_hop_metric() {
        // With all weights 1, weighted distance = hops for every node.
        let mut edges = Vec::new();
        for v in 1..40u32 {
            edges.push((v - 1, v, 1u64));
        }
        let g = WeightedGraph::from_edges(40, &edges);
        let r = weighted_cluster(&g, &ClusterParams::new(1, 2));
        r.validate(&g).unwrap();
        for v in 0..40 {
            assert_eq!(r.weighted_dist[v], r.hops[v] as u64);
        }
    }

    #[test]
    fn deterministic() {
        let g = weighted_grid(12, 12);
        assert_eq!(
            weighted_cluster(&g, &ClusterParams::new(2, 9)),
            weighted_cluster(&g, &ClusterParams::new(2, 9))
        );
    }

    #[test]
    fn matches_naive_oracle_across_deltas() {
        let g = weighted_grid(18, 14);
        for seed in [1u64, 7, 42] {
            for tau in [1usize, 4] {
                let oracle = naive::weighted_cluster(&g, &ClusterParams::new(tau, seed));
                for delta in [1u64, 2, 5, 1000] {
                    let params = ClusterParams::new(tau, seed).with_delta(delta);
                    let engine = weighted_cluster(&g, &params);
                    assert_eq!(
                        engine, oracle,
                        "engine diverged from oracle at tau={tau} seed={seed} delta={delta}"
                    );
                }
            }
        }
    }

    #[test]
    fn trace_records_rounds_and_buckets() {
        let g = weighted_grid(20, 20);
        let r = weighted_cluster_result(&g, &ClusterParams::new(2, 3).with_delta(2));
        r.clustering.validate(&g).unwrap();
        assert_eq!(r.trace.delta, 2);
        assert!(r.trace.buckets > 0);
        assert!(!r.trace.rounds.is_empty());
        assert_eq!(r.trace.rounds[0].uncovered_before, g.num_nodes());
        let activated: usize = r.trace.rounds.iter().map(|t| t.new_centers).sum();
        assert_eq!(
            activated + r.trace.tail_singletons,
            r.clustering.num_clusters()
        );
        // Radii snapshots grow monotonically with the Dijkstra clock.
        for w in r.trace.rounds.windows(2) {
            assert!(w[0].activated_at <= w[1].activated_at);
        }
    }

    #[test]
    fn disconnected_weighted_graph() {
        let g = WeightedGraph::from_edges(6, &[(0, 1, 2), (1, 2, 2), (3, 4, 5)]);
        let r = weighted_cluster(&g, &ClusterParams::new(1, 1));
        r.validate(&g).unwrap();
        // Node 5 is isolated -> singleton.
        assert_eq!(r.hops[5], 0);
        assert_eq!(r, naive::weighted_cluster(&g, &ClusterParams::new(1, 1)));
    }

    #[test]
    fn empty_graph() {
        let g = WeightedGraph::from_edges(0, &[]);
        let r = weighted_cluster(&g, &ClusterParams::new(1, 0));
        assert_eq!(r.num_clusters(), 0);
        assert_eq!(r, naive::weighted_cluster(&g, &ClusterParams::new(1, 0)));
    }

    #[test]
    fn heavy_edges_steer_growth() {
        // Two communities joined by a heavy bridge: with 2 centers seeded
        // by batches, the heavy edge should rarely be crossed early —
        // weighted radii stay below the bridge weight for fine clusterings.
        let mut edges = Vec::new();
        for v in 1..20u32 {
            edges.push((v - 1, v, 1u64));
        }
        for v in 21..40u32 {
            edges.push((v - 1, v, 1u64));
        }
        edges.push((19, 20, 1000));
        let g = WeightedGraph::from_edges(40, &edges);
        let r = weighted_cluster(&g, &ClusterParams::new(4, 3));
        r.validate(&g).unwrap();
        assert!(r.max_weighted_radius() < 1000 + 40);
    }

    #[test]
    fn quotient_helper_contracts_clustering() {
        let g = weighted_grid(10, 10);
        let r = weighted_cluster(&g, &ClusterParams::new(2, 5));
        let (q, stats) = r.quotient_with_stats(&g);
        assert_eq!(q.num_nodes(), r.num_clusters());
        assert!(q.check_invariants().is_ok());
        assert!(stats.input_pairs >= stats.output_pairs);
    }
}
