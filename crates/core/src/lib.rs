//! # pardec-core — parallel graph decomposition, k-center, and diameter
//! approximation
//!
//! Rust implementation of the algorithms of *“Space and Time Efficient
//! Parallel Graph Decomposition, Clustering, and Diameter Approximation”*
//! (Ceccarello, Pietracaprina, Pucci, Upfal — SPAA 2015):
//!
//! * [`cluster()`] — **CLUSTER(τ)** (Algorithm 1): disjoint clusters grown
//!   from batches of centers activated each time the uncovered set halves;
//!   `O(τ·log² n)` clusters whp with max radius within `O(log n)` of the
//!   best τ-cluster decomposition (Theorem 1, Lemma 1).
//! * [`cluster2()`] — **CLUSTER2(τ)** (Algorithm 2): the refinement with
//!   fixed per-batch growth budgets that bounds how many clusters any
//!   shortest path can meet (Lemma 2, Theorem 3).
//! * [`kcenter()`] — the `O(log³ n)`-approximation to graph k-center built
//!   on CLUSTER (Theorem 2, §3.1–3.2), plus the classic Gonzalez
//!   2-approximation as the sequential baseline.
//! * [`diameter`](mod@diameter) — the §4 diameter approximation: cluster,
//!   build the quotient graph, and sandwich `Δ_C ≤ Δ ≤ Δ″ ≤ Δ′ =
//!   O(Δ·log³ n)` (Corollary 1), with the weighted-quotient tightening.
//! * [`oracle`] — the §4 linear-space approximate distance oracle.
//! * Baselines of the §6 evaluation: [`mpx()`] (Miller–Peng–Xu random-shift
//!   decomposition), [`bfs_baseline`] (BFS 2-approximation of the diameter)
//!   and [`hadi()`] (ANF/HADI sketch-based neighbourhood function).
//! * [`mr_impl`] — the same algorithms driven through the `pardec-mr`
//!   MR(M_G, M_L) emulation, with round and communication accounting (§5).
//! * [`analysis`] — diagnostics: ball-growth (doubling-dimension proxy)
//!   estimation and radius-vs-τ sweeps.

pub mod analysis;
pub mod bfs_baseline;
pub mod cluster;
pub mod cluster2;
pub mod clustering;
pub mod diameter;
pub mod faultnet;
pub mod growth;
pub mod hadi;
pub mod kcenter;
pub mod mpx;
pub mod mr_impl;
pub mod oracle;
pub mod session;
pub mod testing;
pub mod weighted_cluster;
pub mod weighted_diameter;
pub mod wire;

pub use cluster::{cluster, ClusterParams, ClusterResult, ClusterTrace, IterationTrace};
pub use cluster2::{cluster2, Cluster2Result};
pub use clustering::Clustering;
pub use diameter::{
    approximate_diameter, approximate_diameter_of_clustering, DiameterApprox, DiameterParams,
};
pub use hadi::{hadi, HadiParams, HadiResult};
pub use kcenter::{gonzalez, kcenter, KCenterResult};
pub use mpx::{mpx, mpx_with_frontier, MpxResult};
pub use oracle::DistanceOracle;
pub use pardec_graph::frontier::FrontierStrategy;
pub use session::{QueryLedger, Session, SessionAlgo, SessionError, SessionParams};
pub use weighted_cluster::{
    weighted_cluster, weighted_cluster_result, WeightedClusterResult, WeightedClusterTrace,
    WeightedClustering, WeightedRoundTrace,
};
pub use weighted_diameter::{weighted_diameter, WeightedDiameterApprox};
