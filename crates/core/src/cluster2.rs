//! Algorithm 2 — **CLUSTER2(τ)**: the refined decomposition behind the
//! diameter approximation (§4).
//!
//! ```text
//! run CLUSTER(τ); let R_ALG be the max radius of its clusters
//! C ← ∅; V′ ← ∅
//! for i ← 1 to log n do
//!     select each node of V − V′ as a new center independently
//!         with probability 2^i / n
//!     add the new singleton clusters to C
//!     grow all clusters of C disjointly for 2·R_ALG steps
//!     V′ ← covered nodes
//! return C
//! ```
//!
//! Lemma 2: `O(τ·log⁴ n)` clusters whp with radius `R_ALG2 ≤ 2·R_ALG·log n`.
//! The *fixed* per-batch growth budget — rather than CLUSTER's coverage-
//! driven one — is what Theorem 3 needs: clusters activated late cannot
//! travel far, so any shortest path meets few clusters.

use crate::cluster::{cluster, ClusterParams, ClusterTrace, IterationTrace};
use crate::clustering::Clustering;
use crate::growth::GrowthEngine;
use pardec_graph::{NeighborAccess, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of [`cluster2`]: the decomposition, the probe's `R_ALG`, and both
/// execution traces.
#[derive(Clone, Debug, PartialEq)]
pub struct Cluster2Result {
    pub clustering: Clustering,
    /// Maximum radius of the probe CLUSTER(τ) run (the growth budget input).
    pub r_alg: u32,
    /// Trace of the probe run.
    pub probe_trace: ClusterTrace,
    /// Trace of the main (Algorithm 2) loop.
    pub trace: ClusterTrace,
}

/// Runs **CLUSTER2(τ)** (Algorithm 2) on `g`.
///
/// The probe CLUSTER(τ) uses `seed`, the main loop `seed + 1`, so the two
/// phases draw independent randomness while staying reproducible.
pub fn cluster2<G: NeighborAccess>(g: &G, params: &ClusterParams) -> Cluster2Result {
    let n = g.num_nodes();
    let probe = cluster(g, params);
    // R_ALG = 0 happens when the probe degenerates to singletons (tiny or
    // pathological graphs); a growth budget of 0 would make the main loop
    // produce all-singletons too, so clamp to 1 step.
    let r_alg = probe.clustering.max_radius();
    let budget = (2 * r_alg).max(1) as usize;

    let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(1));
    let mut eng = GrowthEngine::with_strategy(g, params.frontier);
    let mut trace = ClusterTrace::default();
    let iterations = crate::cluster::log2n(n).ceil() as u32;

    for i in 1..=iterations {
        if eng.uncovered() == 0 {
            break;
        }
        let mut round_span = pardec_obs::span!(
            "cluster2.round",
            round = i,
            uncovered = eng.uncovered(),
            budget = budget,
        );
        let uncovered_before = eng.uncovered();
        let p = (2f64.powi(i as i32) / n.max(1) as f64).clamp(0.0, 1.0);
        let batch: Vec<NodeId> = eng
            .uncovered_nodes()
            .filter(|_| rng.gen::<f64>() < p)
            .collect();
        let mut new_centers = 0;
        for v in batch {
            if eng.add_center(v) {
                new_centers += 1;
            }
        }
        let mut covered_this = new_centers;
        let mut growth_steps = 0;
        for _ in 0..budget {
            // Grow the full budget even when some steps cover nothing —
            // Theorem 3 charges every active cluster 2·R_ALG steps per batch.
            if eng.frontier_len() == 0 {
                break;
            }
            covered_this += eng.step();
            growth_steps += 1;
        }
        round_span.field("new_centers", new_centers);
        round_span.field("growth_steps", growth_steps);
        round_span.field("covered", covered_this);
        trace.iterations.push(IterationTrace {
            uncovered_before,
            new_centers,
            growth_steps,
            covered: covered_this,
        });
    }

    trace.tail_singletons = eng.uncovered();
    let clustering = eng.finish();
    Cluster2Result {
        clustering,
        r_alg,
        probe_trace: probe.trace,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::log2n;
    use crate::testing::{assert_cluster2_strategies_agree, check_cluster2 as check};
    use pardec_graph::generators;

    #[test]
    fn covers_everything() {
        let g = generators::mesh(25, 25);
        let r = check(&g, 4, 2);
        assert_eq!(
            r.clustering.cluster_sizes().iter().sum::<usize>(),
            g.num_nodes()
        );
    }

    #[test]
    fn radius_bound_of_lemma2() {
        // R_ALG2 ≤ 2 · R_ALG · log n.
        let g = generators::road_network(35, 35, 0.4, 4);
        for seed in 0..4 {
            let r = check(&g, 4, seed);
            let bound = (2.0 * r.r_alg.max(1) as f64 * log2n(g.num_nodes())).ceil() as u32;
            assert!(
                r.clustering.max_radius() <= bound,
                "seed {seed}: R_ALG2 {} > bound {bound} (R_ALG {})",
                r.clustering.max_radius(),
                r.r_alg
            );
        }
    }

    #[test]
    fn per_batch_budget_respected() {
        let g = generators::mesh(30, 30);
        let r = check(&g, 8, 5);
        let budget = (2 * r.r_alg).max(1) as usize;
        for it in &r.trace.iterations {
            assert!(
                it.growth_steps <= budget,
                "iteration exceeded budget: {} > {budget}",
                it.growth_steps
            );
        }
    }

    #[test]
    fn last_batch_selects_all_leftovers() {
        // With p = 2^⌈log n⌉ / n ≥ 1 in the final iteration, nothing can
        // remain uncovered before the tail sweep.
        let g = generators::road_network(20, 20, 0.2, 8);
        let r = check(&g, 2, 3);
        assert_eq!(r.trace.tail_singletons, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::preferential_attachment(500, 4, 7);
        let a = cluster2(&g, &ClusterParams::new(2, 9));
        let b = cluster2(&g, &ClusterParams::new(2, 9));
        assert_eq!(a.clustering, b.clustering);
        assert_eq!(a.r_alg, b.r_alg);
    }

    #[test]
    fn cluster_count_within_lemma2_bound() {
        // Lemma 2: O(τ·log⁴ n) clusters whp. (Note this is only an upper
        // bound — with a large probe radius the early batches may absorb
        // most of the graph, so CLUSTER2 can return far *fewer* clusters
        // than CLUSTER at the same τ.)
        let g = generators::mesh(40, 40);
        let l = log2n(g.num_nodes());
        for seed in [11u64, 12, 13] {
            let c2 = check(&g, 4, seed);
            let bound = (4.0 * 4.0 * l.powi(4)) as usize;
            assert!(
                c2.clustering.num_clusters() <= bound,
                "seed {seed}: {} clusters > Lemma 2 bound {bound}",
                c2.clustering.num_clusters()
            );
        }
        // `cluster` is still exercised for comparison in the probe.
        let c1 = cluster(&g, &ClusterParams::new(4, 11));
        assert!(c1.clustering.num_clusters() > 0);
    }

    #[test]
    fn frontier_strategies_produce_identical_decompositions() {
        assert_cluster2_strategies_agree(&generators::mesh(24, 24), 4, 6);
        assert_cluster2_strategies_agree(&generators::preferential_attachment(700, 4, 1), 2, 9);
    }

    #[test]
    fn tiny_graph() {
        let g = generators::path(4);
        let r = check(&g, 1, 0);
        assert_eq!(
            r.clustering.cluster_sizes().iter().sum::<usize>(),
            g.num_nodes()
        );
    }
}
