//! The `pardec serve` wire protocol and server loop.
//!
//! ## Frame layout
//!
//! Every message — request or response — is one **frame**:
//!
//! ```text
//! len u32 LE | body (len bytes)
//! ```
//!
//! `len` counts the body only and must not exceed [`MAX_FRAME`] (16 MiB);
//! oversized declarations are answered with [`ERR_FRAME_TOO_LARGE`] and the
//! connection is closed without reading the body.
//!
//! ## Requests
//!
//! The body starts with an opcode byte:
//!
//! | opcode | name | payload |
//! |--------|------|---------|
//! | `0x01` | `INFO` | — |
//! | `0x02` | `DIST` | `count u32, count × (u u32, v u32)` |
//! | `0x03` | `CLUSTER_OF` | `count u32, count × v u32` |
//! | `0x04` | `ECC` | `count u32, count × v u32` |
//! | `0x05` | `NEAREST` | `n_sources u32, n_probes u32, sources, probes` |
//! | `0x06` | `SHUTDOWN` | — |
//! | `0x07` | `STATS` | — |
//! | `0x08` | `RELOAD` | `path_len u32, path (UTF-8; empty = configured default)` |
//!
//! Batch counts are capped at [`MAX_BATCH`] per request **before** any
//! allocation happens; larger declarations are refused with
//! [`ERR_BATCH_TOO_LARGE`]. (The cap also keeps every success body under
//! [`MAX_FRAME`], so the response writer's size invariant is unreachable
//! from the network.)
//!
//! ## Responses
//!
//! ```text
//! status u8 | opcode u8 | batch u32 | waves u32 | wave_rounds u32 | strategy u8 | body
//! ```
//!
//! `status = 0` is success; the echoed opcode names the request answered.
//! The middle fields are the [`QueryLedger`]: how many queries the batch
//! held, how many frontier waves it launched (a batched `NEAREST` reports
//! **1** — the amortization the daemon exists for), how many wave rounds
//! those took, and the strategy byte (`0` top-down, `1` bottom-up, `2`
//! hybrid). Success bodies:
//!
//! | request | body |
//! |---------|------|
//! | `INFO` | `nodes u64, edges u64, clusters u64, max_radius u32, has_oracle u8, growth_steps u64` |
//! | `DIST` | `count × u64` (`u64::MAX` = unreachable) |
//! | `CLUSTER_OF` | `count × u32` |
//! | `ECC` | `count × u64` |
//! | `NEAREST` | `n_probes × (source u32, dist u32)` (`0xFFFFFFFF` = unreached) |
//! | `SHUTDOWN` | — |
//! | `STATS` | see below |
//! | `RELOAD` | `epoch u64` (the generation now serving) |
//!
//! `STATS` is answered by the **server loop** (not [`execute`] — the
//! counters live with the daemon, not the session) from its running
//! [`ServerStats`]. Body layout (all integers LE):
//!
//! ```text
//! uptime_us u64 | total_requests u64 | errors u64 | bytes_in u64 |
//! bytes_out u64 | epoch u64 | timeouts u64 | shed u64 |
//! panics_caught u64 | reloads_ok u64 | reloads_rolled_back u64 |
//! n_ops u8 | n_ops × op-entry
//! op-entry: opcode u8 | count u64 | hist_count u64 | hist_sum u64 |
//!           n_buckets u8 (= 65) | 65 × bucket u64
//! ```
//!
//! `epoch` is the snapshot generation (1 on boot, bumped by every
//! successful `RELOAD`); the five counters after it are the
//! fault-tolerance ledger: deadline/socket timeouts, requests shed by the
//! admission gate, panics caught and isolated, and reload outcomes.
//!
//! Op entries appear in ascending opcode order, only for opcodes seen at
//! least once (slot `0` aggregates frames whose opcode never decoded). The
//! per-op histogram is a [`pardec_obs`] log2 latency histogram of request
//! handling micros — p50/p90/p99 are integer bucket bounds, no floats on
//! the wire. `total_requests` counts requests answered **before** the
//! `STATS` request itself, so an idle daemon reports 0 on first query.
//!
//! Error responses carry the code in `status`, a zero ledger, and a UTF-8
//! message as the body:
//!
//! | code | meaning |
//! |------|---------|
//! | 1 | [`ERR_MALFORMED`] — body failed to decode |
//! | 2 | [`ERR_UNKNOWN_OPCODE`] |
//! | 3 | [`ERR_OUT_OF_RANGE`] — node id ≥ n |
//! | 4 | [`ERR_ORACLE_MISSING`] — `DIST`/`ECC` on an oracle-less session |
//! | 5 | [`ERR_FRAME_TOO_LARGE`] |
//! | 6 | [`ERR_INTERNAL`] |
//! | 7 | [`ERR_TIMEOUT`] — per-request deadline or socket timeout expired |
//! | 8 | [`ERR_OVERLOADED`] — shed by the admission gate; body = `retry_after_ms u32` + message |
//! | 9 | [`ERR_BATCH_TOO_LARGE`] — batch count above [`MAX_BATCH`] |
//! | 10 | [`ERR_RELOAD_FAILED`] — replacement snapshot refused; old epoch keeps serving |
//! | 11 | [`ERR_FORBIDDEN`] — `RELOAD` on a daemon started without `--allow-reload` |
//!
//! Responses are **deterministic**: the bytes answering a request depend
//! only on the session contents, never on the pool size or accept thread —
//! the property `bench_serve` asserts at 1 vs 4 threads.
//!
//! ## Server
//!
//! [`serve`] runs a thread-per-core accept loop: `threads` OS threads share
//! one non-cloned [`TcpListener`] (std listeners are `Sync`; `accept` is
//! kernel-serialized), each handling its accepted connection to completion
//! before accepting again. Query execution happens inside the shim rayon
//! pool passed at spawn time, so wave parallelism and connection
//! parallelism compose. `SHUTDOWN` (or [`ServerHandle::shutdown`]) flips a
//! flag and self-connects to unblock every acceptor.
//!
//! ## Fault tolerance
//!
//! [`serve_with`] takes a [`ServeConfig`] that arms the hardening layer:
//!
//! - **Deadlines** — per-connection socket read/write timeouts, an idle
//!   timeout that reaps connections parked between requests, and a
//!   per-request deadline budget measured from the first byte of the
//!   length prefix. A request whose budget expires is answered with
//!   [`ERR_TIMEOUT`]; a peer that stalls mid-frame gets the same code and
//!   the connection is closed (the stream is no longer in sync).
//! - **Admission gate** — a bounded count of concurrent requests and
//!   inflight request bytes, checked after the 4-byte length prefix and
//!   *before* the body is buffered. Shed requests are drained and answered
//!   with [`ERR_OVERLOADED`] carrying a `retry_after_ms` hint; the
//!   connection stays open.
//! - **Panic isolation** — request execution runs under `catch_unwind`; a
//!   panicking request is answered with [`ERR_INTERNAL`] and only its own
//!   connection is closed. The daemon keeps serving.
//! - **Hot reload** — `OP_RELOAD` (gated by [`ServeConfig::allow_reload`])
//!   loads a replacement PDEC2 snapshot through the validating
//!   (`--checked`) loader into a fresh [`Session`] and swaps it behind an
//!   `Arc`; in-flight requests finish on the epoch they started with, and
//!   a corrupt replacement rolls back to the serving snapshot with
//!   [`ERR_RELOAD_FAILED`] — never a crash, never a dropped connection.

use crate::session::{QueryLedger, Session, SessionError};
use bytes::{Buf, BufMut};
use pardec_graph::frontier::FrontierStrategy;
use pardec_graph::NodeId;
use pardec_obs::{AtomicLog2Histogram, Log2Histogram, BUCKETS};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Hard cap on a frame body (16 MiB) — a batch of ~1M distance pairs.
pub const MAX_FRAME: u32 = 16 << 20;

/// Hard cap on a single request's batch count (queries per frame). With
/// 8-byte answers this keeps every success body at ≤ 8 MiB + header, safely
/// under [`MAX_FRAME`] — the reason [`write_frame`]'s size assert is a
/// programmer invariant rather than a remotely reachable panic.
pub const MAX_BATCH: u32 = 1 << 20;

/// Cap on the `RELOAD` path payload.
pub const MAX_RELOAD_PATH: u32 = 4096;

/// Request opcodes.
pub const OP_INFO: u8 = 0x01;
pub const OP_DIST: u8 = 0x02;
pub const OP_CLUSTER_OF: u8 = 0x03;
pub const OP_ECC: u8 = 0x04;
pub const OP_NEAREST: u8 = 0x05;
pub const OP_SHUTDOWN: u8 = 0x06;
pub const OP_STATS: u8 = 0x07;
pub const OP_RELOAD: u8 = 0x08;

/// Test-only opcode: panics inside the request handler when
/// [`ServeConfig::debug_panic_op`] is set (the chaos suite's probe for
/// panic isolation); an unknown opcode otherwise.
pub const OP_DEBUG_PANIC: u8 = 0x6F;

/// Error codes carried in a response's `status` byte.
pub const ERR_MALFORMED: u8 = 1;
pub const ERR_UNKNOWN_OPCODE: u8 = 2;
pub const ERR_OUT_OF_RANGE: u8 = 3;
pub const ERR_ORACLE_MISSING: u8 = 4;
pub const ERR_FRAME_TOO_LARGE: u8 = 5;
pub const ERR_INTERNAL: u8 = 6;
pub const ERR_TIMEOUT: u8 = 7;
pub const ERR_OVERLOADED: u8 = 8;
pub const ERR_BATCH_TOO_LARGE: u8 = 9;
pub const ERR_RELOAD_FAILED: u8 = 10;
pub const ERR_FORBIDDEN: u8 = 11;

/// A decoded client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Session metadata.
    Info,
    /// Batched §4 distance upper bounds.
    Distance(Vec<(NodeId, NodeId)>),
    /// Batched cluster-membership lookups.
    ClusterOf(Vec<NodeId>),
    /// Batched eccentricity upper bounds.
    Eccentricity(Vec<NodeId>),
    /// Batched nearest-source queries (one frontier wave for the batch).
    Nearest {
        /// Wave sources, activated together.
        sources: Vec<NodeId>,
        /// Probe nodes; each answers with its claiming source + distance.
        probes: Vec<NodeId>,
    },
    /// Stop the daemon after acknowledging.
    Shutdown,
    /// Daemon-side request counters + latency histograms (answered by the
    /// server loop, not the session).
    Stats,
    /// Hot-swap the serving snapshot (answered by the server loop; admin
    /// gated). An empty path means "the daemon's configured default".
    Reload {
        /// Filesystem path of the replacement PDEC2 snapshot.
        path: String,
    },
}

impl Request {
    /// The opcode this request travels under.
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Info => OP_INFO,
            Request::Distance(_) => OP_DIST,
            Request::ClusterOf(_) => OP_CLUSTER_OF,
            Request::Eccentricity(_) => OP_ECC,
            Request::Nearest { .. } => OP_NEAREST,
            Request::Shutdown => OP_SHUTDOWN,
            Request::Stats => OP_STATS,
            Request::Reload { .. } => OP_RELOAD,
        }
    }
}

/// A response, decomposed (what [`decode_response`] returns).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// 0 = success, else one of the `ERR_*` codes.
    pub status: u8,
    /// Echo of the request opcode (0 when the opcode never decoded).
    pub opcode: u8,
    /// Batch size of the answered request.
    pub batch: u32,
    /// Frontier waves the batch launched.
    pub waves: u32,
    /// Total wave rounds.
    pub wave_rounds: u32,
    /// Strategy byte (see [`strategy_to_byte`]).
    pub strategy: u8,
    /// Result payload (or UTF-8 error message).
    pub body: Vec<u8>,
}

impl Response {
    /// The error message of a failed response, if printable.
    pub fn error_message(&self) -> Option<String> {
        (self.status != 0).then(|| String::from_utf8_lossy(&self.body).into_owned())
    }
}

/// Stable byte encoding of a frontier strategy.
pub fn strategy_to_byte(s: FrontierStrategy) -> u8 {
    match s {
        FrontierStrategy::TopDown => 0,
        FrontierStrategy::BottomUp => 1,
        FrontierStrategy::Hybrid => 2,
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    assert!(body.len() <= MAX_FRAME as usize, "frame body too large");
    let mut buf = Vec::with_capacity(4 + body.len());
    buf.put_u32_le(body.len() as u32);
    buf.extend_from_slice(body);
    w.write_all(&buf)
}

/// Reads one frame body. `Ok(None)` on clean EOF before the length prefix;
/// an error mid-frame is a broken peer.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("declared frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

// ---------------------------------------------------------------------
// Request codec
// ---------------------------------------------------------------------

/// Encodes a request into a frame body (no length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.put_u8(req.opcode());
    match req {
        Request::Info | Request::Shutdown | Request::Stats => {}
        Request::Distance(pairs) => {
            buf.put_u32_le(pairs.len() as u32);
            for &(u, v) in pairs {
                buf.put_u32_le(u);
                buf.put_u32_le(v);
            }
        }
        Request::ClusterOf(nodes) | Request::Eccentricity(nodes) => {
            buf.put_u32_le(nodes.len() as u32);
            for &v in nodes {
                buf.put_u32_le(v);
            }
        }
        Request::Nearest { sources, probes } => {
            buf.put_u32_le(sources.len() as u32);
            buf.put_u32_le(probes.len() as u32);
            for &s in sources {
                buf.put_u32_le(s);
            }
            for &p in probes {
                buf.put_u32_le(p);
            }
        }
        Request::Reload { path } => {
            buf.put_u32_le(path.len() as u32);
            buf.extend_from_slice(path.as_bytes());
        }
    }
    buf
}

/// Decode failure: the error code + message the server answers with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// One of the `ERR_*` codes.
    pub code: u8,
    /// Human-readable detail (becomes the response body).
    pub message: String,
    /// Opcode to echo (0 if it never decoded).
    pub opcode: u8,
}

fn malformed(opcode: u8, msg: impl Into<String>) -> WireError {
    WireError {
        code: ERR_MALFORMED,
        message: msg.into(),
        opcode,
    }
}

fn expect_len(buf: &[u8], want: usize, what: &str, opcode: u8) -> Result<(), WireError> {
    if buf.remaining() == want {
        Ok(())
    } else {
        Err(malformed(opcode, format!("{what}: length mismatch")))
    }
}

/// Reads `count` node ids (the caller has already validated sizing).
fn take_nodes(buf: &mut &[u8], count: usize) -> Vec<NodeId> {
    (0..count).map(|_| buf.get_u32_le()).collect()
}

fn batch_too_large(opcode: u8, count: usize, cap: u32) -> WireError {
    WireError {
        code: ERR_BATCH_TOO_LARGE,
        message: format!("batch of {count} exceeds the {cap}-query cap"),
        opcode,
    }
}

fn check_batch(opcode: u8, count: usize, cap: u32) -> Result<(), WireError> {
    if count > cap as usize {
        Err(batch_too_large(opcode, count, cap))
    } else {
        Ok(())
    }
}

/// Decodes a request frame body with the default [`MAX_BATCH`] cap.
pub fn decode_request(body: &[u8]) -> Result<Request, WireError> {
    decode_request_limited(body, MAX_BATCH)
}

/// Decodes a request frame body, refusing batches above `max_batch`
/// **before** allocating for them. Declared counts are validated against
/// both the cap and the actual payload length, so a hostile 4-byte frame
/// claiming a billion queries costs nothing.
pub fn decode_request_limited(body: &[u8], max_batch: u32) -> Result<Request, WireError> {
    let mut buf = body;
    if buf.is_empty() {
        return Err(malformed(0, "empty request"));
    }
    let opcode = buf.get_u8();
    match opcode {
        OP_INFO => {
            expect_len(buf, 0, "INFO", opcode)?;
            Ok(Request::Info)
        }
        OP_SHUTDOWN => {
            expect_len(buf, 0, "SHUTDOWN", opcode)?;
            Ok(Request::Shutdown)
        }
        OP_STATS => {
            expect_len(buf, 0, "STATS", opcode)?;
            Ok(Request::Stats)
        }
        OP_DIST => {
            if buf.remaining() < 4 {
                return Err(malformed(opcode, "DIST: missing count"));
            }
            let count = buf.get_u32_le() as usize;
            check_batch(opcode, count, max_batch)?;
            expect_len(buf, count * 8, "DIST", opcode)?;
            let pairs = (0..count)
                .map(|_| (buf.get_u32_le(), buf.get_u32_le()))
                .collect();
            Ok(Request::Distance(pairs))
        }
        OP_CLUSTER_OF | OP_ECC => {
            if buf.remaining() < 4 {
                return Err(malformed(opcode, "missing count"));
            }
            let count = buf.get_u32_le() as usize;
            check_batch(opcode, count, max_batch)?;
            expect_len(buf, count * 4, "node batch", opcode)?;
            let nodes = take_nodes(&mut buf, count);
            Ok(if opcode == OP_CLUSTER_OF {
                Request::ClusterOf(nodes)
            } else {
                Request::Eccentricity(nodes)
            })
        }
        OP_NEAREST => {
            if buf.remaining() < 8 {
                return Err(malformed(opcode, "NEAREST: missing counts"));
            }
            let n_sources = buf.get_u32_le() as usize;
            let n_probes = buf.get_u32_le() as usize;
            check_batch(opcode, n_sources, max_batch)?;
            check_batch(opcode, n_probes, max_batch)?;
            let want = n_sources
                .checked_add(n_probes)
                .and_then(|t| t.checked_mul(4))
                .ok_or_else(|| malformed(opcode, "NEAREST: counts overflow"))?;
            expect_len(buf, want, "NEAREST", opcode)?;
            let sources = take_nodes(&mut buf, n_sources);
            let probes = take_nodes(&mut buf, n_probes);
            Ok(Request::Nearest { sources, probes })
        }
        OP_RELOAD => {
            if buf.remaining() < 4 {
                return Err(malformed(opcode, "RELOAD: missing path length"));
            }
            let path_len = buf.get_u32_le();
            if path_len > MAX_RELOAD_PATH {
                return Err(malformed(opcode, "RELOAD: path too long"));
            }
            expect_len(buf, path_len as usize, "RELOAD", opcode)?;
            let path = std::str::from_utf8(buf)
                .map_err(|_| malformed(opcode, "RELOAD: path is not UTF-8"))?
                .to_owned();
            Ok(Request::Reload { path })
        }
        other => Err(WireError {
            code: ERR_UNKNOWN_OPCODE,
            message: format!("unknown opcode {other:#04x}"),
            opcode: other,
        }),
    }
}

// ---------------------------------------------------------------------
// Response codec
// ---------------------------------------------------------------------

fn response_frame(status: u8, opcode: u8, ledger: Option<QueryLedger>, body: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(15 + body.len());
    buf.put_u8(status);
    buf.put_u8(opcode);
    match ledger {
        Some(l) => {
            buf.put_u32_le(l.batch);
            buf.put_u32_le(l.waves);
            buf.put_u32_le(l.wave_rounds);
            buf.put_u8(strategy_to_byte(l.strategy));
        }
        None => {
            buf.put_u32_le(0);
            buf.put_u32_le(0);
            buf.put_u32_le(0);
            buf.put_u8(0);
        }
    }
    buf.extend_from_slice(body);
    buf
}

/// Decodes a response frame body (client side).
pub fn decode_response(body: &[u8]) -> io::Result<Response> {
    let mut buf = body;
    if buf.remaining() < 15 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "response shorter than its fixed header",
        ));
    }
    Ok(Response {
        status: buf.get_u8(),
        opcode: buf.get_u8(),
        batch: buf.get_u32_le(),
        waves: buf.get_u32_le(),
        wave_rounds: buf.get_u32_le(),
        strategy: buf.get_u8(),
        body: buf.to_vec(),
    })
}

fn session_error_frame(opcode: u8, e: &SessionError) -> Vec<u8> {
    let code = match e {
        SessionError::NodeOutOfRange(_) => ERR_OUT_OF_RANGE,
        SessionError::OracleMissing => ERR_ORACLE_MISSING,
    };
    response_frame(code, opcode, None, e.to_string().as_bytes())
}

/// Executes one decoded request against a session, producing the response
/// frame body. Pure with respect to the session — this is the function the
/// golden-bytes tests pin down.
pub fn execute(session: &Session, req: &Request) -> Vec<u8> {
    let opcode = req.opcode();
    match req {
        Request::Info => {
            let mut body = Vec::with_capacity(8 * 4 + 5);
            body.put_u64_le(session.graph().num_nodes() as u64);
            body.put_u64_le(session.graph().num_edges() as u64);
            body.put_u64_le(session.clustering().num_clusters() as u64);
            body.put_u32_le(session.clustering().max_radius());
            body.put_u8(session.oracle().is_some() as u8);
            body.put_u64_le(session.growth_steps() as u64);
            let ledger = QueryLedger {
                batch: 0,
                waves: 0,
                wave_rounds: 0,
                strategy: session.frontier(),
            };
            response_frame(0, opcode, Some(ledger), &body)
        }
        Request::Shutdown => response_frame(
            0,
            opcode,
            Some(QueryLedger {
                batch: 0,
                waves: 0,
                wave_rounds: 0,
                strategy: session.frontier(),
            }),
            &[],
        ),
        // The counters live with the running daemon, not the session;
        // `execute` stays pure, so a bare session cannot answer STATS.
        Request::Stats => response_frame(
            ERR_INTERNAL,
            opcode,
            None,
            b"STATS is answered by the server loop, not a bare session",
        ),
        // Likewise RELOAD: the session swap lives with the daemon.
        Request::Reload { .. } => response_frame(
            ERR_INTERNAL,
            opcode,
            None,
            b"RELOAD is answered by the server loop, not a bare session",
        ),
        Request::Distance(pairs) => match session.distance(pairs) {
            Err(e) => session_error_frame(opcode, &e),
            Ok((dists, ledger)) => {
                let mut body = Vec::with_capacity(dists.len() * 8);
                for d in dists {
                    body.put_u64_le(d);
                }
                response_frame(0, opcode, Some(ledger), &body)
            }
        },
        Request::ClusterOf(nodes) => match session.cluster_of(nodes) {
            Err(e) => session_error_frame(opcode, &e),
            Ok((clusters, ledger)) => {
                let mut body = Vec::with_capacity(clusters.len() * 4);
                for c in clusters {
                    body.put_u32_le(c);
                }
                response_frame(0, opcode, Some(ledger), &body)
            }
        },
        Request::Eccentricity(nodes) => match session.eccentricity(nodes) {
            Err(e) => session_error_frame(opcode, &e),
            Ok((bounds, ledger)) => {
                let mut body = Vec::with_capacity(bounds.len() * 8);
                for b in bounds {
                    body.put_u64_le(b);
                }
                response_frame(0, opcode, Some(ledger), &body)
            }
        },
        Request::Nearest { sources, probes } => match session.nearest(sources, probes) {
            Err(e) => session_error_frame(opcode, &e),
            Ok((answers, ledger)) => {
                let mut body = Vec::with_capacity(answers.len() * 8);
                for (src, dist) in answers {
                    body.put_u32_le(src);
                    body.put_u32_le(dist);
                }
                response_frame(0, opcode, Some(ledger), &body)
            }
        },
    }
}

/// Answers one raw request frame body (decode → execute), mapping decode
/// failures to error responses. Never panics on hostile input.
pub fn answer(session: &Session, frame: &[u8]) -> (Vec<u8>, bool) {
    match decode_request(frame) {
        Ok(req) => {
            let shutdown = req == Request::Shutdown;
            (execute(session, &req), shutdown)
        }
        Err(e) => (
            response_frame(e.code, e.opcode, None, e.message.as_bytes()),
            false,
        ),
    }
}

// ---------------------------------------------------------------------
// Server-side stats (the STATS surface)
// ---------------------------------------------------------------------

/// Slots in the per-opcode table: index 0 aggregates frames whose opcode
/// never decoded; indices 1..=8 are the opcodes themselves.
const NUM_OP_SLOTS: usize = OP_RELOAD as usize + 1;

struct OpSlot {
    count: AtomicU64,
    latency: AtomicLog2Histogram,
}

/// Live request counters of a running daemon: relaxed atomics shared by all
/// accept threads, so recording never perturbs request handling. Snapshot
/// with [`ServerStats::snapshot`]; ship with [`encode_stats_body`].
pub struct ServerStats {
    started: Instant,
    total_requests: AtomicU64,
    errors: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    /// Snapshot generation: 1 on boot, bumped by every successful reload.
    epoch: AtomicU64,
    timeouts: AtomicU64,
    shed: AtomicU64,
    panics_caught: AtomicU64,
    reloads_ok: AtomicU64,
    reloads_rolled_back: AtomicU64,
    per_op: [OpSlot; NUM_OP_SLOTS],
}

impl Default for ServerStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerStats {
    /// Fresh counters; `uptime_us` is measured from this call.
    pub fn new() -> Self {
        ServerStats {
            started: Instant::now(),
            total_requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            epoch: AtomicU64::new(1),
            timeouts: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            panics_caught: AtomicU64::new(0),
            reloads_ok: AtomicU64::new(0),
            reloads_rolled_back: AtomicU64::new(0),
            per_op: std::array::from_fn(|_| OpSlot {
                count: AtomicU64::new(0),
                latency: AtomicLog2Histogram::new(),
            }),
        }
    }

    /// Records one answered frame. `opcode` 0 (or out of table range) lands
    /// in the undecodable slot; `micros` is wall time from frame decode to
    /// response write.
    pub fn record(&self, opcode: u8, ok: bool, bytes_in: u64, bytes_out: u64, micros: u64) {
        let slot = if (opcode as usize) < NUM_OP_SLOTS {
            opcode as usize
        } else {
            0
        };
        self.total_requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.bytes_in.fetch_add(bytes_in, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes_out, Ordering::Relaxed);
        self.per_op[slot].count.fetch_add(1, Ordering::Relaxed);
        self.per_op[slot].latency.record(micros);
    }

    /// Records a deadline or socket timeout (idle reaps are lifecycle, not
    /// timeouts, and are deliberately not counted here).
    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
        pardec_obs::counter("serve.timeouts", 1);
    }

    /// Records a request shed by the admission gate.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        pardec_obs::counter("serve.shed", 1);
    }

    /// Records a panic caught and isolated on the request path.
    pub fn record_panic_caught(&self) {
        self.panics_caught.fetch_add(1, Ordering::Relaxed);
        pardec_obs::counter("serve.panics_caught", 1);
    }

    /// Records a reload outcome; a success bumps the epoch and returns the
    /// generation now serving.
    pub fn record_reload(&self, ok: bool) -> u64 {
        if ok {
            pardec_obs::counter("serve.reloads.ok", 1);
            self.reloads_ok.fetch_add(1, Ordering::Relaxed);
            self.epoch.fetch_add(1, Ordering::Relaxed) + 1
        } else {
            pardec_obs::counter("serve.reloads.rolled_back", 1);
            self.reloads_rolled_back.fetch_add(1, Ordering::Relaxed);
            self.epoch.load(Ordering::Relaxed)
        }
    }

    /// The snapshot generation now serving (1 until the first reload).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        let per_op = self
            .per_op
            .iter()
            .enumerate()
            .filter(|(_, s)| s.count.load(Ordering::Relaxed) > 0)
            .map(|(op, s)| OpStats {
                opcode: op as u8,
                count: s.count.load(Ordering::Relaxed),
                latency: s.latency.snapshot(),
            })
            .collect();
        StatsSnapshot {
            uptime_us: self.started.elapsed().as_micros() as u64,
            total_requests: self.total_requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            epoch: self.epoch.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            reloads_ok: self.reloads_ok.load(Ordering::Relaxed),
            reloads_rolled_back: self.reloads_rolled_back.load(Ordering::Relaxed),
            per_op,
        }
    }
}

/// Per-opcode slice of a [`StatsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpStats {
    /// Request opcode (0 = frames whose opcode never decoded).
    pub opcode: u8,
    /// Frames answered under this opcode.
    pub count: u64,
    /// Request-handling latency distribution, in microseconds.
    pub latency: Log2Histogram,
}

/// What a `STATS` response carries (see the module docs for the layout).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Microseconds since the daemon started.
    pub uptime_us: u64,
    /// Frames answered before this snapshot (the STATS frame itself is
    /// recorded only after its response is written).
    pub total_requests: u64,
    /// Of those, how many were answered with a non-zero status.
    pub errors: u64,
    /// Wire bytes received (frames + length prefixes).
    pub bytes_in: u64,
    /// Wire bytes sent (frames + length prefixes).
    pub bytes_out: u64,
    /// Snapshot generation now serving (1 on boot; +1 per reload).
    pub epoch: u64,
    /// Requests answered with [`ERR_TIMEOUT`] (deadline or socket).
    pub timeouts: u64,
    /// Requests shed with [`ERR_OVERLOADED`] by the admission gate.
    pub shed: u64,
    /// Panics caught on the request path and isolated to one connection.
    pub panics_caught: u64,
    /// Successful hot reloads (each bumped `epoch`).
    pub reloads_ok: u64,
    /// Reload attempts refused and rolled back to the serving snapshot.
    pub reloads_rolled_back: u64,
    /// Per-opcode counts + latency histograms, ascending opcode, seen
    /// opcodes only.
    pub per_op: Vec<OpStats>,
}

/// Fixed `STATS` body header size: 11 × u64 + the `n_ops` byte.
pub const STATS_HEADER: usize = 89;

/// Encodes a stats snapshot into a `STATS` response body.
pub fn encode_stats_body(s: &StatsSnapshot) -> Vec<u8> {
    let mut buf = Vec::with_capacity(STATS_HEADER + s.per_op.len() * (26 + BUCKETS * 8));
    buf.put_u64_le(s.uptime_us);
    buf.put_u64_le(s.total_requests);
    buf.put_u64_le(s.errors);
    buf.put_u64_le(s.bytes_in);
    buf.put_u64_le(s.bytes_out);
    buf.put_u64_le(s.epoch);
    buf.put_u64_le(s.timeouts);
    buf.put_u64_le(s.shed);
    buf.put_u64_le(s.panics_caught);
    buf.put_u64_le(s.reloads_ok);
    buf.put_u64_le(s.reloads_rolled_back);
    buf.put_u8(s.per_op.len() as u8);
    for op in &s.per_op {
        buf.put_u8(op.opcode);
        buf.put_u64_le(op.count);
        buf.put_u64_le(op.latency.count());
        buf.put_u64_le(op.latency.sum());
        buf.put_u8(BUCKETS as u8);
        for &c in op.latency.counts() {
            buf.put_u64_le(c);
        }
    }
    buf
}

/// Decodes a `STATS` response body (client side).
pub fn decode_stats_body(body: &[u8]) -> io::Result<StatsSnapshot> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, format!("STATS body: {msg}"));
    let mut buf = body;
    if buf.remaining() < STATS_HEADER {
        return Err(bad("shorter than its fixed header"));
    }
    let uptime_us = buf.get_u64_le();
    let total_requests = buf.get_u64_le();
    let errors = buf.get_u64_le();
    let bytes_in = buf.get_u64_le();
    let bytes_out = buf.get_u64_le();
    let epoch = buf.get_u64_le();
    let timeouts = buf.get_u64_le();
    let shed = buf.get_u64_le();
    let panics_caught = buf.get_u64_le();
    let reloads_ok = buf.get_u64_le();
    let reloads_rolled_back = buf.get_u64_le();
    let n_ops = buf.get_u8() as usize;
    if buf.remaining() != n_ops * (26 + BUCKETS * 8) {
        return Err(bad("op table length mismatch"));
    }
    let mut per_op = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let opcode = buf.get_u8();
        let count = buf.get_u64_le();
        let hist_count = buf.get_u64_le();
        let hist_sum = buf.get_u64_le();
        if buf.get_u8() as usize != BUCKETS {
            return Err(bad("unexpected bucket count"));
        }
        let mut counts = [0u64; BUCKETS];
        for c in counts.iter_mut() {
            *c = buf.get_u64_le();
        }
        per_op.push(OpStats {
            opcode,
            count,
            latency: Log2Histogram::from_parts(counts, hist_count, hist_sum),
        });
    }
    Ok(StatsSnapshot {
        uptime_us,
        total_requests,
        errors,
        bytes_in,
        bytes_out,
        epoch,
        timeouts,
        shed,
        panics_caught,
        reloads_ok,
        reloads_rolled_back,
        per_op,
    })
}

/// Builds the full `STATS` response frame (status 0, zero ledger).
pub fn stats_response_frame(s: &StatsSnapshot) -> Vec<u8> {
    response_frame(0, OP_STATS, None, &encode_stats_body(s))
}

// ---------------------------------------------------------------------
// Serve configuration, admission gate, deadlines
// ---------------------------------------------------------------------

/// Tunables of the fault-tolerance layer (see the module docs). The
/// defaults are generous enough that well-behaved clients — including the
/// in-process `bench_serve` load runs — never trip them.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Socket timeout for each read while inside a frame (slow-loris
    /// defense). Answered with [`ERR_TIMEOUT`], then the connection closes
    /// (the stream is out of sync).
    pub read_timeout: Duration,
    /// Socket timeout for writing a response to a peer that stopped
    /// reading.
    pub write_timeout: Duration,
    /// How long a connection may sit idle *between* requests before it is
    /// reaped — a plain close, deliberately not counted as a timeout.
    pub idle_timeout: Duration,
    /// Per-request deadline budget, measured from the first byte of the
    /// length prefix through decode and execute. `Duration::ZERO` means
    /// "already expired" (every request answers [`ERR_TIMEOUT`]) — useful
    /// for deterministic tests, not production.
    pub deadline: Duration,
    /// Per-request batch-count cap ([`ERR_BATCH_TOO_LARGE`] above it).
    pub max_batch: u32,
    /// Concurrent requests admitted across all connections; the gate sheds
    /// above this with [`ERR_OVERLOADED`].
    pub max_concurrent: u32,
    /// Total request-body bytes buffered at once across all connections.
    pub max_inflight_bytes: u64,
    /// Retry hint carried in [`ERR_OVERLOADED`] bodies.
    pub retry_after_ms: u32,
    /// Whether `OP_RELOAD` is honored ([`ERR_FORBIDDEN`] otherwise).
    pub allow_reload: bool,
    /// Snapshot path used when a `RELOAD` request carries an empty path.
    pub reload_default_path: Option<String>,
    /// Arms [`OP_DEBUG_PANIC`] — the chaos suite's probe for panic
    /// isolation. Never set outside tests.
    pub debug_panic_op: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(300),
            deadline: Duration::from_secs(60),
            max_batch: MAX_BATCH,
            max_concurrent: 256,
            max_inflight_bytes: 256 << 20,
            retry_after_ms: 100,
            allow_reload: false,
            reload_default_path: None,
            debug_panic_op: false,
        }
    }
}

/// Bounded admission: a request over the concurrency or inflight-byte cap
/// is shed with [`ERR_OVERLOADED`] instead of queueing unboundedly.
pub struct AdmissionGate {
    max_concurrent: u64,
    max_inflight_bytes: u64,
    concurrent: AtomicU64,
    inflight_bytes: AtomicU64,
}

/// An admitted request's slot; releases its count + bytes on drop.
pub struct AdmissionPermit<'a> {
    gate: &'a AdmissionGate,
    bytes: u64,
}

impl AdmissionGate {
    /// A gate sized from `config`.
    pub fn new(config: &ServeConfig) -> Self {
        AdmissionGate {
            max_concurrent: config.max_concurrent as u64,
            max_inflight_bytes: config.max_inflight_bytes,
            concurrent: AtomicU64::new(0),
            inflight_bytes: AtomicU64::new(0),
        }
    }

    /// Tries to admit one request whose body is `bytes` long; `None` means
    /// shed. Optimistic add-then-undo: one RMW per counter on the hot
    /// path; a race can only shed spuriously, never over-admit.
    pub fn try_admit(&self, bytes: u64) -> Option<AdmissionPermit<'_>> {
        let c = self.concurrent.fetch_add(1, Ordering::AcqRel);
        let b = self.inflight_bytes.fetch_add(bytes, Ordering::AcqRel);
        if c >= self.max_concurrent || b.saturating_add(bytes) > self.max_inflight_bytes {
            self.concurrent.fetch_sub(1, Ordering::AcqRel);
            self.inflight_bytes.fetch_sub(bytes, Ordering::AcqRel);
            None
        } else {
            Some(AdmissionPermit { gate: self, bytes })
        }
    }
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.gate.concurrent.fetch_sub(1, Ordering::AcqRel);
        self.gate
            .inflight_bytes
            .fetch_sub(self.bytes, Ordering::AcqRel);
    }
}

/// A per-request deadline budget. Stored as start + budget (not an
/// absolute `Instant`) so a huge budget cannot overflow.
#[derive(Clone, Copy, Debug)]
struct Deadline {
    start: Instant,
    budget: Duration,
}

impl Deadline {
    fn start(budget: Duration) -> Deadline {
        Deadline {
            start: Instant::now(),
            budget,
        }
    }

    fn expired(&self) -> bool {
        self.start.elapsed() >= self.budget
    }
}

/// `set_read_timeout(Some(ZERO))` is an error in std; clamp to ≥ 1 ms.
fn socket_timeout(d: Duration) -> Option<Duration> {
    Some(d.max(Duration::from_millis(1)))
}

fn is_timeout(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Outcome of filling a buffer from a socket with timeouts armed.
enum ReadStep {
    /// Every byte arrived.
    Done,
    /// EOF — at the buffer's start (a clean goodbye) or mid-buffer (a torn
    /// frame); either way the connection is done.
    Eof,
    /// The socket timeout or the request deadline fired first.
    Timedout,
    /// A non-timeout transport error.
    Failed(io::Error),
}

/// Reads exactly `buf.len()` bytes, honoring the socket read timeout and
/// (between reads) the request deadline. The completeness check runs
/// *before* the deadline check: a buffer whose last byte just arrived is
/// complete, and the expired budget is the next stage's problem — that
/// ordering is what makes a `Duration::ZERO` deadline deterministic (the
/// polite pre-execute [`ERR_TIMEOUT`], never a spurious mid-read one).
fn read_full(stream: &mut TcpStream, buf: &mut [u8], deadline: Option<&Deadline>) -> ReadStep {
    let mut filled = 0;
    loop {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return ReadStep::Eof,
            Ok(n) => {
                filled += n;
                if filled == buf.len() {
                    return ReadStep::Done;
                }
                if let Some(d) = deadline {
                    if d.expired() {
                        return ReadStep::Timedout;
                    }
                }
            }
            Err(e) if is_timeout(e.kind()) => return ReadStep::Timedout,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return ReadStep::Failed(e),
        }
    }
}

// ---------------------------------------------------------------------
// Server loop
// ---------------------------------------------------------------------

/// Shared state of a running daemon: the swappable session, the counters,
/// the admission gate, and the config.
struct ServerState {
    /// The serving session. Every request clones the `Arc` under the read
    /// lock (nanoseconds), so a reload's write-lock swap waits only for
    /// those clones, never for request execution — in-flight requests
    /// finish on the epoch they started with.
    session: RwLock<Arc<Session>>,
    stats: Arc<ServerStats>,
    gate: AdmissionGate,
    config: ServeConfig,
    /// Worker pool for query execution (waves, oracle batches). Entered
    /// per request, never held across requests.
    pool: Arc<rayon::ThreadPool>,
    /// The daemon-wide stop flag. Idle connection handlers poll it so a
    /// shutdown never waits out a full idle timeout on open connections.
    stop: Arc<AtomicBool>,
}

impl ServerState {
    fn current_session(&self) -> Arc<Session> {
        // A poisoned lock is still a coherent lock: the swap is a single
        // assignment, never a half-state, so recover and keep serving.
        self.session
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// A running daemon: join handles + shutdown trigger.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port 0 bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the daemon's request counters — the same
    /// numbers an `OP_STATS` request reads over the wire.
    pub fn stats(&self) -> StatsSnapshot {
        self.state.stats.snapshot()
    }

    /// The snapshot generation now serving (1 until the first reload).
    pub fn epoch(&self) -> u64 {
        self.state.stats.epoch()
    }

    /// An in-process reload trigger that outlives [`Self::join`].
    pub fn reloader(&self) -> Reloader {
        Reloader {
            state: self.state.clone(),
        }
    }

    /// Requests shutdown and unblocks every acceptor.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for _ in 0..self.threads.len() {
            // Wake an acceptor blocked in `accept`; errors mean it is
            // already gone, which is fine.
            let _ = TcpStream::connect(self.addr);
        }
    }

    /// Waits for every accept thread to exit. Call [`Self::shutdown`] first
    /// (or send an `OP_SHUTDOWN` request) or this blocks forever.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn error_response(code: u8, opcode: u8, msg: &str) -> Vec<u8> {
    response_frame(code, opcode, None, msg.as_bytes())
}

fn overload_response(opcode: u8, retry_after_ms: u32) -> Vec<u8> {
    let mut body = Vec::with_capacity(44);
    body.put_u32_le(retry_after_ms);
    body.extend_from_slice(b"overloaded; retry after the hinted delay");
    response_frame(ERR_OVERLOADED, opcode, None, &body)
}

/// Loads + validates the replacement through the checked loader **outside**
/// any lock, swaps on success, rolls back — keeps serving the old epoch —
/// on any failure. Returns the new epoch or the rollback message. Never
/// panics, never drops a connection.
fn reload_session(state: &ServerState, path: &str) -> Result<u64, String> {
    let path = if path.is_empty() {
        match &state.config.reload_default_path {
            Some(p) => p.clone(),
            None => {
                state.stats.record_reload(false);
                return Err("empty path and no default snapshot path configured".into());
            }
        }
    } else {
        path.to_owned()
    };
    let frontier = state.current_session().frontier();
    let loaded = std::fs::read(&path)
        .map_err(|e| format!("read {path}: {e}"))
        .and_then(|bytes| {
            Session::load_checked(&bytes, frontier).map_err(|e| format!("load {path}: {e}"))
        });
    match loaded {
        Ok(fresh) => {
            *state.session.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(fresh);
            Ok(state.stats.record_reload(true))
        }
        Err(msg) => {
            state.stats.record_reload(false);
            Err(format!("rolled back to the serving snapshot: {msg}"))
        }
    }
}

/// Answers `OP_RELOAD` over the wire: the admin gate first, then
/// [`reload_session`]'s swap-or-rollback.
fn handle_reload(state: &ServerState, path: &str) -> Vec<u8> {
    if !state.config.allow_reload {
        return error_response(
            ERR_FORBIDDEN,
            OP_RELOAD,
            "reload is disabled (start the daemon with --allow-reload)",
        );
    }
    match reload_session(state, path) {
        Ok(epoch) => {
            let mut body = Vec::with_capacity(8);
            body.put_u64_le(epoch);
            response_frame(0, OP_RELOAD, None, &body)
        }
        Err(msg) => error_response(ERR_RELOAD_FAILED, OP_RELOAD, &msg),
    }
}

/// A cheap, cloneable in-process reload trigger — what the CLI's
/// `--reload-signal` watcher holds for the daemon's lifetime.
#[derive(Clone)]
pub struct Reloader {
    state: Arc<ServerState>,
}

impl Reloader {
    /// Same validation + rollback semantics as a wire `OP_RELOAD`, minus
    /// the admin gate (the holder owns the process). `None` reloads the
    /// configured default path. Returns the epoch now serving.
    pub fn reload(&self, path: Option<&str>) -> Result<u64, String> {
        reload_session(&self.state, path.unwrap_or(""))
    }

    /// The snapshot generation now serving.
    pub fn epoch(&self) -> u64 {
        self.state.stats.epoch()
    }
}

/// What the connection loop does after writing a response.
enum Outcome {
    /// Keep the connection and read the next frame.
    Continue,
    /// Close this connection only.
    Close,
    /// Stop the whole daemon.
    Shutdown,
}

/// Drains and discards the `len`-byte body of a shed request, returning
/// its first byte (the opcode) for the stats ledger.
fn drain_body(stream: &mut TcpStream, len: u32, deadline: &Deadline) -> io::Result<u8> {
    let mut opcode = 0u8;
    let mut left = len as usize;
    let mut scratch = [0u8; 8192];
    let mut first = true;
    while left > 0 {
        let take = left.min(scratch.len());
        match read_full(stream, &mut scratch[..take], Some(deadline)) {
            ReadStep::Done => {
                if first {
                    opcode = scratch[0];
                    first = false;
                }
                left -= take;
            }
            ReadStep::Failed(e) => return Err(e),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "peer stalled while its shed request was drained",
                ))
            }
        }
    }
    Ok(opcode)
}

/// Decode → deadline check → execute, for an admitted, fully buffered
/// frame. Returns `(response, outcome, opcode, ok)`. The caller wraps this
/// in `catch_unwind`, so a panic anywhere below answers `ERR_INTERNAL` and
/// costs one connection, not the process.
fn answer_admitted(
    state: &ServerState,
    frame: &[u8],
    deadline: &Deadline,
) -> (Vec<u8>, Outcome, u8, bool) {
    // A frame that arrived after its budget is answered politely: the
    // stream is in sync, so the connection survives.
    if deadline.expired() {
        state.stats.record_timeout();
        let opcode = frame.first().copied().unwrap_or(0);
        let resp = error_response(
            ERR_TIMEOUT,
            opcode,
            "request deadline expired before execution",
        );
        return (resp, Outcome::Continue, opcode, false);
    }
    if state.config.debug_panic_op && frame.first() == Some(&OP_DEBUG_PANIC) {
        panic!("debug panic opcode tripped (chaos harness)");
    }
    // STATS and RELOAD are answered here, from the daemon's state, with
    // the stats snapshot taken *before* this frame is recorded —
    // `total_requests` is exactly the number of previously answered
    // frames. Everything else goes through the pure `execute` path on the
    // session arc current at this instant.
    match decode_request_limited(frame, state.config.max_batch) {
        Ok(Request::Stats) => (
            stats_response_frame(&state.stats.snapshot()),
            Outcome::Continue,
            OP_STATS,
            true,
        ),
        Ok(Request::Reload { path }) => {
            let resp = handle_reload(state, &path);
            let ok = resp.first() == Some(&0);
            (resp, Outcome::Continue, OP_RELOAD, ok)
        }
        Ok(req) => {
            let shutdown = req == Request::Shutdown;
            let session = state.current_session();
            // Only query execution enters the worker pool — connections
            // themselves live on acceptor threads, so an open-but-idle
            // connection never pins a worker (or starves other clients
            // on a 1-worker pool).
            let resp = state.pool.install(|| execute(&session, &req));
            let ok = resp.first() == Some(&0);
            let outcome = if shutdown {
                Outcome::Shutdown
            } else {
                Outcome::Continue
            };
            (resp, outcome, req.opcode(), ok)
        }
        Err(e) => (
            error_response(e.code, e.opcode, &e.message),
            Outcome::Continue,
            e.opcode,
            false,
        ),
    }
}

fn handle_connection(state: &ServerState, stream: &mut TcpStream) -> io::Result<bool> {
    stream.set_nodelay(true).ok();
    let cfg = &state.config;
    let stats = &*state.stats;
    stream.set_write_timeout(socket_timeout(cfg.write_timeout))?;
    loop {
        // Idle phase: wait for the first byte of the next length prefix
        // under the idle timeout, polling in short slices so a daemon
        // shutdown never waits out the full timeout on an open-but-quiet
        // connection. Reaping here is lifecycle, not an error.
        let idle_since = Instant::now();
        stream.set_read_timeout(socket_timeout(
            cfg.idle_timeout.min(Duration::from_millis(100)),
        ))?;
        let mut prefix = [0u8; 4];
        loop {
            match read_full(stream, &mut prefix[..1], None) {
                ReadStep::Done => break,
                ReadStep::Eof => return Ok(false), // clean EOF
                ReadStep::Timedout => {
                    if state.stop.load(Ordering::SeqCst) {
                        return Ok(false); // daemon is shutting down
                    }
                    if idle_since.elapsed() >= cfg.idle_timeout {
                        return Ok(false); // idle reap
                    }
                }
                ReadStep::Failed(e) => return Err(e),
            }
        }
        // In-frame: the request deadline runs from its first byte.
        let deadline = Deadline::start(cfg.deadline);
        stream.set_read_timeout(socket_timeout(cfg.read_timeout))?;
        match read_full(stream, &mut prefix[1..], Some(&deadline)) {
            ReadStep::Done => {}
            ReadStep::Eof => return Ok(false), // torn prefix
            ReadStep::Timedout => {
                stats.record_timeout();
                let resp = error_response(ERR_TIMEOUT, 0, "timed out reading length prefix");
                let _ = write_frame(stream, &resp);
                stats.record(0, false, 1, 4 + resp.len() as u64, 0);
                return Ok(false);
            }
            ReadStep::Failed(e) => return Err(e),
        }
        let len = u32::from_le_bytes(prefix);
        if len > MAX_FRAME {
            // Oversized declaration: answer with the error code, then drop
            // the connection (the stream is no longer in sync).
            let resp = error_response(
                ERR_FRAME_TOO_LARGE,
                0,
                &format!("declared frame of {len} bytes exceeds MAX_FRAME"),
            );
            write_frame(stream, &resp)?;
            stats.record(0, false, 4, 4 + resp.len() as u64, 0);
            return Ok(false);
        }
        // Admission — checked on the declared length, *before* the body is
        // buffered; shed requests are drained and the connection survives.
        let Some(permit) = state.gate.try_admit(len as u64) else {
            let opcode = match drain_body(stream, len, &deadline) {
                Ok(op) => op,
                Err(_) => return Ok(false),
            };
            stats.record_shed();
            let resp = overload_response(opcode, cfg.retry_after_ms);
            write_frame(stream, &resp)?;
            stats.record(opcode, false, 4 + len as u64, 4 + resp.len() as u64, 0);
            continue;
        };
        let started = Instant::now();
        let mut frame = vec![0u8; len as usize];
        match read_full(stream, &mut frame, Some(&deadline)) {
            ReadStep::Done => {}
            ReadStep::Eof => return Ok(false), // mid-frame disconnect
            ReadStep::Timedout => {
                stats.record_timeout();
                let resp = error_response(ERR_TIMEOUT, 0, "timed out reading request body");
                let _ = write_frame(stream, &resp);
                stats.record(0, false, 4 + len as u64, 4 + resp.len() as u64, 0);
                return Ok(false);
            }
            ReadStep::Failed(e) => return Err(e),
        }
        let mut req_span = pardec_obs::span!("serve.request", bytes_in = frame.len());
        let answered = catch_unwind(AssertUnwindSafe(|| {
            answer_admitted(state, &frame, &deadline)
        }));
        drop(permit);
        let (resp, outcome, opcode, ok) = answered.unwrap_or_else(|_| {
            stats.record_panic_caught();
            let opcode = frame.first().copied().unwrap_or(0);
            (
                error_response(
                    ERR_INTERNAL,
                    opcode,
                    "panic in request handler; closing this connection",
                ),
                Outcome::Close,
                opcode,
                false,
            )
        });
        match write_frame(stream, &resp) {
            Ok(()) => {}
            Err(e) if is_timeout(e.kind()) => {
                // The peer stopped reading: count it and walk away.
                stats.record_timeout();
                stats.record(
                    opcode,
                    false,
                    4 + frame.len() as u64,
                    0,
                    started.elapsed().as_micros() as u64,
                );
                return Ok(false);
            }
            Err(e) => return Err(e),
        }
        req_span.field("opcode", opcode);
        req_span.field("ok", ok);
        req_span.field("bytes_out", resp.len());
        drop(req_span);
        stats.record(
            opcode,
            ok,
            4 + frame.len() as u64,
            4 + resp.len() as u64,
            started.elapsed().as_micros() as u64,
        );
        match outcome {
            Outcome::Continue => {}
            Outcome::Close => return Ok(false),
            Outcome::Shutdown => return Ok(true),
        }
    }
}

/// Spawns the accept loop: `threads` OS threads sharing `listener`, each
/// executing its connections' queries inside `pool`. Returns immediately.
///
/// `threads` is clamped to ≥ 1. The pool is shared — wave execution uses
/// `pool.install`, which is safe from multiple OS threads concurrently (the
/// shim pool work-steals across external waiters).
pub fn serve(
    listener: TcpListener,
    session: Arc<Session>,
    pool: Arc<rayon::ThreadPool>,
    threads: usize,
) -> io::Result<ServerHandle> {
    serve_with(listener, session, pool, threads, ServeConfig::default())
}

/// [`serve`] with explicit fault-tolerance tunables.
pub fn serve_with(
    listener: TcpListener,
    session: Arc<Session>,
    pool: Arc<rayon::ThreadPool>,
    threads: usize,
    config: ServeConfig,
) -> io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let state = Arc::new(ServerState {
        session: RwLock::new(session),
        stats: Arc::new(ServerStats::new()),
        gate: AdmissionGate::new(&config),
        config,
        pool,
        stop: stop.clone(),
    });
    let listener = Arc::new(listener);
    let mut handles = Vec::new();
    for i in 0..threads.max(1) {
        let (listener, state, stop) = (listener.clone(), state.clone(), stop.clone());
        handles.push(
            std::thread::Builder::new()
                .name(format!("pardec-accept-{i}"))
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        let Ok((mut stream, _)) = listener.accept() else {
                            continue;
                        };
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        // The connection lives on this acceptor thread;
                        // only query execution enters the worker pool.
                        // Per-request panics are already caught inside
                        // `handle_connection`; this outer net keeps the
                        // acceptor itself immortal if the connection
                        // plumbing ever panics.
                        let wants_shutdown = catch_unwind(AssertUnwindSafe(|| {
                            handle_connection(&state, &mut stream)
                        }))
                        .unwrap_or_else(|_| {
                            state.stats.record_panic_caught();
                            Ok(false)
                        })
                        .unwrap_or(false);
                        if wants_shutdown {
                            stop.store(true, Ordering::SeqCst);
                            // Unblock sibling acceptors.
                            for _ in 0..threads {
                                let _ = TcpStream::connect(addr);
                            }
                        }
                    }
                })?,
        );
    }
    Ok(ServerHandle {
        addr,
        stop,
        threads: handles,
        state,
    })
}

/// Client-side helper: send one request over `stream`, read the response.
pub fn roundtrip(stream: &mut TcpStream, req: &Request) -> io::Result<Response> {
    write_frame(stream, &encode_request(req))?;
    let body = read_frame(stream)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
    decode_response(&body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionParams;
    use pardec_graph::generators;

    fn tiny_session() -> Session {
        // path(2) with τ → singletons: two clusters, apsp [[0,1],[1,0]] —
        // small enough to pin golden bytes by hand. Strategy pinned so the
        // golden ledger byte is independent of PARDEC_FRONTIER.
        Session::build(
            generators::path(2),
            &SessionParams::new(100, 0).with_frontier(FrontierStrategy::TopDown),
        )
    }

    #[test]
    fn request_codec_round_trips() {
        let reqs = [
            Request::Info,
            Request::Shutdown,
            Request::Distance(vec![(0, 1), (1, 1)]),
            Request::ClusterOf(vec![0, 1, 0]),
            Request::Eccentricity(vec![1]),
            Request::Nearest {
                sources: vec![0],
                probes: vec![0, 1],
            },
            Request::Stats,
            Request::Reload {
                path: String::new(),
            },
            Request::Reload {
                path: "snapshots/b.pdec".into(),
            },
        ];
        for req in reqs {
            let body = encode_request(&req);
            assert_eq!(decode_request(&body).unwrap(), req);
        }
    }

    #[test]
    fn golden_request_bytes() {
        // DIST [(2, 259)] : opcode, count=1, u=2, v=259.
        assert_eq!(
            encode_request(&Request::Distance(vec![(2, 259)])),
            [0x02, 1, 0, 0, 0, 2, 0, 0, 0, 3, 1, 0, 0]
        );
        // NEAREST {sources: [7], probes: [1, 2]}.
        assert_eq!(
            encode_request(&Request::Nearest {
                sources: vec![7],
                probes: vec![1, 2]
            }),
            [0x05, 1, 0, 0, 0, 2, 0, 0, 0, 7, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0]
        );
        assert_eq!(encode_request(&Request::Info), [0x01]);
        assert_eq!(encode_request(&Request::Shutdown), [0x06]);
        assert_eq!(encode_request(&Request::Stats), [0x07]);
        // RELOAD "ab": opcode, path_len=2, bytes.
        assert_eq!(
            encode_request(&Request::Reload { path: "ab".into() }),
            [0x08, 2, 0, 0, 0, b'a', b'b']
        );
    }

    #[test]
    fn batch_caps_are_enforced_before_allocation() {
        // A 9-byte frame claiming a 2M-pair DIST batch must be refused by
        // the cap, not by the length check (the cap fires first).
        let mut big = vec![OP_DIST];
        big.extend_from_slice(&(MAX_BATCH + 1).to_le_bytes());
        big.extend_from_slice(&[0; 8]);
        let err = decode_request(&big).unwrap_err();
        assert_eq!(err.code, ERR_BATCH_TOO_LARGE);
        // Same via the limited entry point with a tiny cap.
        let body = encode_request(&Request::ClusterOf(vec![0, 1, 2]));
        assert_eq!(
            decode_request_limited(&body, 2).unwrap_err().code,
            ERR_BATCH_TOO_LARGE
        );
        assert_eq!(
            decode_request_limited(&body, 3).unwrap(),
            Request::ClusterOf(vec![0, 1, 2])
        );
        // NEAREST caps sources and probes independently.
        let near = encode_request(&Request::Nearest {
            sources: vec![0, 1],
            probes: vec![0],
        });
        assert_eq!(
            decode_request_limited(&near, 1).unwrap_err().code,
            ERR_BATCH_TOO_LARGE
        );
        // RELOAD path length is capped.
        let mut reload = vec![OP_RELOAD];
        reload.extend_from_slice(&(MAX_RELOAD_PATH + 1).to_le_bytes());
        assert_eq!(decode_request(&reload).unwrap_err().code, ERR_MALFORMED);
    }

    #[test]
    fn stats_body_codec_round_trips() {
        let mut latency = Log2Histogram::new();
        latency.record(12);
        latency.record(900);
        latency.record(0);
        let snap = StatsSnapshot {
            uptime_us: 123_456,
            total_requests: 3,
            errors: 1,
            bytes_in: 64,
            bytes_out: 512,
            epoch: 4,
            timeouts: 5,
            shed: 6,
            panics_caught: 7,
            reloads_ok: 3,
            reloads_rolled_back: 2,
            per_op: vec![
                OpStats {
                    opcode: 0,
                    count: 1,
                    latency: Log2Histogram::new(),
                },
                OpStats {
                    opcode: OP_NEAREST,
                    count: 2,
                    latency,
                },
            ],
        };
        let body = encode_stats_body(&snap);
        assert_eq!(decode_stats_body(&body).unwrap(), snap);
        // Truncations and bad bucket counts are refused, never panic.
        for cut in [0, 10, 40, body.len() - 1] {
            assert!(decode_stats_body(&body[..cut]).is_err(), "cut {cut}");
        }
        let mut wrong = body.clone();
        wrong[STATS_HEADER + 25] = 7; // n_buckets of the first op entry
        assert!(decode_stats_body(&wrong).is_err());
    }

    #[test]
    fn golden_stats_response_bytes() {
        // A young daemon's snapshot: no per-op entries, all counters zero
        // except uptime and the boot epoch. Frame = status 0, opcode 0x07,
        // zero ledger, then the 89-byte fixed stats header.
        let snap = StatsSnapshot {
            uptime_us: 2,
            total_requests: 0,
            errors: 0,
            bytes_in: 0,
            bytes_out: 0,
            epoch: 1,
            timeouts: 0,
            shed: 0,
            panics_caught: 0,
            reloads_ok: 0,
            reloads_rolled_back: 0,
            per_op: Vec::new(),
        };
        #[rustfmt::skip]
        let expected = [
            0u8,        // status ok
            0x07,       // opcode echo
            0, 0, 0, 0, // batch = 0
            0, 0, 0, 0, // waves = 0
            0, 0, 0, 0, // rounds = 0
            0,          // strategy = 0 (no ledger)
            2, 0, 0, 0, 0, 0, 0, 0, // uptime_us = 2
            0, 0, 0, 0, 0, 0, 0, 0, // total_requests
            0, 0, 0, 0, 0, 0, 0, 0, // errors
            0, 0, 0, 0, 0, 0, 0, 0, // bytes_in
            0, 0, 0, 0, 0, 0, 0, 0, // bytes_out
            1, 0, 0, 0, 0, 0, 0, 0, // epoch = 1 (boot generation)
            0, 0, 0, 0, 0, 0, 0, 0, // timeouts
            0, 0, 0, 0, 0, 0, 0, 0, // shed
            0, 0, 0, 0, 0, 0, 0, 0, // panics_caught
            0, 0, 0, 0, 0, 0, 0, 0, // reloads_ok
            0, 0, 0, 0, 0, 0, 0, 0, // reloads_rolled_back
            0,          // n_ops
        ];
        assert_eq!(expected.len(), 15 + STATS_HEADER);
        assert_eq!(stats_response_frame(&snap), expected);
    }

    #[test]
    fn stats_over_a_live_daemon() {
        let session = Arc::new(tiny_session());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let pool = Arc::new(
            rayon::ThreadPoolBuilder::new()
                .num_threads(2)
                .build()
                .unwrap(),
        );
        let handle = serve(listener, session, pool, 2).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();

        // A fresh daemon has answered nothing.
        let first = roundtrip(&mut stream, &Request::Stats).unwrap();
        assert_eq!(first.status, 0);
        assert_eq!(first.opcode, OP_STATS);
        let snap = decode_stats_body(&first.body).unwrap();
        assert_eq!(snap.total_requests, 0);
        assert!(snap.per_op.is_empty());

        // Three queries (one of them failing) + the prior STATS frame.
        roundtrip(&mut stream, &Request::Info).unwrap();
        roundtrip(&mut stream, &Request::ClusterOf(vec![0, 1])).unwrap();
        let err = roundtrip(&mut stream, &Request::ClusterOf(vec![99])).unwrap();
        assert_eq!(err.status, ERR_OUT_OF_RANGE);

        let second = roundtrip(&mut stream, &Request::Stats).unwrap();
        let snap = decode_stats_body(&second.body).unwrap();
        assert_eq!(snap.total_requests, 4);
        assert_eq!(snap.errors, 1);
        assert!(snap.bytes_in > 0 && snap.bytes_out > 0);
        // No reload yet: boot epoch, untouched fault-tolerance ledger.
        assert_eq!(snap.epoch, 1);
        assert_eq!((snap.timeouts, snap.shed, snap.panics_caught), (0, 0, 0),);
        assert_eq!((snap.reloads_ok, snap.reloads_rolled_back), (0, 0));
        let by_op: Vec<(u8, u64)> = snap.per_op.iter().map(|o| (o.opcode, o.count)).collect();
        assert_eq!(by_op, [(OP_INFO, 1), (OP_CLUSTER_OF, 2), (OP_STATS, 1)]);
        for op in &snap.per_op {
            assert_eq!(op.latency.count(), op.count);
        }
        // The in-process view agrees with the wire view (modulo the frames
        // answered since).
        assert!(handle.stats().total_requests >= snap.total_requests);

        let bye = roundtrip(&mut stream, &Request::Shutdown).unwrap();
        assert_eq!(bye.status, 0);
        drop(stream);
        handle.join();
    }

    #[test]
    fn stats_against_bare_session_is_internal_error() {
        let s = tiny_session();
        let resp = decode_response(&execute(&s, &Request::Stats)).unwrap();
        assert_eq!(resp.status, ERR_INTERNAL);
        assert!(resp.error_message().unwrap().contains("server loop"));
    }

    #[test]
    fn golden_response_bytes() {
        let s = tiny_session();
        // DIST (0,1) on the 2-path with singleton clusters: centers are the
        // nodes themselves, apsp[0][1] = 1, so d = 0 + 1 + 0 = 1.
        let resp = execute(&s, &Request::Distance(vec![(0, 1)]));
        #[rustfmt::skip]
        let expected = [
            0u8,        // status ok
            0x02,       // opcode echo
            1, 0, 0, 0, // batch = 1
            0, 0, 0, 0, // waves = 0 (table lookup)
            0, 0, 0, 0, // rounds = 0
            0,          // strategy = top-down
            1, 0, 0, 0, 0, 0, 0, 0, // dist = 1 (u64)
        ];
        assert_eq!(resp, expected);

        // CLUSTER_OF [1] → cluster 1.
        let resp = execute(&s, &Request::ClusterOf(vec![1]));
        assert_eq!(&resp[..2], &[0, 0x03]);
        assert_eq!(&resp[15..], &[1, 0, 0, 0]);

        // NEAREST {sources: [0], probes: [0, 1]} → one wave, exact hops.
        let resp = execute(
            &s,
            &Request::Nearest {
                sources: vec![0],
                probes: vec![0, 1],
            },
        );
        let parsed = decode_response(&resp).unwrap();
        assert_eq!(parsed.status, 0);
        assert_eq!(parsed.batch, 2);
        assert_eq!(parsed.waves, 1);
        assert!(parsed.wave_rounds >= 1);
        assert_eq!(
            parsed.body,
            [
                0, 0, 0, 0, 0, 0, 0, 0, /* probe 0: src 0, dist 0 */
                0, 0, 0, 0, 1, 0, 0, 0
            ] /* probe 1: src 0, dist 1 */
        );
    }

    #[test]
    fn error_codes_on_the_wire() {
        let s = tiny_session();
        // Out-of-range node.
        let resp = decode_response(&execute(&s, &Request::ClusterOf(vec![99]))).unwrap();
        assert_eq!(resp.status, ERR_OUT_OF_RANGE);
        assert!(resp.error_message().unwrap().contains("99"));
        // Oracle missing.
        let no_oracle = Session::build(
            generators::path(2),
            &SessionParams::new(100, 0).without_oracle(),
        );
        let resp = decode_response(&execute(&no_oracle, &Request::Distance(vec![(0, 1)]))).unwrap();
        assert_eq!(resp.status, ERR_ORACLE_MISSING);
        // Unknown opcode / malformed payloads.
        let (resp, _) = answer(&s, &[0x7F]);
        assert_eq!(decode_response(&resp).unwrap().status, ERR_UNKNOWN_OPCODE);
        let (resp, _) = answer(&s, &[]);
        assert_eq!(decode_response(&resp).unwrap().status, ERR_MALFORMED);
        let (resp, _) = answer(&s, &[OP_DIST, 5, 0, 0, 0, 1]);
        assert_eq!(decode_response(&resp).unwrap().status, ERR_MALFORMED);
        // Declared count far beyond the payload must not allocate/panic:
        // the batch cap fires before any buffer is sized.
        let (resp, _) = answer(&s, &[OP_NEAREST, 255, 255, 255, 255, 255, 255, 255, 255]);
        assert_eq!(decode_response(&resp).unwrap().status, ERR_BATCH_TOO_LARGE);
    }

    #[test]
    fn tcp_serve_round_trip_and_shutdown() {
        let session = Arc::new(tiny_session());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let pool = Arc::new(
            rayon::ThreadPoolBuilder::new()
                .num_threads(2)
                .build()
                .unwrap(),
        );
        let handle = serve(listener, session.clone(), pool, 2).unwrap();
        let addr = handle.addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        let info = roundtrip(&mut stream, &Request::Info).unwrap();
        assert_eq!(info.status, 0);
        assert_eq!(&info.body[..8], &2u64.to_le_bytes());

        // Two requests on one connection (keep-alive).
        let r1 = roundtrip(&mut stream, &Request::ClusterOf(vec![0, 1])).unwrap();
        assert_eq!(r1.status, 0);
        let r2 = roundtrip(
            &mut stream,
            &Request::Nearest {
                sources: vec![1],
                probes: vec![0],
            },
        )
        .unwrap();
        assert_eq!(r2.waves, 1);
        assert_eq!(r2.body, [1, 0, 0, 0, 1, 0, 0, 0]);
        drop(stream);

        // A second client from another thread while the first was live is
        // covered by the bench; here just shut down cleanly via the wire.
        let mut stream = TcpStream::connect(addr).unwrap();
        let bye = roundtrip(&mut stream, &Request::Shutdown).unwrap();
        assert_eq!(bye.status, 0);
        drop(stream);
        handle.join();
        // The port is released: a fresh bind to the same address works.
        assert!(TcpStream::connect(addr).is_err() || TcpListener::bind(addr).is_ok());
    }

    #[test]
    fn oversized_frame_is_refused() {
        let session = Arc::new(tiny_session());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let pool = Arc::new(
            rayon::ThreadPoolBuilder::new()
                .num_threads(1)
                .build()
                .unwrap(),
        );
        let handle = serve(listener, session, pool, 1).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.write_all(&(MAX_FRAME + 1).to_le_bytes()).unwrap();
        let body = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(decode_response(&body).unwrap().status, ERR_FRAME_TOO_LARGE);
        // Server closed the connection afterwards.
        assert!(matches!(read_frame(&mut stream), Ok(None) | Err(_)));
        handle.shutdown();
        handle.join();
    }

    fn tiny_pool(n: usize) -> Arc<rayon::ThreadPool> {
        Arc::new(
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .unwrap(),
        )
    }

    fn serve_tiny(config: ServeConfig) -> ServerHandle {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        serve_with(listener, Arc::new(tiny_session()), tiny_pool(2), 2, config).unwrap()
    }

    #[test]
    fn zero_deadline_times_out_politely() {
        // A ZERO budget is expired by the time any frame finishes reading,
        // so every request answers ERR_TIMEOUT — and because the frame was
        // fully consumed, the connection survives for the next one.
        let handle = serve_tiny(ServeConfig {
            deadline: Duration::ZERO,
            ..ServeConfig::default()
        });
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        for _ in 0..2 {
            let resp = roundtrip(&mut stream, &Request::Info).unwrap();
            assert_eq!(resp.status, ERR_TIMEOUT);
            assert!(resp.error_message().unwrap().contains("deadline"));
        }
        assert!(handle.stats().timeouts >= 2);
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn admission_gate_sheds_with_retry_hint() {
        // max_concurrent = 0: the gate sheds everything, deterministically.
        let handle = serve_tiny(ServeConfig {
            max_concurrent: 0,
            retry_after_ms: 250,
            ..ServeConfig::default()
        });
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        for _ in 0..2 {
            let resp = roundtrip(&mut stream, &Request::Info).unwrap();
            assert_eq!(resp.status, ERR_OVERLOADED);
            assert_eq!(resp.opcode, OP_INFO); // captured from the drained body
            assert_eq!(&resp.body[..4], &250u32.to_le_bytes());
        }
        assert_eq!(handle.stats().shed, 2);
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn oversized_batch_is_refused_but_connection_survives() {
        let handle = serve_tiny(ServeConfig {
            max_batch: 2,
            ..ServeConfig::default()
        });
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let resp = roundtrip(&mut stream, &Request::ClusterOf(vec![0, 1, 0])).unwrap();
        assert_eq!(resp.status, ERR_BATCH_TOO_LARGE);
        let ok = roundtrip(&mut stream, &Request::ClusterOf(vec![0, 1])).unwrap();
        assert_eq!(ok.status, 0);
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn panic_is_isolated_to_its_connection() {
        let handle = serve_tiny(ServeConfig {
            debug_panic_op: true,
            ..ServeConfig::default()
        });
        let mut victim = TcpStream::connect(handle.addr()).unwrap();
        write_frame(&mut victim, &[OP_DEBUG_PANIC]).unwrap();
        let body = read_frame(&mut victim).unwrap().unwrap();
        let resp = decode_response(&body).unwrap();
        assert_eq!(resp.status, ERR_INTERNAL);
        assert!(resp.error_message().unwrap().contains("panic"));
        // The poisoned connection is closed…
        assert!(matches!(read_frame(&mut victim), Ok(None) | Err(_)));
        // …but the daemon keeps answering fresh ones.
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        assert_eq!(roundtrip(&mut stream, &Request::Info).unwrap().status, 0);
        assert_eq!(handle.stats().panics_caught, 1);
        // Without the debug flag the same byte is just an unknown opcode.
        let plain = serve_tiny(ServeConfig::default());
        let mut stream = TcpStream::connect(plain.addr()).unwrap();
        write_frame(&mut stream, &[OP_DEBUG_PANIC]).unwrap();
        let body = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(decode_response(&body).unwrap().status, ERR_UNKNOWN_OPCODE);
        plain.shutdown();
        plain.join();
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn idle_connections_are_reaped_without_counting_as_timeouts() {
        let handle = serve_tiny(ServeConfig {
            idle_timeout: Duration::from_millis(50),
            ..ServeConfig::default()
        });
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        assert_eq!(roundtrip(&mut stream, &Request::Info).unwrap().status, 0);
        // Sit idle past the reap threshold: the server walks away.
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        assert!(matches!(read_frame(&mut stream), Ok(None) | Err(_)));
        assert_eq!(handle.stats().timeouts, 0);
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn slow_loris_mid_frame_is_timed_out() {
        let handle = serve_tiny(ServeConfig {
            read_timeout: Duration::from_millis(50),
            ..ServeConfig::default()
        });
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // Declare a 10-byte body, send only 2 bytes, then stall.
        stream.write_all(&10u32.to_le_bytes()).unwrap();
        stream.write_all(&[OP_DIST, 0]).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let body = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(decode_response(&body).unwrap().status, ERR_TIMEOUT);
        // Out-of-sync stream: the server hung up after answering.
        assert!(matches!(read_frame(&mut stream), Ok(None) | Err(_)));
        assert_eq!(handle.stats().timeouts, 1);
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn reload_swaps_epochs_and_rolls_back_on_corruption() {
        let dir = std::env::temp_dir().join(format!("pardec_wire_reload_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.pdec");
        let bad = dir.join("bad.pdec");
        let mut bytes = Vec::new();
        tiny_session().save(&mut bytes).unwrap();
        std::fs::write(&good, &bytes).unwrap();
        std::fs::write(&bad, &bytes[..bytes.len() / 2]).unwrap();

        // Reload disabled: forbidden, nothing changes.
        let locked = serve_tiny(ServeConfig::default());
        let mut stream = TcpStream::connect(locked.addr()).unwrap();
        let resp = roundtrip(
            &mut stream,
            &Request::Reload {
                path: good.display().to_string(),
            },
        )
        .unwrap();
        assert_eq!(resp.status, ERR_FORBIDDEN);
        assert_eq!(locked.epoch(), 1);
        locked.shutdown();
        locked.join();

        // Reload enabled: corrupt file rolls back, valid file bumps the
        // epoch, and the connection survives the whole ordeal.
        let handle = serve_tiny(ServeConfig {
            allow_reload: true,
            reload_default_path: Some(good.display().to_string()),
            ..ServeConfig::default()
        });
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let resp = roundtrip(
            &mut stream,
            &Request::Reload {
                path: bad.display().to_string(),
            },
        )
        .unwrap();
        assert_eq!(resp.status, ERR_RELOAD_FAILED);
        assert!(resp.error_message().unwrap().contains("rolled back"));
        assert_eq!(handle.epoch(), 1);
        // Still serving the old snapshot on the same connection.
        assert_eq!(roundtrip(&mut stream, &Request::Info).unwrap().status, 0);
        // Empty path → the configured default (the valid file).
        let resp = roundtrip(
            &mut stream,
            &Request::Reload {
                path: String::new(),
            },
        )
        .unwrap();
        assert_eq!(resp.status, 0);
        assert_eq!(&resp.body[..], &2u64.to_le_bytes());
        assert_eq!(handle.epoch(), 2);
        assert_eq!(roundtrip(&mut stream, &Request::Info).unwrap().status, 0);
        let snap = handle.stats();
        assert_eq!((snap.reloads_ok, snap.reloads_rolled_back), (1, 1));
        handle.shutdown();
        handle.join();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_against_bare_session_is_internal_error() {
        let s = tiny_session();
        let req = Request::Reload {
            path: String::new(),
        };
        let resp = decode_response(&execute(&s, &req)).unwrap();
        assert_eq!(resp.status, ERR_INTERNAL);
        assert!(resp.error_message().unwrap().contains("server loop"));
    }
}
