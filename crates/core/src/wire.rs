//! The `pardec serve` wire protocol and server loop.
//!
//! ## Frame layout
//!
//! Every message — request or response — is one **frame**:
//!
//! ```text
//! len u32 LE | body (len bytes)
//! ```
//!
//! `len` counts the body only and must not exceed [`MAX_FRAME`] (16 MiB);
//! oversized declarations are answered with [`ERR_FRAME_TOO_LARGE`] and the
//! connection is closed without reading the body.
//!
//! ## Requests
//!
//! The body starts with an opcode byte:
//!
//! | opcode | name | payload |
//! |--------|------|---------|
//! | `0x01` | `INFO` | — |
//! | `0x02` | `DIST` | `count u32, count × (u u32, v u32)` |
//! | `0x03` | `CLUSTER_OF` | `count u32, count × v u32` |
//! | `0x04` | `ECC` | `count u32, count × v u32` |
//! | `0x05` | `NEAREST` | `n_sources u32, n_probes u32, sources, probes` |
//! | `0x06` | `SHUTDOWN` | — |
//! | `0x07` | `STATS` | — |
//!
//! ## Responses
//!
//! ```text
//! status u8 | opcode u8 | batch u32 | waves u32 | wave_rounds u32 | strategy u8 | body
//! ```
//!
//! `status = 0` is success; the echoed opcode names the request answered.
//! The middle fields are the [`QueryLedger`]: how many queries the batch
//! held, how many frontier waves it launched (a batched `NEAREST` reports
//! **1** — the amortization the daemon exists for), how many wave rounds
//! those took, and the strategy byte (`0` top-down, `1` bottom-up, `2`
//! hybrid). Success bodies:
//!
//! | request | body |
//! |---------|------|
//! | `INFO` | `nodes u64, edges u64, clusters u64, max_radius u32, has_oracle u8, growth_steps u64` |
//! | `DIST` | `count × u64` (`u64::MAX` = unreachable) |
//! | `CLUSTER_OF` | `count × u32` |
//! | `ECC` | `count × u64` |
//! | `NEAREST` | `n_probes × (source u32, dist u32)` (`0xFFFFFFFF` = unreached) |
//! | `SHUTDOWN` | — |
//! | `STATS` | see below |
//!
//! `STATS` is answered by the **server loop** (not [`execute`] — the
//! counters live with the daemon, not the session) from its running
//! [`ServerStats`]. Body layout (all integers LE):
//!
//! ```text
//! uptime_us u64 | total_requests u64 | errors u64 | bytes_in u64 |
//! bytes_out u64 | n_ops u8 | n_ops × op-entry
//! op-entry: opcode u8 | count u64 | hist_count u64 | hist_sum u64 |
//!           n_buckets u8 (= 65) | 65 × bucket u64
//! ```
//!
//! Op entries appear in ascending opcode order, only for opcodes seen at
//! least once (slot `0` aggregates frames whose opcode never decoded). The
//! per-op histogram is a [`pardec_obs`] log2 latency histogram of request
//! handling micros — p50/p90/p99 are integer bucket bounds, no floats on
//! the wire. `total_requests` counts requests answered **before** the
//! `STATS` request itself, so an idle daemon reports 0 on first query.
//!
//! Error responses carry the code in `status`, a zero ledger, and a UTF-8
//! message as the body:
//!
//! | code | meaning |
//! |------|---------|
//! | 1 | [`ERR_MALFORMED`] — body failed to decode |
//! | 2 | [`ERR_UNKNOWN_OPCODE`] |
//! | 3 | [`ERR_OUT_OF_RANGE`] — node id ≥ n |
//! | 4 | [`ERR_ORACLE_MISSING`] — `DIST`/`ECC` on an oracle-less session |
//! | 5 | [`ERR_FRAME_TOO_LARGE`] |
//! | 6 | [`ERR_INTERNAL`] |
//!
//! Responses are **deterministic**: the bytes answering a request depend
//! only on the session contents, never on the pool size or accept thread —
//! the property `bench_serve` asserts at 1 vs 4 threads.
//!
//! ## Server
//!
//! [`serve`] runs a thread-per-core accept loop: `threads` OS threads share
//! one non-cloned [`TcpListener`] (std listeners are `Sync`; `accept` is
//! kernel-serialized), each handling its accepted connection to completion
//! before accepting again. Query execution happens inside the shim rayon
//! pool passed at spawn time, so wave parallelism and connection
//! parallelism compose. `SHUTDOWN` (or [`ServerHandle::shutdown`]) flips a
//! flag and self-connects to unblock every acceptor.

use crate::session::{QueryLedger, Session, SessionError};
use bytes::{Buf, BufMut};
use pardec_graph::frontier::FrontierStrategy;
use pardec_graph::NodeId;
use pardec_obs::{AtomicLog2Histogram, Log2Histogram, BUCKETS};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Hard cap on a frame body (16 MiB) — a batch of ~1M distance pairs.
pub const MAX_FRAME: u32 = 16 << 20;

/// Request opcodes.
pub const OP_INFO: u8 = 0x01;
pub const OP_DIST: u8 = 0x02;
pub const OP_CLUSTER_OF: u8 = 0x03;
pub const OP_ECC: u8 = 0x04;
pub const OP_NEAREST: u8 = 0x05;
pub const OP_SHUTDOWN: u8 = 0x06;
pub const OP_STATS: u8 = 0x07;

/// Error codes carried in a response's `status` byte.
pub const ERR_MALFORMED: u8 = 1;
pub const ERR_UNKNOWN_OPCODE: u8 = 2;
pub const ERR_OUT_OF_RANGE: u8 = 3;
pub const ERR_ORACLE_MISSING: u8 = 4;
pub const ERR_FRAME_TOO_LARGE: u8 = 5;
pub const ERR_INTERNAL: u8 = 6;

/// A decoded client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Session metadata.
    Info,
    /// Batched §4 distance upper bounds.
    Distance(Vec<(NodeId, NodeId)>),
    /// Batched cluster-membership lookups.
    ClusterOf(Vec<NodeId>),
    /// Batched eccentricity upper bounds.
    Eccentricity(Vec<NodeId>),
    /// Batched nearest-source queries (one frontier wave for the batch).
    Nearest {
        /// Wave sources, activated together.
        sources: Vec<NodeId>,
        /// Probe nodes; each answers with its claiming source + distance.
        probes: Vec<NodeId>,
    },
    /// Stop the daemon after acknowledging.
    Shutdown,
    /// Daemon-side request counters + latency histograms (answered by the
    /// server loop, not the session).
    Stats,
}

impl Request {
    /// The opcode this request travels under.
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Info => OP_INFO,
            Request::Distance(_) => OP_DIST,
            Request::ClusterOf(_) => OP_CLUSTER_OF,
            Request::Eccentricity(_) => OP_ECC,
            Request::Nearest { .. } => OP_NEAREST,
            Request::Shutdown => OP_SHUTDOWN,
            Request::Stats => OP_STATS,
        }
    }
}

/// A response, decomposed (what [`decode_response`] returns).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// 0 = success, else one of the `ERR_*` codes.
    pub status: u8,
    /// Echo of the request opcode (0 when the opcode never decoded).
    pub opcode: u8,
    /// Batch size of the answered request.
    pub batch: u32,
    /// Frontier waves the batch launched.
    pub waves: u32,
    /// Total wave rounds.
    pub wave_rounds: u32,
    /// Strategy byte (see [`strategy_to_byte`]).
    pub strategy: u8,
    /// Result payload (or UTF-8 error message).
    pub body: Vec<u8>,
}

impl Response {
    /// The error message of a failed response, if printable.
    pub fn error_message(&self) -> Option<String> {
        (self.status != 0).then(|| String::from_utf8_lossy(&self.body).into_owned())
    }
}

/// Stable byte encoding of a frontier strategy.
pub fn strategy_to_byte(s: FrontierStrategy) -> u8 {
    match s {
        FrontierStrategy::TopDown => 0,
        FrontierStrategy::BottomUp => 1,
        FrontierStrategy::Hybrid => 2,
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    assert!(body.len() <= MAX_FRAME as usize, "frame body too large");
    let mut buf = Vec::with_capacity(4 + body.len());
    buf.put_u32_le(body.len() as u32);
    buf.extend_from_slice(body);
    w.write_all(&buf)
}

/// Reads one frame body. `Ok(None)` on clean EOF before the length prefix;
/// an error mid-frame is a broken peer.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("declared frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

// ---------------------------------------------------------------------
// Request codec
// ---------------------------------------------------------------------

/// Encodes a request into a frame body (no length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.put_u8(req.opcode());
    match req {
        Request::Info | Request::Shutdown | Request::Stats => {}
        Request::Distance(pairs) => {
            buf.put_u32_le(pairs.len() as u32);
            for &(u, v) in pairs {
                buf.put_u32_le(u);
                buf.put_u32_le(v);
            }
        }
        Request::ClusterOf(nodes) | Request::Eccentricity(nodes) => {
            buf.put_u32_le(nodes.len() as u32);
            for &v in nodes {
                buf.put_u32_le(v);
            }
        }
        Request::Nearest { sources, probes } => {
            buf.put_u32_le(sources.len() as u32);
            buf.put_u32_le(probes.len() as u32);
            for &s in sources {
                buf.put_u32_le(s);
            }
            for &p in probes {
                buf.put_u32_le(p);
            }
        }
    }
    buf
}

/// Decode failure: the error code + message the server answers with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// One of the `ERR_*` codes.
    pub code: u8,
    /// Human-readable detail (becomes the response body).
    pub message: String,
    /// Opcode to echo (0 if it never decoded).
    pub opcode: u8,
}

fn malformed(opcode: u8, msg: impl Into<String>) -> WireError {
    WireError {
        code: ERR_MALFORMED,
        message: msg.into(),
        opcode,
    }
}

fn expect_len(buf: &[u8], want: usize, what: &str, opcode: u8) -> Result<(), WireError> {
    if buf.remaining() == want {
        Ok(())
    } else {
        Err(malformed(opcode, format!("{what}: length mismatch")))
    }
}

/// Reads `count` node ids (the caller has already validated sizing).
fn take_nodes(buf: &mut &[u8], count: usize) -> Vec<NodeId> {
    (0..count).map(|_| buf.get_u32_le()).collect()
}

/// Decodes a request frame body.
pub fn decode_request(body: &[u8]) -> Result<Request, WireError> {
    let mut buf = body;
    if buf.is_empty() {
        return Err(malformed(0, "empty request"));
    }
    let opcode = buf.get_u8();
    match opcode {
        OP_INFO => {
            expect_len(buf, 0, "INFO", opcode)?;
            Ok(Request::Info)
        }
        OP_SHUTDOWN => {
            expect_len(buf, 0, "SHUTDOWN", opcode)?;
            Ok(Request::Shutdown)
        }
        OP_STATS => {
            expect_len(buf, 0, "STATS", opcode)?;
            Ok(Request::Stats)
        }
        OP_DIST => {
            if buf.remaining() < 4 {
                return Err(malformed(opcode, "DIST: missing count"));
            }
            let count = buf.get_u32_le() as usize;
            expect_len(buf, count * 8, "DIST", opcode)?;
            let pairs = (0..count)
                .map(|_| (buf.get_u32_le(), buf.get_u32_le()))
                .collect();
            Ok(Request::Distance(pairs))
        }
        OP_CLUSTER_OF | OP_ECC => {
            if buf.remaining() < 4 {
                return Err(malformed(opcode, "missing count"));
            }
            let count = buf.get_u32_le() as usize;
            expect_len(buf, count * 4, "node batch", opcode)?;
            let nodes = take_nodes(&mut buf, count);
            Ok(if opcode == OP_CLUSTER_OF {
                Request::ClusterOf(nodes)
            } else {
                Request::Eccentricity(nodes)
            })
        }
        OP_NEAREST => {
            if buf.remaining() < 8 {
                return Err(malformed(opcode, "NEAREST: missing counts"));
            }
            let n_sources = buf.get_u32_le() as usize;
            let n_probes = buf.get_u32_le() as usize;
            let want = n_sources
                .checked_add(n_probes)
                .and_then(|t| t.checked_mul(4))
                .ok_or_else(|| malformed(opcode, "NEAREST: counts overflow"))?;
            expect_len(buf, want, "NEAREST", opcode)?;
            let sources = take_nodes(&mut buf, n_sources);
            let probes = take_nodes(&mut buf, n_probes);
            Ok(Request::Nearest { sources, probes })
        }
        other => Err(WireError {
            code: ERR_UNKNOWN_OPCODE,
            message: format!("unknown opcode {other:#04x}"),
            opcode: other,
        }),
    }
}

// ---------------------------------------------------------------------
// Response codec
// ---------------------------------------------------------------------

fn response_frame(status: u8, opcode: u8, ledger: Option<QueryLedger>, body: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(15 + body.len());
    buf.put_u8(status);
    buf.put_u8(opcode);
    match ledger {
        Some(l) => {
            buf.put_u32_le(l.batch);
            buf.put_u32_le(l.waves);
            buf.put_u32_le(l.wave_rounds);
            buf.put_u8(strategy_to_byte(l.strategy));
        }
        None => {
            buf.put_u32_le(0);
            buf.put_u32_le(0);
            buf.put_u32_le(0);
            buf.put_u8(0);
        }
    }
    buf.extend_from_slice(body);
    buf
}

/// Decodes a response frame body (client side).
pub fn decode_response(body: &[u8]) -> io::Result<Response> {
    let mut buf = body;
    if buf.remaining() < 15 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "response shorter than its fixed header",
        ));
    }
    Ok(Response {
        status: buf.get_u8(),
        opcode: buf.get_u8(),
        batch: buf.get_u32_le(),
        waves: buf.get_u32_le(),
        wave_rounds: buf.get_u32_le(),
        strategy: buf.get_u8(),
        body: buf.to_vec(),
    })
}

fn session_error_frame(opcode: u8, e: &SessionError) -> Vec<u8> {
    let code = match e {
        SessionError::NodeOutOfRange(_) => ERR_OUT_OF_RANGE,
        SessionError::OracleMissing => ERR_ORACLE_MISSING,
    };
    response_frame(code, opcode, None, e.to_string().as_bytes())
}

/// Executes one decoded request against a session, producing the response
/// frame body. Pure with respect to the session — this is the function the
/// golden-bytes tests pin down.
pub fn execute(session: &Session, req: &Request) -> Vec<u8> {
    let opcode = req.opcode();
    match req {
        Request::Info => {
            let mut body = Vec::with_capacity(8 * 4 + 5);
            body.put_u64_le(session.graph().num_nodes() as u64);
            body.put_u64_le(session.graph().num_edges() as u64);
            body.put_u64_le(session.clustering().num_clusters() as u64);
            body.put_u32_le(session.clustering().max_radius());
            body.put_u8(session.oracle().is_some() as u8);
            body.put_u64_le(session.growth_steps() as u64);
            let ledger = QueryLedger {
                batch: 0,
                waves: 0,
                wave_rounds: 0,
                strategy: session.frontier(),
            };
            response_frame(0, opcode, Some(ledger), &body)
        }
        Request::Shutdown => response_frame(
            0,
            opcode,
            Some(QueryLedger {
                batch: 0,
                waves: 0,
                wave_rounds: 0,
                strategy: session.frontier(),
            }),
            &[],
        ),
        // The counters live with the running daemon, not the session;
        // `execute` stays pure, so a bare session cannot answer STATS.
        Request::Stats => response_frame(
            ERR_INTERNAL,
            opcode,
            None,
            b"STATS is answered by the server loop, not a bare session",
        ),
        Request::Distance(pairs) => match session.distance(pairs) {
            Err(e) => session_error_frame(opcode, &e),
            Ok((dists, ledger)) => {
                let mut body = Vec::with_capacity(dists.len() * 8);
                for d in dists {
                    body.put_u64_le(d);
                }
                response_frame(0, opcode, Some(ledger), &body)
            }
        },
        Request::ClusterOf(nodes) => match session.cluster_of(nodes) {
            Err(e) => session_error_frame(opcode, &e),
            Ok((clusters, ledger)) => {
                let mut body = Vec::with_capacity(clusters.len() * 4);
                for c in clusters {
                    body.put_u32_le(c);
                }
                response_frame(0, opcode, Some(ledger), &body)
            }
        },
        Request::Eccentricity(nodes) => match session.eccentricity(nodes) {
            Err(e) => session_error_frame(opcode, &e),
            Ok((bounds, ledger)) => {
                let mut body = Vec::with_capacity(bounds.len() * 8);
                for b in bounds {
                    body.put_u64_le(b);
                }
                response_frame(0, opcode, Some(ledger), &body)
            }
        },
        Request::Nearest { sources, probes } => match session.nearest(sources, probes) {
            Err(e) => session_error_frame(opcode, &e),
            Ok((answers, ledger)) => {
                let mut body = Vec::with_capacity(answers.len() * 8);
                for (src, dist) in answers {
                    body.put_u32_le(src);
                    body.put_u32_le(dist);
                }
                response_frame(0, opcode, Some(ledger), &body)
            }
        },
    }
}

/// Answers one raw request frame body (decode → execute), mapping decode
/// failures to error responses. Never panics on hostile input.
pub fn answer(session: &Session, frame: &[u8]) -> (Vec<u8>, bool) {
    match decode_request(frame) {
        Ok(req) => {
            let shutdown = req == Request::Shutdown;
            (execute(session, &req), shutdown)
        }
        Err(e) => (
            response_frame(e.code, e.opcode, None, e.message.as_bytes()),
            false,
        ),
    }
}

// ---------------------------------------------------------------------
// Server-side stats (the STATS surface)
// ---------------------------------------------------------------------

/// Slots in the per-opcode table: index 0 aggregates frames whose opcode
/// never decoded; indices 1..=7 are the opcodes themselves.
const NUM_OP_SLOTS: usize = OP_STATS as usize + 1;

struct OpSlot {
    count: AtomicU64,
    latency: AtomicLog2Histogram,
}

/// Live request counters of a running daemon: relaxed atomics shared by all
/// accept threads, so recording never perturbs request handling. Snapshot
/// with [`ServerStats::snapshot`]; ship with [`encode_stats_body`].
pub struct ServerStats {
    started: Instant,
    total_requests: AtomicU64,
    errors: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    per_op: [OpSlot; NUM_OP_SLOTS],
}

impl Default for ServerStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerStats {
    /// Fresh counters; `uptime_us` is measured from this call.
    pub fn new() -> Self {
        ServerStats {
            started: Instant::now(),
            total_requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            per_op: std::array::from_fn(|_| OpSlot {
                count: AtomicU64::new(0),
                latency: AtomicLog2Histogram::new(),
            }),
        }
    }

    /// Records one answered frame. `opcode` 0 (or out of table range) lands
    /// in the undecodable slot; `micros` is wall time from frame decode to
    /// response write.
    pub fn record(&self, opcode: u8, ok: bool, bytes_in: u64, bytes_out: u64, micros: u64) {
        let slot = if (opcode as usize) < NUM_OP_SLOTS {
            opcode as usize
        } else {
            0
        };
        self.total_requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.bytes_in.fetch_add(bytes_in, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes_out, Ordering::Relaxed);
        self.per_op[slot].count.fetch_add(1, Ordering::Relaxed);
        self.per_op[slot].latency.record(micros);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        let per_op = self
            .per_op
            .iter()
            .enumerate()
            .filter(|(_, s)| s.count.load(Ordering::Relaxed) > 0)
            .map(|(op, s)| OpStats {
                opcode: op as u8,
                count: s.count.load(Ordering::Relaxed),
                latency: s.latency.snapshot(),
            })
            .collect();
        StatsSnapshot {
            uptime_us: self.started.elapsed().as_micros() as u64,
            total_requests: self.total_requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            per_op,
        }
    }
}

/// Per-opcode slice of a [`StatsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpStats {
    /// Request opcode (0 = frames whose opcode never decoded).
    pub opcode: u8,
    /// Frames answered under this opcode.
    pub count: u64,
    /// Request-handling latency distribution, in microseconds.
    pub latency: Log2Histogram,
}

/// What a `STATS` response carries (see the module docs for the layout).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Microseconds since the daemon started.
    pub uptime_us: u64,
    /// Frames answered before this snapshot (the STATS frame itself is
    /// recorded only after its response is written).
    pub total_requests: u64,
    /// Of those, how many were answered with a non-zero status.
    pub errors: u64,
    /// Wire bytes received (frames + length prefixes).
    pub bytes_in: u64,
    /// Wire bytes sent (frames + length prefixes).
    pub bytes_out: u64,
    /// Per-opcode counts + latency histograms, ascending opcode, seen
    /// opcodes only.
    pub per_op: Vec<OpStats>,
}

/// Encodes a stats snapshot into a `STATS` response body.
pub fn encode_stats_body(s: &StatsSnapshot) -> Vec<u8> {
    let mut buf = Vec::with_capacity(41 + s.per_op.len() * (26 + BUCKETS * 8));
    buf.put_u64_le(s.uptime_us);
    buf.put_u64_le(s.total_requests);
    buf.put_u64_le(s.errors);
    buf.put_u64_le(s.bytes_in);
    buf.put_u64_le(s.bytes_out);
    buf.put_u8(s.per_op.len() as u8);
    for op in &s.per_op {
        buf.put_u8(op.opcode);
        buf.put_u64_le(op.count);
        buf.put_u64_le(op.latency.count());
        buf.put_u64_le(op.latency.sum());
        buf.put_u8(BUCKETS as u8);
        for &c in op.latency.counts() {
            buf.put_u64_le(c);
        }
    }
    buf
}

/// Decodes a `STATS` response body (client side).
pub fn decode_stats_body(body: &[u8]) -> io::Result<StatsSnapshot> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, format!("STATS body: {msg}"));
    let mut buf = body;
    if buf.remaining() < 41 {
        return Err(bad("shorter than its fixed header"));
    }
    let uptime_us = buf.get_u64_le();
    let total_requests = buf.get_u64_le();
    let errors = buf.get_u64_le();
    let bytes_in = buf.get_u64_le();
    let bytes_out = buf.get_u64_le();
    let n_ops = buf.get_u8() as usize;
    if buf.remaining() != n_ops * (26 + BUCKETS * 8) {
        return Err(bad("op table length mismatch"));
    }
    let mut per_op = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let opcode = buf.get_u8();
        let count = buf.get_u64_le();
        let hist_count = buf.get_u64_le();
        let hist_sum = buf.get_u64_le();
        if buf.get_u8() as usize != BUCKETS {
            return Err(bad("unexpected bucket count"));
        }
        let mut counts = [0u64; BUCKETS];
        for c in counts.iter_mut() {
            *c = buf.get_u64_le();
        }
        per_op.push(OpStats {
            opcode,
            count,
            latency: Log2Histogram::from_parts(counts, hist_count, hist_sum),
        });
    }
    Ok(StatsSnapshot {
        uptime_us,
        total_requests,
        errors,
        bytes_in,
        bytes_out,
        per_op,
    })
}

/// Builds the full `STATS` response frame (status 0, zero ledger).
pub fn stats_response_frame(s: &StatsSnapshot) -> Vec<u8> {
    response_frame(0, OP_STATS, None, &encode_stats_body(s))
}

// ---------------------------------------------------------------------
// Server loop
// ---------------------------------------------------------------------

/// A running daemon: join handles + shutdown trigger.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    stats: Arc<ServerStats>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port 0 bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the daemon's request counters — the same
    /// numbers an `OP_STATS` request reads over the wire.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Requests shutdown and unblocks every acceptor.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for _ in 0..self.threads.len() {
            // Wake an acceptor blocked in `accept`; errors mean it is
            // already gone, which is fine.
            let _ = TcpStream::connect(self.addr);
        }
    }

    /// Waits for every accept thread to exit. Call [`Self::shutdown`] first
    /// (or send an `OP_SHUTDOWN` request) or this blocks forever.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn handle_connection(
    session: &Session,
    stats: &ServerStats,
    stream: &mut TcpStream,
) -> io::Result<bool> {
    stream.set_nodelay(true).ok();
    loop {
        let frame = match read_frame(stream) {
            Ok(Some(f)) => f,
            Ok(None) => return Ok(false), // clean EOF
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversized declaration: answer with the error code, then
                // drop the connection (the stream is no longer in sync).
                let resp = response_frame(ERR_FRAME_TOO_LARGE, 0, None, e.to_string().as_bytes());
                write_frame(stream, &resp)?;
                stats.record(0, false, 4, 4 + resp.len() as u64, 0);
                return Ok(false);
            }
            Err(e) => return Err(e),
        };
        let started = Instant::now();
        let mut req_span = pardec_obs::span!("serve.request", bytes_in = frame.len());
        // STATS is answered here, from the daemon's counters, with the
        // snapshot taken *before* this frame is recorded — `total_requests`
        // is exactly the number of previously answered frames. Everything
        // else goes through the pure `execute` path.
        let (resp, shutdown, opcode, ok) = match decode_request(&frame) {
            Ok(Request::Stats) => (
                stats_response_frame(&stats.snapshot()),
                false,
                OP_STATS,
                true,
            ),
            Ok(req) => {
                let shutdown = req == Request::Shutdown;
                let resp = execute(session, &req);
                let ok = resp.first() == Some(&0);
                (resp, shutdown, req.opcode(), ok)
            }
            Err(e) => (
                response_frame(e.code, e.opcode, None, e.message.as_bytes()),
                false,
                e.opcode,
                false,
            ),
        };
        write_frame(stream, &resp)?;
        req_span.field("opcode", opcode);
        req_span.field("ok", ok);
        req_span.field("bytes_out", resp.len());
        drop(req_span);
        stats.record(
            opcode,
            ok,
            4 + frame.len() as u64,
            4 + resp.len() as u64,
            started.elapsed().as_micros() as u64,
        );
        if shutdown {
            return Ok(true);
        }
    }
}

/// Spawns the accept loop: `threads` OS threads sharing `listener`, each
/// executing its connections' queries inside `pool`. Returns immediately.
///
/// `threads` is clamped to ≥ 1. The pool is shared — wave execution uses
/// `pool.install`, which is safe from multiple OS threads concurrently (the
/// shim pool work-steals across external waiters).
pub fn serve(
    listener: TcpListener,
    session: Arc<Session>,
    pool: Arc<rayon::ThreadPool>,
    threads: usize,
) -> io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServerStats::new());
    let listener = Arc::new(listener);
    let mut handles = Vec::new();
    for i in 0..threads.max(1) {
        let (listener, session, pool, stop, stats) = (
            listener.clone(),
            session.clone(),
            pool.clone(),
            stop.clone(),
            stats.clone(),
        );
        handles.push(
            std::thread::Builder::new()
                .name(format!("pardec-accept-{i}"))
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        let Ok((mut stream, _)) = listener.accept() else {
                            continue;
                        };
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let wants_shutdown = pool
                            .install(|| handle_connection(&session, &stats, &mut stream))
                            .unwrap_or(false);
                        if wants_shutdown {
                            stop.store(true, Ordering::SeqCst);
                            // Unblock sibling acceptors.
                            for _ in 0..threads {
                                let _ = TcpStream::connect(addr);
                            }
                        }
                    }
                })?,
        );
    }
    Ok(ServerHandle {
        addr,
        stop,
        threads: handles,
        stats,
    })
}

/// Client-side helper: send one request over `stream`, read the response.
pub fn roundtrip(stream: &mut TcpStream, req: &Request) -> io::Result<Response> {
    write_frame(stream, &encode_request(req))?;
    let body = read_frame(stream)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
    decode_response(&body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionParams;
    use pardec_graph::generators;

    fn tiny_session() -> Session {
        // path(2) with τ → singletons: two clusters, apsp [[0,1],[1,0]] —
        // small enough to pin golden bytes by hand. Strategy pinned so the
        // golden ledger byte is independent of PARDEC_FRONTIER.
        Session::build(
            generators::path(2),
            &SessionParams::new(100, 0).with_frontier(FrontierStrategy::TopDown),
        )
    }

    #[test]
    fn request_codec_round_trips() {
        let reqs = [
            Request::Info,
            Request::Shutdown,
            Request::Distance(vec![(0, 1), (1, 1)]),
            Request::ClusterOf(vec![0, 1, 0]),
            Request::Eccentricity(vec![1]),
            Request::Nearest {
                sources: vec![0],
                probes: vec![0, 1],
            },
            Request::Stats,
        ];
        for req in reqs {
            let body = encode_request(&req);
            assert_eq!(decode_request(&body).unwrap(), req);
        }
    }

    #[test]
    fn golden_request_bytes() {
        // DIST [(2, 259)] : opcode, count=1, u=2, v=259.
        assert_eq!(
            encode_request(&Request::Distance(vec![(2, 259)])),
            [0x02, 1, 0, 0, 0, 2, 0, 0, 0, 3, 1, 0, 0]
        );
        // NEAREST {sources: [7], probes: [1, 2]}.
        assert_eq!(
            encode_request(&Request::Nearest {
                sources: vec![7],
                probes: vec![1, 2]
            }),
            [0x05, 1, 0, 0, 0, 2, 0, 0, 0, 7, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0]
        );
        assert_eq!(encode_request(&Request::Info), [0x01]);
        assert_eq!(encode_request(&Request::Shutdown), [0x06]);
        assert_eq!(encode_request(&Request::Stats), [0x07]);
    }

    #[test]
    fn stats_body_codec_round_trips() {
        let mut latency = Log2Histogram::new();
        latency.record(12);
        latency.record(900);
        latency.record(0);
        let snap = StatsSnapshot {
            uptime_us: 123_456,
            total_requests: 3,
            errors: 1,
            bytes_in: 64,
            bytes_out: 512,
            per_op: vec![
                OpStats {
                    opcode: 0,
                    count: 1,
                    latency: Log2Histogram::new(),
                },
                OpStats {
                    opcode: OP_NEAREST,
                    count: 2,
                    latency,
                },
            ],
        };
        let body = encode_stats_body(&snap);
        assert_eq!(decode_stats_body(&body).unwrap(), snap);
        // Truncations and bad bucket counts are refused, never panic.
        for cut in [0, 10, 40, body.len() - 1] {
            assert!(decode_stats_body(&body[..cut]).is_err(), "cut {cut}");
        }
        let mut wrong = body.clone();
        wrong[41 + 25] = 7; // n_buckets of the first op entry
        assert!(decode_stats_body(&wrong).is_err());
    }

    #[test]
    fn golden_stats_response_bytes() {
        // An idle daemon's snapshot: no per-op entries, all counters zero
        // except uptime. Frame = status 0, opcode 0x07, zero ledger, then
        // the 41-byte fixed stats header.
        let snap = StatsSnapshot {
            uptime_us: 2,
            total_requests: 0,
            errors: 0,
            bytes_in: 0,
            bytes_out: 0,
            per_op: Vec::new(),
        };
        #[rustfmt::skip]
        let expected = [
            0u8,        // status ok
            0x07,       // opcode echo
            0, 0, 0, 0, // batch = 0
            0, 0, 0, 0, // waves = 0
            0, 0, 0, 0, // rounds = 0
            0,          // strategy = 0 (no ledger)
            2, 0, 0, 0, 0, 0, 0, 0, // uptime_us = 2
            0, 0, 0, 0, 0, 0, 0, 0, // total_requests
            0, 0, 0, 0, 0, 0, 0, 0, // errors
            0, 0, 0, 0, 0, 0, 0, 0, // bytes_in
            0, 0, 0, 0, 0, 0, 0, 0, // bytes_out
            0,          // n_ops
        ];
        assert_eq!(stats_response_frame(&snap), expected);
    }

    #[test]
    fn stats_over_a_live_daemon() {
        let session = Arc::new(tiny_session());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let pool = Arc::new(
            rayon::ThreadPoolBuilder::new()
                .num_threads(2)
                .build()
                .unwrap(),
        );
        let handle = serve(listener, session, pool, 2).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();

        // A fresh daemon has answered nothing.
        let first = roundtrip(&mut stream, &Request::Stats).unwrap();
        assert_eq!(first.status, 0);
        assert_eq!(first.opcode, OP_STATS);
        let snap = decode_stats_body(&first.body).unwrap();
        assert_eq!(snap.total_requests, 0);
        assert!(snap.per_op.is_empty());

        // Three queries (one of them failing) + the prior STATS frame.
        roundtrip(&mut stream, &Request::Info).unwrap();
        roundtrip(&mut stream, &Request::ClusterOf(vec![0, 1])).unwrap();
        let err = roundtrip(&mut stream, &Request::ClusterOf(vec![99])).unwrap();
        assert_eq!(err.status, ERR_OUT_OF_RANGE);

        let second = roundtrip(&mut stream, &Request::Stats).unwrap();
        let snap = decode_stats_body(&second.body).unwrap();
        assert_eq!(snap.total_requests, 4);
        assert_eq!(snap.errors, 1);
        assert!(snap.bytes_in > 0 && snap.bytes_out > 0);
        let by_op: Vec<(u8, u64)> = snap.per_op.iter().map(|o| (o.opcode, o.count)).collect();
        assert_eq!(by_op, [(OP_INFO, 1), (OP_CLUSTER_OF, 2), (OP_STATS, 1)]);
        for op in &snap.per_op {
            assert_eq!(op.latency.count(), op.count);
        }
        // The in-process view agrees with the wire view (modulo the frames
        // answered since).
        assert!(handle.stats().total_requests >= snap.total_requests);

        let bye = roundtrip(&mut stream, &Request::Shutdown).unwrap();
        assert_eq!(bye.status, 0);
        drop(stream);
        handle.join();
    }

    #[test]
    fn stats_against_bare_session_is_internal_error() {
        let s = tiny_session();
        let resp = decode_response(&execute(&s, &Request::Stats)).unwrap();
        assert_eq!(resp.status, ERR_INTERNAL);
        assert!(resp.error_message().unwrap().contains("server loop"));
    }

    #[test]
    fn golden_response_bytes() {
        let s = tiny_session();
        // DIST (0,1) on the 2-path with singleton clusters: centers are the
        // nodes themselves, apsp[0][1] = 1, so d = 0 + 1 + 0 = 1.
        let resp = execute(&s, &Request::Distance(vec![(0, 1)]));
        #[rustfmt::skip]
        let expected = [
            0u8,        // status ok
            0x02,       // opcode echo
            1, 0, 0, 0, // batch = 1
            0, 0, 0, 0, // waves = 0 (table lookup)
            0, 0, 0, 0, // rounds = 0
            0,          // strategy = top-down
            1, 0, 0, 0, 0, 0, 0, 0, // dist = 1 (u64)
        ];
        assert_eq!(resp, expected);

        // CLUSTER_OF [1] → cluster 1.
        let resp = execute(&s, &Request::ClusterOf(vec![1]));
        assert_eq!(&resp[..2], &[0, 0x03]);
        assert_eq!(&resp[15..], &[1, 0, 0, 0]);

        // NEAREST {sources: [0], probes: [0, 1]} → one wave, exact hops.
        let resp = execute(
            &s,
            &Request::Nearest {
                sources: vec![0],
                probes: vec![0, 1],
            },
        );
        let parsed = decode_response(&resp).unwrap();
        assert_eq!(parsed.status, 0);
        assert_eq!(parsed.batch, 2);
        assert_eq!(parsed.waves, 1);
        assert!(parsed.wave_rounds >= 1);
        assert_eq!(
            parsed.body,
            [
                0, 0, 0, 0, 0, 0, 0, 0, /* probe 0: src 0, dist 0 */
                0, 0, 0, 0, 1, 0, 0, 0
            ] /* probe 1: src 0, dist 1 */
        );
    }

    #[test]
    fn error_codes_on_the_wire() {
        let s = tiny_session();
        // Out-of-range node.
        let resp = decode_response(&execute(&s, &Request::ClusterOf(vec![99]))).unwrap();
        assert_eq!(resp.status, ERR_OUT_OF_RANGE);
        assert!(resp.error_message().unwrap().contains("99"));
        // Oracle missing.
        let no_oracle = Session::build(
            generators::path(2),
            &SessionParams::new(100, 0).without_oracle(),
        );
        let resp = decode_response(&execute(&no_oracle, &Request::Distance(vec![(0, 1)]))).unwrap();
        assert_eq!(resp.status, ERR_ORACLE_MISSING);
        // Unknown opcode / malformed payloads.
        let (resp, _) = answer(&s, &[0x7F]);
        assert_eq!(decode_response(&resp).unwrap().status, ERR_UNKNOWN_OPCODE);
        let (resp, _) = answer(&s, &[]);
        assert_eq!(decode_response(&resp).unwrap().status, ERR_MALFORMED);
        let (resp, _) = answer(&s, &[OP_DIST, 5, 0, 0, 0, 1]);
        assert_eq!(decode_response(&resp).unwrap().status, ERR_MALFORMED);
        // Declared count far beyond the payload must not allocate/panic.
        let (resp, _) = answer(&s, &[OP_NEAREST, 255, 255, 255, 255, 255, 255, 255, 255]);
        assert_eq!(decode_response(&resp).unwrap().status, ERR_MALFORMED);
    }

    #[test]
    fn tcp_serve_round_trip_and_shutdown() {
        let session = Arc::new(tiny_session());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let pool = Arc::new(
            rayon::ThreadPoolBuilder::new()
                .num_threads(2)
                .build()
                .unwrap(),
        );
        let handle = serve(listener, session.clone(), pool, 2).unwrap();
        let addr = handle.addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        let info = roundtrip(&mut stream, &Request::Info).unwrap();
        assert_eq!(info.status, 0);
        assert_eq!(&info.body[..8], &2u64.to_le_bytes());

        // Two requests on one connection (keep-alive).
        let r1 = roundtrip(&mut stream, &Request::ClusterOf(vec![0, 1])).unwrap();
        assert_eq!(r1.status, 0);
        let r2 = roundtrip(
            &mut stream,
            &Request::Nearest {
                sources: vec![1],
                probes: vec![0],
            },
        )
        .unwrap();
        assert_eq!(r2.waves, 1);
        assert_eq!(r2.body, [1, 0, 0, 0, 1, 0, 0, 0]);
        drop(stream);

        // A second client from another thread while the first was live is
        // covered by the bench; here just shut down cleanly via the wire.
        let mut stream = TcpStream::connect(addr).unwrap();
        let bye = roundtrip(&mut stream, &Request::Shutdown).unwrap();
        assert_eq!(bye.status, 0);
        drop(stream);
        handle.join();
        // The port is released: a fresh bind to the same address works.
        assert!(TcpStream::connect(addr).is_err() || TcpListener::bind(addr).is_ok());
    }

    #[test]
    fn oversized_frame_is_refused() {
        let session = Arc::new(tiny_session());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let pool = Arc::new(
            rayon::ThreadPoolBuilder::new()
                .num_threads(1)
                .build()
                .unwrap(),
        );
        let handle = serve(listener, session, pool, 1).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.write_all(&(MAX_FRAME + 1).to_le_bytes()).unwrap();
        let body = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(decode_response(&body).unwrap().status, ERR_FRAME_TOO_LARGE);
        // Server closed the connection afterwards.
        assert!(matches!(read_frame(&mut stream), Ok(None) | Err(_)));
        handle.shutdown();
        handle.join();
    }
}
