//! A resident decomposition **session**: graph + clustering + oracle, loaded
//! once and queried many times.
//!
//! This is the load-bearing type of the `pardec serve` redesign. The one-shot
//! pipeline of the paper (decompose → report → exit) becomes
//!
//! 1. [`Session::build`] — run CLUSTER / CLUSTER2 / MPX on a graph and
//!    optionally construct the §4 distance oracle, or
//! 2. [`Session::save`] / [`Session::load`] — persist everything into a
//!    `PDEC2` sectioned snapshot ([`pardec_graph::io`]) and reload it in time
//!    proportional to the stored bytes, with no re-clustering and no
//!    re-sorting;
//!
//! then answer **batched queries**:
//!
//! * [`Session::distance`] — §4 oracle upper bounds, O(1) per pair;
//! * [`Session::cluster_of`] — assignment lookups;
//! * [`Session::eccentricity`] — per-node eccentricity upper bounds from the
//!   oracle's quotient APSP + cluster radii;
//! * [`Session::nearest`] — the batch-amortized traversal: **one**
//!   multi-source [`FrontierEngine`] wave answers every probe in the batch
//!   (nearest source + exact hop distance), so hundreds of queries cost one
//!   traversal of the graph.
//!
//! Every method returns a [`QueryLedger`] describing what the batch cost —
//! batch size, frontier waves launched, wave rounds, strategy — which the
//! wire protocol forwards to clients verbatim.
//!
//! ## Snapshot sections
//!
//! | tag | version | payload |
//! |-----|---------|---------|
//! | `CLUS` | 1 | `n u64, k u64, growth_steps u64, assignment n×u32, centers k×u32, dist_to_center n×u32, radii k×u32` |
//! | `ORCL` | 1 | `q u64, apsp q²×u64` (row-major; per-node arrays are shared with `CLUS`) |
//!
//! All integers little-endian; all size arithmetic checked, so hostile
//! section payloads error rather than panic or over-allocate.

use crate::cluster::{cluster, ClusterParams};
use crate::cluster2::cluster2;
use crate::clustering::Clustering;
use crate::diameter::{approximate_diameter_of_clustering, DiameterApprox, DiameterParams};
use crate::mpx::mpx_with_frontier;
use crate::oracle::DistanceOracle;
use bytes::{Buf, BufMut};
use pardec_graph::frontier::{FrontierEngine, FrontierStrategy};
use pardec_graph::io::{save_snapshot_repr, SectionData, Snapshot};
use pardec_graph::{Backend, CsrGraph, GraphRepr, NodeId, INFINITE_DIST, INVALID_NODE};
use std::io::{self, Write};

/// Section tag for the persisted [`Clustering`] (`b"CLUS"`).
pub const SECTION_CLUSTERING: u32 = u32::from_le_bytes(*b"CLUS");
/// Layout version of the clustering section.
pub const SECTION_CLUSTERING_VERSION: u32 = 1;
/// Section tag for the persisted [`DistanceOracle`] state (`b"ORCL"`).
pub const SECTION_ORACLE: u32 = u32::from_le_bytes(*b"ORCL");
/// Layout version of the oracle section.
pub const SECTION_ORACLE_VERSION: u32 = 1;

/// Which decomposition a session runs at build time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SessionAlgo {
    /// CLUSTER(τ) — Algorithm 1.
    Cluster,
    /// CLUSTER2(τ) — Algorithm 2 (the Theorem 3 variant).
    Cluster2,
    /// Miller–Peng–Xu random-shift decomposition with rate `beta`.
    Mpx {
        /// Exponential start-time rate (`beta > 0`).
        beta: f64,
    },
}

impl SessionAlgo {
    /// Stable lowercase name (matches the CLI spelling).
    pub fn name(&self) -> &'static str {
        match self {
            SessionAlgo::Cluster => "cluster",
            SessionAlgo::Cluster2 => "cluster2",
            SessionAlgo::Mpx { .. } => "mpx",
        }
    }
}

/// Parameters of [`Session::build`].
#[derive(Clone, Debug)]
pub struct SessionParams {
    /// Decomposition granularity τ (ignored by MPX).
    pub tau: usize,
    /// RNG seed.
    pub seed: u64,
    /// Which decomposition to run.
    pub algo: SessionAlgo,
    /// Frontier strategy for growth phases *and* later `nearest` batches.
    pub frontier: FrontierStrategy,
    /// Also build the §4 distance oracle (costs one quotient APSP; enables
    /// `distance` / `eccentricity` queries).
    pub build_oracle: bool,
    /// Adjacency storage backend the resident graph is held under. Like
    /// `frontier`, a memory/wall-clock knob only: every backend produces
    /// byte-identical clusterings, oracles, and query answers.
    pub backend: Backend,
}

impl SessionParams {
    /// CLUSTER(τ) with the ambient frontier default and an oracle. The
    /// backend follows `PARDEC_BACKEND` (default: plain).
    pub fn new(tau: usize, seed: u64) -> Self {
        SessionParams {
            tau,
            seed,
            algo: SessionAlgo::Cluster,
            frontier: FrontierStrategy::default_from_env(),
            build_oracle: true,
            backend: Backend::resolve(None),
        }
    }

    /// Selects the adjacency storage backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the decomposition algorithm.
    pub fn with_algo(mut self, algo: SessionAlgo) -> Self {
        self.algo = algo;
        self
    }

    /// Selects the frontier expansion strategy.
    pub fn with_frontier(mut self, frontier: FrontierStrategy) -> Self {
        self.frontier = frontier;
        self
    }

    /// Skips the oracle build (cluster-only sessions).
    pub fn without_oracle(mut self) -> Self {
        self.build_oracle = false;
        self
    }
}

/// What one batched query cost — forwarded verbatim through the wire
/// protocol's response ledger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryLedger {
    /// Number of individual queries answered by the batch.
    pub batch: u32,
    /// Frontier waves launched (0 for pure table lookups, 1 for a batched
    /// `nearest` — the whole point of batching).
    pub waves: u32,
    /// Total frontier steps across those waves.
    pub wave_rounds: u32,
    /// Strategy the waves ran under.
    pub strategy: FrontierStrategy,
}

impl QueryLedger {
    fn lookup(batch: usize, strategy: FrontierStrategy) -> Self {
        QueryLedger {
            batch: batch as u32,
            waves: 0,
            wave_rounds: 0,
            strategy,
        }
    }
}

impl pardec_obs::Observe for QueryLedger {
    fn scope(&self) -> &'static str {
        "session.query"
    }
    fn observe(&self, m: &mut pardec_obs::Metrics) {
        m.counter("batch", self.batch as u64);
        m.counter("waves", self.waves as u64);
        m.counter("wave_rounds", self.wave_rounds as u64);
        m.label("strategy", self.strategy.name());
    }
}

/// Errors a query batch can raise (the wire layer maps these to error
/// codes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// A query referenced a node id ≥ n.
    NodeOutOfRange(NodeId),
    /// `distance` / `eccentricity` on a session built `without_oracle`.
    OracleMissing,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::NodeOutOfRange(v) => write!(f, "node id {v} out of range"),
            SessionError::OracleMissing => {
                write!(f, "session has no distance oracle (built without one)")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// A loaded decomposition ready to answer query batches.
#[derive(Clone, Debug)]
pub struct Session {
    graph: GraphRepr,
    clustering: Clustering,
    oracle: Option<DistanceOracle>,
    frontier: FrontierStrategy,
    growth_steps: usize,
}

impl Session {
    /// Runs the decomposition (and optionally the oracle construction) on
    /// `graph`, producing a resident session. The graph is stored under
    /// `params.backend` (compressing it first when asked).
    pub fn build(graph: CsrGraph, params: &SessionParams) -> Session {
        Session::build_repr(GraphRepr::from_csr(graph, params.backend), params)
    }

    /// As [`Session::build`] on a graph already held under a backend (the
    /// streaming-build path, where no plain CSR ever existed in memory).
    pub fn build_repr(graph: GraphRepr, params: &SessionParams) -> Session {
        let mut build_span = pardec_obs::span!(
            "session.build",
            nodes = graph.num_nodes(),
            oracle = params.build_oracle,
            backend = graph.backend().to_string(),
        );
        let cp = ClusterParams::new(params.tau.max(1), params.seed).with_frontier(params.frontier);
        let (clustering, growth_steps) = match params.algo {
            SessionAlgo::Cluster => {
                let r = cluster(&graph, &cp);
                (r.clustering, r.trace.total_growth_steps())
            }
            SessionAlgo::Cluster2 => {
                let r = cluster2(&graph, &cp);
                (
                    r.clustering,
                    r.probe_trace.total_growth_steps() + r.trace.total_growth_steps(),
                )
            }
            SessionAlgo::Mpx { beta } => {
                let r = mpx_with_frontier(&graph, beta, params.seed, params.frontier);
                (r.clustering, r.steps)
            }
        };
        let oracle = params
            .build_oracle
            .then(|| DistanceOracle::from_clustering(&graph, &clustering));
        build_span.field("clusters", clustering.num_clusters());
        build_span.field("growth_steps", growth_steps);
        Session {
            graph,
            clustering,
            oracle,
            frontier: params.frontier,
            growth_steps,
        }
    }

    /// Assembles a session from already-validated parts (the snapshot load
    /// path and tests).
    pub fn from_parts(
        graph: GraphRepr,
        clustering: Clustering,
        oracle: Option<DistanceOracle>,
        frontier: FrontierStrategy,
        growth_steps: usize,
    ) -> Result<Session, String> {
        if clustering.assignment.len() != graph.num_nodes() {
            return Err("clustering does not match graph size".into());
        }
        if let Some(o) = &oracle {
            if o.num_clusters() != clustering.num_clusters() {
                return Err("oracle does not match clustering".into());
            }
        }
        Ok(Session {
            graph,
            clustering,
            oracle,
            frontier,
            growth_steps,
        })
    }

    /// The loaded graph, under whichever backend it is stored.
    pub fn graph(&self) -> &GraphRepr {
        &self.graph
    }

    /// Adjacency storage backend of the resident graph.
    pub fn backend(&self) -> Backend {
        self.graph.backend()
    }

    /// The resident clustering.
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// The resident oracle, if one was built or loaded.
    pub fn oracle(&self) -> Option<&DistanceOracle> {
        self.oracle.as_ref()
    }

    /// Frontier strategy `nearest` batches run under.
    pub fn frontier(&self) -> FrontierStrategy {
        self.frontier
    }

    /// Overrides the frontier strategy for subsequent batches. Responses
    /// stay byte-identical across strategies; only wall-clock changes.
    pub fn set_frontier(&mut self, frontier: FrontierStrategy) {
        self.frontier = frontier;
    }

    /// Growth steps the decomposition spent at build time (the §5
    /// parallel-rounds proxy; 0 when unknown).
    pub fn growth_steps(&self) -> usize {
        self.growth_steps
    }

    fn check_node(&self, v: NodeId) -> Result<(), SessionError> {
        if (v as usize) < self.graph.num_nodes() {
            Ok(())
        } else {
            Err(SessionError::NodeOutOfRange(v))
        }
    }

    fn require_oracle(&self) -> Result<&DistanceOracle, SessionError> {
        self.oracle.as_ref().ok_or(SessionError::OracleMissing)
    }

    /// Batched §4 distance queries: an upper bound on `dist(u, v)` per
    /// pair, `u64::MAX` for cross-component pairs. O(1) per pair; the
    /// ledger reports zero waves.
    pub fn distance(
        &self,
        pairs: &[(NodeId, NodeId)],
    ) -> Result<(Vec<u64>, QueryLedger), SessionError> {
        let oracle = self.require_oracle()?;
        let mut out = Vec::with_capacity(pairs.len());
        for &(u, v) in pairs {
            self.check_node(u)?;
            self.check_node(v)?;
            out.push(oracle.query(u, v));
        }
        let ledger = QueryLedger::lookup(pairs.len(), self.frontier);
        pardec_obs::record(&ledger);
        Ok((out, ledger))
    }

    /// Batched cluster-membership lookups.
    pub fn cluster_of(&self, nodes: &[NodeId]) -> Result<(Vec<NodeId>, QueryLedger), SessionError> {
        let mut out = Vec::with_capacity(nodes.len());
        for &v in nodes {
            self.check_node(v)?;
            out.push(self.clustering.assignment[v as usize]);
        }
        let ledger = QueryLedger::lookup(nodes.len(), self.frontier);
        pardec_obs::record(&ledger);
        Ok((out, ledger))
    }

    /// Batched per-node eccentricity upper bounds (within each node's
    /// connected component), from the oracle's quotient APSP + radii.
    pub fn eccentricity(&self, nodes: &[NodeId]) -> Result<(Vec<u64>, QueryLedger), SessionError> {
        let oracle = self.require_oracle()?;
        let mut out = Vec::with_capacity(nodes.len());
        for &v in nodes {
            self.check_node(v)?;
            out.push(oracle.eccentricity_bound(v));
        }
        let ledger = QueryLedger::lookup(nodes.len(), self.frontier);
        pardec_obs::record(&ledger);
        Ok((out, ledger))
    }

    /// Batched nearest-source queries, answered by **one** multi-source
    /// [`FrontierEngine`] wave: every source is activated up front, the wave
    /// runs to exhaustion, and each probe reads off its claiming source and
    /// exact hop distance. Unreachable probes report
    /// `(INVALID_NODE, INFINITE_DIST)`.
    ///
    /// The ledger records `waves = 1` (or 0 for an empty source set) and
    /// `wave_rounds` = the engine's step count — this is the figure the
    /// serve acceptance check reads to confirm a 256-probe batch cost a
    /// single traversal.
    pub fn nearest(
        &self,
        sources: &[NodeId],
        probes: &[NodeId],
    ) -> Result<(Vec<(NodeId, u32)>, QueryLedger), SessionError> {
        for &s in sources {
            self.check_node(s)?;
        }
        for &p in probes {
            self.check_node(p)?;
        }
        if sources.is_empty() {
            let out = vec![(INVALID_NODE, INFINITE_DIST); probes.len()];
            let ledger = QueryLedger::lookup(probes.len(), self.frontier);
            pardec_obs::record(&ledger);
            return Ok((out, ledger));
        }
        let mut engine = FrontierEngine::new(&self.graph, self.frontier);
        for &s in sources {
            engine.add_source(s);
        }
        engine.run();
        let rounds = engine.steps() as u32;
        let parts = engine.into_parts();
        let out = probes
            .iter()
            .map(|&p| {
                let owner = parts.owner[p as usize];
                if owner == INVALID_NODE {
                    (INVALID_NODE, INFINITE_DIST)
                } else {
                    (parts.sources[owner as usize], parts.dist[p as usize])
                }
            })
            .collect();
        let ledger = QueryLedger {
            batch: probes.len() as u32,
            waves: 1,
            wave_rounds: rounds,
            strategy: self.frontier,
        };
        pardec_obs::record(&ledger);
        Ok((out, ledger))
    }

    /// The §4 diameter bounds of the resident clustering — the same numbers
    /// `pardec dist approx` reports, computed without re-clustering.
    pub fn diameter(&self, weighted: bool, sparsify_above: Option<usize>) -> DiameterApprox {
        let mut params = DiameterParams::new(1, 0).with_frontier(self.frontier);
        params.weighted = weighted;
        params.sparsify_above = sparsify_above;
        approximate_diameter_of_clustering(
            &self.graph,
            self.clustering.clone(),
            self.growth_steps,
            &params,
        )
    }

    // ------------------------------------------------------------------
    // Snapshot persistence
    // ------------------------------------------------------------------

    /// Writes the session as a `PDEC2` snapshot: graph section + `CLUS` +
    /// (when an oracle is resident) `ORCL`.
    pub fn save(&self, w: &mut impl Write) -> io::Result<()> {
        let mut sections = vec![SectionData {
            tag: SECTION_CLUSTERING,
            version: SECTION_CLUSTERING_VERSION,
            payload: encode_clustering(&self.clustering, self.growth_steps),
        }];
        if let Some(oracle) = &self.oracle {
            sections.push(SectionData {
                tag: SECTION_ORACLE,
                version: SECTION_ORACLE_VERSION,
                payload: encode_oracle(oracle),
            });
        }
        save_snapshot_repr(&self.graph, &sections, w)
    }

    /// Loads a session snapshot through the **fast** graph path (structural
    /// checks + bulk copy — the daemon-startup route; see
    /// [`pardec_graph::io`]'s trust contract). Requires a `CLUS` section;
    /// `ORCL` is optional.
    pub fn load(bytes: &[u8], frontier: FrontierStrategy) -> io::Result<Session> {
        Self::load_with(bytes, frontier, false)
    }

    /// Loads a snapshot of unknown origin: checked (builder) graph decode
    /// plus a full [`Clustering::validate`] pass.
    pub fn load_checked(bytes: &[u8], frontier: FrontierStrategy) -> io::Result<Session> {
        Self::load_with(bytes, frontier, true)
    }

    fn load_with(bytes: &[u8], frontier: FrontierStrategy, checked: bool) -> io::Result<Session> {
        let mut load_span =
            pardec_obs::span!("snapshot.load", bytes = bytes.len(), checked = checked,);
        let snap = Snapshot::parse(bytes)?;
        let graph = if checked {
            snap.graph_repr_checked()?
        } else {
            snap.graph_repr()?
        };
        let (clus_version, clus) = snap
            .section(SECTION_CLUSTERING)
            .ok_or_else(|| data_err("snapshot has no clustering section"))?;
        if clus_version != SECTION_CLUSTERING_VERSION {
            return Err(data_err(format!(
                "unsupported clustering section version {clus_version}"
            )));
        }
        let (clustering, growth_steps) = decode_clustering(clus, graph.num_nodes())?;
        if checked {
            clustering.validate(&graph).map_err(data_err)?;
        }
        let oracle = match snap.section(SECTION_ORACLE) {
            None => None,
            Some((version, body)) => {
                if version != SECTION_ORACLE_VERSION {
                    return Err(data_err(format!(
                        "unsupported oracle section version {version}"
                    )));
                }
                Some(decode_oracle(body, &clustering)?)
            }
        };
        load_span.field("nodes", graph.num_nodes());
        load_span.field("oracle", oracle.is_some());
        Session::from_parts(graph, clustering, oracle, frontier, growth_steps).map_err(data_err)
    }
}

fn data_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn encode_clustering(c: &Clustering, growth_steps: usize) -> Vec<u8> {
    let (n, k) = (c.assignment.len(), c.centers.len());
    let mut buf = Vec::with_capacity(24 + 4 * (2 * n + 2 * k));
    buf.put_u64_le(n as u64);
    buf.put_u64_le(k as u64);
    buf.put_u64_le(growth_steps as u64);
    for &a in &c.assignment {
        buf.put_u32_le(a);
    }
    for &ctr in &c.centers {
        buf.put_u32_le(ctr);
    }
    for &d in &c.dist_to_center {
        buf.put_u32_le(d);
    }
    for &r in &c.radii {
        buf.put_u32_le(r);
    }
    buf
}

fn decode_clustering(body: &[u8], graph_nodes: usize) -> io::Result<(Clustering, usize)> {
    let mut buf = body;
    if buf.remaining() < 24 {
        return Err(data_err("truncated clustering header"));
    }
    let n = buf.get_u64_le() as usize;
    let k = buf.get_u64_le() as usize;
    let growth_steps = buf.get_u64_le() as usize;
    if n != graph_nodes {
        return Err(data_err("clustering node count does not match graph"));
    }
    let expected = n
        .checked_add(k)
        .and_then(|t| t.checked_mul(2))
        .and_then(|t| t.checked_mul(4))
        .ok_or_else(|| data_err("clustering sizes overflow"))?;
    if buf.remaining() != expected {
        return Err(data_err("clustering length mismatch"));
    }
    let mut take = |len: usize| -> Vec<u32> { (0..len).map(|_| buf.get_u32_le()).collect() };
    let assignment = take(n);
    let centers = take(k);
    let dist_to_center = take(n);
    let radii = take(k);
    // Cheap structural checks even on the fast path: everything in range,
    // so queries can index fearlessly.
    if assignment.iter().any(|&c| (c as usize) >= k) {
        return Err(data_err("clustering assignment out of range"));
    }
    if centers.iter().any(|&ctr| (ctr as usize) >= n) {
        return Err(data_err("clustering center out of range"));
    }
    Ok((
        Clustering {
            assignment,
            centers,
            dist_to_center,
            radii,
        },
        growth_steps,
    ))
}

fn encode_oracle(o: &DistanceOracle) -> Vec<u8> {
    let q = o.num_clusters();
    let mut buf = Vec::with_capacity(8 + 8 * q * q);
    buf.put_u64_le(q as u64);
    for row in o.apsp_matrix() {
        for &d in row {
            buf.put_u64_le(d);
        }
    }
    buf
}

fn decode_oracle(body: &[u8], clustering: &Clustering) -> io::Result<DistanceOracle> {
    let mut buf = body;
    if buf.remaining() < 8 {
        return Err(data_err("truncated oracle header"));
    }
    let q = buf.get_u64_le() as usize;
    if q != clustering.num_clusters() {
        return Err(data_err("oracle cluster count does not match clustering"));
    }
    let expected = q
        .checked_mul(q)
        .and_then(|t| t.checked_mul(8))
        .ok_or_else(|| data_err("oracle sizes overflow"))?;
    if buf.remaining() != expected {
        return Err(data_err("oracle length mismatch"));
    }
    let apsp: Vec<Vec<u64>> = (0..q)
        .map(|_| (0..q).map(|_| buf.get_u64_le()).collect())
        .collect();
    DistanceOracle::from_raw_parts(
        clustering.assignment.clone(),
        clustering.dist_to_center.clone(),
        clustering.radii.clone(),
        apsp,
    )
    .map_err(data_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardec_graph::generators;
    use pardec_graph::traversal::bfs;

    fn mesh_session(build_oracle: bool) -> Session {
        let g = generators::mesh(12, 12);
        let mut params = SessionParams::new(4, 7);
        params.build_oracle = build_oracle;
        Session::build(g, &params)
    }

    #[test]
    fn build_matches_standalone_cluster() {
        let g = generators::mesh(10, 10);
        let s = Session::build(g.clone(), &SessionParams::new(4, 3));
        let standalone = cluster(&g, &ClusterParams::new(4, 3)).clustering;
        assert_eq!(s.clustering(), &standalone);
        assert_eq!(
            s.growth_steps(),
            cluster(&g, &ClusterParams::new(4, 3))
                .trace
                .total_growth_steps()
        );
        s.clustering().validate(s.graph()).unwrap();
        assert!(s.oracle().is_some());
    }

    #[test]
    fn distance_batch_matches_oracle() {
        let s = mesh_session(true);
        let oracle = s.oracle().unwrap();
        let pairs = [(0, 143), (5, 5), (17, 100)];
        let (dists, ledger) = s.distance(&pairs).unwrap();
        assert_eq!(ledger.batch, 3);
        assert_eq!(ledger.waves, 0);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            assert_eq!(dists[i], oracle.query(u, v));
        }
    }

    #[test]
    fn cluster_of_matches_assignment() {
        let s = mesh_session(false);
        let (clusters, ledger) = s.cluster_of(&[0, 7, 99]).unwrap();
        assert_eq!(ledger.waves, 0);
        for (i, &v) in [0usize, 7, 99].iter().enumerate() {
            assert_eq!(clusters[i], s.clustering().assignment[v]);
        }
    }

    #[test]
    fn eccentricity_dominates_truth() {
        let s = mesh_session(true);
        let nodes = [0u32, 60, 143];
        let (bounds, _) = s.eccentricity(&nodes).unwrap();
        for (i, &v) in nodes.iter().enumerate() {
            let truth = bfs(s.graph(), v)
                .dist
                .iter()
                .copied()
                .filter(|&d| d != INFINITE_DIST)
                .max()
                .unwrap() as u64;
            assert!(bounds[i] >= truth, "ecc({v}) bound {} < {truth}", bounds[i]);
        }
    }

    #[test]
    fn nearest_is_one_wave_and_exact() {
        let s = mesh_session(false);
        let sources = [0u32, 143];
        let probes: Vec<NodeId> = (0..144).collect();
        let (answers, ledger) = s.nearest(&sources, &probes).unwrap();
        assert_eq!(ledger.batch, 144);
        assert_eq!(ledger.waves, 1, "a batch must cost exactly one wave");
        assert!(ledger.wave_rounds > 0);
        let d0 = bfs(s.graph(), 0).dist;
        let d1 = bfs(s.graph(), 143).dist;
        for (p, &(src, dist)) in probes.iter().zip(&answers) {
            let best = d0[*p as usize].min(d1[*p as usize]);
            assert_eq!(dist, best, "probe {p}");
            assert!(sources.contains(&src));
        }
    }

    #[test]
    fn nearest_handles_unreachable_and_empty() {
        let g = generators::disjoint_union(&generators::path(5), &generators::path(5));
        let s = Session::build(g, &SessionParams::new(2, 1).without_oracle());
        let (answers, _) = s.nearest(&[0], &[2, 7]).unwrap();
        assert_eq!(answers[0], (0, 2));
        assert_eq!(answers[1], (INVALID_NODE, INFINITE_DIST));
        let (answers, ledger) = s.nearest(&[], &[3]).unwrap();
        assert_eq!(answers[0], (INVALID_NODE, INFINITE_DIST));
        assert_eq!(ledger.waves, 0);
    }

    #[test]
    fn errors_are_reported() {
        let s = mesh_session(false);
        assert_eq!(
            s.distance(&[(0, 1)]).unwrap_err(),
            SessionError::OracleMissing
        );
        assert_eq!(
            s.cluster_of(&[999]).unwrap_err(),
            SessionError::NodeOutOfRange(999)
        );
        assert_eq!(
            s.nearest(&[0], &[999]).unwrap_err(),
            SessionError::NodeOutOfRange(999)
        );
    }

    #[test]
    fn snapshot_round_trips_with_oracle() {
        let s = mesh_session(true);
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        for loaded in [
            Session::load(&buf, s.frontier()).unwrap(),
            Session::load_checked(&buf, s.frontier()).unwrap(),
        ] {
            assert_eq!(loaded.graph(), s.graph());
            assert_eq!(loaded.clustering(), s.clustering());
            assert_eq!(loaded.oracle(), s.oracle());
            assert_eq!(loaded.growth_steps(), s.growth_steps());
        }
    }

    #[test]
    fn snapshot_round_trips_without_oracle() {
        let s = mesh_session(false);
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        let loaded = Session::load(&buf, s.frontier()).unwrap();
        assert!(loaded.oracle().is_none());
        assert_eq!(loaded.clustering(), s.clustering());
    }

    #[test]
    fn snapshot_every_truncation_is_an_error() {
        let g = generators::mesh(4, 5);
        let s = Session::build(g, &SessionParams::new(2, 9));
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        for cut in 0..buf.len() {
            assert!(
                Session::load(&buf[..cut], FrontierStrategy::TopDown).is_err(),
                "prefix of {cut} bytes must not load"
            );
        }
    }

    #[test]
    fn snapshot_rejects_cross_wired_sections() {
        // A clustering for a *different* graph size must be rejected.
        let a = Session::build(generators::mesh(4, 4), &SessionParams::new(2, 1));
        let b = Session::build(generators::mesh(5, 5), &SessionParams::new(2, 1));
        let mut buf = Vec::new();
        let hybrid = Session::from_parts(
            b.graph().clone(),
            a.clustering().clone(),
            None,
            FrontierStrategy::TopDown,
            0,
        );
        assert!(hybrid.is_err());
        // Write a's sections, then corrupt the declared node count.
        a.save(&mut buf).unwrap();
        let snap = Snapshot::parse(&buf).unwrap();
        let clus_off = snap
            .sections()
            .iter()
            .find(|e| e.tag == SECTION_CLUSTERING)
            .unwrap()
            .offset;
        let mut bad = buf.clone();
        bad[clus_off..clus_off + 8].copy_from_slice(&999u64.to_le_bytes());
        assert!(Session::load(&bad, FrontierStrategy::TopDown).is_err());
    }

    #[test]
    fn compressed_backend_is_byte_identical_and_round_trips() {
        let g = generators::preferential_attachment(600, 4, 3);
        let plain = Session::build(
            g.clone(),
            &SessionParams::new(4, 7).with_backend(Backend::Plain),
        );
        let comp = Session::build(
            g,
            &SessionParams::new(4, 7).with_backend(Backend::Compressed),
        );
        assert_eq!(comp.backend(), Backend::Compressed);
        // The backend is a storage knob only: decomposition and oracle are
        // byte-identical.
        assert_eq!(plain.clustering(), comp.clustering());
        assert_eq!(plain.oracle(), comp.oracle());
        assert_eq!(plain.growth_steps(), comp.growth_steps());
        let (pd, _) = plain.distance(&[(0, 599), (17, 300)]).unwrap();
        let (cd, _) = comp.distance(&[(0, 599), (17, 300)]).unwrap();
        assert_eq!(pd, cd);
        let (pn, _) = plain.nearest(&[0, 599], &[5, 250, 400]).unwrap();
        let (cn, _) = comp.nearest(&[0, 599], &[5, 250, 400]).unwrap();
        assert_eq!(pn, cn);
        let dp = plain.diameter(true, None);
        let dc = comp.diameter(true, None);
        assert_eq!(dp.lower_bound, dc.lower_bound);
        assert_eq!(dp.estimate(), dc.estimate());
        // Snapshots preserve the backend through both read paths.
        let mut buf = Vec::new();
        comp.save(&mut buf).unwrap();
        for loaded in [
            Session::load(&buf, comp.frontier()).unwrap(),
            Session::load_checked(&buf, comp.frontier()).unwrap(),
        ] {
            assert_eq!(loaded.backend(), Backend::Compressed);
            assert_eq!(loaded.graph(), comp.graph());
            assert_eq!(loaded.clustering(), comp.clustering());
            assert_eq!(loaded.oracle(), comp.oracle());
        }
        // The compressed snapshot is smaller than the plain one.
        let mut plain_buf = Vec::new();
        plain.save(&mut plain_buf).unwrap();
        assert!(buf.len() < plain_buf.len());
    }

    #[test]
    fn diameter_reuses_resident_clustering() {
        let g = generators::mesh(15, 15);
        let s = Session::build(g.clone(), &SessionParams::new(4, 2));
        let d = s.diameter(true, None);
        assert_eq!(d.clustering, *s.clustering());
        let truth = pardec_graph::diameter::exact_diameter(&g) as u64;
        assert!(d.lower_bound <= truth);
        assert!(d.estimate() >= truth);
    }

    #[test]
    fn mpx_and_cluster2_sessions_build() {
        let g = generators::mesh(8, 8);
        for algo in [SessionAlgo::Cluster2, SessionAlgo::Mpx { beta: 0.3 }] {
            let s = Session::build(g.clone(), &SessionParams::new(2, 5).with_algo(algo));
            s.clustering().validate(s.graph()).unwrap();
            assert!(s.oracle().is_some());
            let mut buf = Vec::new();
            s.save(&mut buf).unwrap();
            let loaded = Session::load(&buf, s.frontier()).unwrap();
            assert_eq!(loaded.clustering(), s.clustering());
        }
    }
}
