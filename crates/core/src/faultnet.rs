//! Deterministic network fault injection for the serve stack.
//!
//! [`FaultyStream`] wraps any transport (a real [`TcpStream`], or an
//! in-memory mock in unit tests) and perturbs its reads and writes
//! according to a declarative [`FaultPlan`]: torn frames, partial writes,
//! delayed reads, mid-frame disconnects, and byte corruption. All
//! randomness comes from a xoshiro [`StdRng`] seeded by the plan, so a
//! chaos run replays byte-for-byte — the property `tests/chaos_serve.rs`
//! leans on when it asserts that surviving connections answer exactly the
//! fault-free bytes.
//!
//! The wrapper is a *client-side* instrument: the daemon under test stays
//! untouched, seeing only the hostile traffic a broken or malicious peer
//! would produce. Faults compose; [`FaultPlan::standard_suite`] is the
//! canonical set the chaos tests iterate.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One fault kind, applied on every matching operation.
#[derive(Clone, Debug, PartialEq)]
pub enum Fault {
    /// Silently discard everything written beyond `after_bytes` while
    /// reporting success — the peer believes its frame left, the wire
    /// carries a torn prefix, and the server must time the stall out.
    TornFrame {
        /// Bytes actually delivered before the tear.
        after_bytes: usize,
    },
    /// Deliver writes in chunks of at most `max_chunk` bytes, sleeping
    /// `delay` between chunks — a peer on a congested path. Exercises the
    /// server's partial-read loop; all bytes do arrive.
    ChunkedWrites {
        /// Largest burst handed to the transport per call.
        max_chunk: usize,
        /// Pause before each chunk.
        delay: Duration,
    },
    /// Sleep `delay` before every read — a peer slow to drain responses.
    DelayedReads {
        /// Pause before each read.
        delay: Duration,
    },
    /// Hard-close the transport once `after_bytes` have been written,
    /// mid-frame or not — the server sees EOF wherever it lands.
    Disconnect {
        /// Bytes delivered before the connection is severed.
        after_bytes: usize,
    },
    /// With `probability` per write call, XOR one randomly chosen byte
    /// with a random non-zero mask before it leaves.
    CorruptBytes {
        /// Chance a given write is corrupted, in `[0, 1]`.
        probability: f64,
    },
}

/// A named, seeded list of faults — the unit the chaos suite iterates.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Label carried into test output.
    pub name: &'static str,
    /// Seed of the plan's private xoshiro stream.
    pub seed: u64,
    /// Faults applied, in order, to every operation.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty (fault-free) plan.
    pub fn new(name: &'static str, seed: u64) -> FaultPlan {
        FaultPlan {
            name,
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds one fault (builder style).
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// The canonical chaos set: one plan per failure family named in the
    /// robustness issue. The byte offsets land mid-frame for every request
    /// the suite sends (frames are ≥ 5 wire bytes).
    pub fn standard_suite(seed: u64) -> Vec<FaultPlan> {
        vec![
            FaultPlan::new("torn-frame", seed).with(Fault::TornFrame { after_bytes: 7 }),
            FaultPlan::new("partial-writes", seed).with(Fault::ChunkedWrites {
                max_chunk: 3,
                delay: Duration::from_millis(1),
            }),
            FaultPlan::new("delayed-reads", seed).with(Fault::DelayedReads {
                delay: Duration::from_millis(2),
            }),
            FaultPlan::new("mid-frame-disconnect", seed).with(Fault::Disconnect { after_bytes: 9 }),
            FaultPlan::new("corrupt-bytes", seed).with(Fault::CorruptBytes { probability: 0.5 }),
        ]
    }
}

/// Transports the wrapper can hard-close (the `Disconnect` fault).
pub trait Severable {
    /// Tear the transport down in both directions; best effort.
    fn sever(&mut self);
}

impl Severable for TcpStream {
    fn sever(&mut self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

/// A transport wrapped in a [`FaultPlan`]. Reads and writes pass through
/// `inner` with the plan's faults applied deterministically.
pub struct FaultyStream<S> {
    inner: S,
    plan: FaultPlan,
    rng: StdRng,
    written: usize,
    severed: bool,
}

impl<S> FaultyStream<S> {
    /// Wraps `inner` under `plan`; the fault stream is seeded here.
    pub fn new(inner: S, plan: FaultPlan) -> FaultyStream<S> {
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultyStream {
            inner,
            plan,
            rng,
            written: 0,
            severed: false,
        }
    }

    /// Total bytes actually delivered to the transport so far.
    pub fn bytes_delivered(&self) -> usize {
        self.written
    }

    /// Whether a `Disconnect` fault has fired.
    pub fn is_severed(&self) -> bool {
        self.severed
    }

    /// The wrapped transport, back out.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Severable> FaultyStream<S> {
    fn sever_now(&mut self) {
        if !self.severed {
            self.inner.sever();
            self.severed = true;
        }
    }
}

impl<S: Read + Write + Severable> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.severed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "fault plan severed this connection",
            ));
        }
        if buf.is_empty() {
            return Ok(0);
        }
        // Pass 1: how much of `buf` the plan lets through this call, and
        // what happens to the rest.
        let mut allow = buf.len();
        let mut tear = false; // swallow the remainder, stay open
        let mut sever = false; // hard-close once the allowance is out
        let mut delay = Duration::ZERO;
        for fault in &self.plan.faults {
            match *fault {
                Fault::TornFrame { after_bytes } => {
                    if self.written + allow > after_bytes {
                        allow = after_bytes.saturating_sub(self.written);
                        tear = true;
                    }
                }
                Fault::Disconnect { after_bytes } => {
                    if self.written + allow >= after_bytes {
                        allow = after_bytes.saturating_sub(self.written);
                        sever = true;
                    }
                }
                Fault::ChunkedWrites {
                    max_chunk,
                    delay: d,
                } => {
                    allow = allow.min(max_chunk.max(1));
                    delay = delay.max(d);
                }
                Fault::DelayedReads { .. } | Fault::CorruptBytes { .. } => {}
            }
        }
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        // Pass 2: deliver the allowance (possibly corrupted), then apply
        // the tear/sever verdict.
        let mut delivered = 0;
        if allow > 0 {
            let mut chunk = buf[..allow].to_vec();
            for fault in &self.plan.faults {
                if let Fault::CorruptBytes { probability } = *fault {
                    if self.rng.gen_bool(probability) {
                        let at = self.rng.gen_range(0..chunk.len());
                        let mask = (self.rng.gen_range(1u32..256)) as u8;
                        chunk[at] ^= mask;
                    }
                }
            }
            self.inner.write_all(&chunk)?;
            self.written += allow;
            delivered = allow;
        }
        if sever {
            self.sever_now();
            return if delivered > 0 {
                Ok(delivered)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "fault plan severed this connection",
                ))
            };
        }
        if tear {
            // Swallow the rest of the buffer: the caller believes the
            // frame went out; the wire holds a torn prefix.
            return Ok(buf.len());
        }
        Ok(delivered)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<S: Read + Write + Severable> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        for fault in &self.plan.faults {
            if let Fault::DelayedReads { delay } = *fault {
                std::thread::sleep(delay);
            }
        }
        if self.severed {
            return Ok(0);
        }
        self.inner.read(buf)
    }
}

/// Drives the rng identically to a real corruption pass — exposed so tests
/// can predict the byte stream of a given seed.
pub fn corruption_preview(seed: u64, writes: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..writes).map(|_| rng.next_u64()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In-memory transport: captures writes, serves canned reads.
    #[derive(Default)]
    struct MockStream {
        wrote: Vec<u8>,
        canned: Vec<u8>,
        read_at: usize,
        severed: bool,
    }

    impl Read for MockStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let left = &self.canned[self.read_at..];
            let n = left.len().min(buf.len());
            buf[..n].copy_from_slice(&left[..n]);
            self.read_at += n;
            Ok(n)
        }
    }

    impl Write for MockStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.wrote.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl Severable for MockStream {
        fn sever(&mut self) {
            self.severed = true;
        }
    }

    #[test]
    fn torn_frame_delivers_a_prefix_and_pretends_success() {
        let plan = FaultPlan::new("tear", 1).with(Fault::TornFrame { after_bytes: 7 });
        let mut s = FaultyStream::new(MockStream::default(), plan);
        s.write_all(&[9u8; 20]).unwrap(); // "succeeds"
        s.write_all(&[8u8; 5]).unwrap(); // swallowed entirely
        assert_eq!(s.bytes_delivered(), 7);
        assert!(!s.is_severed());
        assert_eq!(s.into_inner().wrote, vec![9u8; 7]);
    }

    #[test]
    fn chunked_writes_deliver_everything_in_small_bursts() {
        let plan = FaultPlan::new("chunks", 1).with(Fault::ChunkedWrites {
            max_chunk: 3,
            delay: Duration::ZERO,
        });
        let mut s = FaultyStream::new(MockStream::default(), plan);
        let payload: Vec<u8> = (0..20).collect();
        // A single `write` hands over at most one chunk…
        assert_eq!(s.write(&payload).unwrap(), 3);
        // …and `write_all` loops until every byte has crossed.
        s.write_all(&payload[3..]).unwrap();
        assert_eq!(s.into_inner().wrote, payload);
    }

    #[test]
    fn disconnect_severs_mid_buffer() {
        let plan = FaultPlan::new("cut", 1).with(Fault::Disconnect { after_bytes: 9 });
        let mut s = FaultyStream::new(MockStream::default(), plan);
        let err = s.write_all(&[1u8; 16]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(s.is_severed());
        assert_eq!(s.bytes_delivered(), 9);
        // Reads answer EOF after the cut.
        let mut buf = [0u8; 4];
        assert_eq!(s.read(&mut buf).unwrap(), 0);
        assert!(s.into_inner().severed);
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let plan = FaultPlan::new("flip", seed).with(Fault::CorruptBytes { probability: 0.5 });
            let mut s = FaultyStream::new(MockStream::default(), plan);
            for _ in 0..8 {
                s.write_all(&[0x55u8; 6]).unwrap();
            }
            s.into_inner().wrote
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
        // With p = 0.5 over 8 writes, at least one byte must have flipped.
        assert_ne!(run(42), vec![0x55u8; 48]);
    }

    #[test]
    fn delayed_reads_still_deliver_the_canned_bytes() {
        let plan = FaultPlan::new("slow", 1).with(Fault::DelayedReads {
            delay: Duration::from_millis(1),
        });
        let inner = MockStream {
            canned: vec![1, 2, 3, 4],
            ..MockStream::default()
        };
        let mut s = FaultyStream::new(inner, plan);
        let mut buf = [0u8; 4];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn standard_suite_covers_every_fault_family() {
        let suite = FaultPlan::standard_suite(7);
        let names: Vec<_> = suite.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            [
                "torn-frame",
                "partial-writes",
                "delayed-reads",
                "mid-frame-disconnect",
                "corrupt-bytes",
            ]
        );
        for plan in &suite {
            assert_eq!(plan.seed, 7);
            assert_eq!(plan.faults.len(), 1);
        }
    }

    #[test]
    fn preview_matches_the_seeded_stream() {
        assert_eq!(corruption_preview(5, 4), corruption_preview(5, 4));
        assert_ne!(corruption_preview(5, 4), corruption_preview(6, 4));
    }
}
