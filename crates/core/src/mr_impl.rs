//! §5 — the paper's algorithms driven through the MR(M_G, M_L) emulation,
//! with full round and communication accounting.
//!
//! [`mr_cluster`] realizes each cluster-growing step as one vertex-program
//! superstep (a constant number of MR sort/prefix rounds under
//! `M_L = Ω(nᵋ)`, per Lemma 3), so the reported superstep count is the
//! paper's round complexity up to a constant. The driver holds only
//! `O(#centers)` state, mirroring a Spark driver.
//!
//! Since the radix-shuffle refactor the underlying supersteps run on the
//! flat two-pass scatter of `pardec_mr::shuffle` with **map-side combining**
//! of the `Min<u64>` claim messages: each sender chunk ships at most one
//! combined `(owner, dist)` claim per destination, so the ledger now shows
//! both the per-edge (`map_pairs`) and post-combine (`input_pairs`) volumes
//! — the `M_G` discipline §5 argues for, made observable. Every algorithm
//! here also has a `*_with` variant taking an explicit
//! [`pardec_mr::MrConfig`] (the CLI's `--partitions`, or the
//! `PARDEC_PARTITIONS` ambient default); the partition count shapes the
//! scheduling grid and the ledger's cell granularity, **never the outputs**
//! — claims resolve by commutative minimum, so results are byte-identical
//! at any partition count and pool size (`tests/determinism_threads.rs`).
//!
//! Together with [`pardec_mr::algo::mr_bfs`] and [`crate::hadi::mr_hadi`],
//! this provides the three competitors of Table 4 under one cost model:
//!
//! | algorithm | rounds | communication (pre-combine) |
//! |---|---|---|
//! | CLUSTER   | `R ≪ Δ` growth steps | aggregate `Θ(m)` |
//! | BFS       | `Θ(Δ)` | aggregate `Θ(m)` |
//! | HADI      | `Θ(Δ)` | `Θ(m)` **per round** |

use crate::cluster::{log2n, ClusterParams, ClusterTrace, IterationTrace};
use crate::clustering::Clustering;
use pardec_graph::{CsrGraph, NodeId, INVALID_NODE};
use pardec_mr::{Min, MrConfig, MrStats, VertexEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub use pardec_mr::algo::{
    mr_bfs, mr_bfs_with, mr_connected_components, mr_connected_components_with, MrRun,
};

/// Per-vertex state of the MR CLUSTER program.
#[derive(Clone, Copy, Debug)]
struct NodeState {
    owner: NodeId,
    dist: u32,
}

#[inline]
fn pack(owner: NodeId, dist: u32) -> u64 {
    ((owner as u64) << 32) | dist as u64
}

#[inline]
fn unpack(p: u64) -> (NodeId, u32) {
    ((p >> 32) as NodeId, (p & 0xFFFF_FFFF) as u32)
}

/// Result of [`mr_cluster`].
#[derive(Clone, Debug)]
pub struct MrClusterResult {
    pub clustering: Clustering,
    pub trace: ClusterTrace,
    /// Supersteps executed (≈ MR rounds up to the Lemma 3 constant).
    pub supersteps: usize,
    /// Communication ledger of the run.
    pub stats: MrStats,
}

/// CLUSTER(τ) on the MR emulation (Algorithm 1 + Lemma 3 accounting).
///
/// Semantically equivalent to [`crate::cluster::cluster`] up to tie-breaking:
/// claims resolve to the smallest `(owner, dist)` exactly like the
/// shared-memory engine, but batch sampling consumes the RNG in a different
/// order, so cluster *identities* differ across the two implementations
/// while all Theorem 1 invariants hold.
pub fn mr_cluster(g: &CsrGraph, params: &ClusterParams) -> MrClusterResult {
    mr_cluster_with(g, params, &MrConfig::default())
}

/// [`mr_cluster`] with an explicit engine configuration. The partition
/// count never changes the clustering — only scheduling and the ledger.
pub fn mr_cluster_with(g: &CsrGraph, params: &ClusterParams, mr: &MrConfig) -> MrClusterResult {
    let n = g.num_nodes();
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut eng: VertexEngine<NodeState, Min<u64>> =
        VertexEngine::with_partitions(g, mr.partitions, |_| NodeState {
            owner: INVALID_NODE,
            dist: 0,
        });
    let mut centers: Vec<NodeId> = Vec::new();
    let mut covered = 0usize;
    let mut trace = ClusterTrace::default();
    let logn = log2n(n);
    let threshold = (params.stop_factor * params.tau as f64 * logn).max(1.0);
    let max_iterations = (2.0 * logn) as usize + 32;

    let apply = |_v: NodeId, s: &mut NodeState, m: &Min<u64>| -> Option<Min<u64>> {
        if s.owner != INVALID_NODE {
            return None;
        }
        let (owner, dist) = unpack(m.0);
        s.owner = owner;
        s.dist = dist;
        Some(Min(pack(owner, dist + 1)))
    };

    while ((n - covered) as f64) >= threshold && trace.iterations.len() < max_iterations {
        let uncovered_before = n - covered;
        let p = (params.batch_factor * params.tau as f64 * logn / uncovered_before as f64)
            .clamp(0.0, 1.0);
        // Driver-side batch selection (a filter over the state RDD).
        let batch: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| eng.state[v as usize].owner == INVALID_NODE && rng.gen::<f64>() < p)
            .collect();
        let mut new_centers = 0usize;
        for v in batch {
            let id = centers.len() as NodeId;
            eng.state[v as usize] = NodeState { owner: id, dist: 0 };
            eng.post(v, Min(pack(id, 1)));
            centers.push(v);
            new_centers += 1;
        }
        if new_centers == 0 && eng.num_active() == 0 {
            // Progress guard, as in the shared-memory implementation.
            if let Some(v) = (0..n as NodeId).find(|&v| eng.state[v as usize].owner == INVALID_NODE)
            {
                let id = centers.len() as NodeId;
                eng.state[v as usize] = NodeState { owner: id, dist: 0 };
                eng.post(v, Min(pack(id, 1)));
                centers.push(v);
                new_centers = 1;
            }
        }
        covered += new_centers;

        let goal = uncovered_before.div_ceil(2);
        let mut covered_this = new_centers;
        let mut growth_steps = 0usize;
        while covered_this < goal {
            let rep = eng.step(apply);
            growth_steps += 1;
            covered_this += rep.activated;
            covered += rep.activated;
            if rep.activated == 0 && eng.num_active() == 0 {
                break;
            }
        }
        trace.iterations.push(IterationTrace {
            uncovered_before,
            new_centers,
            growth_steps,
            covered: covered_this,
        });
    }

    // Tail sweep: leftovers become singleton clusters.
    let mut tail = 0usize;
    for v in 0..n as NodeId {
        if eng.state[v as usize].owner == INVALID_NODE {
            let id = centers.len() as NodeId;
            eng.state[v as usize] = NodeState { owner: id, dist: 0 };
            centers.push(v);
            tail += 1;
        }
    }
    trace.tail_singletons = tail;

    let supersteps = eng.supersteps();
    let (state, stats) = eng.finish();
    let assignment: Vec<NodeId> = state.iter().map(|s| s.owner).collect();
    let dist_to_center: Vec<u32> = state.iter().map(|s| s.dist).collect();
    let mut radii = vec![0u32; centers.len()];
    for (v, s) in state.iter().enumerate() {
        let _ = v;
        radii[s.owner as usize] = radii[s.owner as usize].max(s.dist);
    }
    MrClusterResult {
        clustering: Clustering {
            assignment,
            centers,
            dist_to_center,
            radii,
        },
        trace,
        supersteps,
        stats,
    }
}

/// CLUSTER2(τ) on the MR emulation (Algorithm 2 under the §5 cost model):
/// an [`mr_cluster`] probe learns `R_ALG`, then `⌈log n⌉` batches each grow
/// every active cluster for exactly `2·R_ALG` supersteps.
///
/// Returns the result plus the probe's `R_ALG`; the stats ledger covers the
/// main loop (the probe's ledger is inside `probe_stats`).
pub fn mr_cluster2(g: &CsrGraph, params: &ClusterParams) -> (MrClusterResult, u32) {
    mr_cluster2_with(g, params, &MrConfig::default())
}

/// [`mr_cluster2`] with an explicit engine configuration (probe and main
/// loop share it).
pub fn mr_cluster2_with(
    g: &CsrGraph,
    params: &ClusterParams,
    mr: &MrConfig,
) -> (MrClusterResult, u32) {
    let n = g.num_nodes();
    let probe = mr_cluster_with(g, params, mr);
    let r_alg = probe.clustering.max_radius();
    let budget = (2 * r_alg).max(1) as usize;

    let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(1));
    let mut eng: VertexEngine<NodeState, Min<u64>> =
        VertexEngine::with_partitions(g, mr.partitions, |_| NodeState {
            owner: INVALID_NODE,
            dist: 0,
        });
    let mut centers: Vec<NodeId> = Vec::new();
    let mut covered = 0usize;
    let mut trace = ClusterTrace::default();
    let iterations = crate::cluster::log2n(n).ceil() as u32;

    let apply = |_v: NodeId, s: &mut NodeState, m: &Min<u64>| -> Option<Min<u64>> {
        if s.owner != INVALID_NODE {
            return None;
        }
        let (owner, dist) = unpack(m.0);
        s.owner = owner;
        s.dist = dist;
        Some(Min(pack(owner, dist + 1)))
    };

    for i in 1..=iterations {
        if covered == n {
            break;
        }
        let uncovered_before = n - covered;
        let p = (2f64.powi(i as i32) / n.max(1) as f64).clamp(0.0, 1.0);
        let mut new_centers = 0usize;
        for v in 0..n as NodeId {
            if eng.state[v as usize].owner == INVALID_NODE && rng.gen::<f64>() < p {
                let id = centers.len() as NodeId;
                eng.state[v as usize] = NodeState { owner: id, dist: 0 };
                eng.post(v, Min(pack(id, 1)));
                centers.push(v);
                new_centers += 1;
            }
        }
        covered += new_centers;
        let mut covered_this = new_centers;
        let mut growth_steps = 0usize;
        for _ in 0..budget {
            if eng.num_active() == 0 {
                break;
            }
            let rep = eng.step(apply);
            growth_steps += 1;
            covered_this += rep.activated;
            covered += rep.activated;
        }
        trace.iterations.push(IterationTrace {
            uncovered_before,
            new_centers,
            growth_steps,
            covered: covered_this,
        });
    }

    let mut tail = 0usize;
    for v in 0..n as NodeId {
        if eng.state[v as usize].owner == INVALID_NODE {
            let id = centers.len() as NodeId;
            eng.state[v as usize] = NodeState { owner: id, dist: 0 };
            centers.push(v);
            tail += 1;
        }
    }
    trace.tail_singletons = tail;

    let supersteps = eng.supersteps();
    let (state, stats) = eng.finish();
    let assignment: Vec<NodeId> = state.iter().map(|s| s.owner).collect();
    let dist_to_center: Vec<u32> = state.iter().map(|s| s.dist).collect();
    let mut radii = vec![0u32; centers.len()];
    for s in &state {
        radii[s.owner as usize] = radii[s.owner as usize].max(s.dist);
    }
    (
        MrClusterResult {
            clustering: Clustering {
                assignment,
                centers,
                dist_to_center,
                radii,
            },
            trace,
            supersteps,
            stats,
        },
        r_alg,
    )
}

/// Theorem 4's second implementation: the (weighted) quotient diameter via
/// Fact 2 min-plus **matrix squaring** on the MR engine, instead of a single
/// local reducer. Returns the weighted quotient diameter and charges
/// `2·⌈log₂ ℓ⌉` rounds to `eng`'s ledger.
///
/// Intended for quotients with `ℓ³ = O(M_G·√M_L)` (the paper's regime); the
/// emulation accepts any size but the ledger exposes the cost.
pub fn mr_quotient_diameter_by_squaring(
    eng: &mut pardec_mr::MrEngine,
    g: &CsrGraph,
    clustering: &Clustering,
    tile: usize,
) -> Result<u64, pardec_mr::MrError> {
    use pardec_mr::matrix::{mr_apsp_by_squaring, MinPlusMatrix};
    let wq = clustering.weighted_quotient(g);
    let edges: Vec<(u32, u32, u64)> = (0..wq.num_nodes() as NodeId)
        .flat_map(|u| {
            wq.neighbors(u)
                .filter(move |&(v, _)| u < v)
                .map(move |(v, w)| (u, v, w))
        })
        .collect();
    let adj = MinPlusMatrix::from_edges(wq.num_nodes(), &edges);
    let closure = mr_apsp_by_squaring(eng, &adj, tile)?;
    Ok(closure.max_finite())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::cluster;
    use pardec_graph::generators;
    use pardec_mr::{MrConfig, MrEngine};

    #[test]
    fn mr_cluster_valid_partition() {
        let g = generators::mesh(20, 20);
        let r = mr_cluster(&g, &ClusterParams::new(4, 3));
        r.clustering.validate(&g).unwrap();
        assert!(r.clustering.num_clusters() >= 4);
        assert!(r.supersteps > 0);
    }

    #[test]
    fn matches_shared_memory_statistically() {
        // Same algorithm, different RNG consumption: cluster counts and
        // radii must land in the same ballpark.
        let g = generators::road_network(25, 25, 0.4, 8);
        let sm = cluster(&g, &ClusterParams::new(4, 5));
        let mr = mr_cluster(&g, &ClusterParams::new(4, 5));
        mr.clustering.validate(&g).unwrap();
        let (a, b) = (
            sm.clustering.num_clusters() as f64,
            mr.clustering.num_clusters() as f64,
        );
        assert!(
            a / b < 3.0 && b / a < 3.0,
            "cluster counts diverge: {a} vs {b}"
        );
        let (ra, rb) = (sm.clustering.max_radius(), mr.clustering.max_radius());
        assert!(
            ra.abs_diff(rb) <= ra.max(rb).max(4),
            "radii diverge: {ra} vs {rb}"
        );
    }

    #[test]
    fn rounds_well_below_diameter_on_road() {
        let g = generators::road_network(40, 40, 0.3, 1);
        let delta = pardec_graph::diameter::exact_diameter(&g) as usize;
        let r = mr_cluster(&g, &ClusterParams::new(16, 2));
        assert!(
            r.supersteps * 2 < delta,
            "CLUSTER rounds {} not ≪ Δ {delta}",
            r.supersteps
        );
        // BFS on the same engine needs Θ(Δ) rounds.
        let bfs = mr_bfs(&g, 0);
        assert!(bfs.supersteps + 2 >= delta / 2);
        assert!(r.supersteps < bfs.supersteps);
    }

    #[test]
    fn aggregate_communication_linear() {
        let g = generators::mesh(25, 25);
        let r = mr_cluster(&g, &ClusterParams::new(4, 7));
        // Every arc carries O(1) claim messages across the whole run.
        assert!(
            r.stats.total_pairs() <= 3 * g.num_arcs() as u64 + g.num_nodes() as u64,
            "total pairs {} vs arcs {}",
            r.stats.total_pairs(),
            g.num_arcs()
        );
    }

    #[test]
    fn deterministic() {
        let g = generators::preferential_attachment(300, 3, 2);
        let a = mr_cluster(&g, &ClusterParams::new(2, 11));
        let b = mr_cluster(&g, &ClusterParams::new(2, 11));
        assert_eq!(a.clustering, b.clustering);
        assert_eq!(a.supersteps, b.supersteps);
    }

    #[test]
    fn disconnected_graph() {
        let g = generators::disjoint_union(&generators::mesh(10, 10), &generators::path(30));
        let r = mr_cluster(&g, &ClusterParams::new(2, 4));
        r.clustering.validate(&g).unwrap();
    }

    #[test]
    fn mr_cluster2_valid_with_budgeted_batches() {
        let g = generators::road_network(25, 25, 0.4, 6);
        let (r, r_alg) = mr_cluster2(&g, &ClusterParams::new(2, 7));
        r.clustering.validate(&g).unwrap();
        let budget = (2 * r_alg).max(1) as usize;
        for it in &r.trace.iterations {
            assert!(it.growth_steps <= budget, "batch exceeded budget");
        }
        // Lemma 2 radius bound.
        let bound = (2.0 * r_alg.max(1) as f64 * (g.num_nodes() as f64).log2()).ceil() as u32;
        assert!(
            r.clustering.max_radius() <= bound,
            "R_ALG2 {} > {bound}",
            r.clustering.max_radius()
        );
    }

    #[test]
    fn mr_cluster2_matches_shared_memory_shape() {
        let g = generators::mesh(20, 20);
        let (mr2, _) = mr_cluster2(&g, &ClusterParams::new(4, 5));
        let sm2 = crate::cluster2::cluster2(&g, &ClusterParams::new(4, 5));
        mr2.clustering.validate(&g).unwrap();
        let (a, b) = (
            mr2.clustering.num_clusters() as f64,
            sm2.clustering.num_clusters() as f64,
        );
        assert!(a / b < 4.0 && b / a < 4.0, "counts diverge: {a} vs {b}");
    }

    #[test]
    fn matrix_squaring_matches_dijkstra_diameter() {
        let g = generators::mesh(15, 15);
        let c = cluster(&g, &ClusterParams::new(2, 3)).clustering;
        let expected = c.weighted_quotient(&g).apsp_diameter();
        let mut eng = MrEngine::new(MrConfig::with_partitions(8));
        let got = mr_quotient_diameter_by_squaring(&mut eng, &g, &c, 8).unwrap();
        assert_eq!(got, expected);
        // 2 rounds per squaring, ⌈log₂ ℓ⌉ squarings.
        let l = c.num_clusters();
        let squarings = (usize::BITS - (l - 1).leading_zeros()) as usize;
        assert_eq!(eng.stats().num_rounds(), 2 * squarings);
    }

    #[test]
    fn matrix_squaring_respects_ml_ledger() {
        // The Fact 2 trade-off: larger tiles load reducers more heavily.
        let g = generators::mesh(12, 12);
        let c = cluster(&g, &ClusterParams::new(1, 9)).clustering;
        let mut eng = MrEngine::new(MrConfig::with_partitions(4));
        let _ = mr_quotient_diameter_by_squaring(&mut eng, &g, &c, 4).unwrap();
        assert!(eng.stats().max_local_memory() >= 2);
    }
}
