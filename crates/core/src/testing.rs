//! Shared validation helpers for unit, integration, and property tests.
//!
//! The per-algorithm `check` helpers used to be copy-pasted into each
//! module's test block; they live here once so that strategy-matrix tests —
//! running an algorithm under every [`FrontierStrategy`] and demanding
//! byte-identical output — don't triple the boilerplate. The module ships in
//! the library (not behind `cfg(test)`) so the workspace-level integration
//! tests and benches can reuse the same assertions; if this crate is ever
//! published, gate it behind a `testing` cargo feature first — everything
//! here panics on violation and is not meant for production call sites.

use crate::cluster::{cluster, ClusterParams, ClusterResult};
use crate::cluster2::{cluster2, Cluster2Result};
use crate::mpx::{mpx_with_frontier, MpxResult};
use pardec_graph::frontier::FrontierStrategy;
use pardec_graph::CsrGraph;

/// Runs CLUSTER(τ) and validates the partition (panics on violation).
pub fn check_cluster(g: &CsrGraph, tau: usize, seed: u64) -> ClusterResult {
    check_cluster_with(g, &ClusterParams::new(tau, seed))
}

/// As [`check_cluster`] with explicit parameters.
pub fn check_cluster_with(g: &CsrGraph, params: &ClusterParams) -> ClusterResult {
    let r = cluster(g, params);
    r.clustering.validate(g).unwrap();
    r
}

/// Runs CLUSTER2(τ) and validates the partition (panics on violation).
pub fn check_cluster2(g: &CsrGraph, tau: usize, seed: u64) -> Cluster2Result {
    check_cluster2_with(g, &ClusterParams::new(tau, seed))
}

/// As [`check_cluster2`] with explicit parameters.
pub fn check_cluster2_with(g: &CsrGraph, params: &ClusterParams) -> Cluster2Result {
    let r = cluster2(g, params);
    r.clustering.validate(g).unwrap();
    r
}

/// Runs MPX and validates the partition and its coverage (panics on
/// violation).
pub fn check_mpx(g: &CsrGraph, beta: f64, seed: u64) -> MpxResult {
    let r = mpx_with_frontier(g, beta, seed, FrontierStrategy::default_from_env());
    r.clustering.validate(g).unwrap();
    assert_eq!(
        r.clustering.cluster_sizes().iter().sum::<usize>(),
        g.num_nodes(),
        "MPX left nodes uncovered"
    );
    r
}

/// Runs `run` under every frontier strategy and asserts the outputs are
/// byte-identical to the top-down reference — the engine's equivalence
/// contract, checked at whatever altitude the caller picks (full
/// decomposition results, diameter estimates, raw BFS arrays, …).
pub fn assert_frontier_strategies_agree<T, F>(label: &str, run: F) -> T
where
    T: PartialEq + std::fmt::Debug,
    F: Fn(FrontierStrategy) -> T,
{
    let reference = run(FrontierStrategy::TopDown);
    for strategy in [FrontierStrategy::BottomUp, FrontierStrategy::Hybrid] {
        let other = run(strategy);
        assert_eq!(
            reference, other,
            "{label}: {strategy} diverged from topdown"
        );
    }
    reference
}

/// Strategy matrix over CLUSTER: identical clustering and trace under every
/// engine. Returns the top-down result for further assertions.
pub fn assert_cluster_strategies_agree(g: &CsrGraph, tau: usize, seed: u64) -> ClusterResult {
    assert_frontier_strategies_agree("cluster", |strategy| {
        check_cluster_with(g, &ClusterParams::new(tau, seed).with_frontier(strategy))
    })
}

/// Strategy matrix over CLUSTER2: identical clustering and probe radius
/// under every engine.
pub fn assert_cluster2_strategies_agree(g: &CsrGraph, tau: usize, seed: u64) -> Cluster2Result {
    assert_frontier_strategies_agree("cluster2", |strategy| {
        check_cluster2_with(g, &ClusterParams::new(tau, seed).with_frontier(strategy))
    })
}

/// Strategy matrix over MPX: identical clustering under every engine.
pub fn assert_mpx_strategies_agree(g: &CsrGraph, beta: f64, seed: u64) -> MpxResult {
    assert_frontier_strategies_agree("mpx", |strategy| {
        let r = mpx_with_frontier(g, beta, seed, strategy);
        r.clustering.validate(g).unwrap();
        r
    })
}
