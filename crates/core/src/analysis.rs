//! Diagnostics backing the paper's analysis sections: a ball-growth proxy
//! for the doubling dimension (Definition 2) and radius-vs-τ sweeps
//! (Lemma 1's `R_ALG = O(⌈Δ/τ^{1/b}⌉ log n)` shape).

use crate::cluster::{cluster, ClusterParams};
use pardec_graph::traversal::bfs;
use pardec_graph::{CsrGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// One point of a [`radius_tau_sweep`].
#[derive(Clone, Debug, PartialEq)]
pub struct SweepPoint {
    pub tau: usize,
    pub clusters: usize,
    pub max_radius: u32,
    pub growth_steps: usize,
}

/// Runs CLUSTER over a τ grid, reporting cluster counts and radii — the
/// ablation behind Lemma 1: on a graph of doubling dimension `b`, doubling τ
/// should shrink the radius by roughly `2^{1/b}`.
pub fn radius_tau_sweep(g: &CsrGraph, taus: &[usize], seed: u64) -> Vec<SweepPoint> {
    taus.iter()
        .map(|&tau| {
            let r = cluster(g, &ClusterParams::new(tau.max(1), seed));
            SweepPoint {
                tau,
                clusters: r.clustering.num_clusters(),
                max_radius: r.clustering.max_radius(),
                growth_steps: r.trace.total_growth_steps(),
            }
        })
        .collect()
}

/// Ball-growth estimate of the doubling dimension (Definition 2).
///
/// For `samples` random nodes `v` and every radius `r` with `|B(v, 2r)|`
/// still growing, measures `log₂(|B(v, 2r)| / |B(v, r)|)` and returns the
/// median of the per-node maxima. This *growth dimension* lower-bounds the
/// true (covering-based) doubling dimension and matches it on homogeneous
/// graphs — meshes report ≈ 2, expanders report large values. It is a
/// diagnostic, not a certified bound.
pub fn ball_growth_dimension(g: &CsrGraph, samples: usize, seed: u64) -> f64 {
    let n = g.num_nodes();
    if n == 0 || samples == 0 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let sources: Vec<NodeId> = (0..samples.min(n))
        .map(|_| rng.gen_range(0..n) as NodeId)
        .collect();
    let mut maxima: Vec<f64> = sources
        .par_iter()
        .map(|&v| {
            let res = bfs(g, v);
            let ecc = res.levels as usize;
            if ecc == 0 {
                return 0.0;
            }
            // Cumulative ball sizes by radius.
            let mut ball = vec![0usize; ecc + 1];
            for &d in &res.dist {
                if d != pardec_graph::INFINITE_DIST {
                    ball[d as usize] += 1;
                }
            }
            for r in 1..=ecc {
                ball[r] += ball[r - 1];
            }
            let mut best: f64 = 0.0;
            let mut r = 1usize;
            while 2 * r <= ecc {
                let ratio = ball[2 * r] as f64 / ball[r] as f64;
                best = best.max(ratio.log2());
                r += 1;
            }
            best
        })
        .collect();
    maxima.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    maxima[maxima.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardec_graph::generators;

    #[test]
    fn sweep_shrinks_radius() {
        let g = generators::mesh(35, 35);
        let pts = radius_tau_sweep(&g, &[1, 8, 64], 3);
        assert_eq!(pts.len(), 3);
        assert!(pts[0].max_radius >= pts[2].max_radius);
        assert!(pts[0].clusters <= pts[2].clusters);
    }

    #[test]
    fn mesh_growth_dimension_near_two() {
        let g = generators::mesh(40, 40);
        let b = ball_growth_dimension(&g, 9, 1);
        assert!(
            (1.2..=2.6).contains(&b),
            "mesh growth dimension {b} not ≈ 2"
        );
    }

    #[test]
    fn expander_growth_dimension_large() {
        let g = generators::random_regular(2000, 6, 5);
        let b = ball_growth_dimension(&g, 9, 2);
        assert!(b > 2.0, "expander growth dimension {b} unexpectedly small");
    }

    #[test]
    fn path_growth_dimension_about_one() {
        let g = generators::path(400);
        let b = ball_growth_dimension(&g, 9, 3);
        assert!(b <= 1.5, "path growth dimension {b}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(ball_growth_dimension(&CsrGraph::empty(0), 4, 0), 0.0);
        assert_eq!(ball_growth_dimension(&generators::path(1), 4, 0), 0.0);
        assert!(radius_tau_sweep(&CsrGraph::empty(0), &[1], 0)[0].clusters == 0);
    }
}
