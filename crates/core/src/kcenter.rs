//! §3.1–3.2 — approximation to the graph **k-center** problem.
//!
//! Given an unweighted connected graph, find `k` centers minimizing the
//! maximum distance of any node to its nearest center. NP-hard; the best
//! sequential approximation is the Gonzalez / Hochbaum–Shmoys factor 2.
//!
//! Theorem 2: running CLUSTER with `τ = Θ(k / log² n)` and, if more than `k`
//! clusters come back, merging them along a spanning forest of the quotient
//! graph yields an `O(log³ n)`-approximation — computable in parallel depth
//! far below the `k` sequential BFS waves Gonzalez needs.

use crate::cluster::{cluster, log2n, ClusterParams};
use pardec_graph::traversal::bfs_multi;
use pardec_graph::{components, CsrGraph, NodeId, INFINITE_DIST, INVALID_NODE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Errors of the k-center solvers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KCenterError {
    /// `k` is smaller than the number of connected components, so every
    /// feasible solution has infinite radius (§3.2 requires `k ≥ h`).
    TooFewCenters { k: usize, components: usize },
    /// `k = 0` or the graph is empty.
    Degenerate,
}

impl std::fmt::Display for KCenterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KCenterError::TooFewCenters { k, components } => {
                write!(
                    f,
                    "k = {k} below the number of connected components {components}"
                )
            }
            KCenterError::Degenerate => write!(f, "empty graph or k = 0"),
        }
    }
}

impl std::error::Error for KCenterError {}

/// A k-center solution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KCenterResult {
    /// Chosen centers (`≤ k`, distinct).
    pub centers: Vec<NodeId>,
    /// The objective: `max_v dist(v, centers)`.
    pub radius: u32,
    /// Clusters CLUSTER produced before merging (`0` for Gonzalez).
    pub clusters_before_merge: usize,
}

/// The k-center objective value of a center set: the largest BFS distance
/// from any node to its nearest center ([`INFINITE_DIST`] if some node is
/// unreachable from every center).
pub fn kcenter_objective(g: &CsrGraph, centers: &[NodeId]) -> u32 {
    if g.num_nodes() == 0 {
        return 0;
    }
    if centers.is_empty() {
        return INFINITE_DIST;
    }
    let (res, _) = bfs_multi(g, centers);
    if res.visited < g.num_nodes() {
        INFINITE_DIST
    } else {
        res.levels
    }
}

/// Gonzalez's farthest-first traversal — the classic sequential
/// 2-approximation, used as the quality baseline.
///
/// Runs `k` BFS waves (`O(k(n + m))`); each iteration adds the node farthest
/// from the current center set.
pub fn gonzalez(g: &CsrGraph, k: usize, seed: u64) -> Result<KCenterResult, KCenterError> {
    let n = g.num_nodes();
    if n == 0 || k == 0 {
        return Err(KCenterError::Degenerate);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut centers = vec![rng.gen_range(0..n) as NodeId];
    let mut dist = pardec_graph::traversal::bfs(g, centers[0]).dist;
    while centers.len() < k.min(n) {
        // Farthest node, treating unreachable (other components) as +inf.
        let far = (0..n)
            .max_by_key(|&v| (dist[v], std::cmp::Reverse(v)))
            .expect("nonempty");
        if dist[far] == 0 {
            break; // everything is already a center
        }
        centers.push(far as NodeId);
        let d2 = pardec_graph::traversal::bfs(g, far as NodeId).dist;
        for v in 0..n {
            dist[v] = dist[v].min(d2[v]);
        }
    }
    let radius = dist.iter().copied().max().unwrap_or(0);
    Ok(KCenterResult {
        centers,
        radius,
        clusters_before_merge: 0,
    })
}

/// CLUSTER-based `O(log³ n)`-approximation (Theorem 2, extended to
/// disconnected graphs per §3.2).
///
/// Runs CLUSTER(`τ = max(1, ⌊k / log² n⌋)`); if more than `k` clusters come
/// back they are merged along a BFS spanning forest of the quotient graph by
/// size-bounded subtree partition (each merged group is a connected union of
/// clusters), leaving at most `k` groups.
pub fn kcenter(g: &CsrGraph, k: usize, seed: u64) -> Result<KCenterResult, KCenterError> {
    let n = g.num_nodes();
    if n == 0 || k == 0 {
        return Err(KCenterError::Degenerate);
    }
    let (h, _) = components::connected_components(g);
    if k < h {
        return Err(KCenterError::TooFewCenters { k, components: h });
    }
    if k >= n {
        return Ok(KCenterResult {
            centers: (0..n as NodeId).collect(),
            radius: 0,
            clusters_before_merge: n,
        });
    }

    let logn = log2n(n);
    let tau = ((k as f64 / (logn * logn)).floor() as usize).max(1);
    let res = cluster(g, &ClusterParams::new(tau, seed));
    let clustering = res.clustering;
    let w = clustering.num_clusters();

    let centers: Vec<NodeId> = if w <= k {
        clustering.centers.clone()
    } else {
        // Merge along a spanning forest of the quotient graph.
        let q = clustering.quotient(g);
        let group_of = forest_partition(&q, k, h);
        // One representative center per group: the first member cluster's.
        let num_groups = group_of
            .iter()
            .map(|&gid| gid as usize + 1)
            .max()
            .unwrap_or(0);
        let mut rep: Vec<NodeId> = vec![INVALID_NODE; num_groups];
        for (c, &gid) in group_of.iter().enumerate() {
            let gid = gid as usize;
            if rep[gid] == INVALID_NODE {
                rep[gid] = clustering.centers[c];
            }
        }
        rep.retain(|&r| r != INVALID_NODE);
        rep
    };
    debug_assert!(centers.len() <= k);
    let radius = kcenter_objective(g, &centers);
    Ok(KCenterResult {
        centers,
        radius,
        clusters_before_merge: w,
    })
}

/// Partitions the nodes of `q` (a quotient graph with `h` connected
/// components) into at most `k ≥ h` connected groups, by cutting a DFS
/// spanning forest into subtrees of at least `⌈W / (k - h)⌉` pending nodes
/// each (post-order accumulation); tree roots absorb the remainders.
/// Returns `group_of[node] = group id` (groups numbered contiguously).
fn forest_partition(q: &CsrGraph, k: usize, h: usize) -> Vec<NodeId> {
    let w = q.num_nodes();
    debug_assert!(k >= h && w > 0);
    // Every cut group absorbs ≥ `chunk` nodes, so cuts ≤ (k - h); the h
    // root-remainder groups bring the total to ≤ k.
    let budget = (k - h).max(1);
    let chunk = w.div_ceil(budget);

    let mut group_of: Vec<NodeId> = vec![INVALID_NODE; w];
    let mut next_group: NodeId = 0;
    let mut parent: Vec<NodeId> = vec![INVALID_NODE; w];
    let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); w];
    let mut visited = vec![false; w];
    // Unassigned ("pending") nodes remaining in each node's subtree.
    let mut pending_size: Vec<usize> = vec![1; w];

    // Cuts flood only along tree edges, through still-unassigned
    // descendants — quotient non-tree edges must not leak between subtrees.
    fn cut(start: NodeId, gid: NodeId, children: &[Vec<NodeId>], group_of: &mut [NodeId]) {
        let mut stack = vec![start];
        group_of[start as usize] = gid;
        while let Some(u) = stack.pop() {
            for &v in &children[u as usize] {
                if group_of[v as usize] == INVALID_NODE {
                    group_of[v as usize] = gid;
                    stack.push(v);
                }
            }
        }
    }

    for root in 0..w as NodeId {
        if visited[root as usize] {
            continue;
        }
        // Iterative DFS computing a spanning tree and a discovery order.
        let mut order: Vec<NodeId> = Vec::new();
        let mut stack = vec![root];
        visited[root as usize] = true;
        while let Some(u) = stack.pop() {
            order.push(u);
            for &v in q.neighbors(u) {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    parent[v as usize] = u;
                    children[u as usize].push(v);
                    stack.push(v);
                }
            }
        }
        // Reverse discovery order is a valid post-order for accumulation:
        // every child appears after its parent in `order`.
        for &u in order.iter().rev() {
            let p = parent[u as usize];
            if pending_size[u as usize] >= chunk && p != INVALID_NODE {
                cut(u, next_group, &children, &mut group_of);
                next_group += 1;
            } else if p != INVALID_NODE {
                pending_size[p as usize] += pending_size[u as usize];
            }
        }
        // Root remainder group (possibly small).
        cut(root, next_group, &children, &mut group_of);
        next_group += 1;
    }
    group_of
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardec_graph::generators;

    #[test]
    fn gonzalez_on_path() {
        let g = generators::path(100);
        let r = gonzalez(&g, 2, 1).unwrap();
        assert_eq!(r.centers.len(), 2);
        // Optimal 2-center radius of a path of 100 nodes is 25; Gonzalez
        // guarantees ≤ 2·OPT.
        assert!(r.radius <= 50, "radius {}", r.radius);
        assert_eq!(r.radius, kcenter_objective(&g, &r.centers));
    }

    #[test]
    fn gonzalez_handles_disconnected() {
        let g = generators::disjoint_union(&generators::path(30), &generators::cycle(20));
        let r = gonzalez(&g, 2, 0).unwrap();
        // Farthest-first must place one center per component.
        assert!(r.radius < INFINITE_DIST);
    }

    #[test]
    fn gonzalez_k_ge_n() {
        let g = generators::path(5);
        let r = gonzalez(&g, 10, 0).unwrap();
        assert_eq!(r.radius, 0);
    }

    #[test]
    fn kcenter_feasible_and_bounded() {
        let g = generators::mesh(30, 30);
        for seed in 0..3 {
            let ours = kcenter(&g, 16, seed).unwrap();
            assert!(ours.centers.len() <= 16);
            assert!(ours.radius < INFINITE_DIST);
            assert_eq!(ours.radius, kcenter_objective(&g, &ours.centers));
            // Any feasible solution is ≥ OPT ≥ gonzalez/2; and Theorem 2
            // promises a polylog factor above OPT — checked loosely.
            let gz = gonzalez(&g, 16, seed).unwrap();
            assert!(ours.radius as u64 >= gz.radius as u64 / 2);
            let logn = log2n(g.num_nodes());
            let bound = (gz.radius as f64 * logn * logn).ceil() as u64 + 1;
            assert!(
                (ours.radius as u64) <= bound,
                "seed {seed}: ours {} vs bound {bound} (gonzalez {})",
                ours.radius,
                gz.radius
            );
        }
    }

    #[test]
    fn kcenter_merges_down_to_k() {
        // Small k forces the merge path (CLUSTER emits ≥ some log² n
        // clusters whenever its loop runs).
        let g = generators::road_network(40, 40, 0.4, 3);
        let r = kcenter(&g, 5, 1).unwrap();
        assert!(r.centers.len() <= 5);
        assert!(r.clusters_before_merge > 5, "merge path not exercised");
        assert!(r.radius < INFINITE_DIST);
    }

    #[test]
    fn kcenter_errors() {
        let g = generators::disjoint_union(&generators::path(5), &generators::path(5));
        assert_eq!(
            kcenter(&g, 1, 0),
            Err(KCenterError::TooFewCenters {
                k: 1,
                components: 2
            })
        );
        assert_eq!(kcenter(&g, 0, 0), Err(KCenterError::Degenerate));
        assert_eq!(
            kcenter(&CsrGraph::empty(0), 3, 0),
            Err(KCenterError::Degenerate)
        );
    }

    #[test]
    fn kcenter_disconnected_covers_all_components() {
        let g = generators::disjoint_union(
            &generators::mesh(12, 12),
            &generators::road_network(10, 10, 0.3, 5),
        );
        let r = kcenter(&g, 8, 2).unwrap();
        assert!(r.radius < INFINITE_DIST, "some component uncovered");
        assert!(r.centers.len() <= 8);
    }

    #[test]
    fn kcenter_k_ge_n() {
        let g = generators::path(4);
        let r = kcenter(&g, 100, 0).unwrap();
        assert_eq!(r.radius, 0);
        assert_eq!(r.centers.len(), 4);
    }

    #[test]
    fn objective_empty_center_set() {
        let g = generators::path(3);
        assert_eq!(kcenter_objective(&g, &[]), INFINITE_DIST);
    }

    #[test]
    fn forest_partition_groups_connected_and_bounded() {
        let q = generators::road_network(12, 12, 0.3, 9);
        for k in [3usize, 6, 20] {
            let groups = forest_partition(&q, k, 1);
            let num_groups = groups.iter().map(|&g| g as usize + 1).max().unwrap();
            assert!(num_groups <= k, "k = {k}: {num_groups} groups");
            assert!(groups.iter().all(|&g| g != INVALID_NODE));
            // Connectivity of each group within q.
            for gid in 0..num_groups as NodeId {
                let members: Vec<NodeId> = (0..q.num_nodes() as NodeId)
                    .filter(|&v| groups[v as usize] == gid)
                    .collect();
                assert!(!members.is_empty());
                // BFS within the group from its first member must reach all.
                let mut seen = std::collections::HashSet::new();
                let mut stack = vec![members[0]];
                seen.insert(members[0]);
                while let Some(u) = stack.pop() {
                    for &v in q.neighbors(u) {
                        if groups[v as usize] == gid && seen.insert(v) {
                            stack.push(v);
                        }
                    }
                }
                assert_eq!(seen.len(), members.len(), "group {gid} disconnected");
            }
        }
    }
}
