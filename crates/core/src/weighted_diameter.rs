//! Weighted diameter approximation (arXiv:1506.03265, §4 generalized).
//!
//! Pipeline: weighted-CLUSTER the graph, contract each cluster to one node
//! of the **weighted quotient** (edge weight = shortest connecting path
//! between adjacent centers through one cut edge), and report
//!
//! * upper bound `Δ″ = 2·R_w + Δ′_C`, where `R_w` is the maximum weighted
//!   cluster radius and `Δ′_C` the quotient's weighted APSP diameter — any
//!   shortest path detours through at most two cluster centers plus a
//!   center-to-center quotient path;
//! * lower bound from a double-sweep Dijkstra on `G` itself (farthest node
//!   from an arbitrary root, then its eccentricity), which any true
//!   diameter dominates.

use crate::cluster::ClusterParams;
use crate::weighted_cluster::{weighted_cluster_result, WeightedClusterTrace, WeightedClustering};
use pardec_graph::weighted::INFINITE_WEIGHT;
use pardec_graph::{CombineStats, NodeId, WeightedGraph};

/// Output of [`weighted_diameter`].
#[derive(Clone, Debug)]
pub struct WeightedDiameterApprox {
    /// Double-sweep lower bound on the weighted diameter.
    pub lower_bound: u64,
    /// `Δ″ = 2·R_w + Δ′_C` — the weighted-quotient upper bound.
    pub upper_bound: u64,
    /// Max weighted cluster radius `R_w` of the decomposition used.
    pub weighted_radius: u64,
    /// Max hop radius of the decomposition — the parallel-depth proxy.
    pub hop_radius: u32,
    /// Weighted quotient size.
    pub quotient_nodes: usize,
    pub quotient_edges: usize,
    /// Combine-kernel ledger of the weighted quotient build: cut edges fed
    /// in, unique min-weight quotient edges out.
    pub quotient_kernel: CombineStats,
    /// Per-round trace of the decomposition.
    pub trace: WeightedClusterTrace,
    /// The clustering (for reuse: diagnostics, oracles).
    pub clustering: WeightedClustering,
}

impl WeightedDiameterApprox {
    /// The algorithm's diameter estimate (the upper bound, as in the
    /// paper's tables).
    pub fn estimate(&self) -> u64 {
        self.upper_bound
    }
}

/// Runs the weighted diameter approximation on `g`.
///
/// On disconnected graphs both bounds refer to the largest per-component
/// value, mirroring [`WeightedGraph::apsp_diameter`].
pub fn weighted_diameter(g: &WeightedGraph, params: &ClusterParams) -> WeightedDiameterApprox {
    let r = weighted_cluster_result(g, params);
    let (quotient, kernel) = r.clustering.quotient_with_stats(g);
    let radius = r.clustering.max_weighted_radius();
    let upper = 2 * radius + quotient.apsp_diameter();
    WeightedDiameterApprox {
        lower_bound: double_sweep_lower_bound(g),
        upper_bound: upper,
        weighted_radius: radius,
        hop_radius: r.clustering.max_hop_radius(),
        quotient_nodes: quotient.num_nodes(),
        quotient_edges: quotient.num_edges(),
        quotient_kernel: kernel,
        trace: r.trace,
        clustering: r.clustering,
    }
}

/// Double-sweep Dijkstra: eccentricity of the farthest node from node 0.
/// A valid lower bound on the (per-component max) weighted diameter.
fn double_sweep_lower_bound(g: &WeightedGraph) -> u64 {
    if g.num_nodes() == 0 {
        return 0;
    }
    let d0 = g.dijkstra(0);
    let far = d0
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != INFINITE_WEIGHT)
        .max_by_key(|&(v, &d)| (d, std::cmp::Reverse(v)))
        .map(|(v, _)| v as NodeId)
        .unwrap_or(0);
    g.eccentricity(far)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted_grid(rows: usize, cols: usize) -> WeightedGraph {
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let u = (r * cols + c) as NodeId;
                if c + 1 < cols {
                    edges.push((u, u + 1, 2u64));
                }
                if r + 1 < rows {
                    edges.push((u, u + cols as NodeId, 5u64));
                }
            }
        }
        WeightedGraph::from_edges(rows * cols, &edges)
    }

    #[test]
    fn bounds_sandwich_true_diameter() {
        let g = weighted_grid(12, 12);
        let truth = g.apsp_diameter();
        for seed in [1u64, 9] {
            let a = weighted_diameter(&g, &ClusterParams::new(2, seed));
            assert!(a.lower_bound <= truth, "lower {} > {truth}", a.lower_bound);
            assert!(a.upper_bound >= truth, "upper {} < {truth}", a.upper_bound);
            assert_eq!(a.quotient_nodes, a.clustering.num_clusters());
            assert!(a.estimate() >= a.lower_bound);
        }
    }

    #[test]
    fn path_graph_bounds_are_tight_enough() {
        // Weighted path: diameter = sum of weights; double sweep is exact.
        let edges: Vec<_> = (1..30u32).map(|v| (v - 1, v, (v as u64 % 4) + 1)).collect();
        let g = WeightedGraph::from_edges(30, &edges);
        let truth = g.apsp_diameter();
        let a = weighted_diameter(&g, &ClusterParams::new(1, 3));
        assert_eq!(a.lower_bound, truth);
        assert!(a.upper_bound >= truth);
    }

    #[test]
    fn disconnected_components_take_max() {
        let g = WeightedGraph::from_edges(7, &[(0, 1, 10), (1, 2, 10), (4, 5, 3), (5, 6, 3)]);
        let a = weighted_diameter(&g, &ClusterParams::new(1, 2));
        assert!(a.upper_bound >= 20);
        assert!(a.lower_bound <= 20);
    }

    #[test]
    fn empty_graph() {
        let g = WeightedGraph::from_edges(0, &[]);
        let a = weighted_diameter(&g, &ClusterParams::new(1, 0));
        assert_eq!(a.lower_bound, 0);
        assert_eq!(a.upper_bound, 0);
        assert_eq!(a.quotient_nodes, 0);
    }

    #[test]
    fn deterministic_across_deltas() {
        let g = weighted_grid(9, 9);
        let base = weighted_diameter(&g, &ClusterParams::new(2, 4));
        for delta in [1u64, 3, 50] {
            let a = weighted_diameter(&g, &ClusterParams::new(2, 4).with_delta(delta));
            assert_eq!(a.lower_bound, base.lower_bound);
            assert_eq!(a.upper_bound, base.upper_bound);
            assert_eq!(a.clustering, base.clustering);
        }
    }
}
