//! Algorithm 1 — **CLUSTER(τ)**: the paper's core decomposition.
//!
//! ```text
//! C ← ∅; V′ ← ∅
//! while |V − V′| ≥ 8·τ·log n do
//!     select each node of V − V′ as a new center independently
//!         with probability 4·τ·log n / |V − V′|
//!     add the new singleton clusters to C
//!     grow all clusters of C disjointly until ≥ |V − V′|/2 new nodes covered
//!     V′ ← covered nodes
//! return C ∪ {singletons on V − V′}
//! ```
//!
//! Guarantees (Theorem 1, Lemma 1): `O(τ·log² n)` clusters whp, and on a
//! graph of doubling dimension `b` and diameter `Δ` a maximum radius of
//! `O(⌈Δ/τ^{1/b}⌉·log n)` — within `O(log n)` of the best radius achievable
//! by *any* τ-cluster decomposition. All logarithms are base 2 (paper,
//! footnote 1).

use crate::clustering::Clustering;
use crate::growth::GrowthEngine;
use pardec_graph::frontier::FrontierStrategy;
use pardec_graph::{NeighborAccess, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of [`cluster`]. `batch_factor` and `stop_factor` are the
/// pseudocode's constants 4 and 8, exposed for the ablation experiments.
#[derive(Clone, Debug)]
pub struct ClusterParams {
    /// The granularity parameter τ ≥ 1.
    pub tau: usize,
    /// RNG seed (center selection).
    pub seed: u64,
    /// Per-batch selection probability numerator factor (paper: 4).
    pub batch_factor: f64,
    /// While-loop threshold factor (paper: 8): loop while
    /// `uncovered ≥ stop_factor · τ · log n`.
    pub stop_factor: f64,
    /// Frontier expansion strategy of the growth engine. Every strategy
    /// produces a byte-identical clustering; this trades wall-clock only.
    /// Unused by [`crate::weighted_cluster`], whose bucketed Dijkstra
    /// growth has no level-synchronous frontier to flip.
    pub frontier: FrontierStrategy,
    /// Bucket width δ of the weighted engine (arrival-time window per
    /// bucket). Like `frontier`, a wall-clock knob only: every δ produces a
    /// byte-identical weighted clustering. `None` falls back to
    /// `PARDEC_DELTA`, then to the mean-edge-weight heuristic. Unused by
    /// the unweighted [`cluster`].
    pub delta: Option<u64>,
}

impl ClusterParams {
    /// Paper constants with the given τ and seed. The frontier strategy
    /// follows `PARDEC_FRONTIER` (default: top-down).
    pub fn new(tau: usize, seed: u64) -> Self {
        assert!(tau >= 1, "tau must be positive");
        ClusterParams {
            tau,
            seed,
            batch_factor: 4.0,
            stop_factor: 8.0,
            frontier: FrontierStrategy::default_from_env(),
            delta: None,
        }
    }

    /// Selects the growth engine's frontier expansion strategy.
    pub fn with_frontier(mut self, strategy: FrontierStrategy) -> Self {
        self.frontier = strategy;
        self
    }

    /// Pins the weighted engine's bucket width δ (must be ≥ 1).
    pub fn with_delta(mut self, delta: u64) -> Self {
        assert!(delta >= 1, "delta must be positive");
        self.delta = Some(delta);
        self
    }
}

/// Per-iteration record of a CLUSTER run.
#[derive(Clone, Debug, PartialEq)]
pub struct IterationTrace {
    /// Uncovered nodes when the iteration began.
    pub uncovered_before: usize,
    /// Centers activated by this batch.
    pub new_centers: usize,
    /// Growth steps executed in this iteration.
    pub growth_steps: usize,
    /// Nodes covered during the iteration (batch + growth).
    pub covered: usize,
}

/// Execution trace of a CLUSTER/CLUSTER2/MPX run — the round ledger behind
/// the §5 analysis (total growth steps ≍ parallel rounds, Lemma 3).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClusterTrace {
    /// One record per while-loop iteration (batch).
    pub iterations: Vec<IterationTrace>,
    /// Singleton clusters created by the final sweep.
    pub tail_singletons: usize,
}

impl ClusterTrace {
    /// Total cluster-growing steps `R` over the run; with `M_L = Ω(nᵋ)` the
    /// MR implementation needs `O(R)` rounds (Lemma 3).
    pub fn total_growth_steps(&self) -> usize {
        self.iterations.iter().map(|i| i.growth_steps).sum()
    }

    /// Number of center batches (while-loop iterations).
    pub fn num_batches(&self) -> usize {
        self.iterations.len()
    }
}

/// Result of [`cluster`]: the decomposition plus its execution trace.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterResult {
    pub clustering: Clustering,
    pub trace: ClusterTrace,
}

/// `log₂ n`, clamped below by 1 so thresholds behave on tiny graphs.
pub(crate) fn log2n(n: usize) -> f64 {
    (n.max(2) as f64).log2()
}

/// Runs **CLUSTER(τ)** (Algorithm 1) on `g`.
///
/// Works on disconnected graphs too (§3.2): unreachable regions keep
/// receiving fresh batches until the loop threshold is passed, and whatever
/// remains becomes singleton clusters.
pub fn cluster<G: NeighborAccess>(g: &G, params: &ClusterParams) -> ClusterResult {
    let n = g.num_nodes();
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut eng = GrowthEngine::with_strategy(g, params.frontier);
    let mut trace = ClusterTrace::default();
    let logn = log2n(n);
    let threshold = (params.stop_factor * params.tau as f64 * logn).max(1.0);

    // The paper's while loop runs ℓ = ⌈log(n / (8τ log n))⌉ ≤ log n times in
    // expectation; the hard cap below only guards against adversarially
    // unlucky seeds on disconnected graphs (see DESIGN.md §5.2).
    let max_iterations = (2.0 * logn) as usize + 32;

    while (eng.uncovered() as f64) >= threshold && trace.iterations.len() < max_iterations {
        let mut round_span = pardec_obs::span!(
            "cluster.round",
            round = trace.iterations.len(),
            uncovered = eng.uncovered(),
        );
        let uncovered_before = eng.uncovered();
        let p = (params.batch_factor * params.tau as f64 * logn / uncovered_before as f64)
            .clamp(0.0, 1.0);

        // Select each uncovered node independently with probability p.
        let batch: Vec<NodeId> = eng
            .uncovered_nodes()
            .filter(|_| rng.gen::<f64>() < p)
            .collect();
        let mut new_centers = 0;
        for v in batch {
            if eng.add_center(v) {
                new_centers += 1;
            }
        }
        // Progress guard: with no active clusters and an empty batch the
        // iteration would stall; force one uniformly random center (an event
        // of probability < n^{-2} per the Theorem 1 analysis).
        if new_centers == 0 && eng.frontier_len() == 0 {
            let pick = rng.gen_range(0..uncovered_before);
            let forced = eng.uncovered_nodes().nth(pick);
            if let Some(v) = forced {
                eng.add_center(v);
                new_centers = 1;
            }
        }

        // Grow until at least half of the iteration's uncovered nodes are
        // covered (centers count as covered) or the frontier dies out.
        let goal = uncovered_before.div_ceil(2);
        let mut covered_this = new_centers;
        let mut growth_steps = 0;
        while covered_this < goal {
            let newly = eng.step();
            growth_steps += 1;
            covered_this += newly;
            if newly == 0 && eng.frontier_len() == 0 {
                break;
            }
        }
        round_span.field("new_centers", new_centers);
        round_span.field("growth_steps", growth_steps);
        round_span.field("covered", covered_this);
        trace.iterations.push(IterationTrace {
            uncovered_before,
            new_centers,
            growth_steps,
            covered: covered_this,
        });
    }

    trace.tail_singletons = eng.uncovered();
    let clustering = eng.finish();
    ClusterResult { clustering, trace }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{assert_cluster_strategies_agree, check_cluster as check};
    use pardec_graph::generators;

    #[test]
    fn covers_mesh() {
        let g = generators::mesh(30, 30);
        let r = check(&g, 4, 1);
        assert_eq!(
            r.clustering.cluster_sizes().iter().sum::<usize>(),
            g.num_nodes()
        );
        assert!(r.clustering.num_clusters() >= 4);
    }

    #[test]
    fn cluster_count_within_theorem_bound() {
        // Theorem 1: O(τ log² n) clusters whp. Check with a generous
        // constant on several seeds.
        let g = generators::road_network(40, 40, 0.4, 9);
        let n = g.num_nodes();
        let bound = |tau: usize| (8.0 * tau as f64 * log2n(n) * log2n(n)) as usize;
        for seed in 0..5 {
            for tau in [1usize, 4, 16] {
                let r = check(&g, tau, seed);
                assert!(
                    r.clustering.num_clusters() <= bound(tau),
                    "tau={tau} seed={seed}: {} clusters > bound {}",
                    r.clustering.num_clusters(),
                    bound(tau)
                );
            }
        }
    }

    #[test]
    fn radius_shrinks_with_tau() {
        // Lemma 1: radius ~ Δ / τ^{1/b}; more clusters, smaller radius.
        let g = generators::mesh(40, 40);
        let r_small = check(&g, 2, 7).clustering.max_radius();
        let r_large = check(&g, 64, 7).clustering.max_radius();
        assert!(
            r_large < r_small,
            "radius did not shrink: tau=2 -> {r_small}, tau=64 -> {r_large}"
        );
    }

    #[test]
    fn radius_well_below_diameter_on_lollipop() {
        // The §3 example: expander + long tail. The tail forces Δ large, but
        // batches keep landing in the tail, keeping the radius small.
        let g = generators::lollipop(2000, 4, 400, 3);
        let delta = 400u32; // at least the tail length
        let r = check(&g, 32, 5);
        assert!(
            r.clustering.max_radius() * 4 < delta,
            "radius {} not ≪ diameter {delta}",
            r.clustering.max_radius()
        );
    }

    #[test]
    fn small_graph_degenerates_to_singletons() {
        let g = generators::path(5);
        // Threshold 8·τ·log n > 5 -> loop never runs; all singletons.
        let r = check(&g, 1, 0);
        assert_eq!(r.clustering.num_clusters(), 5);
        assert_eq!(r.clustering.max_radius(), 0);
        assert_eq!(r.trace.num_batches(), 0);
        assert_eq!(r.trace.tail_singletons, 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::preferential_attachment(800, 4, 11);
        let a = cluster(&g, &ClusterParams::new(4, 42));
        let b = cluster(&g, &ClusterParams::new(4, 42));
        assert_eq!(a.clustering, b.clustering);
        assert_eq!(a.trace, b.trace);
        let c = cluster(&g, &ClusterParams::new(4, 43));
        assert_ne!(a.clustering, c.clustering);
    }

    #[test]
    fn frontier_strategies_produce_identical_decompositions() {
        for (g, tau, seed) in [
            (generators::mesh(28, 28), 4, 1),
            (generators::preferential_attachment(900, 5, 8), 8, 2),
            (
                generators::disjoint_union(
                    &generators::mesh(12, 12),
                    &generators::road_network(10, 10, 0.3, 4),
                ),
                2,
                3,
            ),
        ] {
            assert_cluster_strategies_agree(&g, tau, seed);
        }
    }

    #[test]
    fn works_on_disconnected_graphs() {
        let g = generators::disjoint_union(
            &generators::mesh(15, 15),
            &generators::road_network(12, 12, 0.3, 2),
        );
        let r = check(&g, 4, 13);
        assert_eq!(
            r.clustering.cluster_sizes().iter().sum::<usize>(),
            g.num_nodes()
        );
    }

    #[test]
    fn trace_accounts_growth() {
        let g = generators::mesh(25, 25);
        let r = check(&g, 4, 3);
        assert!(r.trace.total_growth_steps() > 0);
        // Coverage per iteration reaches the half-goal (connected graph).
        for it in &r.trace.iterations {
            assert!(
                2 * it.covered >= it.uncovered_before,
                "iteration under-covered: {it:?}"
            );
        }
    }

    #[test]
    fn empty_graph() {
        let g = pardec_graph::CsrGraph::empty(0);
        let r = cluster(&g, &ClusterParams::new(1, 0));
        assert_eq!(r.clustering.num_clusters(), 0);
    }
}
