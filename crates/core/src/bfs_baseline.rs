//! The BFS diameter baseline of Table 4.
//!
//! A single BFS from any node `v` yields `ecc(v) ≤ Δ ≤ 2·ecc(v)` — the
//! textbook 2-approximation the paper's Spark BFS baseline implements. The
//! double-sweep refinement (two BFS runs) usually tightens the lower bound
//! substantially on real graphs. Both run in `Θ(ecc)` parallel rounds, which
//! is the property the paper's evaluation punishes on long-diameter graphs.

use pardec_graph::diameter::double_sweep;
use pardec_graph::frontier::{single_source_bfs, FrontierStrategy};
use pardec_graph::{CsrGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a BFS-based diameter estimation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BfsDiameter {
    /// Source used for the (first) BFS.
    pub source: NodeId,
    /// Eccentricity of the source — a lower bound on Δ.
    pub lower_bound: u32,
    /// `2·ecc(source)` — the upper bound the baseline reports.
    pub upper_bound: u32,
    /// BFS levels executed (the round count of an MR implementation).
    pub rounds: u32,
}

/// Single-BFS 2-approximation from a uniformly random source.
pub fn bfs_diameter(g: &CsrGraph, seed: u64) -> BfsDiameter {
    assert!(g.num_nodes() > 0, "BFS baseline on empty graph");
    let mut rng = StdRng::seed_from_u64(seed);
    let source = rng.gen_range(0..g.num_nodes()) as NodeId;
    // A single whole-graph sweep — exactly the shape the direction-
    // optimizing engine accelerates, so honour the ambient strategy.
    let r = single_source_bfs(g, source, FrontierStrategy::default_from_env());
    BfsDiameter {
        source,
        lower_bound: r.levels,
        upper_bound: 2 * r.levels,
        rounds: r.levels,
    }
}

/// Double-sweep estimate: lower bound from the sweep, upper bound
/// `2·ecc(second source)`; two BFS rounds of cost.
pub fn double_sweep_diameter(g: &CsrGraph, seed: u64) -> BfsDiameter {
    assert!(g.num_nodes() > 0, "double sweep on empty graph");
    let mut rng = StdRng::seed_from_u64(seed);
    let start = rng.gen_range(0..g.num_nodes()) as NodeId;
    let sweep = double_sweep(g, start);
    BfsDiameter {
        source: sweep.far_a,
        lower_bound: sweep.lower_bound,
        upper_bound: 2 * sweep.lower_bound.max(1),
        rounds: 2 * sweep.lower_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardec_graph::diameter::apsp_diameter;
    use pardec_graph::generators;

    #[test]
    fn sandwich_holds() {
        for (g, name) in [
            (generators::mesh(15, 20), "mesh"),
            (generators::road_network(20, 20, 0.4, 3), "road"),
            (generators::preferential_attachment(500, 4, 1), "ba"),
        ] {
            let delta = apsp_diameter(&g);
            for seed in 0..3 {
                let e = bfs_diameter(&g, seed);
                assert!(
                    e.lower_bound <= delta,
                    "{name}: lb {} > Δ {delta}",
                    e.lower_bound
                );
                assert!(
                    e.upper_bound >= delta,
                    "{name}: ub {} < Δ {delta}",
                    e.upper_bound
                );
            }
        }
    }

    #[test]
    fn double_sweep_at_least_as_tight_below() {
        let g = generators::road_network(25, 25, 0.3, 5);
        let delta = apsp_diameter(&g);
        let ds = double_sweep_diameter(&g, 7);
        assert!(ds.lower_bound <= delta);
        assert!(ds.upper_bound >= delta);
        // Double sweep is exact on trees and near-exact on road networks.
        assert!(
            ds.lower_bound * 10 >= delta * 8,
            "sweep lb {} far from Δ {delta}",
            ds.lower_bound
        );
    }

    #[test]
    fn rounds_track_eccentricity() {
        let g = generators::path(50);
        let e = bfs_diameter(&g, 0);
        assert_eq!(e.rounds, e.lower_bound);
        assert!(e.rounds >= 25); // any source of a path has ecc ≥ n/2 - 1
    }
}
