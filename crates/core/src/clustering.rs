//! The [`Clustering`] type: the common output of CLUSTER, CLUSTER2, and MPX,
//! with structural validation used throughout the test suite.

use pardec_graph::{
    quotient, CombineStats, CsrGraph, NeighborAccess, NodeId, WeightedGraph, INVALID_NODE,
};

/// A partition of a graph's nodes into disjoint, internally connected
/// clusters grown around centers.
///
/// Invariants (checked by [`Clustering::validate`]):
/// * every node is assigned to exactly one cluster in `0..num_clusters()`;
/// * `centers[c]` belongs to cluster `c` with `dist_to_center == 0`, and
///   centers are distinct;
/// * every non-center node has a neighbour in its own cluster one growth
///   step closer to the center (so each cluster is connected and
///   `dist_to_center` is realized by a path inside the cluster);
/// * `radii[c]` is the maximum `dist_to_center` over members of `c`.
///
/// `dist_to_center[v]` is the *growth distance*: the number of cluster-growing
/// steps between the center's activation and `v`'s capture. This is the
/// radius notion of the paper's analysis (and of Table 2's `r` column); it
/// upper-bounds the graph distance from `v` to the center.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clustering {
    /// `assignment[v]` = cluster id of node `v`.
    pub assignment: Vec<NodeId>,
    /// `centers[c]` = center node of cluster `c`.
    pub centers: Vec<NodeId>,
    /// `dist_to_center[v]` = growth distance from `v` to its center.
    pub dist_to_center: Vec<u32>,
    /// `radii[c]` = max growth distance within cluster `c`.
    pub radii: Vec<u32>,
}

impl Clustering {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.centers.len()
    }

    /// Maximum cluster radius — the paper's `R_ALG` (0 for an empty graph).
    pub fn max_radius(&self) -> u32 {
        self.radii.iter().copied().max().unwrap_or(0)
    }

    /// Number of nodes in each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_clusters()];
        for &c in &self.assignment {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// The unweighted quotient graph `G_C` (§4).
    pub fn quotient<G: NeighborAccess>(&self, g: &G) -> CsrGraph {
        quotient::quotient(g, &self.assignment, self.num_clusters())
    }

    /// [`Self::quotient`], also returning the combine kernel's ledger (cut
    /// arcs in, quotient arcs out).
    pub fn quotient_with_stats<G: NeighborAccess>(&self, g: &G) -> (CsrGraph, CombineStats) {
        quotient::quotient_with_stats(g, &self.assignment, self.num_clusters())
    }

    /// The weighted quotient graph of §4, with connecting-path edge weights.
    pub fn weighted_quotient<G: NeighborAccess>(&self, g: &G) -> WeightedGraph {
        quotient::weighted_quotient(
            g,
            &self.assignment,
            &self.dist_to_center,
            self.num_clusters(),
        )
    }

    /// [`Self::weighted_quotient`], also returning the combine kernel's
    /// ledger.
    pub fn weighted_quotient_with_stats<G: NeighborAccess>(
        &self,
        g: &G,
    ) -> (WeightedGraph, CombineStats) {
        quotient::weighted_quotient_with_stats(
            g,
            &self.assignment,
            &self.dist_to_center,
            self.num_clusters(),
        )
    }

    /// Checks all structural invariants against `g`; returns the first
    /// violation found.
    pub fn validate<G: NeighborAccess>(&self, g: &G) -> Result<(), String> {
        let n = g.num_nodes();
        let k = self.num_clusters();
        if self.assignment.len() != n || self.dist_to_center.len() != n {
            return Err("array sizes do not match graph".into());
        }
        if self.radii.len() != k {
            return Err("radii length != number of clusters".into());
        }
        // Assignment range and center consistency.
        for (v, &c) in self.assignment.iter().enumerate() {
            if c == INVALID_NODE || (c as usize) >= k {
                return Err(format!("node {v} has invalid cluster {c}"));
            }
        }
        let mut seen_center = vec![false; n];
        for (c, &ctr) in self.centers.iter().enumerate() {
            if (ctr as usize) >= n {
                return Err(format!("center {ctr} out of range"));
            }
            if seen_center[ctr as usize] {
                return Err(format!("duplicate center {ctr}"));
            }
            seen_center[ctr as usize] = true;
            if self.assignment[ctr as usize] as usize != c {
                return Err(format!("center {ctr} not in its own cluster {c}"));
            }
            if self.dist_to_center[ctr as usize] != 0 {
                return Err(format!("center {ctr} has nonzero distance"));
            }
        }
        // Growth-tree property: every non-center node has an in-cluster
        // neighbour one step closer.
        for v in 0..n as NodeId {
            let d = self.dist_to_center[v as usize];
            if d == 0 {
                if self.centers[self.assignment[v as usize] as usize] != v {
                    return Err(format!(
                        "node {v} at distance 0 is not its cluster's center"
                    ));
                }
                continue;
            }
            let c = self.assignment[v as usize];
            let ok = g.neighbors_iter(v).any(|u| {
                self.assignment[u as usize] == c && self.dist_to_center[u as usize] == d - 1
            });
            if !ok {
                return Err(format!(
                    "node {v} (cluster {c}, dist {d}) lacks an in-cluster predecessor"
                ));
            }
        }
        // Radii.
        let mut measured = vec![0u32; k];
        for v in 0..n {
            let c = self.assignment[v] as usize;
            measured[c] = measured[c].max(self.dist_to_center[v]);
        }
        if measured != self.radii {
            return Err("recorded radii do not match assignment".into());
        }
        Ok(())
    }

    /// Exact graph-distance radii: for each cluster, the maximum BFS distance
    /// (within the *whole* graph) from the center to the cluster's members.
    /// Always ≤ the growth radii; Table 2 reports growth radii, this is a
    /// diagnostic.
    pub fn exact_radii<G: NeighborAccess>(&self, g: &G) -> Vec<u32> {
        use pardec_graph::traversal::bfs;
        self.centers
            .iter()
            .enumerate()
            .map(|(c, &ctr)| {
                let d = bfs(g, ctr).dist;
                self.assignment
                    .iter()
                    .enumerate()
                    .filter(|&(_, &a)| a as usize == c)
                    .map(|(v, _)| d[v])
                    .max()
                    .unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardec_graph::generators;

    fn two_cluster_path() -> (CsrGraph, Clustering) {
        // 0 - 1 - 2 - 3: clusters {0,1} (center 0) and {2,3} (center 2).
        let g = generators::path(4);
        let c = Clustering {
            assignment: vec![0, 0, 1, 1],
            centers: vec![0, 2],
            dist_to_center: vec![0, 1, 0, 1],
            radii: vec![1, 1],
        };
        (g, c)
    }

    #[test]
    fn valid_clustering_passes() {
        let (g, c) = two_cluster_path();
        assert!(c.validate(&g).is_ok());
        assert_eq!(c.max_radius(), 1);
        assert_eq!(c.cluster_sizes(), vec![2, 2]);
    }

    #[test]
    fn detects_disconnected_cluster() {
        // Cluster 0 = {0, 3} is not connected through itself.
        let g = generators::path(4);
        let c = Clustering {
            assignment: vec![0, 1, 1, 0],
            centers: vec![0, 1],
            dist_to_center: vec![0, 0, 1, 1],
            radii: vec![1, 1],
        };
        assert!(c.validate(&g).is_err());
    }

    #[test]
    fn detects_bad_center() {
        let (g, mut c) = two_cluster_path();
        c.centers[1] = 3; // distance there is 1, not 0
        assert!(c.validate(&g).is_err());
        let (g, mut c) = two_cluster_path();
        c.dist_to_center[2] = 5;
        assert!(c.validate(&g).is_err());
    }

    #[test]
    fn detects_wrong_radii() {
        let (g, mut c) = two_cluster_path();
        c.radii = vec![1, 2];
        assert!(c.validate(&g).is_err());
    }

    #[test]
    fn quotient_construction() {
        let (g, c) = two_cluster_path();
        let q = c.quotient(&g);
        assert_eq!(q.num_nodes(), 2);
        assert_eq!(q.num_edges(), 1);
        let wq = c.weighted_quotient(&g);
        // Cut edge (1, 2): 1 + 1 + 0 = 2.
        assert_eq!(wq.neighbors(0).next().unwrap(), (1, 2));
    }

    #[test]
    fn exact_radii_bounded_by_growth_radii() {
        let (g, c) = two_cluster_path();
        assert_eq!(c.exact_radii(&g), c.radii);
    }
}
