//! Fact 1 primitives: sample **sort** and (segmented) **prefix sum** as
//! explicit MR round sequences.
//!
//! The paper's Fact 1 states both run in `O(log_{M_L} n)` rounds on
//! MR(M_G, M_L) with `M_G = Θ(n)`; with `M_L = Ω(nᵋ)` that is `O(1)` rounds.
//! The implementations below use the constant-round regime: a sample round
//! to pick splitters, a counting round, and a routing round (sort); a block
//! totals round and an offset-application round (prefix sum). Driver-side
//! glue between rounds holds only `O(partitions)` state, mirroring a Spark
//! driver.

use crate::engine::MrEngine;
use crate::error::MrError;
use crate::shuffle::ShuffleSize;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Distributed sample sort. Returns the values in nondecreasing order.
///
/// Three rounds: (1) a sample is gathered at one reducer which emits
/// `partitions - 1` splitters, (2) bucket sizes are counted **with a
/// map-side combiner** (each map chunk ships one partial count per bucket
/// instead of one pair per element), (3) elements are routed to their
/// bucket, locally sorted, and emitted with their global rank. The
/// per-reducer load of rounds 2–3 is `O(n / partitions + sample)` with high
/// probability.
pub fn mr_sort<T>(eng: &mut MrEngine, items: Vec<T>, seed: u64) -> Result<Vec<T>, MrError>
where
    T: Ord + Clone + Send + Sync + ShuffleSize,
{
    let n = items.len();
    if n <= 1 {
        // Still a legal zero-round computation.
        return Ok(items);
    }
    let buckets = eng.config().partitions;
    let mut rng = StdRng::seed_from_u64(seed);

    // Round 1 — sample: each element elects itself with probability p and is
    // sent to the single splitter-selection reducer.
    let expected_sample = (16 * buckets).min(n);
    let p = expected_sample as f64 / n as f64;
    let sampled: Vec<((), T)> = items
        .iter()
        .filter(|_| rng.gen::<f64>() < p)
        .map(|x| ((), x.clone()))
        .collect();
    let splitter_pairs = eng.round_labelled(sampled, "sort:sample", |_, mut vs: Vec<T>| {
        vs.sort();
        // Emit evenly spaced splitters; fewer if the sample is tiny.
        let want = buckets.saturating_sub(1);
        let mut out = Vec::with_capacity(want);
        if !vs.is_empty() {
            for i in 1..=want {
                let idx = (i * vs.len()) / (want + 1);
                out.push(((), vs[idx.min(vs.len() - 1)].clone()));
            }
        }
        out
    })?;
    let mut splitters: Vec<T> = splitter_pairs.into_iter().map(|(_, v)| v).collect();
    splitters.sort();

    let bucket_of = |x: &T| -> u32 { splitters.partition_point(|s| s <= x) as u32 };

    // Round 2 — count bucket sizes (combiner: per-chunk partial counts).
    let counted = eng.round_combined(
        items
            .iter()
            .map(|x| (bucket_of(x), 1usize))
            .collect::<Vec<_>>(),
        "sort:count",
        |acc, c| *acc += c,
        |&b, vs: Vec<usize>| vec![(b, vs.into_iter().sum::<usize>())],
    )?;
    let mut sizes = vec![0usize; buckets.max(1)];
    for (b, c) in counted {
        sizes[b as usize] = c;
    }
    // Driver-side exclusive scan over O(partitions) counters.
    let mut offsets = vec![0usize; sizes.len() + 1];
    for i in 0..sizes.len() {
        offsets[i + 1] = offsets[i] + sizes[i];
    }

    // Round 3 — route, locally sort, emit (global rank, value).
    let routed = eng.round_labelled(
        items
            .into_iter()
            .map(|x| (bucket_of(&x), x))
            .collect::<Vec<_>>(),
        "sort:route",
        |&b, mut vs: Vec<T>| {
            vs.sort();
            let base = offsets[b as usize];
            vs.into_iter()
                .enumerate()
                .map(|(i, x)| (base + i, x))
                .collect()
        },
    )?;
    let mut out: Vec<Option<T>> = vec![None; n];
    for (rank, x) in routed {
        debug_assert!(out[rank].is_none(), "duplicate rank {rank}");
        out[rank] = Some(x);
    }
    Ok(out.into_iter().map(Option::unwrap).collect())
}

/// Distributed *exclusive* prefix sum: `out[i] = Σ_{j < i} values[j]`.
///
/// Two rounds: (1) per-block totals, combined map-side so each map chunk
/// ships one partial sum per block, (2) per-block local scan offset by the
/// driver-side scan of the `O(partitions)` block totals.
pub fn mr_prefix_sum(eng: &mut MrEngine, values: Vec<u64>) -> Result<Vec<u64>, MrError> {
    let n = values.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let blocks = eng.config().partitions;
    let block_size = n.div_ceil(blocks);
    let block_of = |i: usize| (i / block_size) as u32;

    // Round 1 — block totals (combiner: per-chunk partial sums).
    let totals = eng.round_combined(
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (block_of(i), v))
            .collect::<Vec<_>>(),
        "prefix:totals",
        |acc, v| *acc += v,
        |&b, vs: Vec<u64>| vec![(b, vs.iter().sum::<u64>())],
    )?;
    let mut block_sums = vec![0u64; blocks];
    for (b, s) in totals {
        block_sums[b as usize] = s;
    }
    let mut block_offsets = vec![0u64; blocks + 1];
    for i in 0..blocks {
        block_offsets[i + 1] = block_offsets[i] + block_sums[i];
    }

    // Round 2 — local scans with the block offset applied.
    let scanned = eng.round_labelled(
        values
            .into_iter()
            .enumerate()
            .map(|(i, v)| (block_of(i), (i, v)))
            .collect::<Vec<_>>(),
        "prefix:scan",
        |&b, mut vs: Vec<(usize, u64)>| {
            vs.sort_unstable_by_key(|&(i, _)| i);
            let mut acc = block_offsets[b as usize];
            vs.into_iter()
                .map(|(i, v)| {
                    let out = (i, acc);
                    acc += v;
                    out
                })
                .collect()
        },
    )?;
    let mut out = vec![0u64; n];
    for (i, v) in scanned {
        out[i] = v;
    }
    Ok(out)
}

/// Distributed **segmented** exclusive prefix sum: within each segment id,
/// `out[i]` is the sum of earlier values *of the same segment*.
///
/// One round keyed by segment. Valid in the model when every segment fits in
/// `M_L` (the regime the paper's growing steps need: per-cluster adjacency
/// scans with `M_L = Ω(nᵋ)`); the group-size ledger records the demand.
pub fn mr_segmented_prefix_sum(
    eng: &mut MrEngine,
    values: Vec<(u32, u64)>,
) -> Result<Vec<u64>, MrError> {
    let n = values.len();
    let scanned = eng.round_labelled(
        values
            .into_iter()
            .enumerate()
            .map(|(i, (seg, v))| (seg, (i, v)))
            .collect::<Vec<_>>(),
        "prefix:segmented",
        |_, mut vs: Vec<(usize, u64)>| {
            vs.sort_unstable_by_key(|&(i, _)| i);
            let mut acc = 0u64;
            vs.into_iter()
                .map(|(i, v)| {
                    let out = (i, acc);
                    acc += v;
                    out
                })
                .collect()
        },
    )?;
    let mut out = vec![0u64; n];
    for (i, v) in scanned {
        out[i] = v;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MrConfig;

    fn engine() -> MrEngine {
        MrEngine::new(MrConfig::with_partitions(8))
    }

    #[test]
    fn sort_matches_sequential() {
        let mut eng = engine();
        let items: Vec<u32> = (0..5000)
            .map(|i| (i * 2654435761u64 % 10007) as u32)
            .collect();
        let mut expect = items.clone();
        expect.sort();
        let got = mr_sort(&mut eng, items, 42).unwrap();
        assert_eq!(got, expect);
        assert_eq!(eng.stats().num_rounds(), 3);
    }

    #[test]
    fn sort_with_duplicates_and_small_inputs() {
        let mut eng = engine();
        assert_eq!(mr_sort(&mut eng, Vec::<u32>::new(), 0).unwrap(), vec![]);
        assert_eq!(mr_sort(&mut eng, vec![9u32], 0).unwrap(), vec![9]);
        let items = vec![5u32; 100];
        assert_eq!(mr_sort(&mut eng, items.clone(), 1).unwrap(), items);
    }

    #[test]
    fn sort_already_sorted_and_reversed() {
        let mut eng = engine();
        let asc: Vec<u32> = (0..1000).collect();
        assert_eq!(mr_sort(&mut eng, asc.clone(), 7).unwrap(), asc);
        let desc: Vec<u32> = (0..1000).rev().collect();
        assert_eq!(mr_sort(&mut eng, desc, 7).unwrap(), asc);
    }

    #[test]
    fn sort_balances_load() {
        // With random input, no reducer should see the whole input.
        let mut eng = engine();
        let items: Vec<u64> = (0..20000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let _ = mr_sort(&mut eng, items, 3).unwrap();
        let route_round = eng
            .stats()
            .rounds()
            .iter()
            .find(|r| r.label == "sort:route")
            .unwrap();
        assert!(
            route_round.max_group < 20000 / 2,
            "skewed buckets: {}",
            route_round.max_group
        );
    }

    #[test]
    fn prefix_sum_matches_sequential() {
        let mut eng = engine();
        let values: Vec<u64> = (0..997).map(|i| (i % 13) as u64).collect();
        let got = mr_prefix_sum(&mut eng, values.clone()).unwrap();
        let mut acc = 0u64;
        for (i, v) in values.iter().enumerate() {
            assert_eq!(got[i], acc, "index {i}");
            acc += v;
        }
        assert_eq!(eng.stats().num_rounds(), 2);
    }

    #[test]
    fn prefix_sum_empty_and_single() {
        let mut eng = engine();
        assert!(mr_prefix_sum(&mut eng, vec![]).unwrap().is_empty());
        assert_eq!(mr_prefix_sum(&mut eng, vec![42]).unwrap(), vec![0]);
    }

    #[test]
    fn segmented_prefix_sum() {
        let mut eng = engine();
        // Segments: 0 -> [1, 2, 3]; 1 -> [10, 20]; interleaved.
        let values = vec![(0, 1), (1, 10), (0, 2), (1, 20), (0, 3)];
        let got = mr_segmented_prefix_sum(&mut eng, values).unwrap();
        assert_eq!(got, vec![0, 0, 1, 10, 3]);
    }

    #[test]
    fn segmented_prefix_sum_one_segment_equals_plain() {
        let mut eng = engine();
        let vals: Vec<u64> = (1..=50).collect();
        let seg: Vec<(u32, u64)> = vals.iter().map(|&v| (0u32, v)).collect();
        let got = mr_segmented_prefix_sum(&mut eng, seg).unwrap();
        let mut eng2 = engine();
        let plain = mr_prefix_sum(&mut eng2, vals).unwrap();
        assert_eq!(got, plain);
    }
}
