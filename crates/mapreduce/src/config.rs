//! Engine configuration: the model parameters `M_L` (local memory) and the
//! emulation's parallelism.

/// Configuration for [`crate::engine::MrEngine`] and
/// [`crate::vertex::VertexEngine`].
#[derive(Clone, Debug)]
pub struct MrConfig {
    /// Number of hash partitions a round's key space is split into; also the
    /// upper bound on reducer-level parallelism. Defaults to
    /// `4 × available threads` (over-partitioning smooths skew, as in Spark).
    pub partitions: usize,
    /// The model's `M_L`: maximum number of pairs a single reducer group may
    /// receive. `None` disables the limit (pure accounting mode).
    pub local_memory: Option<usize>,
    /// If `true`, exceeding `local_memory` aborts the round with
    /// [`crate::MrError::LocalMemoryExceeded`]; if `false`, violations are
    /// only counted in the round stats.
    pub enforce_local_memory: bool,
}

impl Default for MrConfig {
    fn default() -> Self {
        MrConfig {
            partitions: MrConfig::default_partitions(),
            local_memory: None,
            enforce_local_memory: false,
        }
    }
}

/// Environment variable consulted by [`MrConfig::default_partitions`]; the
/// CLI's `--partitions` option overrides it.
pub const PARTITIONS_ENV: &str = "PARDEC_PARTITIONS";

impl MrConfig {
    /// The default partition count shared by [`crate::engine::MrEngine`] and
    /// [`crate::vertex::VertexEngine`]: the `PARDEC_PARTITIONS` environment
    /// variable when set to a positive integer, else `4 × pool threads` —
    /// the Spark-style over-partitioning factor that smooths skew across
    /// reducers.
    ///
    /// Note that the partition count shapes *scheduling* (and the stats
    /// ledger's notion of a reducer / map chunk), never *results*: both
    /// engines produce partition-count-independent outputs for the
    /// commutative combiners this workspace uses (CI runs the whole suite
    /// under `PARDEC_PARTITIONS=3` to lock that in).
    pub fn default_partitions() -> usize {
        if let Ok(raw) = std::env::var(PARTITIONS_ENV) {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        4 * rayon::current_num_threads().max(1)
    }
    /// Accounting-only configuration with an explicit partition count.
    pub fn with_partitions(partitions: usize) -> Self {
        MrConfig {
            partitions: partitions.max(1),
            ..Default::default()
        }
    }

    /// Sets a hard `M_L` budget (pairs per reducer group) with enforcement.
    pub fn with_local_memory(mut self, ml: usize) -> Self {
        self.local_memory = Some(ml);
        self.enforce_local_memory = true;
        self
    }

    /// Sets an `M_L` budget that is recorded but not enforced.
    pub fn with_soft_local_memory(mut self, ml: usize) -> Self {
        self.local_memory = Some(ml);
        self.enforce_local_memory = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = MrConfig::default();
        // ≥ 4 without PARDEC_PARTITIONS (4 × threads); any positive count
        // when the environment pins one (CI's odd-partition leg uses 3).
        if std::env::var(PARTITIONS_ENV).is_err() {
            assert!(c.partitions >= 4);
        }
        assert!(c.partitions >= 1);
        assert!(c.local_memory.is_none());
    }

    #[test]
    fn default_partitions_is_the_shared_helper() {
        assert_eq!(
            MrConfig::default().partitions,
            MrConfig::default_partitions()
        );
        // The ambient default honours PARDEC_PARTITIONS (the CI odd-partition
        // leg sets it to 3); without it, the 4×threads Spark factor applies.
        let expect = match std::env::var(PARTITIONS_ENV) {
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => 4 * rayon::current_num_threads().max(1),
            },
            Err(_) => 4 * rayon::current_num_threads().max(1),
        };
        assert_eq!(MrConfig::default_partitions(), expect);
    }

    #[test]
    fn builders() {
        let c = MrConfig::with_partitions(0);
        assert_eq!(c.partitions, 1); // clamped
        let c = MrConfig::with_partitions(8).with_local_memory(100);
        assert_eq!(c.local_memory, Some(100));
        assert!(c.enforce_local_memory);
        let c = MrConfig::with_partitions(8).with_soft_local_memory(100);
        assert!(!c.enforce_local_memory);
    }
}
