//! The flat parallel radix shuffle underlying [`crate::engine::MrEngine`],
//! plus the byte-accounting trait charged for every shuffled record.
//!
//! The seed-era engine routed pairs with a sequential pass into
//! `Vec<Vec<(K, V)>>` buckets — allocation-heavy (every bucket grows
//! independently) and serial exactly where the MR(M_G, M_L) model says the
//! shuffle should be parallel. This module replaces that with a classic
//! two-pass counting scatter:
//!
//! 1. **Count** — the input is split into a fixed number of chunks (the
//!    partition count, never the pool size); each chunk histograms its
//!    pairs per destination partition, producing a `chunks × partitions`
//!    count matrix.
//! 2. **Scatter** — an exclusive prefix sum over the matrix (partition-major,
//!    then chunk within partition) yields the exact offset of every
//!    `(chunk, partition)` cell; a second parallel pass moves each pair into
//!    its slot of **one** flat pre-sized buffer.
//!
//! The layout is deterministic *by construction*: a pair's slot depends only
//! on its input position and its key's partition, never on thread
//! interleaving, so partition contents are always in global input order and
//! the engine's outputs are byte-identical at any pool size.
//!
//! The scatter is the one place in the workspace crates that uses `unsafe`:
//! pairs are moved from the input allocation into disjoint slots of the flat
//! buffer through raw pointers (two safe alternatives — `Option` slots or
//! per-bucket vectors — reintroduce exactly the overhead this refactor
//! removes). The invariants are local and documented at each block; on a
//! panic in user code the un-drained pairs are dropped by
//! [`PartitionDrain`]'s `Drop` (never double-dropped).

use rayon::prelude::*;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::marker::PhantomData;
use std::mem::MaybeUninit;

/// Bytes a value contributes to a shuffled record — the quantity the
/// MR model's communication ledger charges.
///
/// The default implementation charges the value's in-memory footprint
/// (`size_of_val`), which is exact for inline types (integers, tuples of
/// integers, packed structs). **Types with heap payloads must override it**:
/// `size_of::<Vec<V>>()` is 24 bytes regardless of length, which is how the
/// seed engine under-counted every round shuffling `Vec` messages. The
/// provided `Vec<T>` implementation charges the header plus every element.
pub trait ShuffleSize {
    /// Bytes this value occupies on the (emulated) wire.
    fn shuffle_bytes(&self) -> usize {
        std::mem::size_of_val(self)
    }
}

macro_rules! inline_shuffle_size {
    ($($t:ty),* $(,)?) => { $(impl ShuffleSize for $t {})* };
}

inline_shuffle_size!(
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool,
    char,
    ()
);

impl ShuffleSize for &str {
    fn shuffle_bytes(&self) -> usize {
        std::mem::size_of::<&str>() + self.len()
    }
}

impl ShuffleSize for String {
    fn shuffle_bytes(&self) -> usize {
        std::mem::size_of::<String>() + self.len()
    }
}

impl<A: ShuffleSize, B: ShuffleSize> ShuffleSize for (A, B) {
    fn shuffle_bytes(&self) -> usize {
        self.0.shuffle_bytes() + self.1.shuffle_bytes()
    }
}

impl<A: ShuffleSize, B: ShuffleSize, C: ShuffleSize> ShuffleSize for (A, B, C) {
    fn shuffle_bytes(&self) -> usize {
        self.0.shuffle_bytes() + self.1.shuffle_bytes() + self.2.shuffle_bytes()
    }
}

impl<T: ShuffleSize> ShuffleSize for Vec<T> {
    fn shuffle_bytes(&self) -> usize {
        std::mem::size_of::<Vec<T>>() + self.iter().map(T::shuffle_bytes).sum::<usize>()
    }
}

/// Total wire bytes of a slice of key-value pairs.
pub fn pairs_shuffle_bytes<K: ShuffleSize, V: ShuffleSize>(pairs: &[(K, V)]) -> usize {
    pairs
        .iter()
        .map(|(k, v)| k.shuffle_bytes() + v.shuffle_bytes())
        .sum()
}

/// Deterministic multiply-rotate hasher (FxHash-style). Partition layout
/// and the group-by index only need a hash that is *stable across runs and
/// platforms* — first-arrival order, not hash-iteration order, defines all
/// outputs — so the shuffle uses this instead of SipHash: routing is the
/// hottest loop of every round and the multiply is ~4× cheaper per key.
#[derive(Default)]
struct FxHasher(u64);

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// State for hash maps keyed by an already-computed 64-bit hash.
type FxState = BuildHasherDefault<FxHasher>;

fn det_hash<K: Hash>(key: &K) -> u64 {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

/// The partition a key is routed to. Public so tests and reference engines
/// can reproduce the exact layout.
pub fn partition_of<K: Hash>(key: &K, partitions: usize) -> usize {
    (det_hash(key) % partitions.max(1) as u64) as usize
}

/// Raw pointer wrapper that is `Send`/`Sync` when the pointee is `Send`.
///
/// Used to scatter into disjoint regions of one buffer from several workers;
/// every call site must guarantee disjointness itself.
struct SyncPtr<T>(*mut T);
unsafe impl<T: Send> Send for SyncPtr<T> {}
unsafe impl<T: Send> Sync for SyncPtr<T> {}

/// Runs `f(chunk_index, drain)` over fixed-size chunks of `input` in
/// parallel, handing each chunk's elements out **by value** without any
/// per-chunk allocation. Chunk boundaries depend only on `chunk_size`, so
/// results are pool-size independent.
pub(crate) fn consume_chunks<T, R, F>(input: Vec<T>, chunk_size: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(usize, ChunkDrain<'_, T>) -> R + Sync,
{
    let n = input.len();
    let chunk_size = chunk_size.max(1);
    let num_chunks = n.div_ceil(chunk_size);
    let mut input = input;
    // SAFETY: length is set to zero *before* any element is read, so the
    // Vec's own Drop never touches the elements; ownership of each element
    // is transferred to exactly one ChunkDrain below (disjoint index
    // ranges), which either yields it or drops it.
    unsafe { input.set_len(0) };
    let src = SyncPtr(input.as_mut_ptr());
    let src = &src;
    let f = &f;
    (0..num_chunks)
        .into_par_iter()
        .map(move |c| {
            let start = c * chunk_size;
            let len = chunk_size.min(n - start);
            // SAFETY: [start, start + len) ranges are disjoint across chunks
            // and in-bounds of the original initialized length `n`.
            let drain = ChunkDrain {
                ptr: unsafe { src.0.add(start) },
                len,
                pos: 0,
                _borrow: PhantomData,
            };
            f(c, drain)
        })
        .collect()
}

/// By-value iterator over one chunk of a consumed vector; drops whatever the
/// caller does not take.
pub(crate) struct ChunkDrain<'a, T> {
    ptr: *mut T,
    len: usize,
    pos: usize,
    _borrow: PhantomData<&'a mut T>,
}

impl<T> Iterator for ChunkDrain<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        if self.pos == self.len {
            return None;
        }
        // SAFETY: pos < len, and each index is read exactly once (pos is
        // advanced past it immediately; Drop starts after pos).
        let v = unsafe { std::ptr::read(self.ptr.add(self.pos)) };
        self.pos += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.len - self.pos;
        (rest, Some(rest))
    }
}

impl<T> ExactSizeIterator for ChunkDrain<'_, T> {}

impl<T> Drop for ChunkDrain<'_, T> {
    fn drop(&mut self) {
        for i in self.pos..self.len {
            // SAFETY: indices ≥ pos were never read by `next`.
            unsafe { std::ptr::drop_in_place(self.ptr.add(i)) };
        }
    }
}

/// The result of the two-pass radix partitioning: every pair in one flat
/// buffer, partition `p` occupying `flat[starts[p]..starts[p + 1]]`, each
/// partition's pairs in global input order.
pub(crate) struct RadixShuffle<K, V> {
    flat: Vec<MaybeUninit<(K, V)>>,
    /// `partitions + 1` boundaries into `flat`.
    starts: Vec<usize>,
    /// How many slots of `flat` are initialized (all of them after a
    /// successful scatter; kept explicit for the Drop impl).
    initialized: bool,
}

/// Two-pass parallel radix partitioning of `input` into `partitions` buckets
/// laid out contiguously in one flat pre-sized buffer.
pub(crate) fn radix_partition<K, V>(input: Vec<(K, V)>, partitions: usize) -> RadixShuffle<K, V>
where
    K: Hash + Send + Sync,
    V: Send + Sync,
{
    let n = input.len();
    let parts = partitions.max(1);
    // Chunk count mirrors the partition count (a Spark-style map-task grid).
    // It is a function of the *configuration*, never the pool size, so the
    // scatter layout — and everything downstream — is pool-size independent.
    let chunk_size = n.div_ceil(parts).max(1);
    let num_chunks = n.div_ceil(chunk_size);

    // Pass 1 — count: per-chunk histograms of destination partitions. The
    // partition ids are cached so pass 2 does not hash twice.
    let mut part_ids: Vec<u32> = vec![0; n];
    let counts: Vec<Vec<u32>> = part_ids
        .par_chunks_mut(chunk_size)
        .zip(input.par_chunks(chunk_size))
        .map(|(ids, pairs)| {
            let mut histogram = vec![0u32; parts];
            for (slot, (k, _)) in ids.iter_mut().zip(pairs) {
                let p = partition_of(k, parts);
                *slot = p as u32;
                histogram[p] += 1;
            }
            histogram
        })
        .collect();

    // Exclusive prefix sum over the count matrix, partition-major: partition
    // `p` starts after all smaller partitions; within `p`, chunk `c` starts
    // after the cells of smaller chunks. The resulting layout is global
    // input order within each partition.
    let mut starts = vec![0usize; parts + 1];
    for p in 0..parts {
        let total: usize = counts.iter().map(|h| h[p] as usize).sum();
        starts[p + 1] = starts[p] + total;
    }
    let mut cell_offsets: Vec<Vec<usize>> = Vec::with_capacity(num_chunks);
    let mut cursor = starts[..parts].to_vec();
    for histogram in &counts {
        cell_offsets.push(cursor.clone());
        for (c, h) in cursor.iter_mut().zip(histogram) {
            *c += *h as usize;
        }
    }

    // Pass 2 — scatter: move every pair into its exact slot.
    let mut flat: Vec<MaybeUninit<(K, V)>> = Vec::with_capacity(n);
    // SAFETY: `MaybeUninit` is valid uninitialized; every slot is written
    // exactly once below before anything reads it.
    unsafe { flat.set_len(n) };
    let dst = SyncPtr(flat.as_mut_ptr());
    let dst = &dst;
    let part_ids = &part_ids;
    let cell_offsets = &cell_offsets;
    consume_chunks(input, chunk_size, move |c, drain| {
        let mut cursor = cell_offsets[c].clone();
        let base = c * chunk_size;
        for (i, pair) in drain.enumerate() {
            let p = part_ids[base + i] as usize;
            let slot = cursor[p];
            cursor[p] += 1;
            // SAFETY: the prefix sums above assign every (chunk, partition)
            // cell a disjoint range of `flat`, and `slot` walks that range
            // once; each flat index is therefore written by exactly one
            // worker, exactly once.
            unsafe { (*dst.0.add(slot)).write(pair) };
        }
    });

    RadixShuffle {
        flat,
        starts,
        initialized: true,
    }
}

impl<K: Send, V: Send> RadixShuffle<K, V> {
    /// Number of pairs shuffled.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.flat.len()
    }

    /// Runs `f(partition, drain)` over every partition in parallel, handing
    /// out the partition's pairs by value in global input order. Consumes
    /// the shuffle.
    pub(crate) fn reduce_partitions<R, F>(mut self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, PartitionDrain<'_, K, V>) -> R + Sync,
    {
        let starts = std::mem::take(&mut self.starts);
        let parts = starts.len().saturating_sub(1);
        // Ownership of every slot transfers to the PartitionDrains *now*:
        // if `f` panics in one partition, drains drop their own ranges and
        // partitions that never ran leak — but RadixShuffle::drop must not
        // touch slots a drain already consumed (that would double-drop).
        self.initialized = false;
        let base = SyncPtr(self.flat.as_mut_ptr());
        let base = &base;
        let starts_ref = &starts;
        let f = &f;
        let out = (0..parts)
            .into_par_iter()
            .map(move |p| {
                // SAFETY: [starts[p], starts[p + 1]) ranges tile `flat`
                // disjointly; every slot in them was initialized by the
                // scatter. Each PartitionDrain takes ownership of its range.
                let drain = PartitionDrain {
                    ptr: unsafe { base.0.add(starts_ref[p]) },
                    len: starts_ref[p + 1] - starts_ref[p],
                    pos: 0,
                    _borrow: PhantomData,
                };
                f(p, drain)
            })
            .collect();
        self.flat.clear();
        out
    }
}

impl<K, V> Drop for RadixShuffle<K, V> {
    fn drop(&mut self) {
        if self.initialized {
            for slot in &mut self.flat {
                // SAFETY: `initialized` is only true between a completed
                // scatter and reduce_partitions, when every slot holds a
                // live pair.
                unsafe { slot.assume_init_drop() };
            }
        }
    }
}

/// By-value iterator over one partition of a [`RadixShuffle`]; drops
/// whatever the reducer does not take.
pub(crate) struct PartitionDrain<'a, K, V> {
    ptr: *mut MaybeUninit<(K, V)>,
    len: usize,
    pos: usize,
    _borrow: PhantomData<&'a mut (K, V)>,
}

impl<K, V> Iterator for PartitionDrain<'_, K, V> {
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        if self.pos == self.len {
            return None;
        }
        // SAFETY: every slot in [0, len) was initialized by the scatter and
        // each is read exactly once.
        let v = unsafe { (*self.ptr.add(self.pos)).assume_init_read() };
        self.pos += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.len - self.pos;
        (rest, Some(rest))
    }
}

impl<K, V> ExactSizeIterator for PartitionDrain<'_, K, V> {}

impl<K, V> Drop for PartitionDrain<'_, K, V> {
    fn drop(&mut self) {
        for i in self.pos..self.len {
            // SAFETY: slots ≥ pos are initialized and unread.
            unsafe { (*self.ptr.add(i)).assume_init_drop() };
        }
    }
}

/// First-arrival-order key interner: assigns each distinct key a dense slot
/// in the order keys are first seen, independent of any hash iteration
/// order. This is what makes the engine's group emission order a *spec*
/// (input order) rather than an accident of `HashMap` internals.
pub(crate) struct KeyIndex<K> {
    keys: Vec<K>,
    /// Full 64-bit key hash → slot of the *first* key with that hash.
    by_hash: HashMap<u64, u32, FxState>,
    /// Slots whose key's hash collided with a different, earlier key —
    /// vanishingly rare with 64-bit hashes, but correctness must not
    /// depend on that; these are scanned linearly.
    overflow: Vec<u32>,
}

impl<K: Hash + Eq> KeyIndex<K> {
    pub(crate) fn new() -> Self {
        KeyIndex {
            keys: Vec::new(),
            by_hash: HashMap::default(),
            overflow: Vec::new(),
        }
    }

    /// Slot of `k`, interning it at the next slot on first arrival.
    pub(crate) fn intern(&mut self, k: K) -> usize {
        let h = det_hash(&k);
        match self.by_hash.entry(h) {
            std::collections::hash_map::Entry::Vacant(e) => {
                let i = self.keys.len();
                e.insert(i as u32);
                self.keys.push(k);
                i
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                let i = *e.get() as usize;
                if self.keys[i] == k {
                    return i;
                }
                for &j in &self.overflow {
                    if self.keys[j as usize] == k {
                        return j as usize;
                    }
                }
                let i = self.keys.len();
                self.overflow.push(i as u32);
                self.keys.push(k);
                i
            }
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.keys.len()
    }

    /// The interned keys, in first-arrival order.
    pub(crate) fn into_keys(self) -> Vec<K> {
        self.keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn partition_layout_is_input_order() {
        let input: Vec<(u32, u32)> = (0..1000).map(|i| (i % 13, i)).collect();
        let parts = 5;
        let shuffle = radix_partition(input.clone(), parts);
        assert_eq!(shuffle.len(), 1000);
        let drained: Vec<Vec<(u32, u32)>> =
            shuffle.reduce_partitions(|_, pairs| pairs.collect::<Vec<_>>());
        assert_eq!(drained.len(), parts);
        for (p, pairs) in drained.iter().enumerate() {
            // Right partition, and values (== input positions) increasing.
            for w in pairs.windows(2) {
                assert!(w[0].1 < w[1].1, "partition {p} not in input order");
            }
            for (k, _) in pairs {
                assert_eq!(partition_of(k, parts), p);
            }
        }
        let total: usize = drained.iter().map(Vec::len).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn empty_and_single_pair() {
        let shuffle = radix_partition(Vec::<(u8, u8)>::new(), 4);
        let drained = shuffle.reduce_partitions(|_, pairs| pairs.count());
        assert_eq!(drained, vec![0, 0, 0, 0]);
        let shuffle = radix_partition(vec![(7u8, 9u8)], 4);
        let drained: Vec<Vec<(u8, u8)>> =
            shuffle.reduce_partitions(|_, pairs| pairs.collect::<Vec<_>>());
        assert_eq!(drained.concat(), vec![(7, 9)]);
    }

    #[test]
    fn partial_drain_drops_the_rest() {
        let live = Arc::new(AtomicUsize::new(0));
        struct Tracked(#[allow(dead_code)] u32, Arc<AtomicUsize>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.1.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let input: Vec<(u32, Tracked)> = (0..100)
            .map(|i| {
                live.fetch_add(1, Ordering::SeqCst);
                (i, Tracked(i, live.clone()))
            })
            .collect();
        let shuffle = radix_partition(input, 4);
        // Take only the first pair of each partition; the rest must drop.
        let _: Vec<Option<(u32, Tracked)>> = shuffle.reduce_partitions(|_, mut pairs| pairs.next());
        // The four taken pairs were dropped when the collected Vec dropped.
        assert_eq!(live.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn reducer_panic_never_double_drops() {
        use std::sync::atomic::AtomicIsize;
        // Each payload increments `live` on creation and decrements on drop:
        // a double drop would push the counter negative. A panic in one
        // partition may *leak* the not-yet-run partitions (counter > 0) but
        // must never double-free (counter < 0).
        let live = Arc::new(AtomicIsize::new(0));
        struct Payload(#[allow(dead_code)] u32, Arc<AtomicIsize>);
        impl Drop for Payload {
            fn drop(&mut self) {
                self.1.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let input: Vec<(u32, Payload)> = (0..200)
            .map(|i| {
                live.fetch_add(1, Ordering::SeqCst);
                (i, Payload(i, live.clone()))
            })
            .collect();
        let shuffle = radix_partition(input, 4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shuffle.reduce_partitions(|p, pairs| {
                if p == 1 {
                    panic!("reducer bug");
                }
                pairs.count()
            })
        }));
        assert!(result.is_err(), "the panic must propagate");
        let remaining = live.load(Ordering::SeqCst);
        assert!(remaining >= 0, "double drop: live count {remaining}");
    }

    #[test]
    fn undrained_shuffle_drops_cleanly() {
        let input: Vec<(u32, String)> = (0..50).map(|i| (i, format!("v{i}"))).collect();
        drop(radix_partition(input, 3)); // Drop impl must free all 50 strings
    }

    #[test]
    fn key_index_first_arrival_order() {
        let mut idx = KeyIndex::new();
        assert_eq!(idx.intern("b"), 0);
        assert_eq!(idx.intern("a"), 1);
        assert_eq!(idx.intern("b"), 0);
        assert_eq!(idx.intern("c"), 2);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.into_keys(), vec!["b", "a", "c"]);
    }

    #[test]
    fn shuffle_size_defaults_and_heap_payloads() {
        assert_eq!(7u32.shuffle_bytes(), 4);
        assert_eq!((3u32, 4u64).shuffle_bytes(), 12);
        assert_eq!(().shuffle_bytes(), 0);
        let v: Vec<u64> = vec![0; 10];
        assert_eq!(v.shuffle_bytes(), std::mem::size_of::<Vec<u64>>() + 80);
        // The exact under-count the seed engine suffered: header only.
        assert!(v.shuffle_bytes() > std::mem::size_of::<Vec<u64>>());
        let pairs = vec![(1u32, vec![0u64; 4]), (2, vec![0u64; 6])];
        assert_eq!(
            pairs_shuffle_bytes(&pairs),
            2 * 4 + 2 * std::mem::size_of::<Vec<u64>>() + 10 * 8
        );
    }

    #[test]
    fn partitioning_is_partition_count_stable_as_multiset() {
        let input: Vec<(u64, u32)> = (0..500).map(|i| (i * 37 % 91, i as u32)).collect();
        let mut a: Vec<(u64, u32)> = radix_partition(input.clone(), 3)
            .reduce_partitions(|_, pairs| pairs.collect::<Vec<_>>())
            .concat();
        let mut b: Vec<(u64, u32)> = radix_partition(input, 8)
            .reduce_partitions(|_, pairs| pairs.collect::<Vec<_>>())
            .concat();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
