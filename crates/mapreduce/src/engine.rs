//! The generic round executor: hash-partitioned group-by-key with parallel
//! reducers and full metrics accounting.

use crate::config::MrConfig;
use crate::error::MrError;
use crate::stats::{MrStats, RoundStats};
use rayon::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// Deterministic hasher (SipHash with fixed keys) so that partition layout —
/// and therefore output order — is reproducible across runs.
type DetState = BuildHasherDefault<DefaultHasher>;

fn partition_of<K: Hash>(key: &K, partitions: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % partitions as u64) as usize
}

/// Executes MR rounds and accumulates [`MrStats`].
///
/// A *round* takes a multiset of `(K, V)` pairs, groups them by key (hash
/// partitioning into [`MrConfig::partitions`] buckets processed in
/// parallel), applies the reducer to every group independently, and returns
/// the concatenated outputs. Everything entering the round is charged as
/// shuffled communication; the largest group is charged as the round's local
/// memory.
pub struct MrEngine {
    config: MrConfig,
    stats: MrStats,
}

impl MrEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: MrConfig) -> Self {
        MrEngine {
            config,
            stats: MrStats::default(),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &MrConfig {
        &self.config
    }

    /// The accumulated metrics ledger.
    pub fn stats(&self) -> &MrStats {
        &self.stats
    }

    /// Resets the metrics ledger (configuration is kept).
    pub fn reset_stats(&mut self) {
        self.stats = MrStats::default();
    }

    /// Executes one labelled round. See [`MrEngine::round`].
    pub fn round_labelled<K, V, K2, V2, F>(
        &mut self,
        input: Vec<(K, V)>,
        label: &'static str,
        reducer: F,
    ) -> Result<Vec<(K2, V2)>, MrError>
    where
        K: Hash + Eq + Send,
        V: Send,
        K2: Send,
        V2: Send,
        F: Fn(&K, Vec<V>) -> Vec<(K2, V2)> + Sync,
    {
        let partitions = self.config.partitions;
        let input_pairs = input.len();
        let input_bytes = input_pairs * std::mem::size_of::<(K, V)>();

        // Shuffle: route each pair to its key's partition. A sequential pass
        // keeps per-partition arrival order deterministic.
        let mut buckets: Vec<Vec<(K, V)>> = (0..partitions).map(|_| Vec::new()).collect();
        for (k, v) in input {
            let p = partition_of(&k, partitions);
            buckets[p].push((k, v));
        }

        // Per-partition group-by + reduce, in parallel.
        struct PartOut<K2, V2> {
            out: Vec<(K2, V2)>,
            keys: usize,
            max_group: usize,
            violations: usize,
        }
        let ml = self.config.local_memory;
        let results: Vec<PartOut<K2, V2>> = buckets
            .into_par_iter()
            .map(|bucket| {
                let mut groups: HashMap<K, Vec<V>, DetState> = HashMap::default();
                for (k, v) in bucket {
                    groups.entry(k).or_default().push(v);
                }
                let keys = groups.len();
                let mut max_group = 0;
                let mut violations = 0;
                let mut out = Vec::new();
                for (k, vs) in groups {
                    max_group = max_group.max(vs.len());
                    if let Some(limit) = ml {
                        if vs.len() > limit {
                            violations += 1;
                        }
                    }
                    out.extend(reducer(&k, vs));
                }
                PartOut {
                    out,
                    keys,
                    max_group,
                    violations,
                }
            })
            .collect();

        let num_keys: usize = results.iter().map(|r| r.keys).sum();
        let max_group = results.iter().map(|r| r.max_group).max().unwrap_or(0);
        let violations: usize = results.iter().map(|r| r.violations).sum();
        let output: Vec<(K2, V2)> = results.into_iter().flat_map(|r| r.out).collect();

        self.stats.push(RoundStats {
            round: 0, // renumbered by the ledger
            input_pairs,
            input_bytes,
            output_pairs: output.len(),
            num_keys,
            max_group,
            violations,
            label,
        });

        if self.config.enforce_local_memory && violations > 0 {
            let limit = ml.unwrap_or(usize::MAX);
            return Err(MrError::LocalMemoryExceeded {
                group_size: max_group,
                limit,
                round: self.stats.num_rounds() - 1,
            });
        }
        Ok(output)
    }

    /// Executes one round: group `input` by key, apply `reducer` per group,
    /// concatenate outputs. Fails only when a hard `M_L` budget is exceeded.
    pub fn round<K, V, K2, V2, F>(
        &mut self,
        input: Vec<(K, V)>,
        reducer: F,
    ) -> Result<Vec<(K2, V2)>, MrError>
    where
        K: Hash + Eq + Send,
        V: Send,
        K2: Send,
        V2: Send,
        F: Fn(&K, Vec<V>) -> Vec<(K2, V2)> + Sync,
    {
        self.round_labelled(input, "round", reducer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_count() {
        let mut eng = MrEngine::new(MrConfig::with_partitions(4));
        let input = vec![(1u32, 1u64), (2, 1), (1, 1), (3, 1), (1, 1)];
        let mut out = eng
            .round(input, |&k, vs| vec![(k, vs.len() as u64)])
            .unwrap();
        out.sort();
        assert_eq!(out, vec![(1, 3), (2, 1), (3, 1)]);
        let s = eng.stats();
        assert_eq!(s.num_rounds(), 1);
        assert_eq!(s.total_pairs(), 5);
        assert_eq!(s.rounds()[0].num_keys, 3);
        assert_eq!(s.max_local_memory(), 3);
    }

    #[test]
    fn empty_round() {
        let mut eng = MrEngine::new(MrConfig::default());
        let out: Vec<(u32, u32)> = eng.round(Vec::<(u32, u32)>::new(), |_, _| vec![]).unwrap();
        assert!(out.is_empty());
        assert_eq!(eng.stats().num_rounds(), 1);
        assert_eq!(eng.stats().total_pairs(), 0);
    }

    #[test]
    fn chained_rounds_accumulate() {
        let mut eng = MrEngine::new(MrConfig::with_partitions(2));
        let r1 = eng
            .round(vec![(0u8, 1u32), (0, 2), (1, 3)], |&k, vs| {
                vs.into_iter().map(|v| (k, v * 10)).collect()
            })
            .unwrap();
        let _r2: Vec<(u8, u32)> = eng
            .round(r1, |&k, vs| vec![(k, vs.into_iter().sum())])
            .unwrap();
        assert_eq!(eng.stats().num_rounds(), 2);
        assert_eq!(eng.stats().total_pairs(), 6);
    }

    #[test]
    fn hard_ml_budget_errors() {
        let mut eng = MrEngine::new(MrConfig::with_partitions(2).with_local_memory(2));
        let input = vec![(7u32, 0u8); 5];
        let err = eng.round(input, |&k, vs| vec![(k, vs.len())]).unwrap_err();
        match err {
            MrError::LocalMemoryExceeded {
                group_size, limit, ..
            } => {
                assert_eq!(group_size, 5);
                assert_eq!(limit, 2);
            }
        }
    }

    #[test]
    fn soft_ml_budget_records_violation() {
        let mut eng = MrEngine::new(MrConfig::with_partitions(2).with_soft_local_memory(2));
        let input = vec![(7u32, 0u8); 5];
        let out = eng.round(input, |&k, vs| vec![(k, vs.len())]).unwrap();
        assert_eq!(out, vec![(7, 5)]);
        assert_eq!(eng.stats().total_violations(), 1);
    }

    #[test]
    fn deterministic_output() {
        let run = || {
            let mut eng = MrEngine::new(MrConfig::with_partitions(8));
            eng.round(
                (0..1000u32).map(|i| (i % 37, i)).collect::<Vec<_>>(),
                |&k, vs| vec![(k, vs.into_iter().sum::<u32>())],
            )
            .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reducer_sees_arrival_order() {
        let mut eng = MrEngine::new(MrConfig::with_partitions(3));
        let input: Vec<(u8, u32)> = (0..10).map(|i| (0u8, i)).collect();
        let out = eng.round(input, |&k, vs| vec![(k, vs)]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn reset_stats() {
        let mut eng = MrEngine::new(MrConfig::default());
        let _ = eng.round(vec![(1u8, 1u8)], |&k, v| vec![(k, v.len())]);
        eng.reset_stats();
        assert_eq!(eng.stats().num_rounds(), 0);
    }
}
