//! The generic round executor: a flat parallel radix shuffle feeding
//! per-partition ordered group-by, with optional map-side combining and
//! full metrics accounting.
//!
//! A round's data path is the two-pass scatter of [`crate::shuffle`]: count
//! pass → exact offsets → one flat pre-sized buffer, no per-bucket `Vec`
//! growth, layout deterministic by construction. Groups within a partition
//! are emitted in **first-arrival order** (the order a real shuffle
//! delivers under our deterministic routing), so outputs are byte-identical
//! at any pool size — asserted against the retained naive reference engine
//! in this module's tests and in `tests/proptests_mr.rs`.

use crate::config::MrConfig;
use crate::error::MrError;
use crate::shuffle::{self, KeyIndex, ShuffleSize};
use crate::stats::{MrStats, RoundStats};
use std::hash::Hash;

/// Executes MR rounds and accumulates [`MrStats`].
///
/// A *round* takes a multiset of `(K, V)` pairs, groups them by key (radix
/// partitioning into [`MrConfig::partitions`] buckets, counted + scattered
/// in parallel, reduced in parallel), applies the reducer to every group
/// independently, and returns the concatenated outputs. Everything entering
/// the shuffle is charged as communication (pre- and post-combine when a
/// combiner runs); the largest group is charged as the round's local memory.
pub struct MrEngine {
    config: MrConfig,
    stats: MrStats,
}

/// Per-partition reduce outcome, merged into the round's ledger entry.
struct PartOut<K2, V2> {
    out: Vec<(K2, V2)>,
    keys: usize,
    max_group: usize,
    violations: usize,
}

impl MrEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: MrConfig) -> Self {
        MrEngine {
            config,
            stats: MrStats::default(),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &MrConfig {
        &self.config
    }

    /// The accumulated metrics ledger.
    pub fn stats(&self) -> &MrStats {
        &self.stats
    }

    /// Resets the metrics ledger (configuration is kept).
    pub fn reset_stats(&mut self) {
        self.stats = MrStats::default();
    }

    /// Shared tail of [`MrEngine::round_labelled`] and
    /// [`MrEngine::round_combined`]: radix-shuffle `input`, reduce every
    /// partition in parallel, record the ledger entry. `map` carries the
    /// pre-combine (pairs, bytes) volume when a combiner already ran.
    fn shuffled_round<K, V, K2, V2, F>(
        &mut self,
        input: Vec<(K, V)>,
        label: &'static str,
        map: Option<(usize, usize)>,
        reducer: F,
    ) -> Result<Vec<(K2, V2)>, MrError>
    where
        K: Hash + Eq + Send + Sync + ShuffleSize,
        V: Send + Sync + ShuffleSize,
        K2: Send,
        V2: Send,
        F: Fn(&K, Vec<V>) -> Vec<(K2, V2)> + Sync,
    {
        let partitions = self.config.partitions;
        let input_pairs = input.len();
        let input_bytes = shuffle::pairs_shuffle_bytes(&input);
        let (map_pairs, map_bytes) = map.unwrap_or((input_pairs, input_bytes));

        let ml = self.config.local_memory;
        let reducer = &reducer;
        let shuffle_span = pardec_obs::span!("mr.shuffle", label = label, pairs = input_pairs);
        let results: Vec<PartOut<K2, V2>> = shuffle::radix_partition(input, partitions)
            .reduce_partitions(move |_p, pairs| {
                // Intern keys and park values in one flat scratch first, so
                // every group vector below is allocated at its exact size —
                // no per-key growth reallocation in the hot loop.
                let mut index: KeyIndex<K> = KeyIndex::new();
                let mut counts: Vec<u32> = Vec::new();
                let mut scratch: Vec<(u32, V)> = Vec::with_capacity(pairs.len());
                for (k, v) in pairs {
                    let slot = index.intern(k);
                    if slot == counts.len() {
                        counts.push(0);
                    }
                    counts[slot] += 1;
                    scratch.push((slot as u32, v));
                }
                let mut groups: Vec<Vec<V>> = counts
                    .iter()
                    .map(|&c| Vec::with_capacity(c as usize))
                    .collect();
                for (slot, v) in scratch {
                    groups[slot as usize].push(v);
                }
                let keys = index.len();
                let mut max_group = 0;
                let mut violations = 0;
                let mut out = Vec::new();
                for (k, vs) in index.into_keys().into_iter().zip(groups) {
                    max_group = max_group.max(vs.len());
                    if let Some(limit) = ml {
                        if vs.len() > limit {
                            violations += 1;
                        }
                    }
                    out.extend(reducer(&k, vs));
                }
                PartOut {
                    out,
                    keys,
                    max_group,
                    violations,
                }
            });

        let num_keys: usize = results.iter().map(|r| r.keys).sum();
        let max_group = results.iter().map(|r| r.max_group).max().unwrap_or(0);
        let violations: usize = results.iter().map(|r| r.violations).sum();
        let output: Vec<(K2, V2)> = results.into_iter().flat_map(|r| r.out).collect();
        drop(shuffle_span);

        self.stats.push(RoundStats {
            round: 0, // renumbered by the ledger
            map_pairs,
            map_bytes,
            input_pairs,
            input_bytes,
            output_pairs: output.len(),
            num_keys,
            max_group,
            violations,
            label,
        });

        if self.config.enforce_local_memory && violations > 0 {
            let limit = ml.unwrap_or(usize::MAX);
            return Err(MrError::LocalMemoryExceeded {
                group_size: max_group,
                limit,
                round: self.stats.num_rounds() - 1,
            });
        }
        Ok(output)
    }

    /// Executes one labelled round. See [`MrEngine::round`].
    pub fn round_labelled<K, V, K2, V2, F>(
        &mut self,
        input: Vec<(K, V)>,
        label: &'static str,
        reducer: F,
    ) -> Result<Vec<(K2, V2)>, MrError>
    where
        K: Hash + Eq + Send + Sync + ShuffleSize,
        V: Send + Sync + ShuffleSize,
        K2: Send,
        V2: Send,
        F: Fn(&K, Vec<V>) -> Vec<(K2, V2)> + Sync,
    {
        self.shuffled_round(input, label, None, reducer)
    }

    /// Executes one round with a **map-side combiner**: before the shuffle,
    /// each map chunk merges its pairs with equal keys through `combine`, so
    /// at most one pair per (key, chunk) enters the shuffle — the paper's
    /// `M_G` discipline. The reducer then sees the per-chunk partial values
    /// (in chunk order) instead of every original value.
    ///
    /// `combine` must agree with the reducer's own aggregation (a
    /// commutative, associative fold of `V`), in which case the output is
    /// identical to the uncombined [`MrEngine::round_labelled`] — asserted
    /// by `tests/proptests_mr.rs`. The ledger records both the pre-combine
    /// (`map_pairs`/`map_bytes`) and post-combine (`input_pairs`/
    /// `input_bytes`) volumes. Note that `max_group` — and therefore any
    /// `M_L` budget enforcement — sees the **post-combine** groups (at most
    /// one partial per map chunk per key); a round that only fits in `M_L`
    /// *because* of its combiner is exactly the regime combiners exist for.
    pub fn round_combined<K, V, K2, V2, C, F>(
        &mut self,
        input: Vec<(K, V)>,
        label: &'static str,
        combine: C,
        reducer: F,
    ) -> Result<Vec<(K2, V2)>, MrError>
    where
        K: Hash + Eq + Send + Sync + ShuffleSize,
        V: Send + Sync + ShuffleSize,
        K2: Send,
        V2: Send,
        C: Fn(&mut V, V) + Sync,
        F: Fn(&K, Vec<V>) -> Vec<(K2, V2)> + Sync,
    {
        let map_pairs = input.len();
        let map_bytes = shuffle::pairs_shuffle_bytes(&input);
        let chunk_size = map_pairs.div_ceil(self.config.partitions.max(1)).max(1);

        // Map side: each chunk combines its equal-key pairs, emitting them
        // in first-arrival order (so downstream key order matches the
        // uncombined path). Chunk boundaries depend only on the partition
        // count, keeping the result pool-size independent.
        let combine = &combine;
        let combined_chunks: Vec<Vec<(K, V)>> =
            shuffle::consume_chunks(input, chunk_size, move |_c, pairs| {
                let mut index: KeyIndex<K> = KeyIndex::new();
                let mut partials: Vec<Option<V>> = Vec::new();
                for (k, v) in pairs {
                    let slot = index.intern(k);
                    if slot == partials.len() {
                        partials.push(Some(v));
                    } else {
                        combine(partials[slot].as_mut().expect("slot is live"), v);
                    }
                }
                index
                    .into_keys()
                    .into_iter()
                    .zip(partials)
                    .map(|(k, p)| (k, p.expect("each slot filled once")))
                    .collect()
            });
        let combined: Vec<(K, V)> = combined_chunks.into_iter().flatten().collect();

        // Note: the combined path's `max_group` is the *post-combine* group
        // size (≤ chunk count per key); the pre-combine M_L demand that a
        // combiner-less execution would have had is only reflected in
        // `map_pairs` — reconstructing per-key pre-combine maxima exactly
        // would need a second shuffle.
        self.shuffled_round(combined, label, Some((map_pairs, map_bytes)), reducer)
    }

    /// Executes one round: group `input` by key, apply `reducer` per group,
    /// concatenate outputs. Fails only when a hard `M_L` budget is exceeded.
    pub fn round<K, V, K2, V2, F>(
        &mut self,
        input: Vec<(K, V)>,
        reducer: F,
    ) -> Result<Vec<(K2, V2)>, MrError>
    where
        K: Hash + Eq + Send + Sync + ShuffleSize,
        V: Send + Sync + ShuffleSize,
        K2: Send,
        V2: Send,
        F: Fn(&K, Vec<V>) -> Vec<(K2, V2)> + Sync,
    {
        self.round_labelled(input, "round", reducer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The retained naive reference engine: sequential routing into
    /// per-partition buckets, sequential first-arrival group-by — the
    /// executable spec of one round. The radix engine must match it
    /// byte-for-byte at any pool size and partition count.
    pub(crate) fn naive_round<K, V, K2, V2, F>(
        input: Vec<(K, V)>,
        partitions: usize,
        reducer: F,
    ) -> Vec<(K2, V2)>
    where
        K: Hash + Eq,
        F: Fn(&K, Vec<V>) -> Vec<(K2, V2)>,
    {
        let parts = partitions.max(1);
        let mut buckets: Vec<Vec<(K, V)>> = (0..parts).map(|_| Vec::new()).collect();
        for (k, v) in input {
            let p = shuffle::partition_of(&k, parts);
            buckets[p].push((k, v));
        }
        let mut out = Vec::new();
        for bucket in buckets {
            let mut index: KeyIndex<K> = KeyIndex::new();
            let mut groups: Vec<Vec<V>> = Vec::new();
            for (k, v) in bucket {
                let slot = index.intern(k);
                if slot == groups.len() {
                    groups.push(Vec::new());
                }
                groups[slot].push(v);
            }
            for (k, vs) in index.into_keys().into_iter().zip(groups) {
                out.extend(reducer(&k, vs));
            }
        }
        out
    }

    #[test]
    fn radix_round_matches_naive_reference() {
        for partitions in [1usize, 2, 3, 7, 16] {
            let input: Vec<(u32, u64)> = (0..5000u64).map(|i| ((i % 97) as u32, i * 3)).collect();
            let mut eng = MrEngine::new(MrConfig::with_partitions(partitions));
            let radix = eng
                .round(input.clone(), |&k, vs| {
                    vec![(k, (vs.len() as u64, vs.iter().sum::<u64>()))]
                })
                .unwrap();
            let naive = naive_round(input, partitions, |&k, vs: Vec<u64>| {
                vec![(k, (vs.len() as u64, vs.iter().sum::<u64>()))]
            });
            assert_eq!(radix, naive, "partitions = {partitions}");
        }
    }

    #[test]
    fn radix_round_matches_naive_with_identity_reducer() {
        // The strictest check: emit every (key, value) back out, so group
        // order AND value arrival order are both visible in the output.
        let input: Vec<(u8, u32)> = (0..2000u32).map(|i| ((i % 13) as u8, i)).collect();
        let mut eng = MrEngine::new(MrConfig::with_partitions(5));
        let radix = eng
            .round(input.clone(), |&k, vs| {
                vs.into_iter().map(|v| (k, v)).collect()
            })
            .unwrap();
        let naive = naive_round(input, 5, |&k, vs: Vec<u32>| {
            vs.into_iter().map(|v| (k, v)).collect()
        });
        assert_eq!(radix, naive);
    }

    #[test]
    fn combined_round_matches_uncombined() {
        let input: Vec<(u32, u64)> = (0..3000u64).map(|i| ((i % 41) as u32, i)).collect();
        let mut plain = MrEngine::new(MrConfig::with_partitions(6));
        let uncombined = plain
            .round(input.clone(), |&k, vs| {
                vec![(k, vs.into_iter().sum::<u64>())]
            })
            .unwrap();
        let mut comb = MrEngine::new(MrConfig::with_partitions(6));
        let combined = comb
            .round_combined(
                input,
                "combined",
                |acc, v| *acc += v,
                |&k, vs| vec![(k, vs.into_iter().sum::<u64>())],
            )
            .unwrap();
        assert_eq!(combined, uncombined);
        // The combiner must have reduced the shuffled volume: 41 keys × 6
        // chunks bounds the post-combine pairs, 3000 entered the map side.
        let r = &comb.stats().rounds()[0];
        assert_eq!(r.map_pairs, 3000);
        assert!(r.input_pairs <= 41 * 6, "no combining: {}", r.input_pairs);
        assert_eq!(plain.stats().rounds()[0].input_pairs, 3000);
    }

    #[test]
    fn word_count() {
        let mut eng = MrEngine::new(MrConfig::with_partitions(4));
        let input = vec![(1u32, 1u64), (2, 1), (1, 1), (3, 1), (1, 1)];
        let mut out = eng
            .round(input, |&k, vs| vec![(k, vs.len() as u64)])
            .unwrap();
        out.sort();
        assert_eq!(out, vec![(1, 3), (2, 1), (3, 1)]);
        let s = eng.stats();
        assert_eq!(s.num_rounds(), 1);
        assert_eq!(s.total_pairs(), 5);
        assert_eq!(s.rounds()[0].num_keys, 3);
        assert_eq!(s.max_local_memory(), 3);
    }

    #[test]
    fn empty_round() {
        let mut eng = MrEngine::new(MrConfig::default());
        let out: Vec<(u32, u32)> = eng.round(Vec::<(u32, u32)>::new(), |_, _| vec![]).unwrap();
        assert!(out.is_empty());
        assert_eq!(eng.stats().num_rounds(), 1);
        assert_eq!(eng.stats().total_pairs(), 0);
    }

    #[test]
    fn chained_rounds_accumulate() {
        let mut eng = MrEngine::new(MrConfig::with_partitions(2));
        let r1 = eng
            .round(vec![(0u8, 1u32), (0, 2), (1, 3)], |&k, vs| {
                vs.into_iter().map(|v| (k, v * 10)).collect()
            })
            .unwrap();
        let _r2: Vec<(u8, u32)> = eng
            .round(r1, |&k, vs| vec![(k, vs.into_iter().sum())])
            .unwrap();
        assert_eq!(eng.stats().num_rounds(), 2);
        assert_eq!(eng.stats().total_pairs(), 6);
    }

    #[test]
    fn hard_ml_budget_errors() {
        let mut eng = MrEngine::new(MrConfig::with_partitions(2).with_local_memory(2));
        let input = vec![(7u32, 0u8); 5];
        let err = eng.round(input, |&k, vs| vec![(k, vs.len())]).unwrap_err();
        match err {
            MrError::LocalMemoryExceeded {
                group_size, limit, ..
            } => {
                assert_eq!(group_size, 5);
                assert_eq!(limit, 2);
            }
        }
    }

    #[test]
    fn soft_ml_budget_records_violation() {
        let mut eng = MrEngine::new(MrConfig::with_partitions(2).with_soft_local_memory(2));
        let input = vec![(7u32, 0u8); 5];
        let out = eng.round(input, |&k, vs| vec![(k, vs.len())]).unwrap();
        assert_eq!(out, vec![(7, 5)]);
        assert_eq!(eng.stats().total_violations(), 1);
    }

    #[test]
    fn deterministic_output() {
        let run = || {
            let mut eng = MrEngine::new(MrConfig::with_partitions(8));
            eng.round(
                (0..1000u32).map(|i| (i % 37, i)).collect::<Vec<_>>(),
                |&k, vs| vec![(k, vs.into_iter().sum::<u32>())],
            )
            .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reducer_sees_arrival_order() {
        let mut eng = MrEngine::new(MrConfig::with_partitions(3));
        let input: Vec<(u8, u32)> = (0..10).map(|i| (0u8, i)).collect();
        let out = eng.round(input, |&k, vs| vec![(k, vs)]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn heap_payloads_charged_in_full() {
        let mut eng = MrEngine::new(MrConfig::with_partitions(2));
        let input: Vec<(u32, Vec<u64>)> = vec![(0, vec![1; 100]), (1, vec![2; 50])];
        let _ = eng.round(input, |&k, vs| vec![(k, vs.len())]).unwrap();
        let r = &eng.stats().rounds()[0];
        // 2 keys + 2 Vec headers + 150 u64 elements — not 2 × size_of::<(u32, Vec<u64>)>().
        let expect = 2 * 4 + 2 * std::mem::size_of::<Vec<u64>>() + 150 * 8;
        assert_eq!(r.input_bytes, expect);
        assert!(r.input_bytes > 2 * std::mem::size_of::<(u32, Vec<u64>)>());
    }

    #[test]
    fn reset_stats() {
        let mut eng = MrEngine::new(MrConfig::default());
        let _ = eng.round(vec![(1u8, 1u8)], |&k, v| vec![(k, v.len())]);
        eng.reset_stats();
        assert_eq!(eng.stats().num_rounds(), 0);
    }
}
