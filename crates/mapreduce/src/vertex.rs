//! Spark/Pregel-style vertex programs on top of the MR accounting model.
//!
//! The paper's experiments run on Spark, where the graph's adjacency
//! structure lives in cached partitions and only *messages* cross the
//! network each round. This layer mirrors that cost model: the [`CsrGraph`]
//! is resident, each [`VertexEngine::step`] is one superstep (a constant
//! number of MR rounds under `M_L = Ω(nᵋ)`, per Lemma 3 of the paper), and
//! the metrics ledger charges the messages actually sent.
//!
//! Messages must form a commutative semigroup ([`Combine`]) so they can be
//! merged en route — and since the combiner refactor they *are* merged
//! **map-side**: each sender chunk keeps at most one combined message per
//! destination in its per-partition cell, so a superstep ships one pair per
//! `(destination, sender chunk)` instead of one per edge. The ledger
//! records both volumes (`map_pairs` = per-edge, `input_pairs` =
//! post-combine), which is the paper's `M_G` discipline made observable.
//! All scatter/gather buffers are owned by the engine and reused across
//! supersteps instead of being reallocated each step.

use crate::config::MrConfig;
use crate::shuffle::ShuffleSize;
use crate::stats::{MrStats, RoundStats};
use pardec_graph::{CsrGraph, NeighborAccess, NodeId};
use rayon::prelude::*;

/// A message type with a commutative, associative merge.
///
/// The [`ShuffleSize`] supertrait lets the ledger charge heap-carrying
/// messages (sketches, vectors) at their real wire size.
pub trait Combine: Clone + Send + Sync + ShuffleSize {
    /// Merges `other` into `self`. Must be commutative and associative;
    /// idempotence is not required (but all messages in this workspace are
    /// idempotent: min, OR).
    fn combine(&mut self, other: &Self);
}

/// Outcome of one superstep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepReport {
    /// Vertices whose outbox was non-empty at the start of the step.
    pub senders: usize,
    /// Total `(destination, message)` pairs the map side emitted — one per
    /// out-edge of a sender, **before** combining.
    pub messages: u64,
    /// Pairs that actually entered the shuffle after map-side combining:
    /// at most one per `(destination, sender chunk)`.
    pub combined_messages: u64,
    /// Vertices that received at least one (combined) message.
    pub receivers: usize,
    /// Vertices that queued a broadcast for the next step.
    pub activated: usize,
}

/// Per-sender-chunk scratch for map-side combining: a dense
/// offset-within-partition → cell-slot map with epoch tagging, so clearing
/// between partitions and supersteps is O(1).
///
/// Footprint: `2 × ⌈n / partitions⌉ × u32` per chunk — `O(n)` total across
/// all chunks, where the previous full-width (`2 × n × u32` per chunk)
/// layout was `O(partitions × n)`. The combine pass walks one partition
/// cell at a time, so a partition-range-wide map suffices.
struct ChunkScratch {
    /// Slot of the destination's combined entry in its cell.
    slot: Vec<u32>,
    /// Epoch at which `slot[t]` was written; stale entries are ignored.
    mark: Vec<u32>,
    epoch: u32,
}

impl ChunkScratch {
    fn new(n: usize) -> Self {
        ChunkScratch {
            slot: vec![0; n],
            mark: vec![0; n],
            epoch: 0,
        }
    }

    fn advance(&mut self) {
        match self.epoch.checked_add(1) {
            Some(e) => self.epoch = e,
            None => {
                self.mark.iter_mut().for_each(|m| *m = 0);
                self.epoch = 1;
            }
        }
    }
}

/// Superstep executor for one graph.
///
/// Per-vertex `state` is owned by the engine and mutated in place by the
/// `apply` closure of each step; messages queued by `apply` (or seeded with
/// [`VertexEngine::post`]) are broadcast to **all neighbours** of the vertex
/// at the start of the next step.
pub struct VertexEngine<'g, S, M, G: NeighborAccess = CsrGraph> {
    g: &'g G,
    /// Per-vertex algorithm state.
    pub state: Vec<S>,
    outbox: Vec<Option<M>>,
    partitions: usize,
    supersteps: usize,
    stats: MrStats,
    // --- buffers reused across supersteps (allocated once, cleared) ---
    /// Senders of the current step.
    senders: Vec<NodeId>,
    /// Map-side cells, chunk-major: `cells[c * num_parts + p]` holds chunk
    /// `c`'s combined messages for destination partition `p`, each entry
    /// `(dst, pre-combine count, message)`.
    cells: Vec<Vec<(NodeId, u32, M)>>,
    /// Per-chunk combining scratch (lazily grown to the chunk count).
    scratch: Vec<ChunkScratch>,
    /// Combined inbox (one slot per vertex) and pre-combine in-degree.
    inbox: Vec<Option<M>>,
    in_count: Vec<u32>,
}

impl<'g, S, M, G> VertexEngine<'g, S, M, G>
where
    S: Send + Sync,
    M: Combine,
    G: NeighborAccess,
{
    /// Creates an engine with state initialized per vertex (in parallel),
    /// using the ambient default partition count
    /// ([`MrConfig::default_partitions`]).
    pub fn new(g: &'g G, init: impl Fn(NodeId) -> S + Sync) -> Self {
        Self::with_partitions(g, MrConfig::default_partitions(), init)
    }

    /// Creates an engine with an explicit partition count (the scheduling
    /// grid for both sender chunking and destination ranges). The partition
    /// count never changes results — only the ledger's cell granularity.
    pub fn with_partitions(g: &'g G, partitions: usize, init: impl Fn(NodeId) -> S + Sync) -> Self {
        let n = g.num_nodes();
        let state: Vec<S> = (0..n as NodeId).into_par_iter().map(&init).collect();
        VertexEngine {
            g,
            state,
            outbox: (0..n).map(|_| None).collect(),
            partitions: partitions.max(1),
            supersteps: 0,
            stats: MrStats::default(),
            senders: Vec::new(),
            cells: Vec::new(),
            scratch: Vec::new(),
            inbox: (0..n).map(|_| None).collect(),
            in_count: vec![0; n],
        }
    }

    /// Queues a broadcast from `v` for the next step (combining with any
    /// message already queued there). Used to seed sources.
    pub fn post(&mut self, v: NodeId, m: M) {
        match &mut self.outbox[v as usize] {
            Some(cur) => cur.combine(&m),
            slot @ None => *slot = Some(m),
        }
    }

    /// Number of vertices currently holding a queued broadcast.
    pub fn num_active(&self) -> usize {
        self.outbox.iter().filter(|o| o.is_some()).count()
    }

    /// Supersteps executed so far.
    pub fn supersteps(&self) -> usize {
        self.supersteps
    }

    /// The configured partition count.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The metrics ledger (one entry per superstep).
    pub fn stats(&self) -> &MrStats {
        &self.stats
    }

    /// The underlying graph.
    pub fn graph(&self) -> &G {
        self.g
    }

    /// Consumes the engine, returning the final state and the ledger.
    pub fn finish(self) -> (Vec<S>, MrStats) {
        (self.state, self.stats)
    }

    /// Runs one superstep:
    ///
    /// 1. every queued message is broadcast along all edges of its vertex,
    ///    **combined map-side** per `(destination, sender chunk)` cell, and
    ///    merged per destination (the shuffle);
    /// 2. `apply(v, &mut state[v], combined_msg)` runs for every vertex that
    ///    received something; its return value, if any, becomes `v`'s queued
    ///    broadcast for the next step.
    pub fn step(&mut self, apply: impl Fn(NodeId, &mut S, &M) -> Option<M> + Sync) -> StepReport {
        let n = self.g.num_nodes();
        let parts = self.partitions.max(1);
        let part_size = n.div_ceil(parts).max(1);
        let num_parts = n.div_ceil(part_size).max(1);
        let g = self.g;

        // Senders of this step (buffer reused).
        self.senders.clear();
        self.senders
            .extend((0..n as NodeId).filter(|&v| self.outbox[v as usize].is_some()));
        let senders = self.senders.len();
        let outbox = &self.outbox;
        let messages: u64 = self.senders.par_iter().map(|&v| g.degree(v) as u64).sum();
        let map_bytes: u64 = self
            .senders
            .par_iter()
            .map(|&v| {
                let m = outbox[v as usize].as_ref().expect("sender has message");
                g.degree(v) as u64
                    * (std::mem::size_of::<NodeId>() as u64 + m.shuffle_bytes() as u64)
            })
            .sum();

        // Chunk grid: ≤ `parts` sender chunks, a function of the
        // configuration only — never the pool size — so cell layout and
        // everything derived from it is pool-size independent.
        let chunk = senders.div_ceil(parts).max(1);
        let num_chunks = senders.div_ceil(chunk).max(1);

        // Grow the reusable buffers to this step's grid, clear used cells.
        let want_cells = num_chunks * num_parts;
        if self.cells.len() < want_cells {
            self.cells.resize_with(want_cells, Vec::new);
        }
        while self.scratch.len() < num_chunks {
            self.scratch.push(ChunkScratch::new(part_size));
        }
        for cell in &mut self.cells[..want_cells] {
            cell.clear();
        }

        // Phase 1 (scatter + map-side combine): each sender chunk scatters
        // raw per-edge pairs into its per-partition cells, then combines
        // each cell in place — one partition at a time, so a
        // partition-range-wide scratch suffices. The first occurrence of a
        // destination keeps its position and later pairs fold into it in
        // sender order, so cell contents (order and combined values) are
        // identical to combining on the fly.
        self.cells[..want_cells]
            .par_chunks_mut(num_parts)
            .zip(self.scratch[..num_chunks].par_iter_mut())
            .zip(self.senders.par_chunks(chunk))
            .for_each(|((row, scratch), chunk_nodes)| {
                for &v in chunk_nodes {
                    let m = outbox[v as usize].as_ref().expect("sender has message");
                    for t in g.neighbors_iter(v) {
                        row[t as usize / part_size].push((t, 1, m.clone()));
                    }
                }
                for (p, cell) in row.iter_mut().enumerate() {
                    scratch.advance();
                    let base = p * part_size;
                    let mut keep = 0usize;
                    for r in 0..cell.len() {
                        let ti = cell[r].0 as usize - base;
                        if scratch.mark[ti] == scratch.epoch {
                            let s = scratch.slot[ti] as usize;
                            let (head, tail) = cell.split_at_mut(r);
                            head[s].1 += tail[0].1;
                            head[s].2.combine(&tail[0].2);
                        } else {
                            scratch.mark[ti] = scratch.epoch;
                            scratch.slot[ti] = keep as u32;
                            cell.swap(keep, r);
                            keep += 1;
                        }
                    }
                    cell.truncate(keep);
                }
            });
        let used_cells = &self.cells[..want_cells];
        let combined_messages: u64 = used_cells.par_iter().map(|c| c.len() as u64).sum();
        let input_bytes: u64 = used_cells
            .par_iter()
            .map(|c| {
                c.iter()
                    .map(|(_, _, m)| {
                        std::mem::size_of::<NodeId>() as u64 + m.shuffle_bytes() as u64
                    })
                    .sum::<u64>()
            })
            .sum();

        // Phase 2 (merge): each destination partition owns a disjoint slice
        // of the (reused) inbox; it clears its slice, then folds in every
        // chunk's cell for this partition.
        self.inbox
            .par_chunks_mut(part_size)
            .zip(self.in_count.par_chunks_mut(part_size))
            .enumerate()
            .for_each(|(p, (slot_chunk, count_chunk))| {
                slot_chunk.iter_mut().for_each(|s| *s = None);
                count_chunk.iter_mut().for_each(|c| *c = 0);
                let base = p * part_size;
                for c in 0..num_chunks {
                    for (t, pre, m) in &used_cells[c * num_parts + p] {
                        let idx = *t as usize - base;
                        count_chunk[idx] += pre;
                        match &mut slot_chunk[idx] {
                            Some(cur) => cur.combine(m),
                            slot @ None => *slot = Some(m.clone()),
                        }
                    }
                }
            });
        let receivers = self.in_count.par_iter().filter(|&&c| c > 0).count();
        let max_in = self.in_count.par_iter().copied().max().unwrap_or(0) as usize;

        // Phase 3 (apply): clear the consumed outbox slots, then run the
        // vertex function where something arrived, writing next-step
        // broadcasts back into the outbox in place.
        for &v in &self.senders {
            self.outbox[v as usize] = None;
        }
        let (state, outbox, inbox) = (&mut self.state, &mut self.outbox, &self.inbox);
        state
            .par_iter_mut()
            .zip(outbox.par_iter_mut())
            .zip(inbox.par_iter())
            .enumerate()
            .for_each(|(v, ((s, o), m))| {
                if let Some(m) = m {
                    *o = apply(v as NodeId, s, m);
                }
            });
        let activated = self.outbox.par_iter().filter(|o| o.is_some()).count();
        self.supersteps += 1;
        self.stats.push(RoundStats {
            round: 0,
            map_pairs: messages as usize,
            map_bytes: map_bytes as usize,
            input_pairs: combined_messages as usize,
            input_bytes: input_bytes as usize,
            output_pairs: activated,
            num_keys: receivers,
            max_group: max_in,
            violations: 0,
            label: "vertex:step",
        });
        StepReport {
            senders,
            messages,
            combined_messages,
            receivers,
            activated,
        }
    }

    /// Runs supersteps until quiescence (no queued broadcasts) or
    /// `max_steps`, whichever comes first. Returns the steps executed.
    pub fn run_to_quiescence(
        &mut self,
        max_steps: usize,
        apply: impl Fn(NodeId, &mut S, &M) -> Option<M> + Sync,
    ) -> usize {
        let mut steps = 0;
        while steps < max_steps {
            let rep = self.step(&apply);
            steps += 1;
            if rep.activated == 0 {
                break;
            }
        }
        steps
    }
}

/// `min`-combining wrapper for totally ordered messages (BFS distances,
/// component labels, cluster claims).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Min<T: Ord + Copy + Send + Sync>(pub T);

impl<T: Ord + Copy + Send + Sync> ShuffleSize for Min<T> {}

impl<T: Ord + Copy + Send + Sync> Combine for Min<T> {
    fn combine(&mut self, other: &Self) {
        if other.0 < self.0 {
            self.0 = other.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardec_graph::generators;

    #[test]
    fn min_combiner() {
        let mut a = Min(5u32);
        a.combine(&Min(3));
        a.combine(&Min(9));
        assert_eq!(a.0, 3);
    }

    #[test]
    fn single_step_broadcast() {
        let g = generators::star(5); // 0 is the hub
        let mut eng: VertexEngine<u32, Min<u32>> = VertexEngine::new(&g, |_| u32::MAX);
        eng.state[0] = 0;
        eng.post(0, Min(1));
        let rep = eng.step(|_, s, m| {
            if m.0 < *s {
                *s = m.0;
                Some(Min(m.0 + 1))
            } else {
                None
            }
        });
        assert_eq!(rep.senders, 1);
        assert_eq!(rep.messages, 4); // hub degree
        assert_eq!(rep.combined_messages, 4); // distinct destinations: no savings
        assert_eq!(rep.receivers, 4);
        assert_eq!(rep.activated, 4);
        assert_eq!(eng.state, vec![0, 1, 1, 1, 1]);
    }

    #[test]
    fn messages_combine_en_route() {
        // Two sources posting into a shared neighbour: it must see the min.
        let g = generators::path(3); // 0 - 1 - 2
        let mut eng: VertexEngine<u32, Min<u32>> = VertexEngine::new(&g, |_| u32::MAX);
        eng.post(0, Min(7));
        eng.post(2, Min(3));
        let rep = eng.step(|_, s, m| {
            *s = m.0;
            None
        });
        assert_eq!(rep.messages, 2);
        assert_eq!(rep.receivers, 1);
        assert_eq!(eng.state[1], 3);
    }

    #[test]
    fn map_side_combining_reduces_shuffled_pairs() {
        // One sender chunk (partitions = 1): every destination receives
        // exactly one combined pair no matter how many senders hit it.
        let g = generators::star(9); // leaves 1..=8 all point at hub 0
        let mut eng: VertexEngine<u32, Min<u32>> = VertexEngine::with_partitions(&g, 1, |_| 0);
        for v in 1..9 {
            eng.post(v, Min(v));
        }
        let rep = eng.step(|_, s, m| {
            *s = m.0;
            None
        });
        assert_eq!(rep.messages, 8); // map side: one per edge
        assert_eq!(rep.combined_messages, 1); // shuffle: one per (dst, chunk)
        assert_eq!(rep.receivers, 1);
        assert_eq!(eng.state[0], 1); // the min won
        let r = &eng.stats().rounds()[0];
        assert_eq!(r.map_pairs, 8);
        assert_eq!(r.input_pairs, 1);
        assert_eq!(r.max_group, 8); // pre-combine in-degree: the M_L demand
    }

    #[test]
    fn combining_is_partition_count_independent() {
        let g = generators::preferential_attachment(200, 3, 7);
        let run = |partitions: usize| {
            let mut eng: VertexEngine<u32, Min<u32>> =
                VertexEngine::with_partitions(&g, partitions, |_| u32::MAX);
            eng.state[0] = 0;
            eng.post(0, Min(1));
            eng.run_to_quiescence(1000, |_, s, m| {
                if m.0 < *s {
                    *s = m.0;
                    Some(Min(m.0 + 1))
                } else {
                    None
                }
            });
            eng.state
        };
        let reference = run(1);
        for partitions in [2, 3, 5, 16, 64] {
            assert_eq!(run(partitions), reference, "partitions = {partitions}");
        }
    }

    #[test]
    fn quiescence_terminates() {
        let g = generators::path(6);
        let mut eng: VertexEngine<u32, Min<u32>> = VertexEngine::new(&g, |_| u32::MAX);
        eng.state[0] = 0;
        eng.post(0, Min(1));
        let steps = eng.run_to_quiescence(100, |_, s, m| {
            if m.0 < *s {
                *s = m.0;
                Some(Min(m.0 + 1))
            } else {
                None
            }
        });
        // Distances fill in 5 steps; one more step delivers no improvement.
        assert!(steps <= 6, "steps = {steps}");
        assert_eq!(eng.state, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(eng.supersteps(), steps);
    }

    #[test]
    fn stats_ledger_tracks_messages() {
        let g = generators::cycle(8);
        let mut eng: VertexEngine<u32, Min<u32>> = VertexEngine::new(&g, |_| u32::MAX);
        eng.state[0] = 0;
        eng.post(0, Min(1));
        eng.run_to_quiescence(100, |_, s, m| {
            if m.0 < *s {
                *s = m.0;
                Some(Min(m.0 + 1))
            } else {
                None
            }
        });
        // Aggregate pre-combine message volume for BFS on a cycle is Θ(n);
        // the combined volume can only be smaller.
        let map_total = eng.stats().total_map_pairs();
        assert!((8..=4 * 8 + 4).contains(&map_total), "map = {map_total}");
        assert!(eng.stats().total_pairs() <= map_total);
    }

    #[test]
    fn post_combines_with_existing() {
        let g = generators::path(2);
        let mut eng: VertexEngine<u32, Min<u32>> = VertexEngine::new(&g, |_| u32::MAX);
        eng.post(0, Min(9));
        eng.post(0, Min(4));
        assert_eq!(eng.num_active(), 1);
        let rep = eng.step(|_, s, m| {
            *s = m.0;
            None
        });
        assert_eq!(rep.messages, 1);
        assert_eq!(eng.state[1], 4);
    }
}
