//! Spark/Pregel-style vertex programs on top of the MR accounting model.
//!
//! The paper's experiments run on Spark, where the graph's adjacency
//! structure lives in cached partitions and only *messages* cross the
//! network each round. This layer mirrors that cost model: the [`CsrGraph`]
//! is resident, each [`VertexEngine::step`] is one superstep (a constant
//! number of MR rounds under `M_L = Ω(nᵋ)`, per Lemma 3 of the paper), and
//! the metrics ledger charges the messages actually sent.
//!
//! Messages must form a commutative semigroup ([`Combine`]) so they can be
//! merged en route — exactly the combiner optimization every real engine
//! applies to BFS-style minimum propagation and HADI-style sketch ORs.

use crate::config::MrConfig;
use crate::stats::{MrStats, RoundStats};
use pardec_graph::{CsrGraph, NodeId};
use rayon::prelude::*;

/// A message type with a commutative, associative merge.
pub trait Combine: Clone + Send + Sync {
    /// Merges `other` into `self`. Must be commutative and associative;
    /// idempotence is not required (but all messages in this workspace are
    /// idempotent: min, OR).
    fn combine(&mut self, other: &Self);
}

/// Outcome of one superstep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepReport {
    /// Vertices whose outbox was non-empty at the start of the step.
    pub senders: usize,
    /// Total `(destination, message)` pairs shuffled (pre-combining).
    pub messages: u64,
    /// Vertices that received at least one (combined) message.
    pub receivers: usize,
    /// Vertices that queued a broadcast for the next step.
    pub activated: usize,
}

/// Superstep executor for one graph.
///
/// Per-vertex `state` is owned by the engine and mutated in place by the
/// `apply` closure of each step; messages queued by `apply` (or seeded with
/// [`VertexEngine::post`]) are broadcast to **all neighbours** of the vertex
/// at the start of the next step.
pub struct VertexEngine<'g, S, M> {
    g: &'g CsrGraph,
    /// Per-vertex algorithm state.
    pub state: Vec<S>,
    outbox: Vec<Option<M>>,
    partitions: usize,
    supersteps: usize,
    stats: MrStats,
}

impl<'g, S, M> VertexEngine<'g, S, M>
where
    S: Send + Sync,
    M: Combine,
{
    /// Creates an engine with state initialized per vertex (in parallel).
    pub fn new(g: &'g CsrGraph, init: impl Fn(NodeId) -> S + Sync) -> Self {
        let n = g.num_nodes();
        let state: Vec<S> = (0..n as NodeId).into_par_iter().map(&init).collect();
        VertexEngine {
            g,
            state,
            outbox: (0..n).map(|_| None).collect(),
            partitions: MrConfig::default_partitions(),
            supersteps: 0,
            stats: MrStats::default(),
        }
    }

    /// Queues a broadcast from `v` for the next step (combining with any
    /// message already queued there). Used to seed sources.
    pub fn post(&mut self, v: NodeId, m: M) {
        match &mut self.outbox[v as usize] {
            Some(cur) => cur.combine(&m),
            slot @ None => *slot = Some(m),
        }
    }

    /// Number of vertices currently holding a queued broadcast.
    pub fn num_active(&self) -> usize {
        self.outbox.iter().filter(|o| o.is_some()).count()
    }

    /// Supersteps executed so far.
    pub fn supersteps(&self) -> usize {
        self.supersteps
    }

    /// The metrics ledger (one entry per superstep).
    pub fn stats(&self) -> &MrStats {
        &self.stats
    }

    /// The underlying graph.
    pub fn graph(&self) -> &CsrGraph {
        self.g
    }

    /// Consumes the engine, returning the final state and the ledger.
    pub fn finish(self) -> (Vec<S>, MrStats) {
        (self.state, self.stats)
    }

    /// Runs one superstep:
    ///
    /// 1. every queued message is broadcast along all edges of its vertex
    ///    and combined per destination (the shuffle);
    /// 2. `apply(v, &mut state[v], combined_msg)` runs for every vertex that
    ///    received something; its return value, if any, becomes `v`'s queued
    ///    broadcast for the next step.
    pub fn step(&mut self, apply: impl Fn(NodeId, &mut S, &M) -> Option<M> + Sync) -> StepReport {
        let n = self.g.num_nodes();
        let part_size = n.div_ceil(self.partitions.max(1)).max(1);
        let num_parts = n.div_ceil(part_size).max(1);
        let g = self.g;
        let outbox = &self.outbox;

        let senders_list: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| outbox[v as usize].is_some())
            .collect();
        let senders = senders_list.len();
        let messages: u64 = senders_list.par_iter().map(|&v| g.degree(v) as u64).sum();

        // Phase 1 (scatter): per sender-chunk buffers bucketed by destination
        // partition, so phase 2 can merge without locks.
        let chunk = senders_list.len().div_ceil(self.partitions.max(1)).max(1);
        let buffers: Vec<Vec<Vec<(NodeId, M)>>> = senders_list
            .par_chunks(chunk)
            .map(|chunk_nodes| {
                let mut out: Vec<Vec<(NodeId, M)>> = (0..num_parts).map(|_| Vec::new()).collect();
                for &v in chunk_nodes {
                    let m = outbox[v as usize].as_ref().expect("sender has message");
                    for &t in g.neighbors(v) {
                        out[t as usize / part_size].push((t, m.clone()));
                    }
                }
                out
            })
            .collect();

        // Phase 2 (combine): each destination partition owns a disjoint
        // slice of the inbox.
        let mut inbox: Vec<Option<M>> = (0..n).map(|_| None).collect();
        let mut in_count: Vec<u32> = vec![0; n];
        inbox
            .par_chunks_mut(part_size)
            .zip(in_count.par_chunks_mut(part_size))
            .enumerate()
            .for_each(|(p, (slot_chunk, count_chunk))| {
                let base = p * part_size;
                for buf in &buffers {
                    for (t, m) in &buf[p] {
                        let idx = *t as usize - base;
                        count_chunk[idx] += 1;
                        match &mut slot_chunk[idx] {
                            Some(cur) => cur.combine(m),
                            slot @ None => *slot = Some(m.clone()),
                        }
                    }
                }
            });
        let receivers = in_count.par_iter().filter(|&&c| c > 0).count();
        let max_in = in_count.par_iter().copied().max().unwrap_or(0) as usize;

        // Phase 3 (apply): run the vertex function where something arrived.
        let new_outbox: Vec<Option<M>> = self
            .state
            .par_iter_mut()
            .zip(inbox.par_iter())
            .enumerate()
            .map(|(v, (s, m))| m.as_ref().and_then(|m| apply(v as NodeId, s, m)))
            .collect();
        let activated = new_outbox.par_iter().filter(|o| o.is_some()).count();
        self.outbox = new_outbox;
        self.supersteps += 1;
        self.stats.push(RoundStats {
            round: 0,
            input_pairs: messages as usize,
            input_bytes: messages as usize * (std::mem::size_of::<(NodeId, M)>()),
            output_pairs: activated,
            num_keys: receivers,
            max_group: max_in,
            violations: 0,
            label: "vertex:step",
        });
        StepReport {
            senders,
            messages,
            receivers,
            activated,
        }
    }

    /// Runs supersteps until quiescence (no queued broadcasts) or
    /// `max_steps`, whichever comes first. Returns the steps executed.
    pub fn run_to_quiescence(
        &mut self,
        max_steps: usize,
        apply: impl Fn(NodeId, &mut S, &M) -> Option<M> + Sync,
    ) -> usize {
        let mut steps = 0;
        while steps < max_steps {
            let rep = self.step(&apply);
            steps += 1;
            if rep.activated == 0 {
                break;
            }
        }
        steps
    }
}

/// `min`-combining wrapper for totally ordered messages (BFS distances,
/// component labels, cluster claims).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Min<T: Ord + Copy + Send + Sync>(pub T);

impl<T: Ord + Copy + Send + Sync> Combine for Min<T> {
    fn combine(&mut self, other: &Self) {
        if other.0 < self.0 {
            self.0 = other.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardec_graph::generators;

    #[test]
    fn min_combiner() {
        let mut a = Min(5u32);
        a.combine(&Min(3));
        a.combine(&Min(9));
        assert_eq!(a.0, 3);
    }

    #[test]
    fn single_step_broadcast() {
        let g = generators::star(5); // 0 is the hub
        let mut eng: VertexEngine<u32, Min<u32>> = VertexEngine::new(&g, |_| u32::MAX);
        eng.state[0] = 0;
        eng.post(0, Min(1));
        let rep = eng.step(|_, s, m| {
            if m.0 < *s {
                *s = m.0;
                Some(Min(m.0 + 1))
            } else {
                None
            }
        });
        assert_eq!(rep.senders, 1);
        assert_eq!(rep.messages, 4); // hub degree
        assert_eq!(rep.receivers, 4);
        assert_eq!(rep.activated, 4);
        assert_eq!(eng.state, vec![0, 1, 1, 1, 1]);
    }

    #[test]
    fn messages_combine_en_route() {
        // Two sources posting into a shared neighbour: it must see the min.
        let g = generators::path(3); // 0 - 1 - 2
        let mut eng: VertexEngine<u32, Min<u32>> = VertexEngine::new(&g, |_| u32::MAX);
        eng.post(0, Min(7));
        eng.post(2, Min(3));
        let rep = eng.step(|_, s, m| {
            *s = m.0;
            None
        });
        assert_eq!(rep.messages, 2);
        assert_eq!(rep.receivers, 1);
        assert_eq!(eng.state[1], 3);
    }

    #[test]
    fn quiescence_terminates() {
        let g = generators::path(6);
        let mut eng: VertexEngine<u32, Min<u32>> = VertexEngine::new(&g, |_| u32::MAX);
        eng.state[0] = 0;
        eng.post(0, Min(1));
        let steps = eng.run_to_quiescence(100, |_, s, m| {
            if m.0 < *s {
                *s = m.0;
                Some(Min(m.0 + 1))
            } else {
                None
            }
        });
        // Distances fill in 5 steps; one more step delivers no improvement.
        assert!(steps <= 6, "steps = {steps}");
        assert_eq!(eng.state, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(eng.supersteps(), steps);
    }

    #[test]
    fn stats_ledger_tracks_messages() {
        let g = generators::cycle(8);
        let mut eng: VertexEngine<u32, Min<u32>> = VertexEngine::new(&g, |_| u32::MAX);
        eng.state[0] = 0;
        eng.post(0, Min(1));
        eng.run_to_quiescence(100, |_, s, m| {
            if m.0 < *s {
                *s = m.0;
                Some(Min(m.0 + 1))
            } else {
                None
            }
        });
        let total = eng.stats().total_pairs();
        // Aggregate message volume for BFS on a cycle is Θ(n).
        assert!((8..=4 * 8 + 4).contains(&total), "total = {total}");
    }

    #[test]
    fn post_combines_with_existing() {
        let g = generators::path(2);
        let mut eng: VertexEngine<u32, Min<u32>> = VertexEngine::new(&g, |_| u32::MAX);
        eng.post(0, Min(9));
        eng.post(0, Min(4));
        assert_eq!(eng.num_active(), 1);
        let rep = eng.step(|_, s, m| {
            *s = m.0;
            None
        });
        assert_eq!(rep.messages, 1);
        assert_eq!(eng.state[1], 4);
    }
}
