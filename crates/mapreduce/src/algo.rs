//! Reference vertex-program algorithms used to validate the layer and as
//! baselines in the experiments: MR-BFS and MR connected components.

use crate::config::MrConfig;
use crate::stats::MrStats;
use crate::vertex::{Min, VertexEngine};
use pardec_graph::{CsrGraph, NodeId, INFINITE_DIST};

/// Outcome of an MR vertex-program run.
#[derive(Clone, Debug)]
pub struct MrRun<T> {
    /// Per-vertex result.
    pub values: Vec<T>,
    /// Supersteps executed (the paper's round count, up to a constant).
    pub supersteps: usize,
    /// Metrics ledger of the run.
    pub stats: MrStats,
}

/// Level-synchronous BFS as a vertex program: `Θ(ecc(src))` supersteps,
/// *aggregate* message volume `Θ(m)` — the cost profile Table 4 attributes
/// to the Spark BFS baseline. Uses the ambient default partition count.
pub fn mr_bfs(g: &CsrGraph, src: NodeId) -> MrRun<u32> {
    mr_bfs_with(g, src, &MrConfig::default())
}

/// [`mr_bfs`] with an explicit engine configuration (`--partitions` on the
/// CLI). The partition count shapes scheduling and the ledger's cell
/// granularity, never the distances.
pub fn mr_bfs_with(g: &CsrGraph, src: NodeId, config: &MrConfig) -> MrRun<u32> {
    let mut eng: VertexEngine<u32, Min<u32>> =
        VertexEngine::with_partitions(g, config.partitions, |_| INFINITE_DIST);
    eng.state[src as usize] = 0;
    eng.post(src, Min(1));
    let supersteps = eng.run_to_quiescence(g.num_nodes() + 1, |_, s, m| {
        if m.0 < *s {
            *s = m.0;
            Some(Min(m.0 + 1))
        } else {
            None
        }
    });
    let (values, stats) = eng.finish();
    MrRun {
        values,
        supersteps,
        stats,
    }
}

/// Connected components by min-label propagation: every vertex starts with
/// its own id and adopts the smallest label it hears. `O(Δ)` supersteps.
pub fn mr_connected_components(g: &CsrGraph) -> MrRun<u32> {
    mr_connected_components_with(g, &MrConfig::default())
}

/// [`mr_connected_components`] with an explicit engine configuration.
pub fn mr_connected_components_with(g: &CsrGraph, config: &MrConfig) -> MrRun<u32> {
    let mut eng: VertexEngine<u32, Min<u32>> =
        VertexEngine::with_partitions(g, config.partitions, |v| v);
    for v in 0..g.num_nodes() as NodeId {
        eng.post(v, Min(v));
    }
    let supersteps = eng.run_to_quiescence(g.num_nodes() + 1, |_, s, m| {
        if m.0 < *s {
            *s = m.0;
            Some(Min(m.0))
        } else {
            None
        }
    });
    let (values, stats) = eng.finish();
    MrRun {
        values,
        supersteps,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardec_graph::{components, generators, traversal};

    #[test]
    fn mr_bfs_matches_sequential() {
        for (name, g) in [
            ("mesh", generators::mesh(9, 13)),
            ("ba", generators::preferential_attachment(300, 3, 5)),
            ("road", generators::road_network(15, 15, 0.4, 2)),
        ] {
            let seq = traversal::bfs(&g, 0);
            let mr = mr_bfs(&g, 0);
            assert_eq!(mr.values, seq.dist, "{name}");
            // Supersteps track eccentricity (one extra quiescence step).
            assert!(
                mr.supersteps as u32 >= seq.levels && mr.supersteps as u32 <= seq.levels + 2,
                "{name}: supersteps {} vs ecc {}",
                mr.supersteps,
                seq.levels
            );
        }
    }

    #[test]
    fn mr_bfs_communication_is_aggregate_linear() {
        let g = generators::mesh(20, 20);
        let mr = mr_bfs(&g, 0);
        let arcs = g.num_arcs() as u64;
        // Every directed edge carries O(1) messages over the whole run.
        assert!(
            mr.stats.total_pairs() <= 3 * arcs,
            "total {} vs arcs {arcs}",
            mr.stats.total_pairs()
        );
    }

    #[test]
    fn mr_bfs_disconnected() {
        let g = generators::disjoint_union(&generators::path(4), &generators::cycle(3));
        let mr = mr_bfs(&g, 0);
        assert_eq!(mr.values[..4], [0, 1, 2, 3]);
        assert!(mr.values[4..].iter().all(|&d| d == INFINITE_DIST));
    }

    #[test]
    fn mr_cc_matches_sequential() {
        let g = generators::disjoint_union(
            &generators::road_network(10, 10, 0.3, 7),
            &generators::cycle(17),
        );
        let (count, seq_labels) = components::connected_components(&g);
        let mr = mr_connected_components(&g);
        // Same partition: labels must agree up to renaming.
        let mut seen = std::collections::HashMap::new();
        for (v, (&sl, &ml)) in seq_labels.iter().zip(&mr.values).enumerate() {
            let prev = seen.insert(sl, ml);
            if let Some(p) = prev {
                assert_eq!(p, ml, "inconsistent at {v}");
            }
        }
        assert_eq!(seen.len(), count);
        // Min-label: component representative is its smallest node id.
        assert_eq!(mr.values[0], 0);
    }

    #[test]
    fn mr_bfs_single_node() {
        let g = CsrGraph::empty(1);
        let mr = mr_bfs(&g, 0);
        assert_eq!(mr.values, vec![0]);
    }
}
