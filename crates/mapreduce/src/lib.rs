//! # pardec-mr — an MR(M_G, M_L) model emulation engine
//!
//! The paper analyzes its algorithms on the **MR model** of Pietracaprina,
//! Pucci, Riondato, Silvestri, Upfal (ICS'12, ref. \[24\]): a computation is
//! a sequence of *rounds*; in a round, a multiset of key-value pairs is
//! transformed by applying a reducer function independently to every group
//! of pairs sharing a key. Two parameters constrain the execution:
//! `M_G` — aggregate memory, and `M_L` — the local memory available to each
//! reducer. Algorithm quality is measured in **rounds** and communication
//! volume under those memory constraints.
//!
//! The original system was built on Apache Spark over a 16-host cluster.
//! There is no mature Rust MapReduce runtime, so this crate *emulates* the
//! model in-process (see DESIGN.md §2):
//!
//! * [`shuffle`] is the data plane: a **two-pass parallel radix
//!   partitioner** (count → exact offsets → scatter into one flat pre-sized
//!   buffer, layout deterministic by construction) and the
//!   [`shuffle::ShuffleSize`] trait that prices every shuffled record,
//!   heap payloads included.
//! * [`engine::MrEngine`] executes generic key-value rounds over that
//!   shuffle with parallel reducers (rayon), charging every round to a
//!   metrics ledger ([`stats::MrStats`]): pairs and bytes on *both* sides of
//!   the optional map-side combiner ([`engine::MrEngine::round_combined`]),
//!   the largest reducer group (the `M_L` proxy), and optional hard
//!   enforcement of an `M_L` budget.
//! * [`primitives`] implements the model's Fact 1 building blocks — sample
//!   **sort** and (segmented) **prefix sum** — as explicit round sequences
//!   (counting/total rounds ride the combiner).
//! * [`vertex`] layers a Spark/Pregel-style *vertex program* abstraction on
//!   top, with the graph held resident (like cached RDD partitions) and only
//!   *messages* counted as communication; the [`vertex::Combine`] monoid is
//!   applied **map-side**, so a superstep ships one combined message per
//!   `(destination, sender chunk)` instead of one per edge. This matches how
//!   the paper's experiments charge BFS (aggregate Θ(m) volume over Θ(Δ)
//!   rounds) versus HADI (Θ(m) volume *per* round) versus CLUSTER
//!   (aggregate Θ(m) over `R ≪ Δ` rounds).
//! * [`algo`] gives reference vertex-program algorithms (BFS, connected
//!   components) used to validate the layer.
//!
//! ```
//! use pardec_mr::engine::MrEngine;
//! use pardec_mr::config::MrConfig;
//!
//! let mut eng = MrEngine::new(MrConfig::default());
//! // One round of word-count style aggregation.
//! let pairs = vec![("a", 1u64), ("b", 2), ("a", 3)];
//! let out = eng
//!     .round(pairs, |&word, counts| {
//!         vec![(word, counts.iter().sum::<u64>())]
//!     })
//!     .unwrap();
//! let mut out = out;
//! out.sort();
//! assert_eq!(out, vec![("a", 4), ("b", 2)]);
//! assert_eq!(eng.stats().num_rounds(), 1);
//! ```

pub mod algo;
pub mod config;
pub mod engine;
pub mod error;
pub mod matrix;
pub mod primitives;
pub mod shuffle;
pub mod stats;
pub mod vertex;

pub use config::{MrConfig, PARTITIONS_ENV};
pub use engine::MrEngine;
pub use error::MrError;
pub use shuffle::ShuffleSize;
pub use stats::{MrStats, RoundStats};
pub use vertex::{Combine, Min, StepReport, VertexEngine};
