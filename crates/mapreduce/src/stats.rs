//! Round-by-round metrics ledger — the quantities the MR model charges.
//!
//! Since the combiner refactor every round is charged on **both sides of the
//! combiner**: `map_pairs`/`map_bytes` are what the map side emitted, and
//! `input_pairs`/`input_bytes` are what actually entered the shuffle after
//! map-side combining. For rounds without a combiner the two coincide. Bytes
//! are computed through [`crate::shuffle::ShuffleSize`], so heap payloads
//! (e.g. `Vec` messages, sketches) are charged at their full wire size.

use std::fmt;

/// Metrics of a single executed round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundStats {
    /// 0-based round index within the owning engine.
    pub round: usize,
    /// Pairs emitted by the map side, before any combiner ran.
    pub map_pairs: usize,
    /// Bytes emitted by the map side ([`crate::shuffle::ShuffleSize`]).
    pub map_bytes: usize,
    /// Pairs entering the shuffle — after map-side combining, if any
    /// (equals [`RoundStats::map_pairs`] for uncombined rounds).
    pub input_pairs: usize,
    /// Bytes entering the shuffle, after map-side combining.
    pub input_bytes: usize,
    /// Pairs produced by the reducers.
    pub output_pairs: usize,
    /// Number of distinct keys.
    pub num_keys: usize,
    /// Largest reducer group — the round's local-memory (`M_L`) footprint.
    /// Vertex supersteps charge the **pre-combine** in-degree here (the
    /// model's per-key demand); `MrEngine::round_combined` charges the
    /// post-combine group it actually materializes.
    pub max_group: usize,
    /// Groups whose size exceeded the configured `M_L` (0 when no budget).
    pub violations: usize,
    /// Free-form label for reporting ("sort:sample", "vertex:step", …).
    pub label: &'static str,
}

impl RoundStats {
    /// Pairs the combiner removed before the shuffle.
    pub fn combined_away(&self) -> usize {
        self.map_pairs.saturating_sub(self.input_pairs)
    }
}

impl pardec_obs::Observe for RoundStats {
    fn scope(&self) -> &'static str {
        "mr.round"
    }
    fn observe(&self, m: &mut pardec_obs::Metrics) {
        m.label("label", self.label);
        m.counter("round", self.round as u64);
        m.counter("map_pairs", self.map_pairs as u64);
        m.counter("map_bytes", self.map_bytes as u64);
        m.counter("input_pairs", self.input_pairs as u64);
        m.counter("input_bytes", self.input_bytes as u64);
        m.counter("output_pairs", self.output_pairs as u64);
        m.counter("num_keys", self.num_keys as u64);
        m.counter("max_group", self.max_group as u64);
        m.counter("violations", self.violations as u64);
    }
}

/// Accumulated metrics over an engine's lifetime.
#[derive(Clone, Debug, Default)]
pub struct MrStats {
    rounds: Vec<RoundStats>,
}

impl MrStats {
    /// Records one completed round (and reports it to the trace layer —
    /// both `MrEngine` and the vertex engine funnel through here).
    pub(crate) fn push(&mut self, mut r: RoundStats) {
        r.round = self.rounds.len();
        pardec_obs::record(&r);
        self.rounds.push(r);
    }

    /// Number of rounds executed.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total pairs shuffled over all rounds (aggregate communication
    /// volume, **post-combine**).
    pub fn total_pairs(&self) -> u64 {
        self.rounds.iter().map(|r| r.input_pairs as u64).sum()
    }

    /// Total pairs the map side emitted over all rounds (**pre-combine**).
    pub fn total_map_pairs(&self) -> u64 {
        self.rounds.iter().map(|r| r.map_pairs as u64).sum()
    }

    /// Total bytes shuffled over all rounds (post-combine wire size).
    pub fn total_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.input_bytes as u64).sum()
    }

    /// Total bytes the map side emitted over all rounds (pre-combine).
    pub fn total_map_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.map_bytes as u64).sum()
    }

    /// Aggregate combiner effectiveness: pre-combine pairs per shuffled
    /// pair (1.0 when no combiner ran or nothing combined).
    pub fn combine_ratio(&self) -> f64 {
        let shuffled = self.total_pairs();
        if shuffled == 0 {
            return 1.0;
        }
        self.total_map_pairs() as f64 / shuffled as f64
    }

    /// Peak per-round communication volume, in shuffled pairs.
    pub fn max_round_pairs(&self) -> usize {
        self.rounds.iter().map(|r| r.input_pairs).max().unwrap_or(0)
    }

    /// Peak reducer group size over all rounds (the run's `M_L` demand).
    pub fn max_local_memory(&self) -> usize {
        self.rounds.iter().map(|r| r.max_group).max().unwrap_or(0)
    }

    /// Total `M_L` violations recorded (soft mode).
    pub fn total_violations(&self) -> usize {
        self.rounds.iter().map(|r| r.violations).sum()
    }

    /// The per-round records.
    pub fn rounds(&self) -> &[RoundStats] {
        &self.rounds
    }

    /// Merges another ledger's rounds after this one's (renumbering them).
    pub fn absorb(&mut self, other: &MrStats) {
        for r in &other.rounds {
            self.push(r.clone());
        }
    }
}

impl fmt::Display for MrStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "rounds = {}, map pairs = {}, shuffled pairs = {} ({:.2}x combine), peak round pairs = {}, peak M_L = {}",
            self.num_rounds(),
            self.total_map_pairs(),
            self.total_pairs(),
            self.combine_ratio(),
            self.max_round_pairs(),
            self.max_local_memory()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(pairs: usize, max_group: usize) -> RoundStats {
        RoundStats {
            round: 0,
            map_pairs: pairs,
            map_bytes: pairs * 8,
            input_pairs: pairs,
            input_bytes: pairs * 8,
            output_pairs: pairs,
            num_keys: 1,
            max_group,
            violations: 0,
            label: "test",
        }
    }

    #[test]
    fn aggregation() {
        let mut s = MrStats::default();
        s.push(round(10, 4));
        s.push(round(30, 9));
        assert_eq!(s.num_rounds(), 2);
        assert_eq!(s.total_pairs(), 40);
        assert_eq!(s.total_map_pairs(), 40);
        assert_eq!(s.max_round_pairs(), 30);
        assert_eq!(s.max_local_memory(), 9);
        assert_eq!(s.rounds()[1].round, 1); // renumbered
    }

    #[test]
    fn combine_accounting() {
        let mut s = MrStats::default();
        let mut r = round(100, 4);
        r.input_pairs = 25;
        r.input_bytes = 200;
        s.push(r);
        assert_eq!(s.total_map_pairs(), 100);
        assert_eq!(s.total_pairs(), 25);
        assert_eq!(s.total_map_bytes(), 800);
        assert_eq!(s.total_bytes(), 200);
        assert!((s.combine_ratio() - 4.0).abs() < 1e-12);
        assert_eq!(s.rounds()[0].combined_away(), 75);
    }

    #[test]
    fn absorb_renumbers() {
        let mut a = MrStats::default();
        a.push(round(1, 1));
        let mut b = MrStats::default();
        b.push(round(2, 2));
        b.push(round(3, 3));
        a.absorb(&b);
        assert_eq!(a.num_rounds(), 3);
        assert_eq!(a.rounds()[2].round, 2);
        assert_eq!(a.total_pairs(), 6);
    }

    #[test]
    fn empty_stats() {
        let s = MrStats::default();
        assert_eq!(s.num_rounds(), 0);
        assert_eq!(s.max_round_pairs(), 0);
        assert_eq!(s.max_local_memory(), 0);
        assert!((s.combine_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_smoke() {
        let mut s = MrStats::default();
        s.push(round(5, 2));
        let text = s.to_string();
        assert!(text.contains("rounds = 1"), "{text}");
        assert!(text.contains("shuffled pairs = 5"), "{text}");
    }
}
