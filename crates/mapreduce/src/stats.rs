//! Round-by-round metrics ledger — the quantities the MR model charges.

use std::fmt;

/// Metrics of a single executed round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundStats {
    /// 0-based round index within the owning engine.
    pub round: usize,
    /// Pairs entering the shuffle (the round's communication volume).
    pub input_pairs: usize,
    /// Approximate shuffled bytes (`input_pairs × size_of::<(K, V)>()`).
    pub input_bytes: usize,
    /// Pairs produced by the reducers.
    pub output_pairs: usize,
    /// Number of distinct keys.
    pub num_keys: usize,
    /// Largest reducer group — the round's local-memory (`M_L`) footprint.
    pub max_group: usize,
    /// Groups whose size exceeded the configured `M_L` (0 when no budget).
    pub violations: usize,
    /// Free-form label for reporting ("sort:sample", "vertex:step", …).
    pub label: &'static str,
}

/// Accumulated metrics over an engine's lifetime.
#[derive(Clone, Debug, Default)]
pub struct MrStats {
    rounds: Vec<RoundStats>,
}

impl MrStats {
    /// Records one completed round.
    pub(crate) fn push(&mut self, mut r: RoundStats) {
        r.round = self.rounds.len();
        self.rounds.push(r);
    }

    /// Number of rounds executed.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total pairs shuffled over all rounds (aggregate communication volume).
    pub fn total_pairs(&self) -> u64 {
        self.rounds.iter().map(|r| r.input_pairs as u64).sum()
    }

    /// Total approximate bytes shuffled over all rounds.
    pub fn total_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.input_bytes as u64).sum()
    }

    /// Peak per-round communication volume, in pairs.
    pub fn max_round_pairs(&self) -> usize {
        self.rounds.iter().map(|r| r.input_pairs).max().unwrap_or(0)
    }

    /// Peak reducer group size over all rounds (the run's `M_L` demand).
    pub fn max_local_memory(&self) -> usize {
        self.rounds.iter().map(|r| r.max_group).max().unwrap_or(0)
    }

    /// Total `M_L` violations recorded (soft mode).
    pub fn total_violations(&self) -> usize {
        self.rounds.iter().map(|r| r.violations).sum()
    }

    /// The per-round records.
    pub fn rounds(&self) -> &[RoundStats] {
        &self.rounds
    }

    /// Merges another ledger's rounds after this one's (renumbering them).
    pub fn absorb(&mut self, other: &MrStats) {
        for r in &other.rounds {
            self.push(r.clone());
        }
    }
}

impl fmt::Display for MrStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "rounds = {}, total pairs = {}, peak round pairs = {}, peak M_L = {}",
            self.num_rounds(),
            self.total_pairs(),
            self.max_round_pairs(),
            self.max_local_memory()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(pairs: usize, max_group: usize) -> RoundStats {
        RoundStats {
            round: 0,
            input_pairs: pairs,
            input_bytes: pairs * 8,
            output_pairs: pairs,
            num_keys: 1,
            max_group,
            violations: 0,
            label: "test",
        }
    }

    #[test]
    fn aggregation() {
        let mut s = MrStats::default();
        s.push(round(10, 4));
        s.push(round(30, 9));
        assert_eq!(s.num_rounds(), 2);
        assert_eq!(s.total_pairs(), 40);
        assert_eq!(s.max_round_pairs(), 30);
        assert_eq!(s.max_local_memory(), 9);
        assert_eq!(s.rounds()[1].round, 1); // renumbered
    }

    #[test]
    fn absorb_renumbers() {
        let mut a = MrStats::default();
        a.push(round(1, 1));
        let mut b = MrStats::default();
        b.push(round(2, 2));
        b.push(round(3, 3));
        a.absorb(&b);
        assert_eq!(a.num_rounds(), 3);
        assert_eq!(a.rounds()[2].round, 2);
        assert_eq!(a.total_pairs(), 6);
    }

    #[test]
    fn empty_stats() {
        let s = MrStats::default();
        assert_eq!(s.num_rounds(), 0);
        assert_eq!(s.max_round_pairs(), 0);
        assert_eq!(s.max_local_memory(), 0);
    }

    #[test]
    fn display_smoke() {
        let mut s = MrStats::default();
        s.push(round(5, 2));
        assert!(s.to_string().contains("rounds = 1"));
    }
}
