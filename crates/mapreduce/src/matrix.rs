//! Fact 2 — distributed min-plus matrix multiplication and APSP by repeated
//! squaring.
//!
//! Theorem 4's second implementation computes the quotient graph's diameter
//! "by repeated squaring of the adjacency matrix" with Fact 2's blocked
//! multiplication (`O(log_{M_L} n + ℓ³/(M_G·√M_L))` rounds per product).
//! This module realizes that path on the emulation: the ℓ×ℓ distance matrix
//! is split into `B×B` tiles; one round computes all tile products
//! `(i, k)·(k, j)` keyed by output tile `(i, j, k)`, a second round
//! min-combines the partial tiles. `⌈log₂ ℓ⌉` squarings yield APSP.

use crate::engine::MrEngine;
use crate::error::MrError;

/// Infinity for min-plus arithmetic (chosen so `INF + INF` cannot overflow).
pub const MP_INF: u64 = u64::MAX / 4;

/// A dense square matrix over the (min, +) semiring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinPlusMatrix {
    n: usize,
    data: Vec<u64>,
}

impl MinPlusMatrix {
    /// The identity of min-plus multiplication: 0 on the diagonal, ∞ off it.
    pub fn identity(n: usize) -> Self {
        let mut m = MinPlusMatrix {
            n,
            data: vec![MP_INF; n * n],
        };
        for i in 0..n {
            m.data[i * n + i] = 0;
        }
        m
    }

    /// Builds a distance matrix from weighted edges (symmetric, zero
    /// diagonal, ∞ elsewhere).
    pub fn from_edges(n: usize, edges: &[(u32, u32, u64)]) -> Self {
        let mut m = Self::identity(n);
        for &(u, v, w) in edges {
            let (u, v) = (u as usize, v as usize);
            assert!(u < n && v < n, "edge ({u}, {v}) out of range");
            let w = w.min(MP_INF);
            m.data[u * n + v] = m.data[u * n + v].min(w);
            m.data[v * n + u] = m.data[v * n + u].min(w);
        }
        m
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> u64 {
        self.data[i * self.n + j]
    }

    /// Largest finite entry — the diameter once the matrix is the APSP
    /// closure.
    pub fn max_finite(&self) -> u64 {
        self.data
            .iter()
            .copied()
            .filter(|&v| v < MP_INF)
            .max()
            .unwrap_or(0)
    }

    /// Sequential min-plus product (reference implementation for tests).
    pub fn multiply_seq(&self, other: &Self) -> Self {
        assert_eq!(self.n, other.n);
        let n = self.n;
        let mut out = MinPlusMatrix {
            n,
            data: vec![MP_INF; n * n],
        };
        for i in 0..n {
            for k in 0..n {
                let a = self.data[i * n + k];
                if a >= MP_INF {
                    continue;
                }
                for j in 0..n {
                    let b = other.data[k * n + j];
                    let cand = a + b;
                    let slot = &mut out.data[i * n + j];
                    if cand < *slot {
                        *slot = cand;
                    }
                }
            }
        }
        out
    }
}

fn tile_count(n: usize, tile: usize) -> usize {
    n.div_ceil(tile)
}

fn extract_tile(m: &MinPlusMatrix, ti: usize, tj: usize, tile: usize) -> Vec<u64> {
    let n = m.dim();
    let mut out = vec![MP_INF; tile * tile];
    for r in 0..tile {
        let i = ti * tile + r;
        if i >= n {
            break;
        }
        for c in 0..tile {
            let j = tj * tile + c;
            if j >= n {
                break;
            }
            out[r * tile + c] = m.get(i, j);
        }
    }
    out
}

/// One distributed min-plus product `A ⊗ B`, tiled `tile × tile`.
///
/// Round 1 (`matmul:product`): reducer `(ti, tj, tk)` receives tiles
/// `A[ti, tk]` and `B[tk, tj]` and emits their product keyed `(ti, tj)`.
/// Round 2 (`matmul:combine`): reducer `(ti, tj)` min-combines the partial
/// tiles. Reducer local memory is `Θ(tile²·T)` where `T` is the tile-row
/// count — recorded in the engine's ledger.
pub fn mr_min_plus_multiply(
    eng: &mut MrEngine,
    a: &MinPlusMatrix,
    b: &MinPlusMatrix,
    tile: usize,
) -> Result<MinPlusMatrix, MrError> {
    assert_eq!(a.dim(), b.dim(), "dimension mismatch");
    assert!(tile > 0, "tile must be positive");
    let n = a.dim();
    if n == 0 {
        return Ok(MinPlusMatrix::identity(0));
    }
    let t = tile_count(n, tile);

    // Round 1 inputs: ((ti, tj, tk), (which, tile_payload)).
    type TileRecord = ((u32, u32, u32), (u8, Vec<u64>));
    let mut input: Vec<TileRecord> = Vec::with_capacity(2 * t * t * t);
    for ti in 0..t {
        for tk in 0..t {
            let a_tile = extract_tile(a, ti, tk, tile);
            for tj in 0..t {
                input.push(((ti as u32, tj as u32, tk as u32), (0u8, a_tile.clone())));
            }
        }
    }
    for tk in 0..t {
        for tj in 0..t {
            let b_tile = extract_tile(b, tk, tj, tile);
            for ti in 0..t {
                input.push(((ti as u32, tj as u32, tk as u32), (1u8, b_tile.clone())));
            }
        }
    }
    let partials = eng.round_labelled(input, "matmul:product", |&(ti, tj, _tk), parts| {
        let mut a_tile = None;
        let mut b_tile = None;
        for (which, tile_data) in parts {
            if which == 0 {
                a_tile = Some(tile_data);
            } else {
                b_tile = Some(tile_data);
            }
        }
        let (a_tile, b_tile) = (a_tile.expect("A tile"), b_tile.expect("B tile"));
        let mut prod = vec![MP_INF; tile * tile];
        for r in 0..tile {
            for k in 0..tile {
                let av = a_tile[r * tile + k];
                if av >= MP_INF {
                    continue;
                }
                for c in 0..tile {
                    let cand = av + b_tile[k * tile + c];
                    let slot = &mut prod[r * tile + c];
                    if cand < *slot {
                        *slot = cand;
                    }
                }
            }
        }
        vec![((ti, tj), prod)]
    })?;

    // Round 2: min-combine the partial tiles of each output position, with
    // a map-side combiner so each map chunk ships at most one partial tile
    // per output position (element-wise min is commutative + associative).
    let combined = eng.round_combined(
        partials,
        "matmul:combine",
        |acc: &mut Vec<u64>, tdata| {
            for (slot, v) in acc.iter_mut().zip(tdata) {
                if v < *slot {
                    *slot = v;
                }
            }
        },
        |&(ti, tj), tiles| {
            let mut acc = vec![MP_INF; tile * tile];
            for tdata in tiles {
                for (slot, v) in acc.iter_mut().zip(tdata) {
                    if v < *slot {
                        *slot = v;
                    }
                }
            }
            vec![((ti, tj), acc)]
        },
    )?;

    let mut out = MinPlusMatrix {
        n,
        data: vec![MP_INF; n * n],
    };
    for ((ti, tj), tdata) in combined {
        for r in 0..tile {
            let i = ti as usize * tile + r;
            if i >= n {
                break;
            }
            for c in 0..tile {
                let j = tj as usize * tile + c;
                if j >= n {
                    break;
                }
                out.data[i * n + j] = tdata[r * tile + c];
            }
        }
    }
    Ok(out)
}

/// APSP closure by repeated squaring (`⌈log₂ n⌉` products); returns the
/// closure whose [`MinPlusMatrix::max_finite`] is the (weighted) diameter —
/// Theorem 4's Fact 2 pipeline for the quotient graph.
pub fn mr_apsp_by_squaring(
    eng: &mut MrEngine,
    adjacency: &MinPlusMatrix,
    tile: usize,
) -> Result<MinPlusMatrix, MrError> {
    let n = adjacency.dim();
    let mut m = adjacency.clone();
    if n <= 1 {
        return Ok(m);
    }
    let squarings = (usize::BITS - (n - 1).leading_zeros()) as usize;
    for _ in 0..squarings {
        m = mr_min_plus_multiply(eng, &m, &m, tile)?;
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MrConfig;

    fn engine() -> MrEngine {
        MrEngine::new(MrConfig::with_partitions(8))
    }

    fn path_matrix(n: usize) -> MinPlusMatrix {
        let edges: Vec<(u32, u32, u64)> = (1..n as u32).map(|v| (v - 1, v, 1)).collect();
        MinPlusMatrix::from_edges(n, &edges)
    }

    #[test]
    fn identity_multiplication() {
        let mut eng = engine();
        let a = path_matrix(7);
        let id = MinPlusMatrix::identity(7);
        let prod = mr_min_plus_multiply(&mut eng, &a, &id, 3).unwrap();
        assert_eq!(prod, a);
    }

    #[test]
    fn mr_product_matches_sequential() {
        let mut eng = engine();
        let a = MinPlusMatrix::from_edges(
            6,
            &[
                (0, 1, 3),
                (1, 2, 4),
                (2, 3, 1),
                (3, 4, 7),
                (4, 5, 2),
                (0, 5, 20),
            ],
        );
        for tile in [1usize, 2, 3, 4, 6, 8] {
            let mr = mr_min_plus_multiply(&mut eng, &a, &a, tile).unwrap();
            assert_eq!(mr, a.multiply_seq(&a), "tile = {tile}");
        }
    }

    #[test]
    fn squaring_closure_gives_path_diameter() {
        let mut eng = engine();
        let a = path_matrix(9);
        let closure = mr_apsp_by_squaring(&mut eng, &a, 4).unwrap();
        assert_eq!(closure.get(0, 8), 8);
        assert_eq!(closure.max_finite(), 8);
        // log2(9) rounded up = 4 squarings, 2 rounds each.
        assert_eq!(eng.stats().num_rounds(), 8);
    }

    #[test]
    fn disconnected_blocks_stay_infinite() {
        let mut eng = engine();
        let a = MinPlusMatrix::from_edges(4, &[(0, 1, 5), (2, 3, 7)]);
        let closure = mr_apsp_by_squaring(&mut eng, &a, 2).unwrap();
        assert_eq!(closure.get(0, 1), 5);
        assert_eq!(closure.get(2, 3), 7);
        assert!(closure.get(0, 2) >= MP_INF);
        assert_eq!(closure.max_finite(), 7);
    }

    #[test]
    fn weighted_triangle_shortcut() {
        let mut eng = engine();
        let a = MinPlusMatrix::from_edges(3, &[(0, 1, 10), (1, 2, 10), (0, 2, 50)]);
        let closure = mr_apsp_by_squaring(&mut eng, &a, 2).unwrap();
        assert_eq!(closure.get(0, 2), 20); // through node 1
    }

    #[test]
    fn degenerate_sizes() {
        let mut eng = engine();
        let a = MinPlusMatrix::identity(0);
        assert_eq!(mr_apsp_by_squaring(&mut eng, &a, 2).unwrap().dim(), 0);
        let a = MinPlusMatrix::identity(1);
        assert_eq!(
            mr_apsp_by_squaring(&mut eng, &a, 2).unwrap().max_finite(),
            0
        );
    }

    #[test]
    fn ml_budget_scales_with_tile() {
        // Bigger tiles -> bigger reducer groups (the Fact 2 M_L trade-off).
        let a = path_matrix(16);
        let mut small = engine();
        mr_min_plus_multiply(&mut small, &a, &a, 2).unwrap();
        let mut big = engine();
        mr_min_plus_multiply(&mut big, &a, &a, 8).unwrap();
        // Tile payloads grow quadratically; group cardinality stays 2 in the
        // product round but the combine round sees fewer, larger groups.
        assert!(small.stats().rounds()[1].num_keys > big.stats().rounds()[1].num_keys);
    }
}
