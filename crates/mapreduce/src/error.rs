//! Engine error type.

use std::fmt;

/// Errors surfaced by the MR emulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MrError {
    /// A reducer group exceeded the configured `M_L` budget while
    /// enforcement was on.
    LocalMemoryExceeded {
        /// Size of the offending group, in pairs.
        group_size: usize,
        /// The configured `M_L` budget.
        limit: usize,
        /// Round index (0-based) in which the violation occurred.
        round: usize,
    },
}

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrError::LocalMemoryExceeded {
                group_size,
                limit,
                round,
            } => write!(
                f,
                "round {round}: reducer group of {group_size} pairs exceeds M_L = {limit}"
            ),
        }
    }
}

impl std::error::Error for MrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = MrError::LocalMemoryExceeded {
            group_size: 10,
            limit: 5,
            round: 2,
        };
        let s = e.to_string();
        assert!(s.contains("M_L = 5"));
        assert!(s.contains("round 2"));
    }
}
