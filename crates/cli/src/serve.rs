//! `pardec serve` — the resident decomposition-query daemon.
//!
//! Loads a `PDEC2` session snapshot (graph + clustering + optional oracle),
//! binds a TCP listener, and answers batched queries over the length-prefixed
//! protocol of [`pardec_core::wire`] until a `SHUTDOWN` request arrives.
//!
//! ```text
//! pardec snapshot save --graph mesh.txt --tau 8 --out mesh.pdec
//! pardec serve --snapshot mesh.pdec --addr 127.0.0.1:7411
//! ```
//!
//! Options:
//! * `--snapshot FILE` — the session snapshot (required).
//! * `--addr HOST:PORT` — bind address; `:0` picks an ephemeral port, and the
//!   daemon always prints the resolved address (default `127.0.0.1:7411`).
//! * `--accept-threads N` — accept-loop OS threads (default: one per core).
//! * `--threads N` — worker-pool size for wave execution (default:
//!   `RAYON_NUM_THREADS`, else all cores). Responses are byte-identical at
//!   any value.
//! * `--frontier S` — strategy for `NEAREST` waves (results identical).
//! * `--checked` — load the snapshot through the checked path (builder
//!   graph decode + full clustering validation) for files of unknown origin.
//!
//! Fault-tolerance knobs (defaults in [`wire::ServeConfig`]):
//! * `--read-timeout-ms N` — socket timeout while inside a frame; stalled
//!   peers are answered `ERR_TIMEOUT` and disconnected.
//! * `--idle-timeout-ms N` — reap connections idle between requests.
//! * `--deadline-ms N` — per-request budget from first byte through
//!   execute (`0` expires every request — testing only).
//! * `--max-batch N` — queries admitted per request frame.
//! * `--max-concurrent N` / `--max-inflight-mb N` — admission gate; excess
//!   load is shed with `ERR_OVERLOADED` + a retry hint.
//! * `--allow-reload` — honor wire `OP_RELOAD` requests (hot snapshot
//!   swap through the checked loader; corrupt files roll back).
//! * `--reload-signal PATH` — watch for `PATH` to appear; when it does,
//!   delete it and reload the serving snapshot in-process (implies the
//!   same checked-load + rollback semantics; does not require
//!   `--allow-reload`).

use crate::args::Args;
use crate::commands::{frontier, CmdResult};
use pardec_core::{wire, Session};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

fn serve_config(
    args: &Args,
    snapshot_path: &str,
) -> Result<wire::ServeConfig, Box<dyn std::error::Error>> {
    let d = wire::ServeConfig::default();
    let ms = |v: u64| Duration::from_millis(v);
    let read_ms: u64 = args.opt_parse(
        "read-timeout-ms",
        d.read_timeout.as_millis() as u64,
        "milliseconds",
    )?;
    let idle_ms: u64 = args.opt_parse(
        "idle-timeout-ms",
        d.idle_timeout.as_millis() as u64,
        "milliseconds",
    )?;
    let deadline_ms: u64 =
        args.opt_parse("deadline-ms", d.deadline.as_millis() as u64, "milliseconds")?;
    let max_batch: u32 = args.opt_parse("max-batch", d.max_batch, "a positive integer")?;
    if max_batch == 0 {
        return Err("--max-batch must be positive".into());
    }
    let max_concurrent: u32 =
        args.opt_parse("max-concurrent", d.max_concurrent, "a positive integer")?;
    let inflight_mb: u64 = args.opt_parse(
        "max-inflight-mb",
        d.max_inflight_bytes >> 20,
        "a size in MiB",
    )?;
    Ok(wire::ServeConfig {
        read_timeout: ms(read_ms),
        write_timeout: d.write_timeout,
        idle_timeout: ms(idle_ms),
        deadline: ms(deadline_ms),
        max_batch,
        max_concurrent,
        max_inflight_bytes: inflight_mb << 20,
        allow_reload: args.has_flag("allow-reload"),
        reload_default_path: Some(snapshot_path.to_string()),
        ..d
    })
}

/// Polls for the signal file; when it appears, deletes it and hot-reloads
/// the serving snapshot. Runs detached for the daemon's lifetime — the
/// thread dies with the process after a clean shutdown.
fn spawn_reload_watcher(reloader: wire::Reloader, signal_path: String) {
    std::thread::Builder::new()
        .name("pardec-reload-watch".into())
        .spawn(move || loop {
            if std::path::Path::new(&signal_path).exists() {
                let _ = std::fs::remove_file(&signal_path);
                match reloader.reload(None) {
                    Ok(epoch) => println!("pardec serve: reloaded snapshot, epoch {epoch}"),
                    Err(e) => eprintln!("pardec serve: reload failed, {e}"),
                }
            }
            std::thread::sleep(Duration::from_millis(250));
        })
        .expect("spawning the reload watcher cannot fail");
}

pub(crate) fn cmd_serve(args: &Args) -> CmdResult {
    let path = args.req("snapshot")?;
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let strategy = frontier(args)?;
    let session = if args.has_flag("checked") {
        Session::load_checked(&bytes, strategy)?
    } else {
        Session::load(&bytes, strategy)?
    };
    drop(bytes);
    let config = serve_config(args, path)?;

    let addr = args.opt("addr", "127.0.0.1:7411");
    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;

    let default_threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let accept_threads: usize =
        args.opt_parse("accept-threads", default_threads, "a positive integer")?;
    if accept_threads == 0 {
        return Err("--accept-threads must be positive".into());
    }
    let mut builder = rayon::ThreadPoolBuilder::new();
    if let Some(n) = args.threads()? {
        builder = builder.num_threads(n);
    }
    let pool = Arc::new(builder.build().map_err(|e| e.to_string())?);

    println!(
        "pardec serve: {} nodes / {} edges, {} clusters, oracle {}",
        session.graph().num_nodes(),
        session.graph().num_edges(),
        session.clustering().num_clusters(),
        if session.oracle().is_some() {
            "loaded"
        } else {
            "absent"
        }
    );
    if config.allow_reload {
        println!("pardec serve: wire reload enabled (OP_RELOAD)");
    }
    let reload_signal = args.opt("reload-signal", "").to_string();
    let handle = wire::serve_with(listener, Arc::new(session), pool, accept_threads, config)?;
    if !reload_signal.is_empty() {
        println!("pardec serve: watching reload signal {reload_signal}");
        spawn_reload_watcher(handle.reloader(), reload_signal);
    }
    // The smoke harness greps for this line to learn the resolved port, so
    // keep its shape stable.
    println!("pardec serve: listening on {}", handle.addr());
    handle.join();
    println!("pardec serve: shut down cleanly");
    Ok(())
}
