//! `pardec serve` — the resident decomposition-query daemon.
//!
//! Loads a `PDEC2` session snapshot (graph + clustering + optional oracle),
//! binds a TCP listener, and answers batched queries over the length-prefixed
//! protocol of [`pardec_core::wire`] until a `SHUTDOWN` request arrives.
//!
//! ```text
//! pardec snapshot save --graph mesh.txt --tau 8 --out mesh.pdec
//! pardec serve --snapshot mesh.pdec --addr 127.0.0.1:7411
//! ```
//!
//! Options:
//! * `--snapshot FILE` — the session snapshot (required).
//! * `--addr HOST:PORT` — bind address; `:0` picks an ephemeral port, and the
//!   daemon always prints the resolved address (default `127.0.0.1:7411`).
//! * `--accept-threads N` — accept-loop OS threads (default: one per core).
//! * `--threads N` — worker-pool size for wave execution (default:
//!   `RAYON_NUM_THREADS`, else all cores). Responses are byte-identical at
//!   any value.
//! * `--frontier S` — strategy for `NEAREST` waves (results identical).
//! * `--checked` — load the snapshot through the checked path (builder
//!   graph decode + full clustering validation) for files of unknown origin.

use crate::args::Args;
use crate::commands::{frontier, CmdResult};
use pardec_core::{wire, Session};
use std::net::TcpListener;
use std::sync::Arc;

pub(crate) fn cmd_serve(args: &Args) -> CmdResult {
    let path = args.req("snapshot")?;
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let strategy = frontier(args)?;
    let session = if args.has_flag("checked") {
        Session::load_checked(&bytes, strategy)?
    } else {
        Session::load(&bytes, strategy)?
    };
    drop(bytes);

    let addr = args.opt("addr", "127.0.0.1:7411");
    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;

    let default_threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let accept_threads: usize =
        args.opt_parse("accept-threads", default_threads, "a positive integer")?;
    if accept_threads == 0 {
        return Err("--accept-threads must be positive".into());
    }
    let mut builder = rayon::ThreadPoolBuilder::new();
    if let Some(n) = args.threads()? {
        builder = builder.num_threads(n);
    }
    let pool = Arc::new(builder.build().map_err(|e| e.to_string())?);

    println!(
        "pardec serve: {} nodes / {} edges, {} clusters, oracle {}",
        session.graph().num_nodes(),
        session.graph().num_edges(),
        session.clustering().num_clusters(),
        if session.oracle().is_some() {
            "loaded"
        } else {
            "absent"
        }
    );
    let handle = wire::serve(listener, Arc::new(session), pool, accept_threads)?;
    // The smoke harness greps for this line to learn the resolved port, so
    // keep its shape stable.
    println!("pardec serve: listening on {}", handle.addr());
    handle.join();
    println!("pardec serve: shut down cleanly");
    Ok(())
}
