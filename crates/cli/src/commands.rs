//! Subcommand implementations for the `pardec` binary.

use crate::args::Args;
use pardec_core::diameter::Decomposition;
use pardec_core::hadi::mr_hadi_with;
use pardec_core::mr_impl::{mr_bfs_with, mr_cluster_with};
use pardec_core::{
    approximate_diameter, cluster, cluster2, gonzalez, kcenter, mpx_with_frontier, ClusterParams,
    Clustering, DiameterParams, DistanceOracle, HadiParams,
};
use pardec_graph::{
    diameter, generators, io, stats, CsrGraph, FrontierStrategy, NodeId, INFINITE_DIST,
};
use pardec_mr::{MrConfig, MrStats};
use std::error::Error;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};

/// Usage banner shared by `help` and error paths.
pub const USAGE: &str = "\
usage: pardec <command> [options]

global options:
  --threads N     size of the worker pool used by all parallel phases
                  (default: RAYON_NUM_THREADS, else all available cores)
  --frontier S    frontier expansion strategy for BFS/growth phases:
                  topdown | bottomup | hybrid (default: PARDEC_FRONTIER,
                  else topdown; output is byte-identical either way)
  --partitions P  shuffle/superstep partition count of the MR emulation
                  (default: PARDEC_PARTITIONS, else 4 x pool threads;
                  shapes the communication ledger, never results)

commands:
  generate    --family mesh|torus|road|social|ba|gnm|lollipop [--rows R --cols C]
              [--nodes N --attach M --window F --extra-prob P --degree D --edges M]
              [--seed S] --out FILE
  stats       --graph FILE
  cluster     --graph FILE [--tau T] [--algorithm cluster|cluster2|mpx]
              [--beta B] [--seed S] [--labels FILE]
  diameter    --graph FILE [--tau T] [--seed S] [--exact] [--cluster2]
  kcenter     --graph FILE --k K [--seed S] [--gonzalez]
  oracle      --graph FILE [--tau T] [--seed S] --queries u:v[,u:v...]
  mr-cluster  --graph FILE [--tau T] [--seed S] [--partitions P]
  mr-bfs      --graph FILE [--source V] [--partitions P]
  mr-hadi     --graph FILE [--trials T] [--seed S] [--partitions P]
  help";

/// Builds the global thread pool from `--threads` before any command runs.
///
/// Must be called ahead of the first parallel operation: the global pool is
/// created lazily on first use, after which its size can no longer change
/// (`ThreadPoolBuilder::build_global` then fails, which this surfaces as an
/// error). All decomposition, diameter, and sketch outputs are byte-identical
/// at any thread count — `--threads` trades wall-clock time only.
pub fn init_thread_pool(args: &Args) -> CmdResult {
    let Some(n) = args.threads()? else {
        return Ok(());
    };
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .map_err(|e| format!("--threads {n}: {e}").into())
}

type CmdResult = Result<(), Box<dyn Error>>;

/// Routes a parsed command line to its implementation.
pub fn dispatch(args: &Args) -> CmdResult {
    match args.command.as_str() {
        "generate" => cmd_generate(args),
        "stats" => cmd_stats(args),
        "cluster" => cmd_cluster(args),
        "diameter" => cmd_diameter(args),
        "kcenter" => cmd_kcenter(args),
        "oracle" => cmd_oracle(args),
        "mr-cluster" => cmd_mr_cluster(args),
        "mr-bfs" => cmd_mr_bfs(args),
        "mr-hadi" => cmd_mr_hadi(args),
        "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}").into()),
    }
}

fn load_graph(args: &Args) -> Result<CsrGraph, Box<dyn Error>> {
    let path = args.req("graph")?;
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    Ok(io::read_edge_list(&mut BufReader::new(file))?)
}

fn seed(args: &Args) -> Result<u64, crate::args::ArgError> {
    args.opt_parse("seed", 42u64, "an unsigned integer")
}

/// `--frontier` when given, else the `PARDEC_FRONTIER`/top-down default.
fn frontier(args: &Args) -> Result<FrontierStrategy, crate::args::ArgError> {
    Ok(args
        .frontier()?
        .unwrap_or_else(FrontierStrategy::default_from_env))
}

fn cmd_generate(args: &Args) -> CmdResult {
    let family = args.req("family")?;
    let s = seed(args)?;
    let g = match family {
        "mesh" | "torus" => {
            let rows: usize = args.req_parse("rows", "a positive integer")?;
            let cols: usize = args.req_parse("cols", "a positive integer")?;
            if family == "mesh" {
                generators::mesh(rows, cols)
            } else {
                generators::torus(rows, cols)
            }
        }
        "road" => {
            let rows: usize = args.req_parse("rows", "a positive integer")?;
            let cols: usize = args.opt_parse("cols", rows, "a positive integer")?;
            let p: f64 = args.opt_parse("extra-prob", 0.4, "a probability")?;
            generators::road_network(rows, cols, p, s)
        }
        "social" => {
            let n: usize = args.req_parse("nodes", "a positive integer")?;
            let m: usize = args.opt_parse("attach", 8, "a positive integer")?;
            let w: f64 = args.opt_parse("window", 0.025, "a fraction in (0, 1]")?;
            generators::windowed_preferential_attachment(n, m, w, s)
        }
        "ba" => {
            let n: usize = args.req_parse("nodes", "a positive integer")?;
            let m: usize = args.opt_parse("attach", 4, "a positive integer")?;
            generators::preferential_attachment(n, m, s)
        }
        "gnm" => {
            let n: usize = args.req_parse("nodes", "a positive integer")?;
            let m: usize = args.req_parse("edges", "a positive integer")?;
            generators::gnm(n, m, s)
        }
        "lollipop" => {
            let n: usize = args.req_parse("nodes", "a positive integer")?;
            let d: usize = args.opt_parse("degree", 4, "a positive integer")?;
            let tail: usize = args.opt_parse("rows", n / 4, "a positive integer")?;
            generators::lollipop(n, d, tail, s)
        }
        other => return Err(format!("unknown family {other:?}").into()),
    };
    let out = args.req("out")?;
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    let mut w = BufWriter::new(file);
    io::write_edge_list(&g, &mut w)?;
    w.flush()?;
    println!(
        "wrote {} ({} nodes, {} edges)",
        out,
        g.num_nodes(),
        g.num_edges()
    );
    Ok(())
}

fn cmd_stats(args: &Args) -> CmdResult {
    let g = load_graph(args)?;
    let summary = stats::summarize(&g);
    let deg = stats::degree_stats(&g);
    let (components, _) = pardec_graph::components::connected_components(&g);
    println!("nodes       {}", summary.nodes);
    println!("edges       {}", summary.edges);
    println!("avg degree  {:.2}", summary.avg_degree);
    println!("max degree  {}", summary.max_degree);
    println!("p99 degree  {}", deg.p99);
    println!("components  {components}");
    Ok(())
}

fn write_labels(path: &str, clustering: &Clustering) -> CmdResult {
    let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# node\tcluster\tdist_to_center")?;
    for (v, &c) in clustering.assignment.iter().enumerate() {
        writeln!(w, "{v}\t{c}\t{}", clustering.dist_to_center[v])?;
    }
    w.flush()?;
    Ok(())
}

fn cmd_cluster(args: &Args) -> CmdResult {
    let g = load_graph(args)?;
    let s = seed(args)?;
    let tau: usize = args.opt_parse("tau", 4, "a positive integer")?;
    let strategy = frontier(args)?;
    let algorithm = args.opt("algorithm", "cluster");
    let clustering = match algorithm {
        "cluster" => cluster(&g, &ClusterParams::new(tau, s).with_frontier(strategy)).clustering,
        "cluster2" => cluster2(&g, &ClusterParams::new(tau, s).with_frontier(strategy)).clustering,
        "mpx" => {
            let beta: f64 = args.opt_parse("beta", 0.2, "a positive rate")?;
            mpx_with_frontier(&g, beta, s, strategy).clustering
        }
        other => return Err(format!("unknown algorithm {other:?}").into()),
    };
    let sizes = clustering.cluster_sizes();
    println!("algorithm     {algorithm}");
    println!("clusters      {}", clustering.num_clusters());
    println!("max radius    {}", clustering.max_radius());
    println!(
        "cluster size  min {} / max {}",
        sizes.iter().min().unwrap_or(&0),
        sizes.iter().max().unwrap_or(&0)
    );
    let (q, kernel) = clustering.quotient_with_stats(&g);
    println!(
        "quotient      {} nodes / {} edges",
        q.num_nodes(),
        q.num_edges()
    );
    println!(
        "kernel        {} cut edges -> {} ({:.2}x combine)",
        kernel.input_pairs,
        kernel.output_pairs,
        kernel.combine_ratio()
    );
    if let Ok(path) = args.req("labels") {
        write_labels(path, &clustering)?;
        println!("labels        written to {path}");
    }
    Ok(())
}

fn cmd_diameter(args: &Args) -> CmdResult {
    let g = load_graph(args)?;
    let s = seed(args)?;
    let tau: usize = args.opt_parse("tau", 4, "a positive integer")?;
    let mut params = DiameterParams::new(tau, s).with_frontier(frontier(args)?);
    if args.has_flag("cluster2") {
        params.decomposition = Decomposition::Cluster2;
    }
    let a = approximate_diameter(&g, &params);
    println!("lower bound (Δ_C)    {}", a.lower_bound);
    println!("upper bound (Δ″)     {}", a.estimate());
    println!("cluster radius       {}", a.radius);
    println!(
        "quotient             {} nodes / {} edges",
        a.quotient_nodes, a.quotient_edges
    );
    // The kernel ledger describes the quotient *build*; when Theorem 4
    // sparsification replaces the quotient afterwards, the row above
    // reflects the spanner while this one keeps the pre-sparsification
    // combine, so it deliberately says "combined", not "quotient", edges.
    println!(
        "contraction kernel   {} cut edges -> {} combined edges ({:.2}x combine, {} buckets)",
        a.quotient_kernel.input_pairs,
        a.quotient_kernel.output_pairs,
        a.quotient_kernel.combine_ratio(),
        a.quotient_kernel.buckets
    );
    println!("growth steps         {}", a.growth_steps);
    if args.has_flag("exact") {
        let exact = diameter::exact_diameter(&g);
        println!("exact diameter       {exact}");
        println!(
            "approximation ratio  {:.3}",
            a.estimate() as f64 / exact.max(1) as f64
        );
    }
    Ok(())
}

fn cmd_kcenter(args: &Args) -> CmdResult {
    let g = load_graph(args)?;
    let s = seed(args)?;
    let k: usize = args.req_parse("k", "a positive integer")?;
    let result = if args.has_flag("gonzalez") {
        gonzalez(&g, k, s)?
    } else {
        kcenter(&g, k, s)?
    };
    println!("centers  {}", result.centers.len());
    println!("radius   {}", result.radius);
    let preview: Vec<String> = result
        .centers
        .iter()
        .take(16)
        .map(|c| c.to_string())
        .collect();
    println!(
        "ids      {}{}",
        preview.join(","),
        if result.centers.len() > 16 {
            ",…"
        } else {
            ""
        }
    );
    Ok(())
}

fn cmd_oracle(args: &Args) -> CmdResult {
    let g = load_graph(args)?;
    let s = seed(args)?;
    let tau: usize = args.opt_parse("tau", 2, "a positive integer")?;
    let oracle = DistanceOracle::build(&g, tau, s, Decomposition::Cluster);
    println!(
        "oracle: {} clusters, radius {}, {} words",
        oracle.num_clusters(),
        oracle.radius(),
        oracle.memory_words()
    );
    let queries = args.req("queries")?;
    for pair in queries.split(',') {
        let Some((u, v)) = pair.split_once(':') else {
            return Err(format!("bad query {pair:?} (expected u:v)").into());
        };
        let u: NodeId = u.trim().parse().map_err(|_| format!("bad node id {u:?}"))?;
        let v: NodeId = v.trim().parse().map_err(|_| format!("bad node id {v:?}"))?;
        let n = g.num_nodes() as NodeId;
        if u >= n || v >= n {
            return Err(format!("query {u}:{v} out of range (n = {n})").into());
        }
        let d = oracle.query(u, v);
        if d == u64::MAX {
            println!("dist({u}, {v}) = unreachable");
        } else {
            println!("dist({u}, {v}) ≤ {d}");
        }
    }
    Ok(())
}

/// `--partitions` when given, else the `PARDEC_PARTITIONS`/4×threads default.
fn mr_config(args: &Args) -> Result<MrConfig, crate::args::ArgError> {
    Ok(match args.partitions()? {
        Some(n) => MrConfig::with_partitions(n),
        None => MrConfig::default(),
    })
}

/// Prints the §5 communication ledger: rounds, pre-combine (map) and
/// post-combine (shuffled) volumes, and the peak local-memory demand.
fn print_ledger(stats: &MrStats) {
    println!("-- communication ledger (MR(M_G, M_L) emulation) --");
    println!("rounds          {}", stats.num_rounds());
    println!(
        "map volume      {} pairs / {} bytes (pre-combine)",
        stats.total_map_pairs(),
        stats.total_map_bytes()
    );
    println!(
        "shuffled        {} pairs / {} bytes (post-combine)",
        stats.total_pairs(),
        stats.total_bytes()
    );
    println!("combine ratio   {:.2}x", stats.combine_ratio());
    println!("peak round      {} pairs", stats.max_round_pairs());
    println!(
        "peak M_L        {} pairs in one reducer group",
        stats.max_local_memory()
    );
}

fn cmd_mr_cluster(args: &Args) -> CmdResult {
    let g = load_graph(args)?;
    let s = seed(args)?;
    let tau: usize = args.opt_parse("tau", 4, "a positive integer")?;
    let mr = mr_config(args)?;
    let r = mr_cluster_with(&g, &ClusterParams::new(tau, s), &mr);
    println!("partitions    {}", mr.partitions);
    println!("clusters      {}", r.clustering.num_clusters());
    println!("max radius    {}", r.clustering.max_radius());
    println!("supersteps    {}", r.supersteps);
    print_ledger(&r.stats);
    Ok(())
}

fn cmd_mr_bfs(args: &Args) -> CmdResult {
    let g = load_graph(args)?;
    let src: NodeId = args.opt_parse("source", 0, "a node id")?;
    if src as usize >= g.num_nodes() {
        return Err(format!("--source {src} out of range (n = {})", g.num_nodes()).into());
    }
    let mr = mr_config(args)?;
    let r = mr_bfs_with(&g, src, &mr);
    let reached = r.values.iter().filter(|&&d| d != INFINITE_DIST).count();
    let ecc = r
        .values
        .iter()
        .filter(|&&d| d != INFINITE_DIST)
        .max()
        .copied()
        .unwrap_or(0);
    println!("partitions    {}", mr.partitions);
    println!("source        {src}");
    println!("reached       {} / {}", reached, g.num_nodes());
    println!("eccentricity  {ecc}");
    println!("supersteps    {}", r.supersteps);
    print_ledger(&r.stats);
    Ok(())
}

fn cmd_mr_hadi(args: &Args) -> CmdResult {
    let g = load_graph(args)?;
    let s = seed(args)?;
    let trials: usize = args.opt_parse("trials", 32, "a positive integer")?;
    if trials == 0 {
        return Err("--trials must be positive".into());
    }
    let mr = mr_config(args)?;
    let mut params = HadiParams::new(s);
    params.trials = trials;
    let (r, stats) = mr_hadi_with(&g, &params, &mr);
    println!("partitions    {}", mr.partitions);
    println!("trials        {trials}");
    println!("diameter est  {}", r.diameter_estimate);
    println!("convergence   {} iterations", r.iterations);
    print_ledger(&stats);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(line: &str) -> Args {
        Args::parse(line.split_whitespace().map(String::from)).unwrap()
    }

    fn tmp(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("pardec-cli-test-{}-{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn generate_stats_cluster_diameter_round_trip() {
        let graph_path = tmp("mesh.txt");
        dispatch(&args(&format!(
            "generate --family mesh --rows 20 --cols 20 --out {graph_path}"
        )))
        .unwrap();
        dispatch(&args(&format!("stats --graph {graph_path}"))).unwrap();
        let labels_path = tmp("labels.tsv");
        dispatch(&args(&format!(
            "cluster --graph {graph_path} --tau 2 --labels {labels_path}"
        )))
        .unwrap();
        let labels = std::fs::read_to_string(&labels_path).unwrap();
        assert_eq!(labels.lines().count(), 400 + 1); // header + one per node
        dispatch(&args(&format!("diameter --graph {graph_path} --exact"))).unwrap();
        dispatch(&args(&format!("kcenter --graph {graph_path} --k 5"))).unwrap();
        dispatch(&args(&format!(
            "oracle --graph {graph_path} --queries 0:399,0:0"
        )))
        .unwrap();
        let _ = std::fs::remove_file(graph_path);
        let _ = std::fs::remove_file(labels_path);
    }

    #[test]
    fn generate_all_families() {
        for (family, extra) in [
            ("mesh", "--rows 5 --cols 6"),
            ("torus", "--rows 5 --cols 5"),
            ("road", "--rows 8"),
            ("social", "--nodes 200 --attach 3"),
            ("ba", "--nodes 100"),
            ("gnm", "--nodes 50 --edges 100"),
            ("lollipop", "--nodes 100 --rows 20"),
        ] {
            let path = tmp(&format!("{family}.txt"));
            dispatch(&args(&format!(
                "generate --family {family} {extra} --out {path}"
            )))
            .unwrap_or_else(|e| panic!("{family}: {e}"));
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn cluster_algorithms() {
        let path = tmp("algos.txt");
        dispatch(&args(&format!(
            "generate --family road --rows 12 --out {path}"
        )))
        .unwrap();
        for algo in ["cluster", "cluster2", "mpx"] {
            for strategy in ["topdown", "bottomup", "hybrid"] {
                dispatch(&args(&format!(
                    "cluster --graph {path} --algorithm {algo} --tau 1 --frontier {strategy}"
                )))
                .unwrap_or_else(|e| panic!("{algo}/{strategy}: {e}"));
            }
        }
        dispatch(&args(&format!("diameter --graph {path} --frontier hybrid"))).unwrap();
        assert!(dispatch(&args(&format!("cluster --graph {path} --frontier nosuch"))).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn mr_subcommands_print_the_ledger() {
        let path = tmp("mr.txt");
        dispatch(&args(&format!(
            "generate --family mesh --rows 10 --cols 10 --out {path}"
        )))
        .unwrap();
        for partitions in ["", "--partitions 1", "--partitions 3"] {
            dispatch(&args(&format!(
                "mr-cluster --graph {path} --tau 2 {partitions}"
            )))
            .unwrap_or_else(|e| panic!("mr-cluster {partitions}: {e}"));
            dispatch(&args(&format!("mr-bfs --graph {path} {partitions}")))
                .unwrap_or_else(|e| panic!("mr-bfs {partitions}: {e}"));
            dispatch(&args(&format!(
                "mr-hadi --graph {path} --trials 8 {partitions}"
            )))
            .unwrap_or_else(|e| panic!("mr-hadi {partitions}: {e}"));
        }
        dispatch(&args(&format!("mr-bfs --graph {path} --source 99"))).unwrap();
        assert!(dispatch(&args(&format!("mr-bfs --graph {path} --source 100"))).is_err());
        assert!(dispatch(&args(&format!("mr-cluster --graph {path} --partitions 0"))).is_err());
        assert!(dispatch(&args(&format!("mr-hadi --graph {path} --trials 0"))).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn error_paths() {
        assert!(dispatch(&args("frobnicate")).is_err());
        assert!(dispatch(&args("stats --graph /nonexistent/file")).is_err());
        assert!(dispatch(&args("generate --family nosuch --out /tmp/x")).is_err());
        let path = tmp("err.txt");
        dispatch(&args(&format!(
            "generate --family mesh --rows 3 --cols 3 --out {path}"
        )))
        .unwrap();
        assert!(dispatch(&args(&format!("cluster --graph {path} --algorithm nosuch"))).is_err());
        assert!(dispatch(&args(&format!("oracle --graph {path} --queries 0-1"))).is_err());
        assert!(dispatch(&args(&format!("oracle --graph {path} --queries 0:999"))).is_err());
        // Disconnected k-center infeasibility surfaces as an error.
        assert!(dispatch(&args(&format!("kcenter --graph {path} --k 0"))).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn help_prints() {
        dispatch(&args("help")).unwrap();
        assert!(USAGE.contains("--threads"));
        assert!(USAGE.contains("--frontier"));
    }

    #[test]
    fn init_thread_pool_sizes_the_global_pool() {
        // Without --threads: a no-op, always fine.
        init_thread_pool(&args("help")).unwrap();
        // With --threads: either this is the first pool use in the test
        // process (pool adopts the size), or the pool already exists and the
        // error explains why the size cannot change.
        match init_thread_pool(&args("help --threads 2")) {
            Ok(()) => assert_eq!(rayon::current_num_threads(), 2),
            Err(e) => assert!(e.to_string().contains("already"), "{e}"),
        }
        // Invalid counts are rejected up front.
        assert!(init_thread_pool(&args("help --threads 0")).is_err());
    }
}
