//! Subcommand implementations for the `pardec` binary.
//!
//! Commands form a tree (`pardec <command> [<sub>] [options]`); the old
//! flat spellings (`cluster`, `diameter`, `mr-cluster`, …) remain as
//! deprecated aliases that print a pointer to the new form on stderr and
//! then behave identically. The `clust`/`dist`/`oracle` handlers and the
//! `serve` daemon all run on the same [`pardec_core::Session`] entry point.

use crate::args::Args;
use pardec_core::hadi::mr_hadi_with;
use pardec_core::mr_impl::{mr_bfs_with, mr_cluster_with};
use pardec_core::{
    gonzalez, kcenter, ClusterParams, Clustering, HadiParams, Session, SessionAlgo, SessionParams,
};
use pardec_graph::{
    diameter, generators, io, stats, CsrGraph, FrontierStrategy, NodeId, INFINITE_DIST,
};
use pardec_mr::{MrConfig, MrStats};
use std::error::Error;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};

/// Usage banner shared by `help` and error paths.
pub const USAGE: &str = "\
usage: pardec <command> [<sub>] [options]

global options:
  --threads N     size of the worker pool used by all parallel phases
                  (default: RAYON_NUM_THREADS, else all available cores)
  --frontier S    frontier expansion strategy for BFS/growth phases:
                  topdown | bottomup | hybrid (default: PARDEC_FRONTIER,
                  else topdown; output is byte-identical either way)
  --partitions P  shuffle/superstep partition count of the MR emulation
                  (default: PARDEC_PARTITIONS, else 4 x pool threads;
                  shapes the communication ledger, never results)
  --trace FILE    write a JSONL span/metric trace to FILE at exit
                  (default: PARDEC_TRACE, else off; never changes results)
  --backend B     adjacency storage backend for Session-backed commands:
                  plain | compressed (default: PARDEC_BACKEND, else plain;
                  compressed holds gap-coded varint CSR — a fraction of the
                  memory, a varint decode per neighbor; output is
                  byte-identical either way)

command tree:
  generate        --family mesh|torus|road|social|ba|gnm|lollipop
                  [--rows R --cols C] [--nodes N --attach M --window F
                  --extra-prob P --degree D --edges M] [--seed S] --out FILE
  stats           --graph FILE
  clust <algo>    algo: cluster | cluster2 | mpx | weighted
                  --graph FILE [--tau T] [--beta B] [--seed S] [--labels FILE]
                  weighted reads an optional third edge-list column as the
                  weight (default 1) and takes [--delta D] (bucket width of
                  the weighted engine; default PARDEC_DELTA, else the mean
                  edge weight; never changes results)
  dist <algo>     algo: approx | exact | weighted
                  --graph FILE [--tau T] [--seed S] [--exact] [--cluster2]
                  weighted approximates the weighted diameter and takes
                  [--delta D] like clust weighted
  kcenter         --graph FILE --k K [--seed S] [--gonzalez]
  oracle          --graph FILE [--tau T] [--seed S] --queries u:v[,u:v...]
  mr <algo>       algo: cluster | bfs | hadi
                  --graph FILE [--tau T] [--source V] [--trials T] [--seed S]
                  [--partitions P]
  snapshot save   --graph FILE --out FILE [--tau T] [--algorithm A] [--beta B]
                  [--seed S] [--no-oracle]   (writes a PDEC2 session snapshot)
  snapshot info   --snapshot FILE            (prints the section table)
  serve           --snapshot FILE [--addr HOST:PORT] [--accept-threads N]
                  [--checked]                (resident query daemon)
                  hardening: [--read-timeout-ms N] [--idle-timeout-ms N]
                  [--deadline-ms N] [--max-batch N] [--max-concurrent N]
                  [--max-inflight-mb N] [--allow-reload]
                  [--reload-signal FILE]  (touch FILE to hot-reload the
                  snapshot; corrupt replacements roll back)
  help

deprecated aliases (still work, print a pointer to the new spelling):
  cluster -> clust <algo>      diameter -> dist approx
  mr-cluster -> mr cluster     mr-bfs -> mr bfs     mr-hadi -> mr hadi";

/// Builds the global thread pool from `--threads` before any command runs.
///
/// Must be called ahead of the first parallel operation: the global pool is
/// created lazily on first use, after which its size can no longer change
/// (`ThreadPoolBuilder::build_global` then fails, which this surfaces as an
/// error). All decomposition, diameter, and sketch outputs are byte-identical
/// at any thread count — `--threads` trades wall-clock time only.
pub fn init_thread_pool(args: &Args) -> CmdResult {
    let Some(n) = args.threads()? else {
        return Ok(());
    };
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .map_err(|e| format!("--threads {n}: {e}").into())
}

pub(crate) type CmdResult = Result<(), Box<dyn Error>>;

/// Prints the deprecation pointer for an old flat spelling (stderr, so
/// stdout stays byte-identical to the new command).
fn deprecated(old: &str, new: &str) {
    eprintln!("note: `pardec {old}` is deprecated; use `pardec {new}`");
}

/// Routes a parsed command line to its implementation.
pub fn dispatch(args: &Args) -> CmdResult {
    match args.command.as_str() {
        "generate" => cmd_generate(args),
        "stats" => cmd_stats(args),
        "clust" => match args.sub.as_str() {
            "weighted" => cmd_clust_weighted(args),
            algo => cmd_clust(args, algo),
        },
        "dist" => match args.sub.as_str() {
            "approx" | "" => cmd_dist_approx(args),
            "exact" => cmd_dist_exact(args),
            "weighted" => cmd_dist_weighted(args),
            other => {
                Err(format!("unknown dist algorithm {other:?} (approx | exact | weighted)").into())
            }
        },
        "kcenter" => cmd_kcenter(args),
        "oracle" => cmd_oracle(args),
        "mr" => match args.sub.as_str() {
            "cluster" => cmd_mr_cluster(args),
            "bfs" => cmd_mr_bfs(args),
            "hadi" => cmd_mr_hadi(args),
            other => Err(format!("unknown mr algorithm {other:?} (cluster | bfs | hadi)").into()),
        },
        "snapshot" => match args.sub.as_str() {
            "save" => cmd_snapshot_save(args),
            "info" => cmd_snapshot_info(args),
            other => Err(format!("unknown snapshot action {other:?} (save | info)").into()),
        },
        "serve" => crate::serve::cmd_serve(args),
        // Deprecated flat aliases — same behavior, pointer on stderr.
        "cluster" => {
            deprecated("cluster", "clust <algo>");
            cmd_clust(args, args.opt("algorithm", "cluster"))
        }
        "diameter" => {
            deprecated("diameter", "dist approx");
            cmd_dist_approx(args)
        }
        "mr-cluster" => {
            deprecated("mr-cluster", "mr cluster");
            cmd_mr_cluster(args)
        }
        "mr-bfs" => {
            deprecated("mr-bfs", "mr bfs");
            cmd_mr_bfs(args)
        }
        "mr-hadi" => {
            deprecated("mr-hadi", "mr hadi");
            cmd_mr_hadi(args)
        }
        "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}").into()),
    }
}

fn load_graph(args: &Args) -> Result<CsrGraph, Box<dyn Error>> {
    let path = args.req("graph")?;
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    Ok(io::read_edge_list(&mut BufReader::new(file))?)
}

fn seed(args: &Args) -> Result<u64, crate::args::ArgError> {
    args.opt_parse("seed", 42u64, "an unsigned integer")
}

/// `--frontier` when given, else the `PARDEC_FRONTIER`/top-down default.
pub(crate) fn frontier(args: &Args) -> Result<FrontierStrategy, crate::args::ArgError> {
    Ok(args
        .frontier()?
        .unwrap_or_else(FrontierStrategy::default_from_env))
}

/// Shared [`SessionParams`] wiring for every Session-backed command:
/// `--tau` (per-command default), `--seed`, `--beta`, `--frontier`, and the
/// algorithm name (from the subcommand or `--algorithm`).
fn session_params(
    args: &Args,
    algo: &str,
    default_tau: usize,
    build_oracle: bool,
) -> Result<SessionParams, Box<dyn Error>> {
    let tau: usize = args.opt_parse("tau", default_tau, "a positive integer")?;
    let algo = match algo {
        "" | "cluster" => SessionAlgo::Cluster,
        "cluster2" => SessionAlgo::Cluster2,
        "mpx" => SessionAlgo::Mpx {
            beta: args.opt_parse("beta", 0.2, "a positive rate")?,
        },
        other => return Err(format!("unknown algorithm {other:?}").into()),
    };
    let mut params = SessionParams::new(tau, seed(args)?)
        .with_algo(algo)
        .with_frontier(frontier(args)?);
    if let Some(b) = args.backend()? {
        params = params.with_backend(b);
    }
    params.build_oracle = build_oracle;
    Ok(params)
}

fn cmd_generate(args: &Args) -> CmdResult {
    let family = args.req("family")?;
    let s = seed(args)?;
    let g = match family {
        "mesh" | "torus" => {
            let rows: usize = args.req_parse("rows", "a positive integer")?;
            let cols: usize = args.req_parse("cols", "a positive integer")?;
            if family == "mesh" {
                generators::mesh(rows, cols)
            } else {
                generators::torus(rows, cols)
            }
        }
        "road" => {
            let rows: usize = args.req_parse("rows", "a positive integer")?;
            let cols: usize = args.opt_parse("cols", rows, "a positive integer")?;
            let p: f64 = args.opt_parse("extra-prob", 0.4, "a probability")?;
            generators::road_network(rows, cols, p, s)
        }
        "social" => {
            let n: usize = args.req_parse("nodes", "a positive integer")?;
            let m: usize = args.opt_parse("attach", 8, "a positive integer")?;
            let w: f64 = args.opt_parse("window", 0.025, "a fraction in (0, 1]")?;
            generators::windowed_preferential_attachment(n, m, w, s)
        }
        "ba" => {
            let n: usize = args.req_parse("nodes", "a positive integer")?;
            let m: usize = args.opt_parse("attach", 4, "a positive integer")?;
            generators::preferential_attachment(n, m, s)
        }
        "gnm" => {
            let n: usize = args.req_parse("nodes", "a positive integer")?;
            let m: usize = args.req_parse("edges", "a positive integer")?;
            generators::gnm(n, m, s)
        }
        "lollipop" => {
            let n: usize = args.req_parse("nodes", "a positive integer")?;
            let d: usize = args.opt_parse("degree", 4, "a positive integer")?;
            let tail: usize = args.opt_parse("rows", n / 4, "a positive integer")?;
            generators::lollipop(n, d, tail, s)
        }
        other => return Err(format!("unknown family {other:?}").into()),
    };
    let out = args.req("out")?;
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    let mut w = BufWriter::new(file);
    io::write_edge_list(&g, &mut w)?;
    w.flush()?;
    println!(
        "wrote {} ({} nodes, {} edges)",
        out,
        g.num_nodes(),
        g.num_edges()
    );
    Ok(())
}

fn cmd_stats(args: &Args) -> CmdResult {
    let g = load_graph(args)?;
    let summary = stats::summarize(&g);
    let deg = stats::degree_stats(&g);
    let (components, _) = pardec_graph::components::connected_components(&g);
    println!("nodes       {}", summary.nodes);
    println!("edges       {}", summary.edges);
    println!("avg degree  {:.2}", summary.avg_degree);
    println!("max degree  {}", summary.max_degree);
    println!("p99 degree  {}", deg.p99);
    println!("components  {components}");
    Ok(())
}

fn write_labels(path: &str, clustering: &Clustering) -> CmdResult {
    let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# node\tcluster\tdist_to_center")?;
    for (v, &c) in clustering.assignment.iter().enumerate() {
        writeln!(w, "{v}\t{c}\t{}", clustering.dist_to_center[v])?;
    }
    w.flush()?;
    Ok(())
}

fn cmd_clust(args: &Args, algo: &str) -> CmdResult {
    let g = load_graph(args)?;
    let params = session_params(args, algo, 4, false)?;
    let session = Session::build(g, &params);
    let clustering = session.clustering();
    let sizes = clustering.cluster_sizes();
    println!("algorithm     {}", params.algo.name());
    println!("backend       {}", session.backend());
    println!("clusters      {}", clustering.num_clusters());
    println!("max radius    {}", clustering.max_radius());
    println!(
        "cluster size  min {} / max {}",
        sizes.iter().min().unwrap_or(&0),
        sizes.iter().max().unwrap_or(&0)
    );
    let (q, kernel) = clustering.quotient_with_stats(session.graph());
    println!(
        "quotient      {} nodes / {} edges",
        q.num_nodes(),
        q.num_edges()
    );
    println!(
        "kernel        {} cut edges -> {} ({:.2}x combine)",
        kernel.input_pairs,
        kernel.output_pairs,
        kernel.combine_ratio()
    );
    if let Ok(path) = args.req("labels") {
        write_labels(path, clustering)?;
        println!("labels        written to {path}");
    }
    Ok(())
}

fn load_weighted_graph(args: &Args) -> Result<pardec_graph::WeightedGraph, Box<dyn Error>> {
    let path = args.req("graph")?;
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    Ok(io::read_weighted_edge_list(&mut BufReader::new(file))?)
}

/// Weighted `ClusterParams` shared by `clust weighted` and `dist weighted`:
/// `--tau`, `--seed`, and `--delta` (falling back to `PARDEC_DELTA`, then
/// the mean-edge-weight heuristic, inside the engine).
fn weighted_params(args: &Args) -> Result<ClusterParams, Box<dyn Error>> {
    let tau: usize = args.opt_parse("tau", 4, "a positive integer")?;
    let mut params = ClusterParams::new(tau, seed(args)?);
    if let Some(d) = args.delta()? {
        params = params.with_delta(d);
    }
    Ok(params)
}

fn write_weighted_labels(path: &str, c: &pardec_core::WeightedClustering) -> CmdResult {
    let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# node\tcluster\tweighted_dist\thops")?;
    for (v, &cl) in c.assignment.iter().enumerate() {
        writeln!(w, "{v}\t{cl}\t{}\t{}", c.weighted_dist[v], c.hops[v])?;
    }
    w.flush()?;
    Ok(())
}

fn cmd_clust_weighted(args: &Args) -> CmdResult {
    let g = load_weighted_graph(args)?;
    let params = weighted_params(args)?;
    let r = pardec_core::weighted_cluster_result(&g, &params);
    let c = &r.clustering;
    println!("algorithm     weighted-cluster");
    println!("clusters      {}", c.num_clusters());
    println!("max w-radius  {}", c.max_weighted_radius());
    println!("max hop-rad   {}", c.max_hop_radius());
    println!(
        "rounds        {} batches + {} tail singletons",
        r.trace.rounds.len(),
        r.trace.tail_singletons
    );
    println!(
        "buckets       {} (delta {})",
        r.trace.buckets, r.trace.delta
    );
    let (q, kernel) = c.quotient_with_stats(&g);
    println!(
        "quotient      {} nodes / {} edges",
        q.num_nodes(),
        q.num_edges()
    );
    println!(
        "kernel        {} cut edges -> {} ({:.2}x combine)",
        kernel.input_pairs,
        kernel.output_pairs,
        kernel.combine_ratio()
    );
    if let Ok(path) = args.req("labels") {
        write_weighted_labels(path, c)?;
        println!("labels        written to {path}");
    }
    Ok(())
}

fn cmd_dist_weighted(args: &Args) -> CmdResult {
    let g = load_weighted_graph(args)?;
    let params = weighted_params(args)?;
    let a = pardec_core::weighted_diameter(&g, &params);
    println!("lower bound (sweep)  {}", a.lower_bound);
    println!("upper bound (Δ″)     {}", a.upper_bound);
    println!("weighted radius      {}", a.weighted_radius);
    println!("hop radius           {}", a.hop_radius);
    println!(
        "quotient             {} nodes / {} edges",
        a.quotient_nodes, a.quotient_edges
    );
    println!(
        "contraction kernel   {} cut edges -> {} combined edges ({:.2}x combine, {} buckets)",
        a.quotient_kernel.input_pairs,
        a.quotient_kernel.output_pairs,
        a.quotient_kernel.combine_ratio(),
        a.quotient_kernel.buckets
    );
    println!(
        "rounds               {} batches ({} wave buckets, delta {})",
        a.trace.rounds.len(),
        a.trace.buckets,
        a.trace.delta
    );
    if args.has_flag("exact") {
        let exact = g.apsp_diameter();
        println!("exact diameter       {exact}");
        println!(
            "approximation ratio  {:.3}",
            a.estimate() as f64 / exact.max(1) as f64
        );
    }
    Ok(())
}

fn cmd_dist_exact(args: &Args) -> CmdResult {
    let g = load_graph(args)?;
    println!("exact diameter       {}", diameter::exact_diameter(&g));
    Ok(())
}

fn cmd_dist_approx(args: &Args) -> CmdResult {
    let g = load_graph(args)?;
    let algo = if args.has_flag("cluster2") {
        "cluster2"
    } else {
        "cluster"
    };
    let params = session_params(args, algo, 4, false)?;
    let session = Session::build(g, &params);
    let a = session.diameter(true, None);
    println!("lower bound (Δ_C)    {}", a.lower_bound);
    println!("upper bound (Δ″)     {}", a.estimate());
    println!("cluster radius       {}", a.radius);
    println!(
        "quotient             {} nodes / {} edges",
        a.quotient_nodes, a.quotient_edges
    );
    // The kernel ledger describes the quotient *build*; when Theorem 4
    // sparsification replaces the quotient afterwards, the row above
    // reflects the spanner while this one keeps the pre-sparsification
    // combine, so it deliberately says "combined", not "quotient", edges.
    println!(
        "contraction kernel   {} cut edges -> {} combined edges ({:.2}x combine, {} buckets)",
        a.quotient_kernel.input_pairs,
        a.quotient_kernel.output_pairs,
        a.quotient_kernel.combine_ratio(),
        a.quotient_kernel.buckets
    );
    println!("growth steps         {}", a.growth_steps);
    if args.has_flag("exact") {
        let exact = diameter::exact_diameter(&session.graph().to_csr());
        println!("exact diameter       {exact}");
        println!(
            "approximation ratio  {:.3}",
            a.estimate() as f64 / exact.max(1) as f64
        );
    }
    Ok(())
}

fn cmd_snapshot_save(args: &Args) -> CmdResult {
    let g = load_graph(args)?;
    let build_oracle = !args.has_flag("no-oracle");
    let params = session_params(args, args.opt("algorithm", "cluster"), 4, build_oracle)?;
    let session = Session::build(g, &params);
    let out = args.req("out")?;
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    let mut w = BufWriter::new(file);
    session.save(&mut w)?;
    w.flush()?;
    println!(
        "wrote {}: {} nodes / {} edges, {} clusters (radius {}){}",
        out,
        session.graph().num_nodes(),
        session.graph().num_edges(),
        session.clustering().num_clusters(),
        session.clustering().max_radius(),
        if build_oracle { ", oracle" } else { "" }
    );
    Ok(())
}

fn cmd_snapshot_info(args: &Args) -> CmdResult {
    use pardec_core::session::{SECTION_CLUSTERING, SECTION_ORACLE};
    let path = args.req("snapshot")?;
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let snap = io::Snapshot::parse(&bytes)?;
    println!(
        "{path}: {} bytes, {} section(s)",
        bytes.len(),
        snap.sections().len()
    );
    println!("tag    ver       offset        bytes   share");
    for e in snap.sections() {
        let tag: String = e
            .tag
            .to_le_bytes()
            .iter()
            .map(|&b| if b.is_ascii_graphic() { b as char } else { '.' })
            .collect();
        println!(
            "{tag:<4}  {:>4}  {:>11}  {:>11}  {:>5.1}%",
            e.version,
            e.offset,
            e.len,
            100.0 * e.len as f64 / bytes.len().max(1) as f64
        );
    }
    println!("graph backend {}", snap.graph_backend());
    if let Some(e) = snap
        .sections()
        .iter()
        .find(|e| e.tag == io::SECTION_GRAPH_COMPRESSED)
    {
        // Compression ledger: the stored gap-coded section vs. what the
        // same graph would occupy as a plain `GRPH` payload
        // (n, arcs, (n+1) offsets, arcs targets).
        let repr = snap.graph_repr()?;
        let (n, arcs) = (repr.num_nodes(), repr.num_arcs());
        let plain = 16 + 8 * (n as u64 + 1) + 4 * arcs as u64;
        println!(
            "compression   {} bytes vs {plain} plain CSR ({:.2}x, {:.2} bytes/edge)",
            e.len,
            plain as f64 / e.len.max(1) as f64,
            e.len as f64 / (arcs / 2).max(1) as f64
        );
    }
    if snap.section(SECTION_CLUSTERING).is_some() {
        // Untrusted file: full checked load (builder graph + validate).
        let session = Session::load_checked(&bytes, FrontierStrategy::default_from_env())?;
        println!(
            "graph         {} nodes / {} edges",
            session.graph().num_nodes(),
            session.graph().num_edges()
        );
        println!("clusters      {}", session.clustering().num_clusters());
        println!("max radius    {}", session.clustering().max_radius());
        println!("growth steps  {}", session.growth_steps());
        println!(
            "oracle        {}",
            match session.oracle() {
                Some(o) => format!("{} words", o.memory_words()),
                None => "absent".into(),
            }
        );
    } else {
        let g = snap.graph_checked()?;
        println!(
            "graph         {} nodes / {} edges",
            g.num_nodes(),
            g.num_edges()
        );
        if snap.section(SECTION_ORACLE).is_some() {
            println!("oracle        present but unusable without a clustering section");
        }
    }
    Ok(())
}

fn cmd_kcenter(args: &Args) -> CmdResult {
    let g = load_graph(args)?;
    let s = seed(args)?;
    let k: usize = args.req_parse("k", "a positive integer")?;
    let result = if args.has_flag("gonzalez") {
        gonzalez(&g, k, s)?
    } else {
        kcenter(&g, k, s)?
    };
    println!("centers  {}", result.centers.len());
    println!("radius   {}", result.radius);
    let preview: Vec<String> = result
        .centers
        .iter()
        .take(16)
        .map(|c| c.to_string())
        .collect();
    println!(
        "ids      {}{}",
        preview.join(","),
        if result.centers.len() > 16 {
            ",…"
        } else {
            ""
        }
    );
    Ok(())
}

fn cmd_oracle(args: &Args) -> CmdResult {
    let g = load_graph(args)?;
    let params = session_params(args, "cluster", 2, true)?;
    let session = Session::build(g, &params);
    let oracle = session.oracle().expect("session built with an oracle");
    println!(
        "oracle: {} clusters, radius {}, {} words",
        oracle.num_clusters(),
        oracle.radius(),
        oracle.memory_words()
    );
    let queries = args.req("queries")?;
    let mut pairs = Vec::new();
    for pair in queries.split(',') {
        let Some((u, v)) = pair.split_once(':') else {
            return Err(format!("bad query {pair:?} (expected u:v)").into());
        };
        let u: NodeId = u.trim().parse().map_err(|_| format!("bad node id {u:?}"))?;
        let v: NodeId = v.trim().parse().map_err(|_| format!("bad node id {v:?}"))?;
        pairs.push((u, v));
    }
    // One batched Session call — the same entry point the daemon serves.
    let (dists, _ledger) = session.distance(&pairs)?;
    for (&(u, v), d) in pairs.iter().zip(dists) {
        if d == u64::MAX {
            println!("dist({u}, {v}) = unreachable");
        } else {
            println!("dist({u}, {v}) ≤ {d}");
        }
    }
    Ok(())
}

/// `--partitions` when given, else the `PARDEC_PARTITIONS`/4×threads default.
fn mr_config(args: &Args) -> Result<MrConfig, crate::args::ArgError> {
    Ok(match args.partitions()? {
        Some(n) => MrConfig::with_partitions(n),
        None => MrConfig::default(),
    })
}

/// Prints the §5 communication ledger: rounds, pre-combine (map) and
/// post-combine (shuffled) volumes, and the peak local-memory demand.
fn print_ledger(stats: &MrStats) {
    println!("-- communication ledger (MR(M_G, M_L) emulation) --");
    println!("rounds          {}", stats.num_rounds());
    println!(
        "map volume      {} pairs / {} bytes (pre-combine)",
        stats.total_map_pairs(),
        stats.total_map_bytes()
    );
    println!(
        "shuffled        {} pairs / {} bytes (post-combine)",
        stats.total_pairs(),
        stats.total_bytes()
    );
    println!("combine ratio   {:.2}x", stats.combine_ratio());
    println!("peak round      {} pairs", stats.max_round_pairs());
    println!(
        "peak M_L        {} pairs in one reducer group",
        stats.max_local_memory()
    );
}

fn cmd_mr_cluster(args: &Args) -> CmdResult {
    let g = load_graph(args)?;
    let s = seed(args)?;
    let tau: usize = args.opt_parse("tau", 4, "a positive integer")?;
    let mr = mr_config(args)?;
    let r = mr_cluster_with(&g, &ClusterParams::new(tau, s), &mr);
    println!("partitions    {}", mr.partitions);
    println!("clusters      {}", r.clustering.num_clusters());
    println!("max radius    {}", r.clustering.max_radius());
    println!("supersteps    {}", r.supersteps);
    print_ledger(&r.stats);
    Ok(())
}

fn cmd_mr_bfs(args: &Args) -> CmdResult {
    let g = load_graph(args)?;
    let src: NodeId = args.opt_parse("source", 0, "a node id")?;
    if src as usize >= g.num_nodes() {
        return Err(format!("--source {src} out of range (n = {})", g.num_nodes()).into());
    }
    let mr = mr_config(args)?;
    let r = mr_bfs_with(&g, src, &mr);
    let reached = r.values.iter().filter(|&&d| d != INFINITE_DIST).count();
    let ecc = r
        .values
        .iter()
        .filter(|&&d| d != INFINITE_DIST)
        .max()
        .copied()
        .unwrap_or(0);
    println!("partitions    {}", mr.partitions);
    println!("source        {src}");
    println!("reached       {} / {}", reached, g.num_nodes());
    println!("eccentricity  {ecc}");
    println!("supersteps    {}", r.supersteps);
    print_ledger(&r.stats);
    Ok(())
}

fn cmd_mr_hadi(args: &Args) -> CmdResult {
    let g = load_graph(args)?;
    let s = seed(args)?;
    let trials: usize = args.opt_parse("trials", 32, "a positive integer")?;
    if trials == 0 {
        return Err("--trials must be positive".into());
    }
    let mr = mr_config(args)?;
    let mut params = HadiParams::new(s);
    params.trials = trials;
    let (r, stats) = mr_hadi_with(&g, &params, &mr);
    println!("partitions    {}", mr.partitions);
    println!("trials        {trials}");
    println!("diameter est  {}", r.diameter_estimate);
    println!("convergence   {} iterations", r.iterations);
    print_ledger(&stats);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(line: &str) -> Args {
        Args::parse(line.split_whitespace().map(String::from)).unwrap()
    }

    fn tmp(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("pardec-cli-test-{}-{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn generate_stats_cluster_diameter_round_trip() {
        let graph_path = tmp("mesh.txt");
        dispatch(&args(&format!(
            "generate --family mesh --rows 20 --cols 20 --out {graph_path}"
        )))
        .unwrap();
        dispatch(&args(&format!("stats --graph {graph_path}"))).unwrap();
        let labels_path = tmp("labels.tsv");
        dispatch(&args(&format!(
            "cluster --graph {graph_path} --tau 2 --labels {labels_path}"
        )))
        .unwrap();
        let labels = std::fs::read_to_string(&labels_path).unwrap();
        assert_eq!(labels.lines().count(), 400 + 1); // header + one per node
        dispatch(&args(&format!("diameter --graph {graph_path} --exact"))).unwrap();
        dispatch(&args(&format!("kcenter --graph {graph_path} --k 5"))).unwrap();
        dispatch(&args(&format!(
            "oracle --graph {graph_path} --queries 0:399,0:0"
        )))
        .unwrap();
        let _ = std::fs::remove_file(graph_path);
        let _ = std::fs::remove_file(labels_path);
    }

    #[test]
    fn generate_all_families() {
        for (family, extra) in [
            ("mesh", "--rows 5 --cols 6"),
            ("torus", "--rows 5 --cols 5"),
            ("road", "--rows 8"),
            ("social", "--nodes 200 --attach 3"),
            ("ba", "--nodes 100"),
            ("gnm", "--nodes 50 --edges 100"),
            ("lollipop", "--nodes 100 --rows 20"),
        ] {
            let path = tmp(&format!("{family}.txt"));
            dispatch(&args(&format!(
                "generate --family {family} {extra} --out {path}"
            )))
            .unwrap_or_else(|e| panic!("{family}: {e}"));
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn cluster_algorithms() {
        let path = tmp("algos.txt");
        dispatch(&args(&format!(
            "generate --family road --rows 12 --out {path}"
        )))
        .unwrap();
        for algo in ["cluster", "cluster2", "mpx"] {
            for strategy in ["topdown", "bottomup", "hybrid"] {
                // New tree spelling and deprecated flat alias both dispatch.
                dispatch(&args(&format!(
                    "clust {algo} --graph {path} --tau 1 --frontier {strategy}"
                )))
                .unwrap_or_else(|e| panic!("{algo}/{strategy}: {e}"));
                dispatch(&args(&format!(
                    "cluster --graph {path} --algorithm {algo} --tau 1 --frontier {strategy}"
                )))
                .unwrap_or_else(|e| panic!("alias {algo}/{strategy}: {e}"));
            }
        }
        dispatch(&args(&format!(
            "dist approx --graph {path} --frontier hybrid"
        )))
        .unwrap();
        dispatch(&args(&format!("dist exact --graph {path}"))).unwrap();
        dispatch(&args(&format!("diameter --graph {path} --frontier hybrid"))).unwrap();
        assert!(dispatch(&args(&format!("clust nosuch --graph {path}"))).is_err());
        assert!(dispatch(&args(&format!("dist nosuch --graph {path}"))).is_err());
        assert!(dispatch(&args(&format!("cluster --graph {path} --frontier nosuch"))).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn snapshot_save_info_round_trip() {
        let graph_path = tmp("snap-src.txt");
        let snap_path = tmp("snap.pdec");
        dispatch(&args(&format!(
            "generate --family mesh --rows 8 --cols 8 --out {graph_path}"
        )))
        .unwrap();
        dispatch(&args(&format!(
            "snapshot save --graph {graph_path} --tau 2 --out {snap_path}"
        )))
        .unwrap();
        dispatch(&args(&format!("snapshot info --snapshot {snap_path}"))).unwrap();
        // The written file loads as a full session with an oracle.
        let bytes = std::fs::read(&snap_path).unwrap();
        let s = Session::load(&bytes, FrontierStrategy::TopDown).unwrap();
        assert_eq!(s.graph().num_nodes(), 64);
        assert!(s.oracle().is_some());
        // --no-oracle drops the ORCL section.
        dispatch(&args(&format!(
            "snapshot save --graph {graph_path} --tau 2 --out {snap_path} --no-oracle"
        )))
        .unwrap();
        let bytes = std::fs::read(&snap_path).unwrap();
        let s = Session::load(&bytes, FrontierStrategy::TopDown).unwrap();
        assert!(s.oracle().is_none());
        // Unknown subs error.
        assert!(dispatch(&args(&format!(
            "snapshot frobnicate --snapshot {snap_path}"
        )))
        .is_err());
        assert!(dispatch(&args("snapshot info --snapshot /nonexistent")).is_err());
        let _ = std::fs::remove_file(graph_path);
        let _ = std::fs::remove_file(snap_path);
    }

    #[test]
    fn compressed_backend_round_trips_through_cli() {
        let graph_path = tmp("snap-comp-src.txt");
        let snap_path = tmp("snap-comp.pdec");
        let snap_plain = tmp("snap-plain.pdec");
        dispatch(&args(&format!(
            "generate --family ba --nodes 500 --attach 4 --out {graph_path}"
        )))
        .unwrap();
        dispatch(&args(&format!(
            "clust cluster --graph {graph_path} --tau 2 --backend compressed"
        )))
        .unwrap();
        dispatch(&args(&format!(
            "snapshot save --graph {graph_path} --tau 2 --out {snap_path} --backend compressed"
        )))
        .unwrap();
        dispatch(&args(&format!(
            "snapshot save --graph {graph_path} --tau 2 --out {snap_plain} --backend plain"
        )))
        .unwrap();
        // info handles the compressed graph section (and its ratio line).
        dispatch(&args(&format!("snapshot info --snapshot {snap_path}"))).unwrap();
        let bytes = std::fs::read(&snap_path).unwrap();
        let plain_bytes = std::fs::read(&snap_plain).unwrap();
        assert!(bytes.len() < plain_bytes.len());
        let c = Session::load(&bytes, FrontierStrategy::TopDown).unwrap();
        let p = Session::load(&plain_bytes, FrontierStrategy::TopDown).unwrap();
        assert_eq!(c.backend(), pardec_graph::Backend::Compressed);
        assert_eq!(p.backend(), pardec_graph::Backend::Plain);
        // Identical decomposition regardless of the stored backend.
        assert_eq!(c.clustering(), p.clustering());
        assert_eq!(c.oracle(), p.oracle());
        assert!(dispatch(&args(&format!(
            "clust cluster --graph {graph_path} --backend nosuch"
        )))
        .is_err());
        let _ = std::fs::remove_file(graph_path);
        let _ = std::fs::remove_file(snap_path);
        let _ = std::fs::remove_file(snap_plain);
    }

    #[test]
    fn mr_tree_spellings_dispatch() {
        let path = tmp("mr-tree.txt");
        dispatch(&args(&format!(
            "generate --family mesh --rows 6 --cols 6 --out {path}"
        )))
        .unwrap();
        dispatch(&args(&format!("mr cluster --graph {path} --tau 2"))).unwrap();
        dispatch(&args(&format!("mr bfs --graph {path}"))).unwrap();
        dispatch(&args(&format!("mr hadi --graph {path} --trials 4"))).unwrap();
        assert!(dispatch(&args(&format!("mr nosuch --graph {path}"))).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn mr_subcommands_print_the_ledger() {
        let path = tmp("mr.txt");
        dispatch(&args(&format!(
            "generate --family mesh --rows 10 --cols 10 --out {path}"
        )))
        .unwrap();
        for partitions in ["", "--partitions 1", "--partitions 3"] {
            dispatch(&args(&format!(
                "mr-cluster --graph {path} --tau 2 {partitions}"
            )))
            .unwrap_or_else(|e| panic!("mr-cluster {partitions}: {e}"));
            dispatch(&args(&format!("mr-bfs --graph {path} {partitions}")))
                .unwrap_or_else(|e| panic!("mr-bfs {partitions}: {e}"));
            dispatch(&args(&format!(
                "mr-hadi --graph {path} --trials 8 {partitions}"
            )))
            .unwrap_or_else(|e| panic!("mr-hadi {partitions}: {e}"));
        }
        dispatch(&args(&format!("mr-bfs --graph {path} --source 99"))).unwrap();
        assert!(dispatch(&args(&format!("mr-bfs --graph {path} --source 100"))).is_err());
        assert!(dispatch(&args(&format!("mr-cluster --graph {path} --partitions 0"))).is_err());
        assert!(dispatch(&args(&format!("mr-hadi --graph {path} --trials 0"))).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn error_paths() {
        assert!(dispatch(&args("frobnicate")).is_err());
        assert!(dispatch(&args("stats --graph /nonexistent/file")).is_err());
        assert!(dispatch(&args("generate --family nosuch --out /tmp/x")).is_err());
        let path = tmp("err.txt");
        dispatch(&args(&format!(
            "generate --family mesh --rows 3 --cols 3 --out {path}"
        )))
        .unwrap();
        assert!(dispatch(&args(&format!("cluster --graph {path} --algorithm nosuch"))).is_err());
        assert!(dispatch(&args(&format!("oracle --graph {path} --queries 0-1"))).is_err());
        assert!(dispatch(&args(&format!("oracle --graph {path} --queries 0:999"))).is_err());
        // Disconnected k-center infeasibility surfaces as an error.
        assert!(dispatch(&args(&format!("kcenter --graph {path} --k 0"))).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn help_prints() {
        dispatch(&args("help")).unwrap();
        assert!(USAGE.contains("--threads"));
        assert!(USAGE.contains("--frontier"));
        assert!(USAGE.contains("--trace"));
    }

    #[test]
    fn init_thread_pool_sizes_the_global_pool() {
        // Without --threads: a no-op, always fine.
        init_thread_pool(&args("help")).unwrap();
        // With --threads: either this is the first pool use in the test
        // process (pool adopts the size), or the pool already exists and the
        // error explains why the size cannot change.
        match init_thread_pool(&args("help --threads 2")) {
            Ok(()) => assert_eq!(rayon::current_num_threads(), 2),
            Err(e) => assert!(e.to_string().contains("already"), "{e}"),
        }
        // Invalid counts are rejected up front.
        assert!(init_thread_pool(&args("help --threads 0")).is_err());
    }
}
