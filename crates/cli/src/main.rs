//! `pardec` — command-line front end to the decomposition / clustering /
//! diameter toolkit.
//!
//! ```text
//! pardec generate --family mesh --rows 100 --cols 100 --out mesh.txt
//! pardec stats    --graph mesh.txt
//! pardec clust cluster2 --graph mesh.txt --tau 8 --labels out.tsv
//! pardec dist approx    --graph mesh.txt --tau 8 [--exact]
//! pardec kcenter  --graph mesh.txt --k 20 [--gonzalez]
//! pardec oracle   --graph mesh.txt --tau 2 --queries 0:57,3:99
//! pardec mr cluster --graph mesh.txt --tau 8 --partitions 16
//! pardec mr bfs     --graph mesh.txt --source 0
//! pardec mr hadi    --graph mesh.txt --trials 32
//! pardec snapshot save --graph mesh.txt --tau 8 --out mesh.pdec
//! pardec snapshot info --snapshot mesh.pdec
//! pardec serve    --snapshot mesh.pdec --addr 127.0.0.1:7411
//! pardec help
//! ```
//!
//! The old flat spellings (`cluster`, `diameter`, `mr-cluster`, `mr-bfs`,
//! `mr-hadi`) still work as deprecated aliases that point at the tree form.
//!
//! The `mr` subcommands run on the MR(M_G, M_L) emulation and print its
//! communication ledger (pre-/post-combine pairs and bytes, peak `M_L`);
//! `--partitions` (or `PARDEC_PARTITIONS`) sets the shuffle grid without
//! affecting any result.
//!
//! Graphs are SNAP-style text edge lists (`pardec_graph::io`); `snapshot
//! save` converts one (plus its decomposition and oracle) into the binary
//! `PDEC2` form `serve` loads. All commands are seeded (`--seed`, default
//! 42) and reproducible: results are byte-identical regardless of
//! `--threads` / `RAYON_NUM_THREADS`.
//!
//! `--trace FILE` (or `PARDEC_TRACE=FILE`) writes a JSONL span/metric trace
//! at exit; the trace is a side channel and never perturbs results.

mod args;
mod commands;
mod serve;

use args::Args;
use std::process::ExitCode;

fn main() -> ExitCode {
    let parsed = Args::parse(std::env::args().skip(1));
    let args = match parsed {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    // The pool must be sized before the first parallel call of any command.
    if let Err(e) = commands::init_thread_pool(&args) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    // Tracing is a pure side channel: stdout and all results stay
    // byte-identical whether it is on, off, or absent.
    let trace_path = args
        .trace()
        .map(str::to_string)
        .or_else(pardec_obs::trace_path_from_env);
    if trace_path.is_some() {
        pardec_obs::enable();
    }
    let outcome = commands::dispatch(&args);
    if let Some(path) = &trace_path {
        match pardec_obs::flush_to_path(path) {
            Ok(n) => eprintln!("trace: wrote {n} events to {path}"),
            Err(e) => eprintln!("trace: failed to write {path}: {e}"),
        }
    }
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
