//! Tiny dependency-free argument parser: a positional command, an optional
//! positional subcommand, then `--key value` / `--flag` pairs.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Args {
    /// The positional command (first non-flag token).
    pub command: String,
    /// The positional subcommand (second non-flag token; empty when absent).
    /// The command tree reads this: `clust cluster2`, `dist approx`,
    /// `mr bfs`, `snapshot save`, …
    pub sub: String,
    /// `--key value` options, in declaration order-independent form.
    options: BTreeMap<String, String>,
    /// Bare `--flag` switches.
    flags: Vec<String>,
}

/// Argument parsing / validation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgError {
    MissingCommand,
    MissingValue(String),
    MissingOption(String),
    BadValue {
        key: String,
        value: String,
        expected: &'static str,
    },
    UnknownOptions(Vec<String>),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no subcommand given (try `pardec help`)"),
            ArgError::MissingValue(k) => write!(f, "option --{k} expects a value"),
            ArgError::MissingOption(k) => write!(f, "required option --{k} missing"),
            ArgError::BadValue {
                key,
                value,
                expected,
            } => {
                write!(f, "--{key} {value:?}: expected {expected}")
            }
            ArgError::UnknownOptions(ks) => {
                write!(f, "unknown options: {}", ks.join(", "))
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// Keys that take a value (everything else given as `--x` is a bare flag).
const VALUED_KEYS: &[&str] = &[
    "family",
    "rows",
    "cols",
    "nodes",
    "attach",
    "window",
    "extra-prob",
    "degree",
    "seed",
    "out",
    "graph",
    "tau",
    "algorithm",
    "beta",
    "k",
    "labels",
    "scale",
    "queries",
    "trials",
    "edges",
    "threads",
    "frontier",
    "partitions",
    "source",
    "snapshot",
    "addr",
    "accept-threads",
    "trace",
    "delta",
    "backend",
    "reload-signal",
    "deadline-ms",
    "idle-timeout-ms",
    "read-timeout-ms",
    "max-batch",
    "max-concurrent",
    "max-inflight-mb",
];

impl Args {
    /// Parses raw tokens (without the binary name).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let mut it = tokens.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if VALUED_KEYS.contains(&key) {
                    match it.next() {
                        Some(v) => {
                            out.options.insert(key.to_string(), v);
                        }
                        None => return Err(ArgError::MissingValue(key.to_string())),
                    }
                } else {
                    out.flags.push(key.to_string());
                }
            } else if out.command.is_empty() {
                out.command = tok;
            } else if out.sub.is_empty() {
                out.sub = tok;
            } else {
                return Err(ArgError::UnknownOptions(vec![tok]));
            }
        }
        if out.command.is_empty() {
            return Err(ArgError::MissingCommand);
        }
        Ok(out)
    }

    /// String option (required).
    pub fn req(&self, key: &str) -> Result<&str, ArgError> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ArgError::MissingOption(key.to_string()))
    }

    /// String option with default.
    pub fn opt<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(String::as_str).unwrap_or(default)
    }

    /// Parsed numeric option (required).
    pub fn req_parse<T: std::str::FromStr>(
        &self,
        key: &str,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        let raw = self.req(key)?;
        raw.parse().map_err(|_| ArgError::BadValue {
            key: key.to_string(),
            value: raw.to_string(),
            expected,
        })
    }

    /// Parsed numeric option with default.
    pub fn opt_parse<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: raw.to_string(),
                expected,
            }),
        }
    }

    /// Whether a bare flag was given.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// The `--frontier` option: frontier expansion strategy for the growth
    /// engine, `None` when unspecified (the strategy then follows
    /// `PARDEC_FRONTIER`, falling back to top-down).
    pub fn frontier(&self) -> Result<Option<pardec_graph::FrontierStrategy>, ArgError> {
        match self.options.get("frontier") {
            None => Ok(None),
            Some(raw) => raw.parse().map(Some).map_err(|_| ArgError::BadValue {
                key: "frontier".to_string(),
                value: raw.to_string(),
                expected: "topdown, bottomup, or hybrid",
            }),
        }
    }

    /// The `--partitions` option: shuffle/superstep partition count for the
    /// MR emulation, `None` when unspecified (the count then follows
    /// `PARDEC_PARTITIONS`, falling back to `4 × pool threads`). Partitions
    /// shape scheduling and the communication ledger, never results.
    pub fn partitions(&self) -> Result<Option<usize>, ArgError> {
        match self.options.get("partitions") {
            None => Ok(None),
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) if n > 0 => Ok(Some(n)),
                _ => Err(ArgError::BadValue {
                    key: "partitions".to_string(),
                    value: raw.to_string(),
                    expected: "a positive integer",
                }),
            },
        }
    }

    /// The `--delta` option: bucket width of the weighted frontier engine,
    /// `None` when unspecified (the width then follows `PARDEC_DELTA`,
    /// falling back to the mean-edge-weight heuristic). Delta shapes
    /// wall-clock only — weighted outputs are byte-identical at any width.
    pub fn delta(&self) -> Result<Option<u64>, ArgError> {
        match self.options.get("delta") {
            None => Ok(None),
            Some(raw) => match raw.parse::<u64>() {
                Ok(n) if n > 0 => Ok(Some(n)),
                _ => Err(ArgError::BadValue {
                    key: "delta".to_string(),
                    value: raw.to_string(),
                    expected: "a positive integer",
                }),
            },
        }
    }

    /// The `--backend` option: adjacency storage backend, `None` when
    /// unspecified (the backend then follows `PARDEC_BACKEND`, falling back
    /// to plain CSR). A memory/wall-clock knob only — outputs are
    /// byte-identical under either backend.
    pub fn backend(&self) -> Result<Option<pardec_graph::Backend>, ArgError> {
        match self.options.get("backend") {
            None => Ok(None),
            Some(raw) => raw.parse().map(Some).map_err(|_| ArgError::BadValue {
                key: "backend".to_string(),
                value: raw.to_string(),
                expected: "plain or compressed",
            }),
        }
    }

    /// The `--trace` option: JSONL trace output path, `None` when
    /// unspecified (tracing then follows `PARDEC_TRACE`, falling back to
    /// off). The trace is a side channel — results are byte-identical with
    /// tracing on, off, or absent.
    pub fn trace(&self) -> Option<&str> {
        self.options.get("trace").map(String::as_str)
    }

    /// The `--threads` option: requested worker count for the global pool,
    /// `None` when unspecified (pool size then follows `RAYON_NUM_THREADS`,
    /// falling back to the available parallelism).
    pub fn threads(&self) -> Result<Option<usize>, ArgError> {
        match self.options.get("threads") {
            None => Ok(None),
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) if n > 0 => Ok(Some(n)),
                _ => Err(ArgError::BadValue {
                    key: "threads".to_string(),
                    value: raw.to_string(),
                    expected: "a positive integer",
                }),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn basic_command() {
        let a = parse("stats --graph g.txt").unwrap();
        assert_eq!(a.command, "stats");
        assert_eq!(a.req("graph").unwrap(), "g.txt");
    }

    #[test]
    fn options_and_flags() {
        let a = parse("diameter --graph g --tau 8 --exact").unwrap();
        assert_eq!(a.req_parse::<usize>("tau", "int").unwrap(), 8);
        assert!(a.has_flag("exact"));
        assert!(!a.has_flag("weighted-off"));
    }

    #[test]
    fn defaults() {
        let a = parse("cluster --graph g").unwrap();
        assert_eq!(a.opt("algorithm", "cluster"), "cluster");
        assert_eq!(a.opt_parse::<u64>("seed", 42, "int").unwrap(), 42);
    }

    #[test]
    fn errors() {
        assert_eq!(parse("").unwrap_err(), ArgError::MissingCommand);
        assert_eq!(
            parse("generate --family").unwrap_err(),
            ArgError::MissingValue("family".into())
        );
        let a = parse("cluster --tau x").unwrap();
        assert!(matches!(
            a.req_parse::<usize>("tau", "a positive integer"),
            Err(ArgError::BadValue { .. })
        ));
        assert!(matches!(a.req("graph"), Err(ArgError::MissingOption(_))));
        assert!(matches!(
            parse("stats one-extra two-extra"),
            Err(ArgError::UnknownOptions(_))
        ));
    }

    #[test]
    fn subcommand_positional() {
        let a = parse("clust cluster2 --graph g --tau 4").unwrap();
        assert_eq!(a.command, "clust");
        assert_eq!(a.sub, "cluster2");
        assert_eq!(a.req("graph").unwrap(), "g");
        let a = parse("stats --graph g").unwrap();
        assert_eq!(a.sub, "");
        // Options may interleave with the positionals.
        let a = parse("snapshot --graph g save --out s.pdec").unwrap();
        assert_eq!((a.command.as_str(), a.sub.as_str()), ("snapshot", "save"));
    }

    #[test]
    fn threads_option() {
        assert_eq!(parse("stats --graph g").unwrap().threads().unwrap(), None);
        assert_eq!(
            parse("stats --graph g --threads 4").unwrap().threads(),
            Ok(Some(4))
        );
        for bad in ["0", "-2", "many"] {
            let a = parse(&format!("stats --graph g --threads {bad}")).unwrap();
            assert!(
                matches!(a.threads(), Err(ArgError::BadValue { .. })),
                "--threads {bad} should be rejected"
            );
        }
        assert_eq!(
            parse("stats --threads").unwrap_err(),
            ArgError::MissingValue("threads".into())
        );
    }

    #[test]
    fn partitions_option() {
        assert_eq!(
            parse("stats --graph g").unwrap().partitions().unwrap(),
            None
        );
        assert_eq!(
            parse("mr-cluster --graph g --partitions 3")
                .unwrap()
                .partitions(),
            Ok(Some(3))
        );
        for bad in ["0", "-1", "lots"] {
            let a = parse(&format!("mr-cluster --graph g --partitions {bad}")).unwrap();
            assert!(
                matches!(a.partitions(), Err(ArgError::BadValue { .. })),
                "--partitions {bad} should be rejected"
            );
        }
        assert_eq!(
            parse("mr-cluster --partitions").unwrap_err(),
            ArgError::MissingValue("partitions".into())
        );
    }

    #[test]
    fn delta_option() {
        assert_eq!(parse("stats --graph g").unwrap().delta().unwrap(), None);
        assert_eq!(
            parse("clust weighted --graph g --delta 16")
                .unwrap()
                .delta(),
            Ok(Some(16))
        );
        for bad in ["0", "-3", "wide"] {
            let a = parse(&format!("clust weighted --graph g --delta {bad}")).unwrap();
            assert!(
                matches!(a.delta(), Err(ArgError::BadValue { .. })),
                "--delta {bad} should be rejected"
            );
        }
        assert_eq!(
            parse("clust weighted --delta").unwrap_err(),
            ArgError::MissingValue("delta".into())
        );
    }

    #[test]
    fn backend_option() {
        use pardec_graph::Backend;
        assert_eq!(parse("stats --graph g").unwrap().backend().unwrap(), None);
        assert_eq!(
            parse("clust cluster --graph g --backend compressed")
                .unwrap()
                .backend(),
            Ok(Some(Backend::Compressed))
        );
        assert_eq!(
            parse("clust cluster --graph g --backend plain")
                .unwrap()
                .backend(),
            Ok(Some(Backend::Plain))
        );
        let a = parse("clust cluster --graph g --backend zstd").unwrap();
        assert!(matches!(a.backend(), Err(ArgError::BadValue { .. })));
        assert_eq!(
            parse("clust cluster --backend").unwrap_err(),
            ArgError::MissingValue("backend".into())
        );
    }

    #[test]
    fn trace_option() {
        assert_eq!(parse("stats --graph g").unwrap().trace(), None);
        assert_eq!(
            parse("stats --graph g --trace t.jsonl").unwrap().trace(),
            Some("t.jsonl")
        );
        assert_eq!(
            parse("stats --trace").unwrap_err(),
            ArgError::MissingValue("trace".into())
        );
    }

    #[test]
    fn frontier_option() {
        use pardec_graph::FrontierStrategy;
        assert_eq!(parse("stats --graph g").unwrap().frontier().unwrap(), None);
        for (raw, want) in [
            ("topdown", FrontierStrategy::TopDown),
            ("bottomup", FrontierStrategy::BottomUp),
            ("hybrid", FrontierStrategy::Hybrid),
        ] {
            assert_eq!(
                parse(&format!("cluster --graph g --frontier {raw}"))
                    .unwrap()
                    .frontier(),
                Ok(Some(want)),
                "--frontier {raw}"
            );
        }
        let a = parse("cluster --graph g --frontier beamer").unwrap();
        assert!(matches!(a.frontier(), Err(ArgError::BadValue { .. })));
        assert_eq!(
            parse("cluster --frontier").unwrap_err(),
            ArgError::MissingValue("frontier".into())
        );
    }

    #[test]
    fn display_messages() {
        assert!(ArgError::MissingOption("graph".into())
            .to_string()
            .contains("--graph"));
        assert!(ArgError::BadValue {
            key: "k".into(),
            value: "zz".into(),
            expected: "int"
        }
        .to_string()
        .contains("expected int"));
    }
}
