//! End-to-end daemon test: runs the real `pardec` binary — `generate`,
//! `snapshot save`, then `serve` on an ephemeral port — and drives the live
//! TCP socket with the `pardec_core::wire` client, finishing with a clean
//! `OP_SHUTDOWN`.

use pardec_core::wire::{self, Request};
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::process::{Command, Stdio};

fn pardec() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pardec"))
}

fn tmp(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("pardec-serve-e2e-{}-{name}", std::process::id()));
    p.to_string_lossy().into_owned()
}

#[test]
fn serve_answers_over_tcp_and_shuts_down() {
    let graph_path = tmp("mesh.txt");
    let snap_path = tmp("mesh.pdec");

    let status = pardec()
        .args([
            "generate",
            "--family",
            "mesh",
            "--rows",
            "16",
            "--cols",
            "16",
            "--out",
            &graph_path,
        ])
        .status()
        .expect("spawn generate");
    assert!(status.success(), "generate failed");

    let status = pardec()
        .args([
            "snapshot",
            "save",
            "--graph",
            &graph_path,
            "--tau",
            "3",
            "--out",
            &snap_path,
        ])
        .status()
        .expect("spawn snapshot save");
    assert!(status.success(), "snapshot save failed");

    let mut child = pardec()
        .args([
            "serve",
            "--snapshot",
            &snap_path,
            "--addr",
            "127.0.0.1:0",
            "--accept-threads",
            "2",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn serve");

    // The daemon prints `pardec serve: listening on HOST:PORT` once bound.
    let mut lines = BufReader::new(child.stdout.take().expect("stdout piped")).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exited before announcing its address")
            .expect("read serve stdout");
        if let Some(rest) = line.strip_prefix("pardec serve: listening on ") {
            break rest.trim().to_string();
        }
    };

    let mut stream = TcpStream::connect(&addr).expect("connect to daemon");

    let info = wire::roundtrip(&mut stream, &Request::Info).expect("INFO");
    assert_eq!(info.status, 0);
    let nodes = u64::from_le_bytes(info.body[..8].try_into().unwrap());
    assert_eq!(nodes, 256, "mesh 16x16");

    // Adjacent mesh nodes: the §4 upper bound is exact-or-over, never under.
    let resp =
        wire::roundtrip(&mut stream, &Request::Distance(vec![(0, 1), (0, 0)])).expect("DIST");
    assert_eq!(resp.status, 0);
    assert_eq!(resp.batch, 2);
    assert_eq!(resp.waves, 0, "oracle lookups launch no waves");
    let d01 = u64::from_le_bytes(resp.body[..8].try_into().unwrap());
    let d00 = u64::from_le_bytes(resp.body[8..16].try_into().unwrap());
    assert!(d01 >= 1, "adjacent distance bound below truth");
    assert_eq!(d00, 0, "self distance must be 0");

    // A whole probe batch through one multi-source wave.
    let probes: Vec<u32> = (0..256).collect();
    let resp = wire::roundtrip(
        &mut stream,
        &Request::Nearest {
            sources: vec![0, 255],
            probes,
        },
    )
    .expect("NEAREST");
    assert_eq!(resp.status, 0);
    assert_eq!(resp.waves, 1, "one wave per batch");
    assert_eq!(resp.body.len(), 256 * 8);
    // Probe 0 is claimed by source 0 at distance 0.
    assert_eq!(u32::from_le_bytes(resp.body[..4].try_into().unwrap()), 0);
    assert_eq!(u32::from_le_bytes(resp.body[4..8].try_into().unwrap()), 0);

    // Out-of-range nodes are a protocol error, not a crash.
    let resp = wire::roundtrip(&mut stream, &Request::ClusterOf(vec![9999])).expect("CLUSTER_OF");
    assert_eq!(resp.status, wire::ERR_OUT_OF_RANGE);

    let resp = wire::roundtrip(&mut stream, &Request::Shutdown).expect("SHUTDOWN");
    assert_eq!(resp.status, 0);

    let status = child.wait().expect("wait for serve");
    assert!(status.success(), "serve exited with failure after shutdown");

    let _ = std::fs::remove_file(graph_path);
    let _ = std::fs::remove_file(snap_path);
}

/// The hardening surface end to end: a daemon started with reload enabled
/// (wire + signal file) and tightened fault knobs answers `OP_RELOAD`,
/// hot-reloads when the signal file appears, reports its epoch and fault
/// ledger over `OP_STATS`, and still shuts down cleanly.
#[test]
fn serve_reloads_via_wire_and_signal_file() {
    let graph_path = tmp("reload-mesh.txt");
    let snap_path = tmp("reload-mesh.pdec");
    let signal_path = tmp("reload.signal");

    let status = pardec()
        .args([
            "generate",
            "--family",
            "mesh",
            "--rows",
            "12",
            "--cols",
            "12",
            "--out",
            &graph_path,
        ])
        .status()
        .expect("spawn generate");
    assert!(status.success(), "generate failed");
    let status = pardec()
        .args([
            "snapshot",
            "save",
            "--graph",
            &graph_path,
            "--tau",
            "3",
            "--out",
            &snap_path,
        ])
        .status()
        .expect("spawn snapshot save");
    assert!(status.success(), "snapshot save failed");

    let mut child = pardec()
        .args([
            "serve",
            "--snapshot",
            &snap_path,
            "--addr",
            "127.0.0.1:0",
            "--accept-threads",
            "2",
            "--allow-reload",
            "--reload-signal",
            &signal_path,
            "--read-timeout-ms",
            "5000",
            "--deadline-ms",
            "10000",
            "--max-batch",
            "4096",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn serve");

    let mut lines = BufReader::new(child.stdout.take().expect("stdout piped")).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exited before announcing its address")
            .expect("read serve stdout");
        if let Some(rest) = line.strip_prefix("pardec serve: listening on ") {
            break rest.trim().to_string();
        }
    };
    let mut stream = TcpStream::connect(&addr).expect("connect to daemon");

    // Wire reload, empty path → the serving snapshot's own file: epoch 2.
    let resp = wire::roundtrip(
        &mut stream,
        &Request::Reload {
            path: String::new(),
        },
    )
    .expect("RELOAD");
    assert_eq!(resp.status, 0, "wire reload refused");
    assert_eq!(&resp.body[..], &2u64.to_le_bytes());

    // A garbage replacement rolls back and the old epoch keeps serving.
    std::fs::write(&graph_path, b"not a snapshot").unwrap();
    let resp = wire::roundtrip(
        &mut stream,
        &Request::Reload {
            path: graph_path.clone(),
        },
    )
    .expect("RELOAD corrupt");
    assert_eq!(resp.status, wire::ERR_RELOAD_FAILED);

    // Signal-file reload: drop the file, poll STATS until the watcher
    // (250ms cadence) picks it up and bumps the epoch.
    std::fs::write(&signal_path, b"").unwrap();
    let mut epoch = 0;
    for _ in 0..40 {
        let resp = wire::roundtrip(&mut stream, &Request::Stats).expect("STATS");
        let snap = wire::decode_stats_body(&resp.body).expect("stats body");
        epoch = snap.epoch;
        if epoch >= 3 {
            assert_eq!(snap.reloads_ok, 2);
            assert_eq!(snap.reloads_rolled_back, 1);
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(250));
    }
    assert_eq!(epoch, 3, "signal-file reload never landed");
    assert!(
        !std::path::Path::new(&signal_path).exists(),
        "watcher must consume the signal file"
    );

    // The reloaded session still answers queries.
    let resp = wire::roundtrip(&mut stream, &Request::ClusterOf(vec![0, 143])).expect("CLUSTER_OF");
    assert_eq!(resp.status, 0);

    let resp = wire::roundtrip(&mut stream, &Request::Shutdown).expect("SHUTDOWN");
    assert_eq!(resp.status, 0);
    let status = child.wait().expect("wait for serve");
    assert!(status.success(), "serve exited with failure after shutdown");

    let _ = std::fs::remove_file(graph_path);
    let _ = std::fs::remove_file(snap_path);
    let _ = std::fs::remove_file(signal_path);
}
