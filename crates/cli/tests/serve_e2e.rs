//! End-to-end daemon test: runs the real `pardec` binary — `generate`,
//! `snapshot save`, then `serve` on an ephemeral port — and drives the live
//! TCP socket with the `pardec_core::wire` client, finishing with a clean
//! `OP_SHUTDOWN`.

use pardec_core::wire::{self, Request};
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::process::{Command, Stdio};

fn pardec() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pardec"))
}

fn tmp(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("pardec-serve-e2e-{}-{name}", std::process::id()));
    p.to_string_lossy().into_owned()
}

#[test]
fn serve_answers_over_tcp_and_shuts_down() {
    let graph_path = tmp("mesh.txt");
    let snap_path = tmp("mesh.pdec");

    let status = pardec()
        .args([
            "generate",
            "--family",
            "mesh",
            "--rows",
            "16",
            "--cols",
            "16",
            "--out",
            &graph_path,
        ])
        .status()
        .expect("spawn generate");
    assert!(status.success(), "generate failed");

    let status = pardec()
        .args([
            "snapshot",
            "save",
            "--graph",
            &graph_path,
            "--tau",
            "3",
            "--out",
            &snap_path,
        ])
        .status()
        .expect("spawn snapshot save");
    assert!(status.success(), "snapshot save failed");

    let mut child = pardec()
        .args([
            "serve",
            "--snapshot",
            &snap_path,
            "--addr",
            "127.0.0.1:0",
            "--accept-threads",
            "2",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn serve");

    // The daemon prints `pardec serve: listening on HOST:PORT` once bound.
    let mut lines = BufReader::new(child.stdout.take().expect("stdout piped")).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exited before announcing its address")
            .expect("read serve stdout");
        if let Some(rest) = line.strip_prefix("pardec serve: listening on ") {
            break rest.trim().to_string();
        }
    };

    let mut stream = TcpStream::connect(&addr).expect("connect to daemon");

    let info = wire::roundtrip(&mut stream, &Request::Info).expect("INFO");
    assert_eq!(info.status, 0);
    let nodes = u64::from_le_bytes(info.body[..8].try_into().unwrap());
    assert_eq!(nodes, 256, "mesh 16x16");

    // Adjacent mesh nodes: the §4 upper bound is exact-or-over, never under.
    let resp =
        wire::roundtrip(&mut stream, &Request::Distance(vec![(0, 1), (0, 0)])).expect("DIST");
    assert_eq!(resp.status, 0);
    assert_eq!(resp.batch, 2);
    assert_eq!(resp.waves, 0, "oracle lookups launch no waves");
    let d01 = u64::from_le_bytes(resp.body[..8].try_into().unwrap());
    let d00 = u64::from_le_bytes(resp.body[8..16].try_into().unwrap());
    assert!(d01 >= 1, "adjacent distance bound below truth");
    assert_eq!(d00, 0, "self distance must be 0");

    // A whole probe batch through one multi-source wave.
    let probes: Vec<u32> = (0..256).collect();
    let resp = wire::roundtrip(
        &mut stream,
        &Request::Nearest {
            sources: vec![0, 255],
            probes,
        },
    )
    .expect("NEAREST");
    assert_eq!(resp.status, 0);
    assert_eq!(resp.waves, 1, "one wave per batch");
    assert_eq!(resp.body.len(), 256 * 8);
    // Probe 0 is claimed by source 0 at distance 0.
    assert_eq!(u32::from_le_bytes(resp.body[..4].try_into().unwrap()), 0);
    assert_eq!(u32::from_le_bytes(resp.body[4..8].try_into().unwrap()), 0);

    // Out-of-range nodes are a protocol error, not a crash.
    let resp = wire::roundtrip(&mut stream, &Request::ClusterOf(vec![9999])).expect("CLUSTER_OF");
    assert_eq!(resp.status, wire::ERR_OUT_OF_RANGE);

    let resp = wire::roundtrip(&mut stream, &Request::Shutdown).expect("SHUTDOWN");
    assert_eq!(resp.status, 0);

    let status = child.wait().expect("wait for serve");
    assert!(status.success(), "serve exited with failure after shutdown");

    let _ = std::fs::remove_file(graph_path);
    let _ = std::fs::remove_file(snap_path);
}
