//! `pardec-obs` — the workspace's unified tracing + metrics layer.
//!
//! Sits at the very bottom of the crate DAG (even below `pardec-graph`) so
//! every layer — frontier waves, combine kernel phases, MR shuffle rounds,
//! cluster loops, snapshot load, the serve request path — can emit into one
//! ordered trace without dependency cycles.
//!
//! Three primitives:
//!
//! - **Spans** ([`span!`]): scoped phase timers. A guard records name,
//!   thread, start offset, duration, and arbitrary fields when dropped.
//! - **Counters / gauges / metrics** ([`counter`], [`gauge`], [`record`]):
//!   point samples. The [`Observe`] trait adapts the workspace's existing
//!   ledgers (`CombineStats`, `RoundStats`, `QueryLedger`, …) into one
//!   schema — each observation becomes a single `metric` event.
//! - **Histograms** ([`hist::Log2Histogram`]): fixed-bucket log2 latency
//!   distributions with integer-only p50/p90/p99, used by the serve daemon
//!   and exportable as `hist` events.
//!
//! # Zero cost when disabled
//!
//! A single global [`AtomicBool`] gates everything. Every entry point checks
//! it with one relaxed load and returns immediately when tracing is off —
//! the [`span!`] macro does not even evaluate its field expressions. No
//! timers run, no allocations happen, and computational results are never
//! derived from anything recorded here, so outputs are byte-identical with
//! tracing on, off, or absent.
//!
//! # Recording model
//!
//! Events land in per-thread buffers (a `thread_local` `Vec` behind an
//! uncontended `Mutex`, registered once per thread in a global registry).
//! [`drain`] collects every buffer and sorts by `(at_us, seq)` into one
//! ordered trace; [`flush_to_path`] writes it as JSONL, one object per line
//! (see [`Event::to_json`] for the schema).

pub mod hist;
pub mod json;

pub use hist::{AtomicLog2Histogram, Log2Histogram, BUCKETS};
pub use json::validate_object;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Environment variable naming a trace output path (same meaning as the CLI
/// `--trace` flag; the flag wins when both are set).
pub const TRACE_ENV: &str = "PARDEC_TRACE";

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);
static THREAD_IDS: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Is tracing currently enabled? One relaxed load — this is the fast path
/// every instrumentation site hits, traced or not.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on (and pins the trace epoch, so `at_us` offsets are
/// relative to the first enable).
pub fn enable() {
    epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns tracing off. Already-recorded events stay buffered until
/// [`drain`]/[`flush_to_path`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Reads [`TRACE_ENV`] (`PARDEC_TRACE`); a non-empty value is a trace path.
pub fn trace_path_from_env() -> Option<String> {
    std::env::var(TRACE_ENV).ok().filter(|p| !p.is_empty())
}

// ---------------------------------------------------------------------
// Event model
// ---------------------------------------------------------------------

/// A field value. Everything the workspace's ledgers carry fits here.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Bool(bool),
}

impl Value {
    fn push_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => json::push_f64(out, *v),
            Value::Str(s) => json::push_escaped(out, s),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u8> for Value {
    fn from(v: u8) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// One named field attached to an event.
#[derive(Clone, Debug, PartialEq)]
pub struct Field {
    pub key: &'static str,
    pub value: Value,
}

/// What kind of event a trace line describes.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A scoped phase timer; `dur_us` is wall time inside the span.
    Span { dur_us: u64 },
    /// A monotonic count sample.
    Counter { value: u64 },
    /// A point-in-time measurement.
    Gauge { value: f64 },
    /// A ledger observation ([`record`]) — all payload in `fields`.
    Metric,
    /// A histogram snapshot (boxed: 65 buckets would dominate the enum).
    Hist { snapshot: Box<Log2Histogram> },
}

/// One recorded trace event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    pub name: String,
    pub thread: u64,
    pub seq: u64,
    /// Microseconds since the trace epoch (first [`enable`]).
    pub at_us: u64,
    pub kind: EventKind,
    pub fields: Vec<Field>,
}

impl Event {
    fn type_str(&self) -> &'static str {
        match self.kind {
            EventKind::Span { .. } => "span",
            EventKind::Counter { .. } => "counter",
            EventKind::Gauge { .. } => "gauge",
            EventKind::Metric => "metric",
            EventKind::Hist { .. } => "hist",
        }
    }

    /// Renders the event as one JSON object (no trailing newline).
    ///
    /// Schema: every line has `type`, `name`, `thread`, `seq`, `at_us`.
    /// Spans add `dur_us`; counters/gauges add `value`; hists add `count`,
    /// `sum`, `p50`/`p90`/`p99`, and the non-zero `buckets`. Any fields go
    /// under a nested `"fields"` object.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(96);
        let _ = write!(out, "{{\"type\":\"{}\",\"name\":", self.type_str());
        json::push_escaped(&mut out, &self.name);
        let _ = write!(
            out,
            ",\"thread\":{},\"seq\":{},\"at_us\":{}",
            self.thread, self.seq, self.at_us
        );
        match &self.kind {
            EventKind::Span { dur_us } => {
                let _ = write!(out, ",\"dur_us\":{dur_us}");
            }
            EventKind::Counter { value } => {
                let _ = write!(out, ",\"value\":{value}");
            }
            EventKind::Gauge { value } => {
                out.push_str(",\"value\":");
                json::push_f64(&mut out, *value);
            }
            EventKind::Metric => {}
            EventKind::Hist { snapshot } => {
                let _ = write!(
                    out,
                    ",\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{}",
                    snapshot.count(),
                    snapshot.sum(),
                    snapshot.percentile(50),
                    snapshot.percentile(90),
                    snapshot.percentile(99)
                );
                out.push_str(",\"buckets\":{");
                let mut first = true;
                for (i, &c) in snapshot.counts().iter().enumerate() {
                    if c != 0 {
                        if !first {
                            out.push(',');
                        }
                        let _ = write!(out, "\"{i}\":{c}");
                        first = false;
                    }
                }
                out.push('}');
            }
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, f) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::push_escaped(&mut out, f.key);
                out.push(':');
                f.value.push_json(&mut out);
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

// ---------------------------------------------------------------------
// Per-thread buffers
// ---------------------------------------------------------------------

type Buffer = Arc<Mutex<Vec<Event>>>;

fn registry() -> &'static Mutex<Vec<Buffer>> {
    static REGISTRY: OnceLock<Mutex<Vec<Buffer>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: (u64, Buffer) = {
        let id = THREAD_IDS.fetch_add(1, Ordering::Relaxed);
        let buf: Buffer = Arc::new(Mutex::new(Vec::new()));
        registry().lock().unwrap().push(Arc::clone(&buf));
        (id, buf)
    };
}

fn push_event(name: &str, kind: EventKind, fields: Vec<Field>, at_us: u64) {
    LOCAL.with(|(thread, buf)| {
        let event = Event {
            name: name.to_string(),
            thread: *thread,
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
            at_us,
            kind,
            fields,
        };
        // Uncontended in practice: only drain() ever touches another
        // thread's buffer.
        buf.lock().unwrap().push(event);
    });
}

fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Collects every thread's buffered events into one trace ordered by
/// `(at_us, seq)`, clearing the buffers.
pub fn drain() -> Vec<Event> {
    let mut all = Vec::new();
    for buf in registry().lock().unwrap().iter() {
        all.append(&mut buf.lock().unwrap());
    }
    all.sort_by_key(|e| (e.at_us, e.seq));
    all
}

/// Writes the drained trace as JSONL to `w` and returns the event count.
pub fn write_jsonl(w: &mut dyn std::io::Write) -> std::io::Result<usize> {
    let events = drain();
    for e in &events {
        writeln!(w, "{}", e.to_json())?;
    }
    Ok(events.len())
}

/// Drains the trace into a file at `path`; returns the event count.
pub fn flush_to_path(path: &str) -> std::io::Result<usize> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    let n = write_jsonl(&mut f)?;
    use std::io::Write as _;
    f.flush()?;
    Ok(n)
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/// The live half of a [`SpanGuard`].
#[derive(Debug)]
pub struct ActiveSpan {
    name: &'static str,
    started: Instant,
    at_us: u64,
    fields: Vec<Field>,
}

/// Records a span event when dropped. Obtained from [`span`]/[`span!`];
/// holds `None` (and does nothing) when tracing is disabled.
#[derive(Debug)]
#[must_use = "a span measures the scope it is alive in"]
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// Attaches a field discovered mid-span (e.g. a result size known only
    /// at the end of the phase). No-op when tracing is disabled.
    pub fn field(&mut self, key: &'static str, value: impl Into<Value>) {
        if let Some(s) = self.0.as_mut() {
            s.fields.push(Field {
                key,
                value: value.into(),
            });
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(s) = self.0.take() {
            let dur_us = s.started.elapsed().as_micros() as u64;
            push_event(s.name, EventKind::Span { dur_us }, s.fields, s.at_us);
        }
    }
}

/// Starts a span with no fields. Prefer the [`span!`] macro, which also
/// skips field-expression evaluation when tracing is off.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, Vec::new())
}

/// Starts a span with pre-built fields (the [`span!`] macro's entry point).
#[inline]
pub fn span_with(name: &'static str, fields: Vec<Field>) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    SpanGuard(Some(ActiveSpan {
        name,
        started: Instant::now(),
        at_us: now_us(),
        fields,
    }))
}

/// Opens a scoped phase timer: `let _s = span!("cluster.round", round = r);`
///
/// Field expressions are evaluated **only when tracing is enabled**, so a
/// disabled build pays one relaxed atomic load and nothing else.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr $(, $key:ident = $value:expr)+ $(,)?) => {
        $crate::span_with(
            $name,
            if $crate::enabled() {
                vec![$($crate::Field {
                    key: stringify!($key),
                    value: $crate::Value::from($value),
                }),+]
            } else {
                Vec::new()
            },
        )
    };
}

// ---------------------------------------------------------------------
// Counters, gauges, ledger observations
// ---------------------------------------------------------------------

/// Records a monotonic count sample.
#[inline]
pub fn counter(name: &'static str, value: u64) {
    if enabled() {
        push_event(name, EventKind::Counter { value }, Vec::new(), now_us());
    }
}

/// Records a point-in-time measurement.
#[inline]
pub fn gauge(name: &'static str, value: f64) {
    if enabled() {
        push_event(name, EventKind::Gauge { value }, Vec::new(), now_us());
    }
}

/// Records a histogram snapshot under `name`.
#[inline]
pub fn histogram(name: &'static str, snapshot: Log2Histogram) {
    if enabled() {
        push_event(
            name,
            EventKind::Hist {
                snapshot: Box::new(snapshot),
            },
            Vec::new(),
            now_us(),
        );
    }
}

/// The sink an [`Observe`] implementation fills: each call adds one field
/// to the pending `metric` event.
#[derive(Debug, Default)]
pub struct Metrics {
    fields: Vec<Field>,
}

impl Metrics {
    /// Adds an integer measurement.
    pub fn counter(&mut self, key: &'static str, value: u64) {
        self.fields.push(Field {
            key,
            value: Value::U64(value),
        });
    }

    /// Adds a float measurement.
    pub fn gauge(&mut self, key: &'static str, value: f64) {
        self.fields.push(Field {
            key,
            value: Value::F64(value),
        });
    }

    /// Adds a string label (e.g. an MR round's name).
    pub fn label(&mut self, key: &'static str, value: &str) {
        self.fields.push(Field {
            key,
            value: Value::Str(value.to_string()),
        });
    }
}

/// Adapts a ledger type into the unified schema. The four pre-existing
/// ledgers (`CombineStats`, `RoundStats`, `QueryLedger`, shuffle sizes)
/// implement this; [`record`] turns one observation into one `metric`
/// event named after [`Observe::scope`].
pub trait Observe {
    /// The event name this ledger reports under (e.g. `"mr.round"`).
    fn scope(&self) -> &'static str;
    /// Writes the ledger's current values into the sink.
    fn observe(&self, m: &mut Metrics);
}

/// Records one observation of a ledger as a single `metric` trace event.
/// No-op (without calling `observe`) when tracing is disabled.
pub fn record(obj: &dyn Observe) {
    if !enabled() {
        return;
    }
    let mut m = Metrics::default();
    obj.observe(&mut m);
    push_event(obj.scope(), EventKind::Metric, m.fields, now_us());
}

/// Runs a ledger's `observe` and returns the fields (test helper).
pub fn collect(obj: &dyn Observe) -> Vec<Field> {
    let mut m = Metrics::default();
    obj.observe(&mut m);
    m.fields
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is global state; serialize the tests that toggle it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    struct Toy {
        pairs: u64,
    }

    impl Observe for Toy {
        fn scope(&self) -> &'static str {
            "toy"
        }
        fn observe(&self, m: &mut Metrics) {
            m.counter("pairs", self.pairs);
            m.label("algo", "test");
            m.gauge("ratio", 0.5);
        }
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = lock();
        disable();
        drain();
        {
            let mut s = span!("quiet.phase", n = 3usize);
            s.field("late", 9u64);
        }
        counter("quiet.count", 1);
        gauge("quiet.gauge", 2.0);
        record(&Toy { pairs: 7 });
        assert!(drain().is_empty());
    }

    #[test]
    fn span_and_metric_round_trip() {
        let _g = lock();
        disable();
        drain();
        enable();
        {
            let mut s = span!("phase.a", round = 2usize, strategy = "hybrid");
            s.field("claimed", 10u64);
        }
        counter("items", 42);
        record(&Toy { pairs: 7 });
        disable();
        let events = drain();
        assert_eq!(events.len(), 3);
        let span = &events[0];
        assert_eq!(span.name, "phase.a");
        assert!(matches!(span.kind, EventKind::Span { .. }));
        assert_eq!(span.fields.len(), 3);
        assert_eq!(span.fields[0].key, "round");
        assert_eq!(span.fields[0].value, Value::U64(2));
        assert_eq!(span.fields[1].value, Value::Str("hybrid".into()));
        assert_eq!(span.fields[2].key, "claimed");
        assert_eq!(events[1].kind, EventKind::Counter { value: 42 });
        let metric = &events[2];
        assert_eq!(metric.name, "toy");
        assert_eq!(metric.fields.len(), 3);
        // Events are ordered and seq is strictly increasing.
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        // A second drain is empty.
        assert!(drain().is_empty());
    }

    #[test]
    fn json_lines_validate() {
        let _g = lock();
        disable();
        drain();
        enable();
        {
            let _s = span!("json.span", label = "a\"b", size = 4096usize);
        }
        gauge("json.gauge", 1.25);
        let mut h = Log2Histogram::new();
        h.record(3);
        h.record(900);
        histogram("json.hist", h);
        record(&Toy { pairs: 1 });
        disable();
        let mut out = Vec::new();
        let n = write_jsonl(&mut out).unwrap();
        assert_eq!(n, 4);
        let text = String::from_utf8(out).unwrap();
        for line in text.lines() {
            let keys = validate_object(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert!(keys.contains(&"type".to_string()), "{line}");
            assert!(keys.contains(&"name".to_string()), "{line}");
            assert!(keys.contains(&"at_us".to_string()), "{line}");
        }
        let hist_line = text.lines().find(|l| l.contains("json.hist")).unwrap();
        assert!(hist_line.contains("\"count\":2"));
        assert!(hist_line.contains("\"p50\":"));
    }

    #[test]
    fn flush_to_file() {
        let _g = lock();
        disable();
        drain();
        enable();
        counter("file.count", 5);
        disable();
        let path = std::env::temp_dir().join("pardec_obs_flush_test.jsonl");
        let path = path.to_str().unwrap().to_string();
        let n = flush_to_path(&path).unwrap();
        assert_eq!(n, 1);
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 1);
        validate_object(body.lines().next().unwrap()).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn collect_reads_ledger_without_tracing() {
        let fields = collect(&Toy { pairs: 9 });
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[0].value, Value::U64(9));
    }
}
