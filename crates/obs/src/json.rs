//! Minimal JSON emission and validation — enough for the trace's JSONL
//! lines, with no external dependencies.
//!
//! Emission is string concatenation with proper escaping; validation is a
//! tiny recursive-descent parser that checks well-formedness and returns the
//! top-level object keys (what the CI trace checker asserts against).

use std::fmt::Write as _;

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let start = out.len();
        let _ = write!(out, "{v}");
        // `Display` prints integral floats without a dot; keep the
        // float-ness recoverable on parse.
        if !out[start..].contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

// ---------------------------------------------------------------------
// Validation (the CI trace checker)
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut v = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| (c as char).to_digit(16))
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            v = v * 16 + d;
                        }
                        out.push(char::from_u32(v).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => out.push(b as char),
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            self.pos = start;
            return Err(self.err("expected a number"));
        }
        Ok(())
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => self.string().map(|_| ()),
            Some(b'{') => self.object().map(|_| ()),
            Some(b'[') => self.array(),
            Some(b't') => self.keyword("true"),
            Some(b'f') => self.keyword("false"),
            Some(b'n') => self.keyword("null"),
            _ => self.number(),
        }
    }

    fn keyword(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<Vec<String>, String> {
        self.expect(b'{')?;
        let mut keys = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(keys);
        }
        loop {
            self.skip_ws();
            keys.push(self.string()?);
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(keys),
                _ => return Err(self.err("expected , or }")),
            }
        }
    }
}

/// Validates that `line` is one well-formed JSON object and returns its
/// top-level keys. Trailing garbage after the object is an error.
pub fn validate_object(line: &str) -> Result<Vec<String>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let keys = p.object()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing bytes after object"));
    }
    Ok(keys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        let mut s = String::new();
        push_escaped(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn floats() {
        let mut s = String::new();
        push_f64(&mut s, 1.5);
        assert_eq!(s, "1.5");
        s.clear();
        push_f64(&mut s, 3.0);
        assert_eq!(s, "3.0");
        s.clear();
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
        // Everything emitted must validate.
        for v in [0.25, -7.0, 1e300, 16.0] {
            let mut line = String::from("{\"v\":");
            push_f64(&mut line, v);
            line.push('}');
            validate_object(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
    }

    #[test]
    fn validator_accepts_good_lines() {
        for line in [
            "{}",
            r#"{"type":"span","name":"cluster.round","dur_us":12}"#,
            r#"{"a":[1,2,{"b":null}],"c":-1.5e3,"d":"x\ny","e":true}"#,
            r#" { "k" : "v" } "#,
        ] {
            validate_object(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        let keys = validate_object(r#"{"type":"counter","name":"x","value":3}"#).unwrap();
        assert_eq!(keys, ["type", "name", "value"]);
    }

    #[test]
    fn validator_rejects_bad_lines() {
        for line in [
            "",
            "[1,2]",
            "{",
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            r#"{"a" 1}"#,
            r#"{"a":1} trailing"#,
            r#"{"a":"unterminated}"#,
            r#"{"a":tru}"#,
        ] {
            assert!(validate_object(line).is_err(), "accepted: {line}");
        }
    }
}
