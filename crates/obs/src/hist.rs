//! Fixed-bucket **log2 histograms** — integer-only latency distributions.
//!
//! Samples are `u64` values (the serve daemon records request micros).
//! Bucket `0` holds the value `0`; bucket `i ≥ 1` holds values whose bit
//! length is `i`, i.e. the range `[2^(i-1), 2^i)`. With 64 possible bit
//! lengths plus the zero bucket there are [`BUCKETS`] = 65 buckets, enough
//! for the full `u64` range, and p50/p90/p99 are derivable without a single
//! float: a percentile walks the cumulative counts and reports the upper
//! bound of the bucket where the target rank lands.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: the zero bucket plus one per `u64` bit length.
pub const BUCKETS: usize = 65;

/// Bucket index of a sample (0 for 0, else its bit length).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket (`0` for bucket 0, else `2^i - 1`;
/// saturates to `u64::MAX` for the top bucket).
#[inline]
pub fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A plain (single-writer) log2 histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a histogram from raw parts (the wire decode path).
    pub fn from_parts(counts: [u64; BUCKETS], count: u64, sum: u64) -> Self {
        Log2Histogram { counts, count, sum }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The raw bucket counts.
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Upper bound of the bucket holding the `p`-th percentile sample
    /// (`p` in 0..=100), 0 for an empty histogram. Integer-only: the target
    /// rank is `ceil(count * p / 100)` clamped to at least 1.
    pub fn percentile(&self, p: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * p).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(BUCKETS - 1)
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

/// The shared-writer variant the serve daemon records into: all counters are
/// relaxed atomics, so concurrent accept threads never contend on a lock.
/// `snapshot` folds the cells into a plain [`Log2Histogram`].
#[derive(Debug)]
pub struct AtomicLog2Histogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for AtomicLog2Histogram {
    fn default() -> Self {
        AtomicLog2Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl AtomicLog2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample (relaxed; counters only, never ordering-bearing).
    pub fn record(&self, v: u64) {
        self.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A point-in-time copy. Concurrent writers may land between the cell
    /// reads; each sample is still counted exactly once overall.
    pub fn snapshot(&self) -> Log2Histogram {
        Log2Histogram {
            counts: std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(10), 1023);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn percentiles_without_floats() {
        let mut h = Log2Histogram::new();
        // 90 fast samples (~8us), 9 medium (~100us), 1 slow (~5000us).
        for _ in 0..90 {
            h.record(8);
        }
        for _ in 0..9 {
            h.record(100);
        }
        h.record(5000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(50), bucket_bound(bucket_of(8)));
        assert_eq!(h.percentile(90), bucket_bound(bucket_of(8)));
        assert_eq!(h.percentile(99), bucket_bound(bucket_of(100)));
        assert_eq!(h.percentile(100), bucket_bound(bucket_of(5000)));
        assert_eq!(Log2Histogram::new().percentile(99), 0);
    }

    #[test]
    fn merge_adds_samples() {
        let mut a = Log2Histogram::new();
        a.record(5);
        let mut b = Log2Histogram::new();
        b.record(1000);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 1005);
        assert_eq!(a.counts()[0], 1);
    }

    #[test]
    fn atomic_snapshot_matches_plain() {
        let h = AtomicLog2Histogram::new();
        let mut plain = Log2Histogram::new();
        for v in [0u64, 1, 7, 300, 1 << 40] {
            h.record(v);
            plain.record(v);
        }
        assert_eq!(h.snapshot(), plain);
    }
}
